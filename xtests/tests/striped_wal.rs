//! Striped-WAL crash consistency at the MSP level (PR 8).
//!
//! The WAL crate's unit tests pin the merged-frontier truncation on raw
//! `StripedLog`s; these tests drive it through a whole MSP: real
//! sessions, real shared variables, real crash recovery — including a
//! stripe whose flush ran *ahead* of the merged durable frontier, whose
//! orphaned tail recovery must discard, and the `N = 1` degenerate
//! striping, whose recovered state must be indistinguishable from the
//! legacy single-log path.

use std::sync::Arc;
use std::time::Duration;

use msp_core::client::ClientOptions;
use msp_core::config::LoggingConfig;
use msp_core::{ClusterConfig, Envelope, MspBuilder, MspClient, MspConfig, MspHandle};
use msp_harness::torture::audit_striped_log;
use msp_net::{NetModel, Network};
use msp_types::{DomainId, Lsn, MspId, RequestSeq, SessionId};
use msp_wal::log::DATA_START;
use msp_wal::{Disk, DiskModel, FlushPolicy, LogRecord, MemDisk, PhysicalLog, StripedLog};

const M1: MspId = MspId(1);

fn cfg(stripes: usize) -> MspConfig {
    // Checkpoints off: the log keeps every record, so post-crash scans
    // and audits see the whole history.
    MspConfig::new(M1, DomainId(1))
        .with_time_scale(0.0)
        .with_workers(4)
        .with_log_stripes(stripes)
        .with_logging(LoggingConfig {
            checkpoints_enabled: false,
            session_ckpt_threshold: u64::MAX,
            shared_ckpt_writes: u64::MAX,
            msp_ckpt_interval: Duration::from_secs(3600),
            force_ckpt_after: u32::MAX,
            checkpoint_interval_bytes: 0,
        })
}

/// Boot the counting MSP over `disks` (striped when `stripes > 0`):
/// per-session counter `n`, shared counter `sv`, replies `n`.
fn boot(net: &Network<Envelope>, disks: &[Arc<MemDisk>], stripes: usize) -> MspHandle {
    MspBuilder::new(cfg(stripes), ClusterConfig::new().with_msp(M1, DomainId(1)))
        .disk_model(DiskModel::zero())
        .shared_var("sv", 0u64.to_le_bytes().to_vec())
        .service("count", |ctx, _| {
            let n = ctx
                .get_session("n")
                .map(|v| u64::from_le_bytes(v.try_into().unwrap()))
                .unwrap_or(0)
                + 1;
            ctx.set_session("n", n.to_le_bytes().to_vec());
            let sv = u64::from_le_bytes(ctx.read_shared("sv")?[..8].try_into().unwrap()) + 1;
            ctx.write_shared("sv", sv.to_le_bytes().to_vec())?;
            Ok(n.to_le_bytes().to_vec())
        })
        .start_with_disks(
            net,
            disks
                .iter()
                .map(|d| Arc::clone(d) as Arc<dyn Disk>)
                .collect(),
        )
        .unwrap()
}

fn client(net: &Network<Envelope>, id: u64) -> MspClient {
    MspClient::new(
        net,
        id,
        ClientOptions {
            resend_timeout: Duration::from_millis(80),
            busy_backoff: Duration::from_millis(1),
            max_attempts: 100_000,
        },
    )
}

fn as_u64(v: &[u8]) -> u64 {
    u64::from_le_bytes(v.try_into().unwrap())
}

fn shared_counter(h: &MspHandle) -> u64 {
    as_u64(&h.dump_shared()[0][..8])
}

/// A stripe whose flush ran ahead of the merged durable frontier holds
/// records that causally follow a lost one; recovery must discard them.
/// Staged by crashing a striped MSP, then appending (and flushing) a
/// frame on one stripe whose gsn leaves a gap — exactly the disk state a
/// crash leaves when stripe A's arm lagged stripe B's.
#[test]
fn recovery_discards_a_stripe_flushed_ahead_of_the_merged_frontier() {
    let net: Network<Envelope> = Network::new(NetModel::zero(), 40);
    let disks: Vec<Arc<MemDisk>> = (0..2).map(|_| Arc::new(MemDisk::new())).collect();
    let msp = boot(&net, &disks, 2);

    let mut clients: Vec<MspClient> = (0..4).map(|i| client(&net, 40 + i)).collect();
    for round in 1..=3u64 {
        for c in &mut clients {
            assert_eq!(as_u64(&c.call(M1, "count", &[]).unwrap()), round);
        }
    }
    msp.crash();

    // The disks hold the merged-durable prefix: every acknowledged reply's
    // records are below the frontier, and the audit accepts it.
    let clean = audit_striped_log(&disks, "pre-tamper").unwrap();
    assert!(clean.records > 0, "the run left no durable records");
    let frontier = clean.scan_end;

    // Run stripe 0's flush ahead: a durable frame at a gsn *past* the
    // frontier, with the gap standing in for a record that died on the
    // other stripe's volatile tail.
    let ahead = PhysicalLog::open(
        Arc::clone(&disks[0]) as Arc<dyn Disk>,
        DiskModel::zero(),
        FlushPolicy::immediate(),
    )
    .unwrap();
    ahead.append(&LogRecord::Striped {
        gsn: Lsn(frontier + 64),
        inner: Box::new(LogRecord::RequestReceive {
            session: SessionId(999_999),
            seq: RequestSeq::FIRST,
            method: "count".into(),
            payload: vec![],
            sender_dv: None,
        }),
    });
    ahead.close(); // flush: the orphan frame is durable on its stripe
    assert!(
        audit_striped_log(&disks, "tampered").is_err(),
        "the orphaned frame must break the merged gsn stream"
    );

    // Reboot over the same disks: recovery accepts the contiguous prefix,
    // zero-fills the stripe that ran ahead, and replays the rest.
    let msp = boot(&net, &disks, 2);
    for c in &mut clients {
        // Session state survived (each client's counter picks up at 4) —
        // and the ghost request past the frontier left no trace.
        assert_eq!(as_u64(&c.call(M1, "count", &[]).unwrap()), 4);
    }
    assert_eq!(shared_counter(&msp), 16, "12 pre-crash + 4 post-crash");
    msp.crash();
    let audited = audit_striped_log(&disks, "post-recovery").unwrap();
    assert!(
        audited.recovery_completes >= 2,
        "boot + post-crash recovery must both leave markers"
    );
    net.shutdown();
}

/// Driving the same deterministic workload through a legacy single log
/// and a 1-stripe striped log must recover byte-identical state: same
/// session blobs, same shared values, same replies, and the same record
/// sequence under the stripe envelopes.
#[test]
fn single_stripe_recovery_is_byte_identical_to_the_legacy_log() {
    // (inner record kinds, recovered session blobs, shared values,
    // post-recovery replies)
    type Outcome = (Vec<String>, Vec<Vec<u8>>, Vec<Vec<u8>>, Vec<u64>);
    let run = |stripes: usize| -> Outcome {
        let net: Network<Envelope> = Network::new(NetModel::zero(), 60);
        let disks: Vec<Arc<MemDisk>> = vec![Arc::new(MemDisk::new())];
        let msp = boot(&net, &disks, stripes);
        let mut clients: Vec<MspClient> = (0..3).map(|i| client(&net, 60 + i)).collect();
        for round in 1..=4u64 {
            for c in &mut clients {
                assert_eq!(as_u64(&c.call(M1, "count", &[]).unwrap()), round);
            }
        }
        msp.crash();

        // The durable record stream, unwrapped to inner kinds when
        // striped. (Opening performs the same frontier truncation
        // recovery would; after a flush-covered crash it is a no-op.)
        let kinds: Vec<String> = if stripes == 0 {
            let log = PhysicalLog::open(
                Arc::clone(&disks[0]) as Arc<dyn Disk>,
                DiskModel::zero(),
                FlushPolicy::immediate(),
            )
            .unwrap();
            let kinds = log
                .scan_from(Lsn(DATA_START))
                .map(|r| r.unwrap().1.kind().to_string())
                .collect();
            log.close();
            kinds
        } else {
            let log = StripedLog::open(
                vec![Arc::clone(&disks[0]) as Arc<dyn Disk>],
                DiskModel::zero(),
                FlushPolicy::immediate(),
            )
            .unwrap();
            let kinds = log
                .scan_from(Lsn(DATA_START))
                .map(|r| r.unwrap().1.kind().to_string())
                .collect();
            log.close();
            kinds
        };

        let msp = boot(&net, &disks, stripes);
        let replies: Vec<u64> = clients
            .iter_mut()
            .map(|c| as_u64(&c.call(M1, "count", &[]).unwrap()))
            .collect();
        // Session ids come from a process-global counter, so only the
        // blobs (in id = creation order) are comparable across runs.
        let sessions: Vec<Vec<u8>> = msp.dump_sessions().into_iter().map(|(_, b)| b).collect();
        let shared = msp.dump_shared();
        msp.shutdown();
        net.shutdown();
        (kinds, sessions, shared, replies)
    };

    let legacy = run(0);
    let striped = run(1);
    assert_eq!(
        legacy.0, striped.0,
        "durable record sequences must match record-for-record"
    );
    assert_eq!(legacy.1, striped.1, "recovered session blobs must match");
    assert_eq!(legacy.2, striped.2, "recovered shared values must match");
    assert_eq!(legacy.3, striped.3, "post-recovery replies must match");
    assert_eq!(legacy.3, vec![5, 5, 5], "counters resume exactly once");
}

/// Regression: a shared write lands on the *variable's* stripe, which
/// the writing session's own records may never touch. The reply's
/// durability cover must still include it — before the fix, the merged
/// pre-reply flush skipped that stripe and the last acknowledged write
/// of a burst died with its volatile tail (recovered counter 11 of 12).
#[test]
fn acknowledged_shared_writes_survive_a_striped_crash() {
    let net: Network<Envelope> = Network::new(NetModel::zero(), 80);
    let disks: Vec<Arc<MemDisk>> = (0..2).map(|_| Arc::new(MemDisk::new())).collect();
    let msp = boot(&net, &disks, 2);
    let mut clients: Vec<MspClient> = (0..4).map(|i| client(&net, 80 + i)).collect();
    for round in 1..=3u64 {
        for c in &mut clients {
            assert_eq!(as_u64(&c.call(M1, "count", &[]).unwrap()), round);
        }
    }
    assert_eq!(shared_counter(&msp), 12, "pre-crash");
    msp.crash();
    {
        let log = StripedLog::open(
            disks
                .iter()
                .map(|d| Arc::clone(d) as Arc<dyn Disk>)
                .collect(),
            DiskModel::zero(),
            FlushPolicy::immediate(),
        )
        .unwrap();
        let writes = log
            .scan_from(Lsn(DATA_START))
            .filter(|r| r.as_ref().unwrap().1.kind() == "SharedWrite")
            .count();
        log.close();
        assert_eq!(writes, 12, "every acknowledged write must be durable");
    }
    let msp = boot(&net, &disks, 2);
    while !msp.recovery_complete() {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(shared_counter(&msp), 12, "post-recovery, before new calls");
    net.shutdown();
}
