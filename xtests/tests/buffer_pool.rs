//! The process-wide recovery buffer pool and the overlapped recovery
//! phases must be invisible except in speed: every replacement policy
//! (clock / LRU / SIEVE), the scan-fed warm-in, the early-spawned replay
//! pool, and the longest-first prefetcher may only change *when* blocks
//! are resident — never what state recovery lands on. Every combination
//! below must be byte-identical to the serial baseline on the same crash
//! image.

use std::sync::Arc;
use std::time::Duration;

use msp_core::client::ClientOptions;
use msp_core::config::LoggingConfig;
use msp_core::{ClusterConfig, Envelope, MspBuilder, MspClient, MspConfig};
use msp_harness::await_recovery;
use msp_net::{NetModel, Network};
use msp_types::{DomainId, MspId};
use msp_wal::{DiskModel, MemDisk, ReplacementPolicy};

const M1: MspId = MspId(1);

fn solo_cfg() -> MspConfig {
    MspConfig::new(M1, DomainId(1))
        .with_time_scale(0.0)
        .with_workers(4)
        .with_logging(LoggingConfig {
            checkpoints_enabled: false,
            ..LoggingConfig::default()
        })
}

fn start_solo(net: &Network<Envelope>, disk: Arc<MemDisk>, cfg: MspConfig) -> msp_core::MspHandle {
    MspBuilder::new(cfg, ClusterConfig::new().with_msp(M1, DomainId(1)))
        .disk_model(DiskModel::zero())
        .shared_var("sv", 0u64.to_le_bytes().to_vec())
        .service("work", |ctx, payload| {
            let n = ctx
                .get_session("n")
                .map(|v| u64::from_le_bytes(v[..8].try_into().unwrap()))
                .unwrap_or(0)
                + 1;
            ctx.set_session("n", n.to_le_bytes().to_vec());
            ctx.set_session("blob", payload.to_vec());
            let sv = u64::from_le_bytes(ctx.read_shared("sv")?[..8].try_into().unwrap()) + 1;
            ctx.write_shared("sv", sv.to_le_bytes().to_vec())?;
            Ok((n * 7).to_le_bytes().to_vec())
        })
        .start(net, disk)
        .unwrap()
}

/// A crash image with interleaved sessions: `clients` sessions, each
/// `calls` requests, issued round-robin so the replay windows overlap.
fn crash_image(clients: u64, calls: u64) -> Vec<u8> {
    let net: Network<Envelope> = Network::new(NetModel::zero(), 41);
    let disk = Arc::new(MemDisk::new());
    let handle = start_solo(&net, Arc::clone(&disk), solo_cfg());
    let mut cs: Vec<MspClient> = (0..clients)
        .map(|i| MspClient::new(&net, 800 + i, ClientOptions::default()))
        .collect();
    for round in 0..calls {
        for (i, c) in cs.iter_mut().enumerate() {
            let payload = vec![(i as u8).wrapping_mul(13) ^ (round as u8); 48 + i];
            let r = c.call(M1, "work", &payload).unwrap();
            assert_eq!(
                u64::from_le_bytes(r[..8].try_into().unwrap()),
                (round + 1) * 7
            );
        }
    }
    handle.crash();
    let image = disk.snapshot();
    net.shutdown();
    image
}

type Recovered = (
    Vec<(msp_types::SessionId, Vec<u8>)>,
    Vec<Vec<u8>>,
    msp_types::Epoch,
);

fn recover(image: &[u8], cfg: MspConfig, net_seed: u64) -> (Recovered, msp_wal::PoolStatsSnapshot) {
    let net: Network<Envelope> = Network::new(NetModel::zero(), net_seed);
    let disk = Arc::new(MemDisk::new());
    use msp_wal::Disk;
    disk.write(0, image).unwrap();
    let handle = start_solo(&net, disk, cfg);
    await_recovery(&handle, Duration::from_secs(60), "buffer_pool");
    let out = (handle.dump_sessions(), handle.dump_shared(), handle.epoch());
    let pool = handle.pool_stats();
    handle.shutdown();
    net.shutdown();
    (out, pool)
}

/// Every replacement policy lands on the serial baseline's state, with a
/// pool small enough (4 × 64 KB) that eviction decisions actually differ
/// between the policies.
#[test]
fn all_replacement_policies_are_byte_identical_to_serial() {
    let image = crash_image(32, 6);
    let (baseline, _) = recover(&image, solo_cfg().with_serial_recovery(true), 50);
    assert_eq!(baseline.0.len(), 32, "all 32 sessions recovered");

    for (i, policy) in [
        ReplacementPolicy::Clock,
        ReplacementPolicy::Lru,
        ReplacementPolicy::Sieve,
    ]
    .into_iter()
    .enumerate()
    {
        let cfg = solo_cfg()
            .with_recovery_threads(8)
            .with_replay_cache_blocks(4)
            .with_replacement_policy(policy);
        let (got, pool) = recover(&image, cfg, 51 + i as u64);
        assert_eq!(
            got,
            baseline,
            "policy {} diverged from serial recovery",
            policy.name()
        );
        assert!(
            pool.pool_hits + pool.pool_misses > 0,
            "policy {} never touched the pool",
            policy.name()
        );
    }
}

/// The overlap machinery — scan-fed warm-in, replay spawned before the
/// recovery checkpoint, the longest-first prefetcher — toggled in every
/// combination, against both the serial baseline and the
/// no-overlap/no-prefetch parallel baseline. Value-logged configurations
/// must land on identical state regardless.
#[test]
fn overlapped_and_prefetched_recovery_match_serial() {
    let image = crash_image(24, 5);
    let (baseline, _) = recover(&image, solo_cfg().with_serial_recovery(true), 60);
    assert_eq!(baseline.0.len(), 24, "all 24 sessions recovered");

    let mut seed = 61;
    for overlap in [false, true] {
        for prefetch in [false, true] {
            let cfg = solo_cfg()
                .with_recovery_threads(8)
                .with_replay_cache_blocks(8)
                .with_overlapped_recovery(overlap)
                .with_recovery_prefetch(prefetch);
            let (got, pool) = recover(&image, cfg, seed);
            seed += 1;
            assert_eq!(
                got, baseline,
                "overlap={overlap} prefetch={prefetch} diverged from serial"
            );
            if overlap {
                // The warm-in feeds every analysis-scan chunk into the
                // pool, so replay's demand reads find them resident.
                assert!(
                    pool.pool_prefetched_blocks > 0,
                    "overlapped recovery never warmed the pool"
                );
            }
        }
    }
}

/// A pool of one block under eight replay threads: constant eviction on
/// every policy, still byte-identical state.
#[test]
fn single_block_pool_thrashes_coherently_on_every_policy() {
    let image = crash_image(16, 4);
    let (baseline, _) = recover(&image, solo_cfg().with_serial_recovery(true), 70);

    for (i, policy) in [
        ReplacementPolicy::Clock,
        ReplacementPolicy::Lru,
        ReplacementPolicy::Sieve,
    ]
    .into_iter()
    .enumerate()
    {
        let cfg = solo_cfg()
            .with_recovery_threads(8)
            .with_replay_cache_blocks(1)
            .with_replacement_policy(policy);
        let (got, _) = recover(&image, cfg, 71 + i as u64);
        assert_eq!(
            got,
            baseline,
            "policy {} diverged with a single-block pool",
            policy.name()
        );
    }
}
