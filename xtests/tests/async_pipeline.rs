//! The asynchronous durability pipeline: crash safety of the
//! issue→settle window, blocking-vs-pipelined equivalence, and the
//! observability counters — for client replies (PR 5) and cross-domain
//! outgoing sends (PR 6) alike.
//!
//! The pipeline moves the wait for durability off the worker thread and
//! onto the *envelope*: `dispatch_reply` (and, for deep call chains,
//! `pipelined_send`) issues the distributed flush, parks the envelope
//! behind its [`DurabilityGate`], and the release stage emits it once
//! the gate settles. These tests pin the properties that make that safe:
//!
//! 1. an envelope parked between issue and settle is **never** released
//!    if the MSP crashes first (the client's resend re-drives the
//!    request through recovery instead), and
//! 2. with identical traffic, the pipelined and blocking paths commit
//!    identical session transcripts and byte-identical logs (modulo the
//!    globally allocated session ids).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use msp_harness::torture::{run_torture, TortureOptions, WorkloadShape};
use msp_harness::workload::{reply_counter, request_payload, MSP1};
use msp_harness::{FlushMode, SystemConfig, World, WorldOptions};
use msp_types::Lsn;
use msp_wal::log::DATA_START;
use msp_wal::{CrashPoint, DiskModel, FaultPlan, FlushPolicy, MemDisk, PhysicalLog};

fn pipeline_world(blocking: bool) -> World {
    World::start(WorldOptions {
        time_scale: 0.0,
        checkpoints_enabled: false,
        session_ckpt_threshold: u64::MAX,
        flush_mode: FlushMode::PerRequest,
        workers: 2,
        blocking_durability: blocking,
        ..WorldOptions::new(SystemConfig::LoOptimistic)
    })
}

/// Crash MSP1 in the flusher just before the device write — after
/// `dispatch_reply` has issued the gate and parked the reply envelope,
/// before the local flush ticket can settle. The parked reply must be
/// dropped, never released: the client's resend re-executes through
/// recovery and the session counters stay exactly-once. A reply leaked
/// before durability would surface here as a duplicated or lost counter.
#[test]
fn crash_between_issue_and_settle_never_releases_the_reply() {
    let world = pipeline_world(false);
    let plan = Arc::new(FaultPlan::new());
    plan.arm(CrashPoint::PreFlush, 3);
    let (ftx, frx) = crossbeam_channel::bounded(1);
    plan.set_notify(ftx);
    world.msp1.set_fault_plan(Some(Arc::clone(&plan)));

    std::thread::scope(|s| {
        let world = &world;
        let t = s.spawn(move || {
            let mut c = world.client(1);
            (1..=8u64)
                .map(|_| {
                    reply_counter(
                        &c.call(MSP1, "ServiceMethod1", &request_payload(1))
                            .expect("request survives the crash via resend"),
                    )
                })
                .collect::<Vec<u64>>()
        });
        frx.recv_timeout(Duration::from_secs(10))
            .expect("the pre-flush fault fires mid-storm");
        world.msp1.kill();
        world.msp1.set_fault_plan(None);
        world.msp1.restart();
        let ks = t.join().expect("client thread");
        assert_eq!(
            ks,
            (1..=8).collect::<Vec<u64>>(),
            "session counters must be exactly-once across the crash"
        );
    });
    assert!(world.msp1.stats().unwrap().crash_recoveries >= 1);
    world.shutdown();
}

/// Rewrite every `SessionId(n)` in a record's debug form to a canonical
/// per-log index in first-appearance order: session ids come from one
/// process-global counter, so two worlds driving identical traffic log
/// the same records with different ids.
fn canon_sessions(s: &str, map: &mut HashMap<u64, u64>) -> String {
    const TAG: &str = "SessionId(";
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find(TAG) {
        let digits = i + TAG.len();
        out.push_str(&rest[..digits]);
        let tail = &rest[digits..];
        let end = tail.find(')').unwrap_or(tail.len());
        match tail[..end].parse::<u64>() {
            Ok(id) => {
                let next = map.len() as u64;
                out.push_str(&format!("s{}", *map.entry(id).or_insert(next)));
            }
            Err(_) => out.push_str(&tail[..end]),
        }
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

/// Scan a closed MSP disk into `record-debug@lsn` lines with canonical
/// session ids. Keeping the LSN in the line makes the comparison
/// byte-layout-strict: both paths must append the same records at the
/// same offsets.
fn canonical_log(disk: &Arc<MemDisk>) -> Vec<String> {
    let log = PhysicalLog::open_at(
        Arc::clone(disk) as Arc<dyn msp_wal::Disk>,
        DiskModel::zero(),
        FlushPolicy::per_request(),
        DATA_START,
    )
    .expect("re-open for scan");
    let mut map = HashMap::new();
    let lines = log
        .scan_from(Lsn(DATA_START))
        .map(|r| {
            let (lsn, rec) = r.expect("clean scan");
            format!(
                "{}@{}",
                canon_sessions(&format!("{rec:?}"), &mut map),
                lsn.0
            )
        })
        .collect();
    log.close();
    lines
}

/// One fixed single-client run: a few requests of varied fan-out, a
/// session end, then more requests on the fresh session. Returns the
/// client transcript and both canonicalized logs.
fn fixed_run(blocking: bool) -> (Vec<u64>, Vec<String>, Vec<String>) {
    let world = pipeline_world(blocking);
    let mut c = world.client(1);
    let mut ks = Vec::new();
    for &m in &[1u8, 3, 2, 4] {
        ks.push(reply_counter(
            &c.call(MSP1, "ServiceMethod1", &request_payload(m)).unwrap(),
        ));
    }
    c.end_session(MSP1).unwrap();
    for &m in &[2u8, 1, 3] {
        ks.push(reply_counter(
            &c.call(MSP1, "ServiceMethod1", &request_payload(m)).unwrap(),
        ));
    }
    let (d1, d2) = (world.msp1.disk(), world.msp2.disk());
    world.shutdown();
    (ks, canonical_log(&d1), canonical_log(&d2))
}

/// The pipeline is an ordering change, not a protocol change: identical
/// traffic must commit the identical transcript and the identical record
/// streams at the identical offsets on both durability paths.
#[test]
fn blocking_and_pipelined_paths_are_log_equivalent() {
    let (ks_b, log1_b, log2_b) = fixed_run(true);
    let (ks_p, log1_p, log2_p) = fixed_run(false);
    assert_eq!(ks_b, vec![1, 2, 3, 4, 1, 2, 3], "blocking transcript");
    assert_eq!(ks_p, ks_b, "pipelined transcript matches blocking");
    assert_eq!(log1_p, log1_b, "MSP1 logs are equivalent");
    assert_eq!(log2_p, log2_b, "MSP2 logs are equivalent");
}

/// The counters the release stage exports: every committed reply on the
/// pipelined path is an asynchronous release, the pending-gate gauge
/// drains back to zero, and every issued flush ticket completes. The
/// blocking path releases nothing asynchronously.
#[test]
fn pipeline_counters_track_releases_and_drain() {
    let world = pipeline_world(false);
    let mut c = world.client(1);
    for i in 1..=6u64 {
        let r = c.call(MSP1, "ServiceMethod1", &request_payload(1)).unwrap();
        assert_eq!(reply_counter(&r), i);
    }
    // The release thread bumps the counters right after handing the
    // reply to the network, so give it a beat to finish the bookkeeping.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let s = world.msp1.stats().unwrap();
        if s.gates_pending == 0 && s.async_reply_releases >= 6 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "release counters did not settle: gates_pending={} releases={}",
            s.gates_pending,
            s.async_reply_releases
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let ls = world.msp1.log_stats().unwrap();
    assert!(ls.flush_tickets_issued >= 6, "one local ticket per reply");
    assert_eq!(
        ls.flush_tickets_issued, ls.flush_tickets_completed,
        "every issued ticket settles once its watermark passes"
    );
    world.shutdown();

    let world = pipeline_world(true);
    let mut c = world.client(2);
    for _ in 0..4 {
        c.call(MSP1, "ServiceMethod1", &request_payload(1)).unwrap();
    }
    let s = world.msp1.stats().unwrap();
    assert_eq!(
        s.async_reply_releases, 0,
        "blocking_durability keeps every release on the worker thread"
    );
    assert_eq!(s.gates_pending, 0);
    world.shutdown();
}

// ---------------------------------------------------------------------
// PR 6: gate-parked outgoing sends (fully asynchronous call chains)
// ---------------------------------------------------------------------

/// The Pessimistic world: MSP1 and MSP2 in separate domains, so every
/// `ServiceMethod1 → ServiceMethod2` hop is a pessimistic boundary.
/// Replies stay pipelined (PR 5); `blocking_send` toggles only the
/// outgoing-send flush between the blocking baseline and the
/// gate-parked release path.
fn chain_world(blocking_send: bool) -> World {
    World::start(WorldOptions {
        time_scale: 0.0,
        checkpoints_enabled: false,
        session_ckpt_threshold: u64::MAX,
        flush_mode: FlushMode::PerRequest,
        workers: 2,
        blocking_durability: false,
        blocking_send_durability: blocking_send,
        ..WorldOptions::new(SystemConfig::Pessimistic)
    })
}

/// Crash MSP1 inside the parked-send window — after `pipelined_send`
/// has issued the gate and parked the outgoing envelope, before the
/// release stage can emit it. The chain's hop is lost with the crash;
/// the client's resend re-drives the request through recovery, and the
/// session counters must stay exactly-once: a send released without its
/// durability gate would surface as a duplicated execution at MSP2, a
/// swallowed one as a wedged client.
#[test]
fn crash_in_parked_send_window_is_exactly_once() {
    let world = chain_world(false);
    let plan = Arc::new(FaultPlan::new());
    plan.arm(CrashPoint::SendGateIssue, 3);
    let (ftx, frx) = crossbeam_channel::bounded(1);
    plan.set_notify(ftx);
    world.msp1.set_fault_plan(Some(Arc::clone(&plan)));

    std::thread::scope(|s| {
        let world = &world;
        let t = s.spawn(move || {
            let mut c = world.client(31);
            (1..=8u64)
                .map(|_| {
                    reply_counter(
                        &c.call(MSP1, "ServiceMethod1", &request_payload(2))
                            .expect("request survives the crash via resend"),
                    )
                })
                .collect::<Vec<u64>>()
        });
        frx.recv_timeout(Duration::from_secs(10))
            .expect("the send-gate fault fires mid-chain");
        world.msp1.kill();
        world.msp1.set_fault_plan(None);
        world.msp1.restart();
        let ks = t.join().expect("client thread");
        assert_eq!(
            ks,
            (1..=8).collect::<Vec<u64>>(),
            "session counters must be exactly-once across the crash"
        );
    });
    assert!(world.msp1.stats().unwrap().crash_recoveries >= 1);
    world.shutdown();
}

/// The other end of the window: crash MSP2 — the flush *participant* a
/// parked send's gate is waiting on — while deep chains are in flight.
/// MSP1's gates fail or time out, its sessions recover, and the resends
/// must deduplicate at the restarted MSP2.
#[test]
fn callee_crash_under_parked_sends_is_exactly_once() {
    let world = chain_world(false);
    std::thread::scope(|s| {
        let world = &world;
        let t = s.spawn(move || {
            let mut c = world.client(32);
            (1..=8u64)
                .map(|_| {
                    reply_counter(
                        &c.call(MSP1, "ServiceMethod1", &request_payload(3))
                            .expect("request survives the callee crash via resend"),
                    )
                })
                .collect::<Vec<u64>>()
        });
        // Let a few chains commit, then yank the callee mid-storm.
        std::thread::sleep(Duration::from_millis(30));
        world.msp2.kill();
        world.msp2.restart();
        let ks = t.join().expect("client thread");
        assert_eq!(
            ks,
            (1..=8).collect::<Vec<u64>>(),
            "session counters must be exactly-once across the callee crash"
        );
    });
    assert!(world.msp2.stats().unwrap().crash_recoveries >= 1);
    world.shutdown();
}

/// Pinned fixed-seed deep-chain storms through the full torture oracle.
/// These seeds' schedules retarget crash events onto the PR-6 sites —
/// `SendGateIssue` inside MSP1's parked-send window (Pessimistic) and
/// `FlushServe` on the MSP2 flush participant (LoOptimistic) — so the
/// issue→release window is crashed on both MSPs, with recovery,
/// resends, and the exactly-once ledger checked end to end.
#[test]
fn deep_chain_torture_crashes_the_send_window_on_both_msps() {
    for &(seed, config) in &[
        (2u64, SystemConfig::Pessimistic),
        (3u64, SystemConfig::LoOptimistic),
    ] {
        let mut opts = TortureOptions::new(seed, config);
        opts.shape = WorkloadShape::DeepChain;
        opts.requests_per_client = 5;
        opts.crash_events = 3;
        let report =
            run_torture(&opts).unwrap_or_else(|e| panic!("seed {seed} {}: {e}", config.name()));
        assert!(
            report.crashes >= 1,
            "seed {seed} {} injected no crash",
            config.name()
        );
    }
}

/// One fixed single-client deep-chain run on the Pessimistic world.
fn fixed_chain_run(blocking_send: bool) -> (Vec<u64>, Vec<String>, Vec<String>) {
    let world = chain_world(blocking_send);
    let mut c = world.client(33);
    let mut ks = Vec::new();
    for &m in &[2u8, 4, 3, 2] {
        ks.push(reply_counter(
            &c.call(MSP1, "ServiceMethod1", &request_payload(m)).unwrap(),
        ));
    }
    c.end_session(MSP1).unwrap();
    for &m in &[4u8, 2] {
        ks.push(reply_counter(
            &c.call(MSP1, "ServiceMethod1", &request_payload(m)).unwrap(),
        ));
    }
    let (d1, d2) = (world.msp1.disk(), world.msp2.disk());
    world.shutdown();
    (ks, canonical_log(&d1), canonical_log(&d2))
}

/// Send pipelining is an ordering change, not a protocol change: with
/// identical deep-chain traffic, the blocking-send baseline and the
/// gate-parked path must commit the identical transcript and the
/// identical record streams at the identical offsets on both MSPs.
#[test]
fn blocking_and_pipelined_send_paths_are_log_equivalent() {
    let (ks_b, log1_b, log2_b) = fixed_chain_run(true);
    let (ks_p, log1_p, log2_p) = fixed_chain_run(false);
    assert_eq!(ks_b, vec![1, 2, 3, 4, 1, 2], "blocking-send transcript");
    assert_eq!(ks_p, ks_b, "pipelined transcript matches blocking");
    assert_eq!(log1_p, log1_b, "MSP1 logs are equivalent");
    assert_eq!(log2_p, log2_b, "MSP2 logs are equivalent");
}

/// The send-path counters: pipelined chains release sends
/// asynchronously, the pending-send-gate gauge drains back to zero once
/// traffic stops, and the per-hop wait accumulator ticks on every hop.
/// The blocking-send baseline releases nothing asynchronously.
#[test]
fn send_pipeline_counters_track_releases_and_drain() {
    let world = chain_world(false);
    let mut c = world.client(34);
    for i in 1..=6u64 {
        let r = c.call(MSP1, "ServiceMethod1", &request_payload(3)).unwrap();
        assert_eq!(reply_counter(&r), i);
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let s = world.msp1.stats().unwrap();
        if s.send_gates_pending == 0 && s.gates_pending == 0 && s.async_send_releases > 0 {
            assert!(
                s.chain_hop_wait_nanos > 0,
                "per-hop wait accumulator must tick on chained calls"
            );
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "send counters did not settle: send_gates_pending={} releases={}",
            s.send_gates_pending,
            s.async_send_releases
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    world.shutdown();

    let world = chain_world(true);
    let mut c = world.client(35);
    for _ in 0..4 {
        c.call(MSP1, "ServiceMethod1", &request_payload(3)).unwrap();
    }
    let s = world.msp1.stats().unwrap();
    assert_eq!(
        s.async_send_releases, 0,
        "blocking_send_durability keeps every send flush on the worker"
    );
    assert_eq!(s.send_gates_pending, 0);
    world.shutdown();
}
