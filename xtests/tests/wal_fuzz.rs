//! Proptest fuzz for the WAL frame decoder.
//!
//! The recovery path's first act is a forward scan over whatever bytes
//! survived the crash — torn tails, half-written sectors, stale junk
//! from a recycled disk. Whatever the disk holds, the scanner must (a)
//! never panic, (b) terminate, and (c) never *invent* state: every
//! record it yields must be one the original execution wrote, at its
//! original LSN. A torn or corrupted byte may cost the suffix (crash
//! semantics make that indistinguishable from "never flushed"), but the
//! intact prefix before the first damaged byte is always delivered.

use std::sync::Arc;

use proptest::prelude::*;

use msp_types::{Decode, DependencyVector, Encode, Lsn, MspId, RequestSeq, SessionId, VarId};
use msp_wal::log::DATA_START;
use msp_wal::{Disk, DiskModel, FlushPolicy, LogRecord, MemDisk, PhysicalLog};

// ---------------------------------------------------------------- //
// Strategies                                                       //
// ---------------------------------------------------------------- //

fn arb_dv() -> impl Strategy<Value = DependencyVector> {
    proptest::collection::vec((1u32..5, 0u32..4, 0u64..100_000), 0..4).prop_map(|pairs| {
        DependencyVector::from_entries(pairs.into_iter().map(|(m, e, l)| {
            (
                MspId(m),
                msp_types::StateId {
                    epoch: msp_types::Epoch(e),
                    lsn: Lsn(l),
                },
            )
        }))
    })
}

/// A representative spread of record kinds with arbitrary payloads —
/// enough to exercise every frame size class, including empty and
/// multi-sector payloads.
fn arb_record() -> impl Strategy<Value = LogRecord> {
    let payload = proptest::collection::vec(any::<u8>(), 0..2048);
    prop_oneof![
        (
            0u64..50,
            0u64..10,
            0usize..4,
            payload.clone(),
            proptest::option::of(arb_dv())
        )
            .prop_map(|(s, q, m, payload, sender_dv)| {
                LogRecord::RequestReceive {
                    session: SessionId(s),
                    seq: RequestSeq(q),
                    method: ["tick", "work", "relay", "count"][m].to_string(),
                    payload,
                    sender_dv,
                }
            }),
        (0u64..50, 0u64..8, payload.clone(), arb_dv()).prop_map(|(s, v, value, var_dv)| {
            LogRecord::SharedRead {
                session: SessionId(s),
                var: VarId(v as u32),
                value,
                var_dv,
            }
        }),
        (0u64..50, 0u64..8, payload, arb_dv(), 0u64..100_000).prop_map(
            |(s, v, value, writer_dv, prev)| {
                LogRecord::SharedWrite {
                    session: SessionId(s),
                    var: VarId(v as u32),
                    value,
                    writer_dv,
                    prev_write: Lsn(prev),
                }
            }
        ),
        (0u64..50, 1u32..5, 1000u64..2000).prop_map(|(s, t, o)| {
            LogRecord::OutgoingBind {
                session: SessionId(s),
                target: MspId(t),
                outgoing: SessionId(o),
            }
        }),
        (0u32..4, 0u64..100_000).prop_map(|(e, l)| {
            LogRecord::RecoveryComplete {
                new_epoch: msp_types::Epoch(e),
                recovered_lsn: Lsn(l),
            }
        }),
        (0u64..50).prop_map(|s| LogRecord::SessionEnd {
            session: SessionId(s)
        }),
    ]
}

/// How to damage the image.
#[derive(Debug, Clone)]
enum Mutation {
    /// Cut the image at `at` (torn tail).
    Truncate { at: usize },
    /// Overwrite a run of bytes with junk.
    Junk { at: usize, bytes: Vec<u8> },
    /// Flip one bit.
    BitFlip { at: usize, bit: u8 },
}

fn arb_mutation() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        (0usize..1 << 20).prop_map(|at| Mutation::Truncate { at }),
        (
            0usize..1 << 20,
            proptest::collection::vec(any::<u8>(), 1..64)
        )
            .prop_map(|(at, bytes)| Mutation::Junk { at, bytes }),
        (0usize..1 << 20, 0u8..8).prop_map(|(at, bit)| Mutation::BitFlip { at, bit }),
    ]
}

// ---------------------------------------------------------------- //
// Harness                                                          //
// ---------------------------------------------------------------- //

/// Write `records` through a real log (immediate flush policy → every
/// record durable, sector padding between flush batches) and return the
/// raw image plus the `(lsn, record)` baseline.
fn build_image(records: &[LogRecord]) -> (Vec<u8>, Vec<(Lsn, LogRecord)>) {
    let disk = MemDisk::new();
    let log = PhysicalLog::open(
        Arc::new(disk.clone()),
        DiskModel::zero(),
        FlushPolicy::immediate(),
    )
    .unwrap();
    let mut baseline = Vec::with_capacity(records.len());
    for r in records {
        baseline.push((log.append(r), r.clone()));
    }
    log.flush_all().unwrap();
    log.close();
    (disk.snapshot(), baseline)
}

/// First image offset the mutation touches (`None`: image unchanged).
fn first_damage(image_len: usize, m: &Mutation) -> Option<usize> {
    match m {
        Mutation::Truncate { at } => (*at < image_len).then_some(*at),
        Mutation::Junk { at, .. } | Mutation::BitFlip { at, .. } => {
            (*at < image_len).then_some(*at)
        }
    }
}

fn apply(image: &[u8], m: &Mutation) -> Vec<u8> {
    let mut out = image.to_vec();
    match m {
        Mutation::Truncate { at } => out.truncate(*at),
        Mutation::Junk { at, bytes } => {
            for (i, b) in bytes.iter().enumerate() {
                if let Some(slot) = out.get_mut(at + i) {
                    *slot = *b;
                }
            }
        }
        Mutation::BitFlip { at, bit } => {
            if let Some(slot) = out.get_mut(*at) {
                *slot ^= 1 << bit;
            }
        }
    }
    out
}

/// Scan a raw image; panics and hangs are the failures under test, so
/// the scan itself is unguarded. `Err` items terminate the scan the way
/// recovery's analysis pass treats them.
fn scan_image(image: &[u8]) -> Vec<(Lsn, LogRecord)> {
    let disk = MemDisk::new();
    disk.write(0, image).unwrap();
    let log =
        PhysicalLog::open(Arc::new(disk), DiskModel::zero(), FlushPolicy::immediate()).unwrap();
    let mut out = Vec::new();
    for item in log.scan_from(Lsn(DATA_START)) {
        match item {
            Ok(pair) => out.push(pair),
            Err(msp_types::MspError::LogCorrupt { .. }) => break,
            Err(e) => panic!("scan returned a non-corruption error: {e:?}"),
        }
    }
    log.close();
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Pristine image: the scan reproduces exactly what was appended.
    #[test]
    fn pristine_scan_roundtrips(records in proptest::collection::vec(arb_record(), 1..24)) {
        let (image, baseline) = build_image(&records);
        prop_assert_eq!(scan_image(&image), baseline);
    }

    /// Damaged image: no panic, clean termination, nothing invented,
    /// and the intact prefix before the first damaged byte survives.
    #[test]
    fn damaged_scan_never_invents_records(
        records in proptest::collection::vec(arb_record(), 1..24),
        mutation in arb_mutation(),
    ) {
        let (image, baseline) = build_image(&records);
        let damage = first_damage(image.len(), &mutation);
        let scanned = scan_image(&apply(&image, &mutation));

        // Nothing invented: every yielded record is a baseline record at
        // its original LSN. (A mutation can only *remove* records — by
        // tearing the stream or turning a frame into apparent padding —
        // never alter or relocate one: the frame CRC would have to
        // collide for that.)
        for pair in &scanned {
            prop_assert!(
                baseline.contains(pair),
                "scan yielded a record the execution never wrote: {:?}",
                pair
            );
        }

        // The prefix strictly before the damage is fully delivered.
        let damage = damage.unwrap_or(image.len());
        for (lsn, rec) in &baseline {
            let end = lsn.0 as usize + frame_size(rec);
            if end <= damage {
                prop_assert!(
                    scanned.iter().any(|(l, _)| l == lsn),
                    "intact record at lsn {} (damage at {}) was dropped",
                    lsn.0, damage
                );
            }
        }
    }

    /// The record decoder itself never panics on arbitrary bytes — the
    /// frame CRC is the integrity check, not the decoder, but the
    /// decoder must still fail *cleanly* on anything (a CRC collision,
    /// a bug writing frames) that reaches it.
    #[test]
    fn decoder_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = LogRecord::from_bytes(&bytes);
    }

    /// Valid encodings round-trip, and re-decoding a *prefix* of an
    /// encoding fails cleanly rather than mis-parsing.
    #[test]
    fn encode_decode_roundtrip_and_prefix_rejection(
        record in arb_record(),
        cut in 0usize..64,
    ) {
        let bytes = record.to_bytes();
        prop_assert_eq!(LogRecord::from_bytes(&bytes).unwrap(), record);
        if cut < bytes.len() {
            // A strict prefix must never decode to a full record: frame
            // truncation is detected even before the CRC layer.
            let _ = LogRecord::from_bytes(&bytes[..cut]);
        }
    }
}

/// On-disk frame size of `record` (header + payload), mirroring the
/// framing constants in `msp_wal::log`.
fn frame_size(record: &LogRecord) -> usize {
    // FRAME_HEADER = magic (1) + len (4) + crc (4).
    9 + record.to_bytes().len()
}
