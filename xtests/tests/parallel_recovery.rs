//! The parallel recovery engine must be invisible except in speed:
//! replaying N crashed sessions concurrently through the shared replay
//! cache has to land byte-for-byte on the state serial replay produces,
//! and a peer crashing *while* the parallel pool is still replaying must
//! still get its orphans eliminated (§4, Figure 12).

use std::sync::Arc;
use std::time::Duration;

use msp_core::client::ClientOptions;
use msp_core::config::LoggingConfig;
use msp_core::{ClusterConfig, Envelope, MspBuilder, MspClient, MspConfig};
use msp_harness::await_recovery;
use msp_net::{NetModel, Network};
use msp_types::{DomainId, MspId};
use msp_wal::{DiskModel, MemDisk};

const M1: MspId = MspId(1);
const M2: MspId = MspId(2);

fn wait_recovered(handle: &msp_core::MspHandle) {
    await_recovery(handle, Duration::from_secs(60), "parallel_recovery");
}

// ---------------------------------------------------------------- //
// Equivalence: serial and parallel replay of one crash image.      //
// ---------------------------------------------------------------- //

fn solo_cfg() -> MspConfig {
    MspConfig::new(M1, DomainId(1))
        .with_time_scale(0.0)
        .with_workers(4)
        .with_logging(LoggingConfig {
            checkpoints_enabled: false,
            ..LoggingConfig::default()
        })
}

fn start_solo(net: &Network<Envelope>, disk: Arc<MemDisk>, cfg: MspConfig) -> msp_core::MspHandle {
    MspBuilder::new(cfg, ClusterConfig::new().with_msp(M1, DomainId(1)))
        .disk_model(DiskModel::zero())
        .shared_var("sv", 0u64.to_le_bytes().to_vec())
        .service("work", |ctx, payload| {
            let n = ctx
                .get_session("n")
                .map(|v| u64::from_le_bytes(v[..8].try_into().unwrap()))
                .unwrap_or(0)
                + 1;
            ctx.set_session("n", n.to_le_bytes().to_vec());
            ctx.set_session("blob", payload.to_vec());
            let sv = u64::from_le_bytes(ctx.read_shared("sv")?[..8].try_into().unwrap()) + 1;
            ctx.write_shared("sv", sv.to_le_bytes().to_vec())?;
            Ok((n * 3).to_le_bytes().to_vec())
        })
        .start(net, disk)
        .unwrap()
}

/// A crash image with ≥32 interleaved sessions: `clients` sessions, each
/// `calls` requests, issued round-robin so the replay windows overlap.
fn crash_image(clients: u64, calls: u64) -> Vec<u8> {
    let net: Network<Envelope> = Network::new(NetModel::zero(), 21);
    let disk = Arc::new(MemDisk::new());
    let handle = start_solo(&net, Arc::clone(&disk), solo_cfg());
    let mut cs: Vec<MspClient> = (0..clients)
        .map(|i| MspClient::new(&net, 500 + i, ClientOptions::default()))
        .collect();
    for round in 0..calls {
        for (i, c) in cs.iter_mut().enumerate() {
            let payload = vec![(i as u8) ^ (round as u8); 64 + i];
            let r = c.call(M1, "work", &payload).unwrap();
            assert_eq!(
                u64::from_le_bytes(r[..8].try_into().unwrap()),
                (round + 1) * 3
            );
        }
    }
    handle.crash();
    let image = disk.snapshot();
    net.shutdown();
    image
}

#[test]
fn parallel_replay_is_byte_identical_to_serial() {
    let image = crash_image(36, 6);

    let recover = |cfg: MspConfig| {
        let net: Network<Envelope> = Network::new(NetModel::zero(), 22);
        let disk = Arc::new(MemDisk::new());
        use msp_wal::Disk;
        disk.write(0, &image).unwrap();
        let handle = start_solo(&net, disk, cfg);
        wait_recovered(&handle);
        let out = (
            handle.dump_sessions(),
            handle.dump_shared(),
            handle.epoch(),
            handle.log_stats().unwrap(),
        );
        handle.shutdown();
        net.shutdown();
        out
    };

    let (ser_sessions, ser_shared, ser_epoch, ser_log) =
        recover(solo_cfg().with_serial_recovery(true));
    // Small cache (4 blocks) so eviction is exercised, 8-way replay.
    let (par_sessions, par_shared, par_epoch, par_log) = recover(
        solo_cfg()
            .with_recovery_threads(8)
            .with_replay_cache_blocks(4),
    );

    assert_eq!(ser_sessions.len(), 36, "all 36 sessions recovered");
    assert_eq!(
        par_sessions, ser_sessions,
        "parallel replay must reproduce serial session state byte-for-byte \
         (vars, next expected seq, buffered replies)"
    );
    assert_eq!(par_shared, ser_shared, "shared variables identical");
    assert_eq!(par_epoch, ser_epoch, "same recovery epoch");
    assert_eq!(
        ser_log.replay_cache_hits, 0,
        "serial replay bypasses the cache"
    );
    assert!(
        par_log.replay_cache_hits > 0,
        "parallel replay went through the shared block cache"
    );
}

/// Degenerate cache/pool sizings must still be byte-identical to the
/// serial baseline: a single-block cache (every read evicts the previous
/// block) and a replay pool far smaller than the session population
/// (sessions queue behind the workers) only change speed, never state.
#[test]
fn degenerate_cache_and_pool_sizings_match_serial() {
    let image = crash_image(36, 6);

    let recover = |cfg: MspConfig, net_seed: u64| {
        let net: Network<Envelope> = Network::new(NetModel::zero(), net_seed);
        let disk = Arc::new(MemDisk::new());
        use msp_wal::Disk;
        disk.write(0, &image).unwrap();
        let handle = start_solo(&net, disk, cfg);
        wait_recovered(&handle);
        let out = (handle.dump_sessions(), handle.dump_shared(), handle.epoch());
        handle.shutdown();
        net.shutdown();
        out
    };

    let baseline = recover(solo_cfg().with_serial_recovery(true), 30);
    assert_eq!(baseline.0.len(), 36, "all 36 sessions recovered");

    // One cache block: the shared replay cache thrashes on every
    // cross-session read but must stay coherent.
    let one_block = recover(
        solo_cfg()
            .with_recovery_threads(8)
            .with_replay_cache_blocks(1),
        31,
    );
    assert_eq!(one_block, baseline, "replay_cache_blocks=1 diverged");

    // Pool (2 workers) far smaller than the replay window (36 crashed
    // sessions): most sessions wait their turn on the queue.
    let tiny_pool = recover(
        solo_cfg()
            .with_recovery_threads(2)
            .with_replay_cache_blocks(4),
        32,
    );
    assert_eq!(tiny_pool, baseline, "2-thread pool diverged");
}

// ---------------------------------------------------------------- //
// Multi-crash: a peer crashes during the parallel replay phase.    //
// ---------------------------------------------------------------- //

fn duo_cluster() -> ClusterConfig {
    ClusterConfig::new()
        .with_msp(M1, DomainId(1))
        .with_msp(M2, DomainId(1))
}

fn duo_cfg(id: MspId) -> MspConfig {
    let mut c = MspConfig::new(id, DomainId(1))
        .with_time_scale(0.0)
        .with_workers(4)
        .with_recovery_threads(4)
        .with_replay_cache_blocks(8);
    c.rpc_timeout = Duration::from_millis(60);
    c
}

/// The back MSP, restarted with a *scaled* disk model so its replay
/// phase takes real wall time — wide enough for the front to crash into.
fn start_back(net: &Network<Envelope>, disk: Arc<MemDisk>, scale: f64) -> msp_core::MspHandle {
    MspBuilder::new(duo_cfg(M2), duo_cluster())
        .disk_model(DiskModel::default().with_scale(scale))
        .shared_var("sv", 0u64.to_le_bytes().to_vec())
        .service("count", |ctx, _| {
            let n = ctx
                .get_session("n")
                .map(|v| u64::from_le_bytes(v.try_into().unwrap()))
                .unwrap_or(0)
                + 1;
            ctx.set_session("n", n.to_le_bytes().to_vec());
            let sv = u64::from_le_bytes(ctx.read_shared("sv")?[..8].try_into().unwrap()) + 1;
            ctx.write_shared("sv", sv.to_le_bytes().to_vec())?;
            Ok(n.to_le_bytes().to_vec())
        })
        .start(net, disk)
        .unwrap()
}

fn start_front(net: &Network<Envelope>, disk: Arc<MemDisk>, scale: f64) -> msp_core::MspHandle {
    MspBuilder::new(duo_cfg(M1), duo_cluster())
        .disk_model(DiskModel::default().with_scale(scale))
        .service("relay", |ctx, payload| {
            let theirs = ctx.call(M2, "count", payload)?;
            let mine = ctx
                .get_session("m")
                .map(|v| u64::from_le_bytes(v.try_into().unwrap()))
                .unwrap_or(0)
                + 1;
            ctx.set_session("m", mine.to_le_bytes().to_vec());
            let mut out = mine.to_le_bytes().to_vec();
            out.extend_from_slice(&theirs);
            Ok(out)
        })
        .start(net, disk)
        .unwrap()
}

fn client(net: &Network<Envelope>, id: u64) -> MspClient {
    MspClient::new(
        net,
        id,
        ClientOptions {
            resend_timeout: Duration::from_millis(80),
            busy_backoff: Duration::from_millis(1),
            max_attempts: 100_000,
        },
    )
}

fn pair(v: &[u8]) -> (u64, u64) {
    (
        u64::from_le_bytes(v[..8].try_into().unwrap()),
        u64::from_le_bytes(v[8..16].try_into().unwrap()),
    )
}

#[test]
fn peer_crash_during_parallel_replay_still_eliminates_orphans() {
    let net: Network<Envelope> = Network::new(NetModel::zero(), 23);
    let (d1, d2) = (Arc::new(MemDisk::new()), Arc::new(MemDisk::new()));
    let front = start_front(&net, Arc::clone(&d1), 0.0);
    let mut back = start_back(&net, Arc::clone(&d2), 0.0);

    // Several concurrent sessions so both MSPs have a population to
    // replay in parallel.
    let mut drivers: Vec<MspClient> = (0..6).map(|i| client(&net, 700 + i)).collect();
    for round in 1..=4u64 {
        for c in drivers.iter_mut() {
            assert_eq!(pair(&c.call(M1, "relay", &[]).unwrap()), (round, round));
        }
    }

    // Crash the back; restart it with a scaled disk model so its
    // parallel replay takes real time, and crash the front into that
    // replay window. Both recover; optimistic logging means the front's
    // lost tail can orphan back-side work, which the recovery broadcasts
    // plus EOS skip ranges must eliminate.
    back.crash();
    back = start_back(&net, Arc::clone(&d2), 0.02);
    let front2 = {
        front.crash();
        start_front(&net, Arc::clone(&d1), 0.0)
    };
    wait_recovered(&back);
    wait_recovered(&front2);

    // Every session continues exactly-once across the double crash.
    for round in 5..=8u64 {
        for c in drivers.iter_mut() {
            assert_eq!(pair(&c.call(M1, "relay", &[]).unwrap()), (round, round));
        }
    }
    assert!(back.stats().crash_recoveries >= 1);
    assert!(front2.stats().crash_recoveries >= 1);

    front2.shutdown();
    back.shutdown();
    net.shutdown();
}
