//! Cross-crate tests for the reservation-based WAL append pipeline:
//! multi-threaded appends (monotone non-overlapping LSNs, no torn
//! frames, crash-suffix semantics) and group-commit coalescing
//! (N concurrent committers ≪ N device flushes; `serialized_append`
//! reproduces the legacy one-flush-per-call baseline).

use std::sync::Arc;
use std::time::Duration;

use msp_types::{Lsn, RequestSeq, SessionId};
use msp_wal::log::DATA_START;
use msp_wal::{DiskModel, FlushPolicy, LogRecord, MemDisk, PhysicalLog};

const THREADS: u64 = 8;
const PER_THREAD: u64 = 50;

fn rec(session: u64, seq: u64) -> LogRecord {
    LogRecord::RequestReceive {
        session: SessionId(session),
        seq: RequestSeq(seq),
        method: "m".into(),
        // Vary the payload size per record so reservations are not
        // sector-aligned by accident.
        payload: vec![session as u8; 40 + (seq % 96) as usize],
        sender_dv: None,
    }
}

fn open(disk: &MemDisk, model: DiskModel, policy: FlushPolicy) -> Arc<PhysicalLog> {
    PhysicalLog::open(Arc::new(disk.clone()), model, policy).unwrap()
}

/// Appends from `THREADS` threads; returns per-append `(lsn, framed,
/// thread, seq)` tuples.
fn hammer_appends(log: &Arc<PhysicalLog>) -> Vec<(u64, u64, u64, u64)> {
    let mut all = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let log = Arc::clone(log);
                s.spawn(move || {
                    let mut mine = Vec::new();
                    for i in 0..PER_THREAD {
                        let (lsn, framed) = log.append_sized(&rec(t, i));
                        mine.push((lsn.0, framed, t, i));
                    }
                    mine
                })
            })
            .collect();
        for h in handles {
            all.extend(h.join().unwrap());
        }
    });
    all
}

#[test]
fn concurrent_appends_get_monotone_non_overlapping_lsns() {
    let disk = MemDisk::new();
    let log = open(&disk, DiskModel::zero(), FlushPolicy::immediate());
    let mut all = hammer_appends(&log);

    all.sort_by_key(|&(lsn, ..)| lsn);
    assert_eq!(all.len(), (THREADS * PER_THREAD) as usize);
    let mut prev_end = 0u64;
    for &(lsn, framed, ..) in &all {
        assert!(
            lsn >= prev_end,
            "reserved ranges must not overlap: {lsn} < {prev_end}"
        );
        prev_end = lsn + framed;
    }

    // After flush_all every appended record is durable and intact — no
    // torn frames, readable both from the tail cache and the device.
    log.flush_all().unwrap();
    assert!(log.durable_lsn().0 >= prev_end);
    for &(lsn, _, t, i) in &all {
        assert_eq!(log.read_record(Lsn(lsn)).unwrap(), rec(t, i));
    }
    let scanned: Vec<_> = log.scan_from(Lsn(DATA_START)).map(|r| r.unwrap()).collect();
    assert_eq!(
        scanned.len(),
        all.len(),
        "scan sees every record exactly once"
    );
    log.close();
}

#[test]
fn crash_mid_append_leaves_clean_prefix() {
    let disk = MemDisk::new();
    let committed = {
        let log = open(&disk, DiskModel::zero(), FlushPolicy::immediate());
        // Phase 1: multi-threaded appends, all committed.
        let committed = hammer_appends(&log);
        log.flush_all().unwrap();
        // Phase 2: more appends that never get flushed — the unfilled
        // suffix of the last segment a crash is supposed to drop.
        for i in 0..100 {
            log.append(&rec(99, i));
        }
        log.crash();
        committed
    };

    // Analysis scan of the crashed disk: must terminate cleanly and
    // recover exactly the committed records, byte-identical.
    let log = open(&disk, DiskModel::zero(), FlushPolicy::immediate());
    let mut by_lsn: std::collections::HashMap<u64, (u64, u64)> = committed
        .iter()
        .map(|&(lsn, _, t, i)| (lsn, (t, i)))
        .collect();
    let mut recovered = 0usize;
    for item in log.scan_from(Lsn(DATA_START)) {
        let (lsn, record) = item.expect("scan after crash must stay clean");
        let (t, i) = by_lsn
            .remove(&lsn.0)
            .expect("scanned an LSN that was never committed");
        assert_ne!(t, 99, "unflushed suffix records must be lost");
        assert_eq!(record, rec(t, i), "recovered record is byte-identical");
        recovered += 1;
    }
    assert_eq!(
        recovered,
        committed.len(),
        "whole committed prefix survives"
    );
    assert!(by_lsn.is_empty());
    // Scanning twice recovers the identical state.
    assert_eq!(log.scan_from(Lsn(DATA_START)).count(), recovered);
    log.close();
}

#[test]
fn concurrent_committers_coalesce_into_few_device_flushes() {
    let disk = MemDisk::new();
    // A real (scaled-down) flush cost plus a short coalescing window:
    // while one device write is in flight, the other committers' flush
    // requests queue up and must be absorbed by the next write.
    let log = open(
        &disk,
        DiskModel::default().with_scale(0.25),
        FlushPolicy::immediate().with_group_commit_window(Some(Duration::from_millis(1))),
    );
    let committers = 8u64;
    let per = 6u64;
    std::thread::scope(|s| {
        for t in 0..committers {
            let log = Arc::clone(&log);
            s.spawn(move || {
                for i in 0..per {
                    let lsn = log.append(&rec(t, i));
                    log.flush_to(lsn).unwrap();
                }
            });
        }
    });
    let stats = log.stats();
    let commits = committers * per;
    assert_eq!(stats.append_reservations, commits);
    assert!(
        stats.flushes < commits / 2,
        "{commits} commits must share device flushes, got {}",
        stats.flushes
    );
    // At least one flusher wakeup must have absorbed extra requests.
    assert!(
        stats.group_commit_batches > 0,
        "coalescing events must be counted"
    );
    log.close();
}

#[test]
fn serialized_append_reproduces_single_flush_per_call() {
    let disk = MemDisk::new();
    let log = open(
        &disk,
        DiskModel::zero(),
        FlushPolicy::per_request().with_serialized_append(true),
    );
    let n = 16u64;
    for i in 0..n {
        let lsn = log.append(&rec(1, i));
        log.flush_to(lsn).unwrap();
    }
    let stats = log.stats();
    assert_eq!(
        stats.flushes, n,
        "the legacy baseline performs exactly one device flush per commit"
    );
    assert_eq!(stats.append_reservations, 0);
    log.close();

    // The reservation pipeline under the same sequential commit pattern
    // issues the identical number of device flushes.
    let disk2 = MemDisk::new();
    let log2 = open(&disk2, DiskModel::zero(), FlushPolicy::per_request());
    for i in 0..n {
        let lsn = log2.append(&rec(1, i));
        log2.flush_to(lsn).unwrap();
    }
    assert_eq!(log2.stats().flushes, n, "flush parity for a fixed pattern");
    assert_eq!(log2.stats().append_reservations, n);
    log2.close();
}

#[test]
fn reserved_and_serialized_recover_identical_state() {
    // The same append+commit sequence through both pipelines must leave
    // logically identical durable logs (same records, same scan order).
    let run = |serialized: bool| -> Vec<LogRecord> {
        let disk = MemDisk::new();
        let log = open(
            &disk,
            DiskModel::zero(),
            FlushPolicy::immediate().with_serialized_append(serialized),
        );
        for i in 0..20 {
            let lsn = log.append(&rec(1, i));
            if i % 4 == 3 {
                log.flush_to(lsn).unwrap();
            }
        }
        log.close();
        let log = open(&disk, DiskModel::zero(), FlushPolicy::immediate());
        let recs: Vec<LogRecord> = log
            .scan_from(Lsn(DATA_START))
            .map(|r| r.unwrap().1)
            .collect();
        log.close();
        recs
    };
    let a = run(false);
    let b = run(true);
    assert_eq!(a, b);
    assert_eq!(a.len(), 20);
}
