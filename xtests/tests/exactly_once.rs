//! Property-based failure injection: for *any* crash schedule, the
//! client-observed execution equals the crash-free one.
//!
//! The workload is a session counter plus a shared-variable counter; both
//! must advance by exactly one per acknowledged request, no matter when
//! the MSP crashes — between requests, mid-request, several times in a
//! row — and no matter how unreliable the network is.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use msp_core::client::ClientOptions;
use msp_core::config::LoggingConfig;
use msp_core::{ClusterConfig, Envelope, MspBuilder, MspClient, MspConfig};
use msp_net::{NetModel, Network};
use msp_types::{DomainId, MspId};
use msp_wal::{DiskModel, MemDisk};

const SERVER: MspId = MspId(1);

fn start_server(
    net: &Network<Envelope>,
    disk: Arc<MemDisk>,
    ckpt_threshold: u64,
) -> msp_core::MspHandle {
    let cluster = ClusterConfig::new().with_msp(SERVER, DomainId(1));
    let logging = LoggingConfig {
        session_ckpt_threshold: ckpt_threshold,
        shared_ckpt_writes: 7, // exercise shared checkpoints too
        msp_ckpt_interval: Duration::from_millis(10),
        force_ckpt_after: 3,
        checkpoints_enabled: true,
        checkpoint_interval_bytes: 0,
    };
    MspBuilder::new(
        MspConfig::new(SERVER, DomainId(1))
            .with_time_scale(0.0)
            .with_logging(logging)
            .with_workers(3),
        cluster,
    )
    .disk_model(DiskModel::zero())
    .shared_var("total", 0u64.to_le_bytes().to_vec())
    .service("tick", |ctx, _| {
        let mine = ctx
            .get_session("n")
            .map(|v| u64::from_le_bytes(v.try_into().unwrap()))
            .unwrap_or(0)
            + 1;
        ctx.set_session("n", mine.to_le_bytes().to_vec());
        let total = u64::from_le_bytes(ctx.read_shared("total")?[..8].try_into().unwrap()) + 1;
        ctx.write_shared("total", total.to_le_bytes().to_vec())?;
        let mut out = mine.to_le_bytes().to_vec();
        out.extend_from_slice(&total.to_le_bytes());
        Ok(out)
    })
    .start(net, disk)
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// Crash the MSP after arbitrary subsets of requests; the session
    /// counter and the shared counter must both be exactly-once.
    #[test]
    fn exactly_once_under_arbitrary_crash_schedules(
        crash_after in proptest::collection::btree_set(0u64..20, 0..5),
        ckpt_threshold in prop_oneof![Just(200u64), Just(2_000), Just(u64::MAX)],
        seed in 0u64..1_000,
    ) {
        let net: Network<Envelope> = Network::new(NetModel::zero(), seed);
        let disk = Arc::new(MemDisk::new());
        let mut server = Some(start_server(&net, Arc::clone(&disk), ckpt_threshold));
        let mut client = MspClient::new(&net, 1, ClientOptions {
            resend_timeout: Duration::from_millis(60),
            busy_backoff: Duration::from_millis(1),
            max_attempts: 100_000,
        });
        for i in 1..=20u64 {
            let r = client.call(SERVER, "tick", &[]).unwrap();
            let mine = u64::from_le_bytes(r[..8].try_into().unwrap());
            let total = u64::from_le_bytes(r[8..16].try_into().unwrap());
            prop_assert_eq!(mine, i, "session counter at request {}", i);
            prop_assert_eq!(total, i, "shared counter at request {}", i);
            if crash_after.contains(&i) {
                server.take().unwrap().crash();
                server = Some(start_server(&net, Arc::clone(&disk), ckpt_threshold));
            }
        }
        server.take().unwrap().shutdown();
        net.shutdown();
    }

    /// Same invariant under a hostile network (drops, duplicates,
    /// reordering) combined with crashes.
    #[test]
    fn exactly_once_under_faulty_network_and_crashes(
        crash_after in proptest::collection::btree_set(1u64..12, 0..3),
        drop_prob in 0.0f64..0.25,
        dup_prob in 0.0f64..0.25,
        seed in 0u64..1_000,
    ) {
        let model = NetModel {
            one_way: Duration::from_micros(100),
            jitter: Duration::from_micros(300),
            drop_prob,
            dup_prob,
            time_scale: 1.0,
        };
        let net: Network<Envelope> = Network::new(model, seed);
        let disk = Arc::new(MemDisk::new());
        let mut server = Some(start_server(&net, Arc::clone(&disk), 500));
        let mut client = MspClient::new(&net, 1, ClientOptions {
            resend_timeout: Duration::from_millis(30),
            busy_backoff: Duration::from_millis(1),
            max_attempts: 100_000,
        });
        for i in 1..=12u64 {
            let r = client.call(SERVER, "tick", &[]).unwrap();
            prop_assert_eq!(u64::from_le_bytes(r[..8].try_into().unwrap()), i);
            prop_assert_eq!(u64::from_le_bytes(r[8..16].try_into().unwrap()), i);
            if crash_after.contains(&i) {
                server.take().unwrap().crash();
                server = Some(start_server(&net, Arc::clone(&disk), 500));
            }
        }
        server.take().unwrap().shutdown();
        net.shutdown();
    }
}
