//! Bounded-log operation: truncation safety across the stack.
//!
//! Three layers of the same invariant — the reclaim floor never passes a
//! live dependency, and whatever a truncation crash leaves behind,
//! recovery sees exactly the records above the floor:
//!
//! * **Runtime** — an un-checkpointed session's earliest position-stream
//!   entry pins the floor near the log head; once the session ends and a
//!   fresh MSP checkpoint anchors, the floor advances and the space below
//!   it reads as zeros.
//! * **WAL** — a crash between the floor persist and the device reclaim
//!   (`TruncateStart`), or right after the reclaim (`TruncateComplete`),
//!   recovers byte-identical above the floor, on a single log and on a
//!   striped one.
//! * **Fold** — `fold_reclaim_floor` itself: never above any live
//!   dependency, never above the durable horizon, monotone in its inputs
//!   (proptest).
//!
//! Plus the pinned long-run acceptance seed: the full bounded-log tier
//! (byte-driven checkpoints, fixed-cadence crashes, footprint cap, flat
//! MTTR) at a CI-sized workload.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use msp_core::client::ClientOptions;
use msp_core::config::LoggingConfig;
use msp_core::{fold_reclaim_floor, ClusterConfig, Envelope, MspBuilder, MspClient, MspConfig};
use msp_harness::torture::{run_torture_long_run, LongRunOptions};
use msp_harness::SystemConfig;
use msp_net::{NetModel, Network};
use msp_types::{DomainId, Lsn, MspError, MspId, SessionId};
use msp_wal::log::DATA_START;
use msp_wal::{
    CrashPoint, Disk, DiskModel, FaultPlan, FlushPolicy, LogRecord, MemDisk, PhysicalLog,
    StripedLog,
};

const SERVER: MspId = MspId(1);

// ---------------------------------------------------------------- //
// Runtime layer: live sessions pin the floor                       //
// ---------------------------------------------------------------- //

fn start_server(net: &Network<Envelope>, disk: Arc<MemDisk>) -> msp_core::MspHandle {
    let cluster = ClusterConfig::new().with_msp(SERVER, DomainId(1));
    let logging = LoggingConfig {
        // No session checkpoints and no laggard forcing: the session's
        // anchor stays its *first* position-stream entry for the whole
        // test, so it alone must hold the reclaim floor down.
        session_ckpt_threshold: u64::MAX,
        force_ckpt_after: u32::MAX,
        shared_ckpt_writes: 5,
        // No background checkpointer either — the test drives every
        // checkpoint (and hence every truncation) by hand.
        msp_ckpt_interval: Duration::from_secs(3600),
        checkpoints_enabled: true,
        checkpoint_interval_bytes: 0,
    };
    MspBuilder::new(
        MspConfig::new(SERVER, DomainId(1))
            .with_time_scale(0.0)
            .with_logging(logging)
            .with_workers(3),
        cluster,
    )
    .disk_model(DiskModel::zero())
    .shared_var("total", 0u64.to_le_bytes().to_vec())
    .service("tick", |ctx, _| {
        let mine = ctx
            .get_session("n")
            .map(|v| u64::from_le_bytes(v.try_into().unwrap()))
            .unwrap_or(0)
            + 1;
        ctx.set_session("n", mine.to_le_bytes().to_vec());
        let total = u64::from_le_bytes(ctx.read_shared("total")?[..8].try_into().unwrap()) + 1;
        ctx.write_shared("total", total.to_le_bytes().to_vec())?;
        Ok(mine.to_le_bytes().to_vec())
    })
    .start(net, disk)
    .unwrap()
}

#[test]
fn live_session_pins_the_floor_until_it_ends() {
    let net: Network<Envelope> = Network::new(NetModel::zero(), 7);
    let disk = Arc::new(MemDisk::new());
    let server = start_server(&net, Arc::clone(&disk));
    let mut client = MspClient::new(
        &net,
        1,
        ClientOptions {
            resend_timeout: Duration::from_millis(60),
            busy_backoff: Duration::from_millis(1),
            max_attempts: 100_000,
        },
    );

    // Phase 1: a busy session that never checkpoints. Its first
    // position-stream entry sits at the very head of the log, so no
    // matter how much traffic follows, checkpoint-driven truncation must
    // refuse to advance past it.
    for i in 1..=16u64 {
        let r = client.call(SERVER, "tick", &[]).unwrap();
        assert_eq!(u64::from_le_bytes(r[..8].try_into().unwrap()), i);
    }
    server.force_msp_checkpoint().unwrap();
    let floor1 = server.reclaim_floor().expect("log-based server");
    // The 16-request log is tens of KB; the floor must stay pinned at
    // the session's first entry, within the first few records.
    assert!(
        floor1.0 <= 4 * DATA_START,
        "un-checkpointed session's first entry must pin the floor near \
         the head, got {floor1:?}"
    );

    // Phase 2: end the session. Its entries are dead; the next
    // checkpoint re-anchors above them and truncation reclaims the
    // prefix for real — the device below the floor reads as zeros.
    client.end_session(SERVER).unwrap();
    for i in 1..=4u64 {
        let r = client.call(SERVER, "tick", &[]).unwrap();
        assert_eq!(
            u64::from_le_bytes(r[..8].try_into().unwrap()),
            i,
            "fresh session restarts its counter"
        );
    }
    server.force_msp_checkpoint().unwrap();
    let floor2 = server.reclaim_floor().expect("log-based server");
    assert!(
        floor2 > floor1,
        "dead session released the floor: {floor2:?} vs {floor1:?}"
    );
    let mut below = vec![0xAAu8; (floor2.0 - DATA_START) as usize];
    disk.read(DATA_START, &mut below).unwrap();
    assert!(
        below.iter().all(|&b| b == 0),
        "the reclaimed prefix must read as zeros"
    );

    // The truncated log still serves and survives a crash-restart: the
    // recovery scan starts at the anchored checkpoint, above the floor.
    server.crash();
    let server = start_server(&net, Arc::clone(&disk));
    for i in 5..=8u64 {
        let r = client.call(SERVER, "tick", &[]).unwrap();
        assert_eq!(u64::from_le_bytes(r[..8].try_into().unwrap()), i);
    }
    server.shutdown();
    net.shutdown();
}

// ---------------------------------------------------------------- //
// WAL layer: crash-during-truncation is byte-identical above floor //
// ---------------------------------------------------------------- //

fn rec(session: u64, seq: u64) -> LogRecord {
    LogRecord::RequestReceive {
        session: SessionId(session),
        seq: msp_types::RequestSeq(seq),
        method: "m".into(),
        payload: vec![0xC3; 48],
        sender_dv: None,
    }
}

/// Write 16 records, snapshot the untruncated disk, crash at `point`
/// inside `truncate_below`, reopen — and require the surviving bytes
/// above the floor to be identical to the baseline, with zeros below.
fn half_truncated_single_log(point: CrashPoint) {
    let disk = Arc::new(MemDisk::new());
    let floor;
    let baseline;
    {
        let log = PhysicalLog::open(
            Arc::clone(&disk) as Arc<dyn Disk>,
            DiskModel::zero(),
            FlushPolicy::immediate(),
        )
        .unwrap();
        let mut lsns = Vec::new();
        for i in 0..16u64 {
            let l = log.append(&rec(1, i));
            log.flush_to(l).unwrap();
            lsns.push(l);
        }
        baseline = disk.snapshot();
        floor = lsns[9];
        log.install_fault_plan(FaultPlan::armed(point, 1));
        assert!(matches!(log.truncate_below(floor), Err(MspError::Shutdown)));
        log.crash();
    }

    let log = PhysicalLog::open(
        Arc::clone(&disk) as Arc<dyn Disk>,
        DiskModel::zero(),
        FlushPolicy::immediate(),
    )
    .unwrap();
    assert_eq!(log.floor(), floor, "floor persisted before the crash");
    let after = disk.snapshot();
    assert_eq!(
        &after[floor.0 as usize..],
        &baseline[floor.0 as usize..],
        "bytes above the floor must be untouched by the interrupted \
         truncation ({point:?})"
    );
    assert!(
        after[DATA_START as usize..floor.0 as usize]
            .iter()
            .all(|&b| b == 0),
        "reopen must finish the reclaim below the floor ({point:?})"
    );
    let got: Vec<_> = log
        .scan_from(Lsn(DATA_START))
        .map(|r| r.unwrap().1)
        .collect();
    let want: Vec<_> = (9..16).map(|i| rec(1, i)).collect();
    assert_eq!(got, want, "scan yields exactly the records above the floor");
    log.close();
}

#[test]
fn crash_at_truncate_start_single_log() {
    half_truncated_single_log(CrashPoint::TruncateStart);
}

#[test]
fn crash_at_truncate_complete_single_log() {
    half_truncated_single_log(CrashPoint::TruncateComplete);
}

/// The striped variant: the merged floor is persisted on every stripe
/// disk before any local truncation, so a crash at either point leaves
/// the reopened log scanning exactly the survivors — and each stripe's
/// surviving region byte-identical to the untruncated baseline.
fn half_truncated_striped_log(point: CrashPoint) {
    let disks: Vec<Arc<MemDisk>> = (0..2).map(|_| Arc::new(MemDisk::new())).collect();
    let dyn_disks = || {
        disks
            .iter()
            .map(|d| Arc::clone(d) as Arc<dyn Disk>)
            .collect::<Vec<_>>()
    };
    let floor;
    let want: Vec<_>;
    let baselines: Vec<Vec<u8>>;
    {
        let log =
            StripedLog::open(dyn_disks(), DiskModel::zero(), FlushPolicy::immediate()).unwrap();
        let mut lsns = Vec::new();
        for i in 0..20u64 {
            lsns.push((log.append(&rec(i, i)), rec(i, i)));
        }
        log.flush_all().unwrap();
        baselines = disks.iter().map(|d| d.snapshot()).collect();
        floor = lsns[11].0;
        want = lsns[11..].to_vec();
        log.install_fault_plan(FaultPlan::armed(point, 1));
        assert!(matches!(log.truncate_below(floor), Err(MspError::Shutdown)));
        log.crash();
    }

    let log = StripedLog::open(dyn_disks(), DiskModel::zero(), FlushPolicy::immediate()).unwrap();
    assert_eq!(log.floor(), floor, "merged floor survives ({point:?})");
    let got: Vec<_> = log.scan_from(Lsn(DATA_START)).map(|r| r.unwrap()).collect();
    assert_eq!(got, want, "merged scan yields the records above the floor");
    for (s, stripe) in log.stripes().iter().enumerate() {
        let lf = stripe.floor().0 as usize;
        let after = disks[s].snapshot();
        assert_eq!(
            &after[lf..],
            &baselines[s][lf..],
            "stripe {s}: bytes above its local floor must match the \
             untruncated baseline ({point:?})"
        );
        assert!(
            after[DATA_START as usize..lf].iter().all(|&b| b == 0),
            "stripe {s}: reopen must finish the local reclaim ({point:?})"
        );
    }
    log.close();
}

#[test]
fn crash_at_truncate_start_striped_log() {
    half_truncated_striped_log(CrashPoint::TruncateStart);
}

#[test]
fn crash_at_truncate_complete_striped_log() {
    half_truncated_striped_log(CrashPoint::TruncateComplete);
}

// ---------------------------------------------------------------- //
// Fold layer: the reclaim-floor computation itself                 //
// ---------------------------------------------------------------- //

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    /// The folded floor never exceeds any live dependency, never exceeds
    /// the durable horizon, and collapses to 0 without an anchored
    /// checkpoint (recovery would scan from the head, so nothing is
    /// reclaimable).
    #[test]
    fn fold_never_passes_a_live_dependency(
        anchor in proptest::option::of(0u64..1_000_000),
        sessions in proptest::collection::vec(0u64..1_000_000, 0..8),
        shared in proptest::collection::vec(0u64..1_000_000, 0..8),
        pending in proptest::option::of(0u64..1_000_000),
        durable in 0u64..1_000_000,
    ) {
        let s: Vec<Lsn> = sessions.iter().map(|&l| Lsn(l)).collect();
        let sh: Vec<Lsn> = shared.iter().map(|&l| Lsn(l)).collect();
        let floor = fold_reclaim_floor(
            anchor.map(Lsn), &s, &sh, pending.map(Lsn), Lsn(durable),
        );
        prop_assert!(floor.0 <= durable, "floor {floor:?} above durable {durable}");
        match anchor {
            None => prop_assert_eq!(floor, Lsn(0), "no anchor, nothing reclaimable"),
            Some(a) => {
                prop_assert!(floor.0 <= a);
                for l in sessions.iter().chain(&shared).chain(&pending) {
                    prop_assert!(floor.0 <= *l, "floor {floor:?} passes live dep {l}");
                }
            }
        }
    }

    /// Monotone: raising every input (dependencies catching up, the
    /// durable horizon advancing) never lowers the floor — so repeated
    /// checkpoint/truncate cycles can only move forward.
    #[test]
    fn fold_is_monotone_in_its_inputs(
        anchor in 0u64..1_000_000,
        sessions in proptest::collection::vec(0u64..1_000_000, 0..8),
        shared in proptest::collection::vec(0u64..1_000_000, 0..8),
        pending in proptest::option::of(0u64..1_000_000),
        durable in 0u64..1_000_000,
        delta in 0u64..100_000,
    ) {
        let lift = |v: &[u64], d: u64| v.iter().map(|&l| Lsn(l + d)).collect::<Vec<_>>();
        let lo = fold_reclaim_floor(
            Some(Lsn(anchor)),
            &lift(&sessions, 0),
            &lift(&shared, 0),
            pending.map(Lsn),
            Lsn(durable),
        );
        let hi = fold_reclaim_floor(
            Some(Lsn(anchor + delta)),
            &lift(&sessions, delta),
            &lift(&shared, delta),
            pending.map(|p| Lsn(p + delta)),
            Lsn(durable + delta),
        );
        prop_assert!(hi >= lo, "raised inputs lowered the floor: {hi:?} < {lo:?}");
    }
}

// ---------------------------------------------------------------- //
// The pinned long-run acceptance seed                              //
// ---------------------------------------------------------------- //

/// CI-sized cut of the bounded-log tier: continuous traffic with a
/// 128 KB byte-driven checkpoint trigger, four fixed-cadence kills, a
/// hard footprint cap, the MTTR flatness assert, and the floor-aware
/// post-mortem audits. Seed pinned — a failure here reproduces exactly.
#[test]
fn long_run_pinned_seed_stays_bounded() {
    let mut opts = LongRunOptions::new(42, SystemConfig::LoOptimistic);
    opts.clients = 4;
    opts.min_requests_per_client = 40;
    opts.crashes = 4;
    opts.crash_interval = Duration::from_millis(80);
    opts.checkpoint_interval_bytes = 128 << 10;
    opts.footprint_cap = 4 << 20;
    let report = run_torture_long_run(&opts).expect("pinned long-run seed");
    assert!(report.truncations > 0);
    assert!(report.requests >= 4 * 40);
    assert_eq!(report.crashes, 4);
}
