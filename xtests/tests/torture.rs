//! Tier-1 slice of the crash-storm torture rig (`msp_harness::torture`).
//!
//! The full rig runs as the `torture` binary over large seed sets; this
//! test pins a small fixed set of seeds across all five §5.2 system
//! configurations so every CI run exercises the exactly-once oracle,
//! the post-mortem log audit, and (on the log-based configs) at least
//! one crash *during a prior recovery* (§4.5). Failures embed the seed:
//! reproduce with
//! `cargo run --release --bin torture -- --seed-base <seed> --seeds 1 --config <name>`.

use std::time::Duration;

use msp_harness::{run_torture, SystemConfig, TortureOptions};

/// Seeds chosen to keep the whole matrix under a CI-friendly budget
/// while still firing multi-crash schedules on the log-based configs.
const SEEDS: [u64; 2] = [1, 5];

fn storm(seed: u64, config: SystemConfig) -> msp_harness::TortureReport {
    let mut opts = TortureOptions::new(seed, config);
    opts.requests_per_client = 8;
    opts.settle_timeout = Duration::from_secs(90);
    run_torture(&opts)
        .unwrap_or_else(|msg| panic!("torture seed={seed} config={}: {msg}", config.name()))
}

#[test]
fn fixed_seeds_pass_oracle_and_audit_on_all_configs() {
    for config in SystemConfig::ALL {
        for seed in SEEDS {
            let report = storm(seed, config);
            assert!(report.requests > 0, "storm drove no traffic: {report}");
            if config.is_log_based() {
                assert!(
                    report.crashes > 0,
                    "log-based storm injected no crashes: {report}"
                );
                assert!(
                    !report.audits.is_empty(),
                    "log-based storm skipped the post-mortem audit: {report}"
                );
            }
        }
    }
}

/// Every log-based schedule must carry (and, across the seed set, at
/// least once *fire*) a crash aimed at a prior recovery — the §4.5
/// "crashes during recovery" dimension the oracle is most sensitive to.
#[test]
fn crash_during_recovery_coverage() {
    let mut fired = 0u64;
    for config in [SystemConfig::LoOptimistic, SystemConfig::Pessimistic] {
        for seed in SEEDS {
            let report = storm(seed, config);
            assert!(
                report.scheduled_recovery_events >= 1,
                "schedule carried no during-recovery event: {report}"
            );
            fired += report.recovery_crashes;
        }
    }
    assert!(
        fired >= 1,
        "no seed in {SEEDS:?} fired a crash during a prior recovery; \
         widen the seed set"
    );
}
