//! Tier-1 slice of the crash-storm torture rig (`msp_harness::torture`).
//!
//! The full rig runs as the `torture` binary over large seed sets; this
//! test pins a small fixed set of seeds across all five §5.2 system
//! configurations so every CI run exercises the exactly-once oracle,
//! the post-mortem log audit, and (on the log-based configs) at least
//! one crash *during a prior recovery* (§4.5). Failures embed the seed:
//! reproduce with
//! `cargo run --release --bin torture -- --seed-base <seed> --seeds 1 --config <name>`.

use std::time::Duration;

use msp_harness::{run_torture, SystemConfig, TortureOptions, WorkloadShape};

/// Seeds chosen to keep the whole matrix under a CI-friendly budget
/// while still firing multi-crash schedules on the log-based configs.
const SEEDS: [u64; 2] = [1, 5];

fn storm_opts(seed: u64, config: SystemConfig) -> TortureOptions {
    let mut opts = TortureOptions::new(seed, config);
    opts.requests_per_client = 8;
    opts.settle_timeout = Duration::from_secs(90);
    opts
}

fn run(opts: &TortureOptions) -> msp_harness::TortureReport {
    run_torture(opts).unwrap_or_else(|msg| {
        panic!(
            "torture seed={} config={} shape={}: {msg}",
            opts.seed,
            opts.config.name(),
            opts.shape.name()
        )
    })
}

fn storm(seed: u64, config: SystemConfig) -> msp_harness::TortureReport {
    run(&storm_opts(seed, config))
}

#[test]
fn fixed_seeds_pass_oracle_and_audit_on_all_configs() {
    for config in SystemConfig::ALL {
        for seed in SEEDS {
            let report = storm(seed, config);
            assert!(report.requests > 0, "storm drove no traffic: {report}");
            if config.is_log_based() {
                assert!(
                    report.crashes > 0,
                    "log-based storm injected no crashes: {report}"
                );
                assert!(
                    !report.audits.is_empty(),
                    "log-based storm skipped the post-mortem audit: {report}"
                );
            }
        }
    }
}

/// Every log-based schedule must carry (and, across the seed set, at
/// least once *fire*) a crash aimed at a prior recovery — the §4.5
/// "crashes during recovery" dimension the oracle is most sensitive to.
#[test]
fn crash_during_recovery_coverage() {
    let mut fired = 0u64;
    for config in [SystemConfig::LoOptimistic, SystemConfig::Pessimistic] {
        for seed in SEEDS {
            let report = storm(seed, config);
            assert!(
                report.scheduled_recovery_events >= 1,
                "schedule carried no during-recovery event: {report}"
            );
            fired += report.recovery_crashes;
        }
    }
    assert!(
        fired >= 1,
        "no seed in {SEEDS:?} fired a crash during a prior recovery; \
         widen the seed set"
    );
}

/// The PR-5 workload shapes hold the exactly-once oracle under crash
/// storms on both log-based configs: shared-variable-heavy fan-out
/// (every request multi-calls MSP2) and session churn (EOS + session
/// teardown + create-on-first-use racing the crash schedule).
#[test]
fn workload_shapes_hold_exactly_once_under_crash_storms() {
    for shape in [WorkloadShape::SharedHeavy, WorkloadShape::SessionChurn] {
        for config in [SystemConfig::LoOptimistic, SystemConfig::Pessimistic] {
            for seed in SEEDS {
                let mut opts = storm_opts(seed, config);
                opts.shape = shape;
                let report = run(&opts);
                assert!(report.requests > 0, "storm drove no traffic: {report}");
                assert!(
                    report.crashes > 0,
                    "log-based storm injected no crashes: {report}"
                );
            }
        }
    }
}

/// The PR-8 striped shape — session churn over a 2-stripe WAL and a
/// 2-shard runtime — holds the exactly-once oracle under the same crash
/// storms, and the post-mortem audit re-merges the per-stripe gsn
/// streams into one contiguous log on every crash.
#[test]
fn striped_churn_holds_exactly_once_under_crash_storms() {
    for config in [SystemConfig::LoOptimistic, SystemConfig::Pessimistic] {
        for seed in SEEDS {
            let mut opts = storm_opts(seed, config);
            opts.shape = WorkloadShape::StripedChurn;
            let report = run(&opts);
            assert!(report.requests > 0, "storm drove no traffic: {report}");
            assert!(
                report.crashes > 0,
                "log-based storm injected no crashes: {report}"
            );
            assert!(
                !report.audits.is_empty(),
                "striped storm skipped the post-mortem audit: {report}"
            );
        }
    }
}

/// Session churn on the baseline configurations: the END_SESSION resend
/// path (lost acknowledgement → fresh cell) must not wedge clients on
/// any strategy, lossy links included.
#[test]
fn session_churn_on_baseline_configs() {
    for config in [
        SystemConfig::NoLog,
        SystemConfig::Psession,
        SystemConfig::StateServer,
    ] {
        let mut opts = storm_opts(1, config);
        opts.shape = WorkloadShape::SessionChurn;
        let report = run(&opts);
        assert!(report.requests > 0, "storm drove no traffic: {report}");
    }
}

/// The pre-pipeline blocking durability path stays green under the same
/// storm — it shares the gate machinery with the pipeline, parked on the
/// worker thread instead of the release stage.
#[test]
fn blocking_durability_baseline_survives_the_storm() {
    for shape in [WorkloadShape::Default, WorkloadShape::SessionChurn] {
        let mut opts = storm_opts(5, SystemConfig::LoOptimistic);
        opts.shape = shape;
        opts.blocking_durability = true;
        let report = run(&opts);
        assert!(report.crashes > 0, "storm injected no crashes: {report}");
    }
}
