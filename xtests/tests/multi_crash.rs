//! Multiple concurrent and repeated crashes (§4.1, "Orphan Recovery upon
//! Multiple Crashes"; §1 "can deal with multiple concurrent crashes").

use std::sync::Arc;
use std::time::Duration;

use msp_core::client::ClientOptions;
use msp_core::{ClusterConfig, Envelope, MspBuilder, MspClient, MspConfig};
use msp_net::{NetModel, Network};
use msp_types::{DomainId, MspId};
use msp_wal::{DiskModel, MemDisk};

const M1: MspId = MspId(1);
const M2: MspId = MspId(2);

fn cluster() -> ClusterConfig {
    ClusterConfig::new()
        .with_msp(M1, DomainId(1))
        .with_msp(M2, DomainId(1))
}

fn cfg(id: MspId) -> MspConfig {
    let mut c = MspConfig::new(id, DomainId(1))
        .with_time_scale(0.0)
        .with_workers(4);
    c.rpc_timeout = Duration::from_millis(60);
    c
}

fn start_back(net: &Network<Envelope>, disk: Arc<MemDisk>) -> msp_core::MspHandle {
    MspBuilder::new(cfg(M2), cluster())
        .disk_model(DiskModel::zero())
        .shared_var("sv", 0u64.to_le_bytes().to_vec())
        .service("count", |ctx, _| {
            let n = ctx
                .get_session("n")
                .map(|v| u64::from_le_bytes(v.try_into().unwrap()))
                .unwrap_or(0)
                + 1;
            ctx.set_session("n", n.to_le_bytes().to_vec());
            let sv = u64::from_le_bytes(ctx.read_shared("sv")?[..8].try_into().unwrap()) + 1;
            ctx.write_shared("sv", sv.to_le_bytes().to_vec())?;
            Ok(n.to_le_bytes().to_vec())
        })
        .start(net, disk)
        .unwrap()
}

fn start_front(net: &Network<Envelope>, disk: Arc<MemDisk>) -> msp_core::MspHandle {
    MspBuilder::new(cfg(M1), cluster())
        .disk_model(DiskModel::zero())
        .service("relay", |ctx, payload| {
            let theirs = ctx.call(M2, "count", payload)?;
            let mine = ctx
                .get_session("m")
                .map(|v| u64::from_le_bytes(v.try_into().unwrap()))
                .unwrap_or(0)
                + 1;
            ctx.set_session("m", mine.to_le_bytes().to_vec());
            let mut out = mine.to_le_bytes().to_vec();
            out.extend_from_slice(&theirs);
            Ok(out)
        })
        .start(net, disk)
        .unwrap()
}

fn client_id(net: &Network<Envelope>, id: u64) -> MspClient {
    MspClient::new(
        net,
        id,
        ClientOptions {
            resend_timeout: Duration::from_millis(80),
            busy_backoff: Duration::from_millis(1),
            max_attempts: 100_000,
        },
    )
}

fn pair(v: &[u8]) -> (u64, u64) {
    (
        u64::from_le_bytes(v[..8].try_into().unwrap()),
        u64::from_le_bytes(v[8..16].try_into().unwrap()),
    )
}

#[test]
fn both_msps_crash_simultaneously() {
    let net: Network<Envelope> = Network::new(NetModel::zero(), 9);
    let (d1, d2) = (Arc::new(MemDisk::new()), Arc::new(MemDisk::new()));
    let front = start_front(&net, Arc::clone(&d1));
    let back = start_back(&net, Arc::clone(&d2));
    let mut c = client_id(&net, 1);
    for i in 1..=6u64 {
        assert_eq!(pair(&c.call(M1, "relay", &[]).unwrap()), (i, i));
    }
    // Crash both at once — each recovers independently, exchanging
    // recovery broadcasts; any orphan on either side is repaired.
    front.crash();
    back.crash();
    let back = start_back(&net, Arc::clone(&d2));
    let front = start_front(&net, Arc::clone(&d1));
    for i in 7..=12u64 {
        assert_eq!(pair(&c.call(M1, "relay", &[]).unwrap()), (i, i));
    }
    front.shutdown();
    back.shutdown();
    net.shutdown();
}

#[test]
fn rapid_repeated_crashes_of_the_same_msp() {
    // Back-to-back crashes: the second recovery sees the first's
    // RecoveryComplete record and the epoch climbs monotonically; EOS
    // skip ranges from the first orphan recovery survive the second
    // (Figure 11's disjoint/embedded combinations through the real
    // runtime).
    let net: Network<Envelope> = Network::new(NetModel::zero(), 10);
    let (d1, d2) = (Arc::new(MemDisk::new()), Arc::new(MemDisk::new()));
    let front = start_front(&net, Arc::clone(&d1));
    let mut back = start_back(&net, Arc::clone(&d2));
    let mut c = client_id(&net, 1);
    let mut expected = 0u64;
    for round in 1..=3u32 {
        for _ in 0..4 {
            expected += 1;
            assert_eq!(
                pair(&c.call(M1, "relay", &[]).unwrap()),
                (expected, expected)
            );
        }
        // Two crashes in quick succession.
        back.crash();
        back = start_back(&net, Arc::clone(&d2));
        back.crash();
        back = start_back(&net, Arc::clone(&d2));
        assert_eq!(back.epoch().0, 2 * round, "two recoveries per round");
    }
    for _ in 0..4 {
        expected += 1;
        assert_eq!(
            pair(&c.call(M1, "relay", &[]).unwrap()),
            (expected, expected)
        );
    }
    front.shutdown();
    back.shutdown();
    net.shutdown();
}

#[test]
fn crash_during_peer_recovery() {
    // M2 crashes; while the front is still converging (resending its
    // in-flight work), M2 crashes again. The session's orphan recovery
    // must cope with knowledge arriving in two steps (§4.1: "session
    // orphan recovery can be initiated during an ongoing session
    // recovery").
    let net: Network<Envelope> = Network::new(NetModel::zero(), 11);
    let (d1, d2) = (Arc::new(MemDisk::new()), Arc::new(MemDisk::new()));
    let front = start_front(&net, Arc::clone(&d1));
    let mut back = start_back(&net, Arc::clone(&d2));
    let mut c = client_id(&net, 1);
    for i in 1..=5u64 {
        assert_eq!(pair(&c.call(M1, "relay", &[]).unwrap()), (i, i));
    }
    // Crash M2, restart, and crash again almost immediately from a
    // separate thread while the client keeps driving load.
    let driver = std::thread::spawn({
        let net = net.clone();
        move || {
            let mut c2 = client_id(&net, 2);
            // A second client rides through the double crash.
            let mut last = 0;
            for _ in 0..8 {
                let r = c2.call(M1, "relay", &[]).unwrap();
                let (mine, _) = pair(&r);
                assert_eq!(mine, last + 1);
                last = mine;
            }
            last
        }
    });
    for _ in 0..2 {
        back.crash();
        back = start_back(&net, Arc::clone(&d2));
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(driver.join().unwrap(), 8);
    for i in 6..=9u64 {
        assert_eq!(pair(&c.call(M1, "relay", &[]).unwrap()), (i, i));
    }
    front.shutdown();
    back.shutdown();
    net.shutdown();
}
