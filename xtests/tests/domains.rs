//! Recovery independence between service domains (§1.2, §3.1).
//!
//! "An MSP crash can cause only other MSPs in the same service domain to
//! roll back. But recovery independence is maintained between service
//! domains." — a crash of a cross-domain peer must never orphan our
//! sessions, because every message that crossed the boundary was
//! pessimistically flushed first.

use std::sync::Arc;
use std::time::Duration;

use msp_core::client::ClientOptions;
use msp_core::{ClusterConfig, Envelope, MspBuilder, MspClient, MspConfig};
use msp_net::{NetModel, Network};
use msp_types::{DomainId, MspId};
use msp_wal::{DiskModel, MemDisk};

const FRONT: MspId = MspId(1);
const BACK: MspId = MspId(2);

fn cluster(same_domain: bool) -> ClusterConfig {
    ClusterConfig::new()
        .with_msp(FRONT, DomainId(1))
        .with_msp(BACK, DomainId(if same_domain { 1 } else { 2 }))
}

fn cfg(id: MspId, domain: u32) -> MspConfig {
    let mut c = MspConfig::new(id, DomainId(domain))
        .with_time_scale(0.0)
        .with_workers(4);
    c.rpc_timeout = Duration::from_millis(60);
    c
}

fn start_back(
    net: &Network<Envelope>,
    disk: Arc<MemDisk>,
    same_domain: bool,
) -> msp_core::MspHandle {
    let domain = if same_domain { 1 } else { 2 };
    MspBuilder::new(cfg(BACK, domain), cluster(same_domain))
        .disk_model(DiskModel::zero())
        .service("count", |ctx, _| {
            let n = ctx
                .get_session("n")
                .map(|v| u64::from_le_bytes(v.try_into().unwrap()))
                .unwrap_or(0)
                + 1;
            ctx.set_session("n", n.to_le_bytes().to_vec());
            Ok(n.to_le_bytes().to_vec())
        })
        .start(net, disk)
        .unwrap()
}

fn start_front(
    net: &Network<Envelope>,
    disk: Arc<MemDisk>,
    same_domain: bool,
) -> msp_core::MspHandle {
    MspBuilder::new(cfg(FRONT, 1), cluster(same_domain))
        .disk_model(DiskModel::zero())
        .service("relay", |ctx, payload| ctx.call(BACK, "count", payload))
        .start(net, disk)
        .unwrap()
}

fn drive(client: &mut MspClient, from: u64, to: u64) {
    for i in from..=to {
        let r = client.call(FRONT, "relay", &[]).unwrap();
        assert_eq!(u64::from_le_bytes(r[..8].try_into().unwrap()), i);
    }
}

#[test]
fn cross_domain_crash_never_orphans_the_front() {
    let net: Network<Envelope> = Network::new(NetModel::zero(), 3);
    let (df, db) = (Arc::new(MemDisk::new()), Arc::new(MemDisk::new()));
    let front = start_front(&net, Arc::clone(&df), false);
    let back = start_back(&net, Arc::clone(&db), false);
    let mut client = MspClient::new(&net, 1, ClientOptions::default());
    drive(&mut client, 1, 8);
    back.crash();
    let back = start_back(&net, db, false);
    drive(&mut client, 9, 16);
    // Pessimistic boundary: everything the front consumed from the back
    // was durable before it was sent, so the front never rolls back.
    assert_eq!(
        front.stats().orphan_recoveries,
        0,
        "cross-domain crashes must not orphan the front MSP"
    );
    front.shutdown();
    back.shutdown();
    net.shutdown();
}

#[test]
fn same_domain_crash_can_orphan_but_recovers() {
    // Control experiment: same scenario inside one domain — orphan
    // recovery at the front is now possible (optimistic logging), and the
    // end-to-end behaviour is still exactly-once.
    let net: Network<Envelope> = Network::new(NetModel::zero(), 4);
    let (df, db) = (Arc::new(MemDisk::new()), Arc::new(MemDisk::new()));
    let front = start_front(&net, Arc::clone(&df), true);
    let back = start_back(&net, Arc::clone(&db), true);
    let mut client = MspClient::new(&net, 1, ClientOptions::default());
    drive(&mut client, 1, 8);
    back.crash();
    let back = start_back(&net, db, true);
    drive(&mut client, 9, 16);
    front.shutdown();
    back.shutdown();
    net.shutdown();
}

#[test]
fn cross_domain_messages_carry_no_dv() {
    // The DV must not leak across the boundary: the front's session
    // should have no dependency entry for the cross-domain back MSP.
    let net: Network<Envelope> = Network::new(NetModel::zero(), 5);
    let (df, db) = (Arc::new(MemDisk::new()), Arc::new(MemDisk::new()));
    let front = start_front(&net, Arc::clone(&df), false);
    let back = start_back(&net, Arc::clone(&db), false);
    let mut client = MspClient::new(&net, 1, ClientOptions::default());
    drive(&mut client, 1, 3);
    let session = client.session_with(FRONT).unwrap();
    let dv = front.session_dv(session).unwrap();
    assert!(
        dv.get(BACK).is_none(),
        "cross-domain replies are pessimistically logged and carry no DV, got {dv}"
    );
    front.shutdown();
    back.shutdown();
    net.shutdown();
}

#[test]
fn same_domain_messages_do_carry_dv() {
    let net: Network<Envelope> = Network::new(NetModel::zero(), 5);
    let (df, db) = (Arc::new(MemDisk::new()), Arc::new(MemDisk::new()));
    let front = start_front(&net, Arc::clone(&df), true);
    let back = start_back(&net, Arc::clone(&db), true);
    let mut client = MspClient::new(&net, 1, ClientOptions::default());
    drive(&mut client, 1, 3);
    let session = client.session_with(FRONT).unwrap();
    let dv = front.session_dv(session).unwrap();
    assert!(
        dv.get(BACK).is_some(),
        "intra-domain replies propagate the DV, got {dv}"
    );
    front.shutdown();
    back.shutdown();
    net.shutdown();
}
