//! Durability-watermark elision: steady-state flush RPCs are skipped for
//! dependencies already proven durable, and no elision ever survives a
//! peer's recovery (epoch safety).
//!
//! Topology: FRONT and BACK share one service domain. `relay` calls into
//! BACK once, giving the client session a durable dependency on BACK;
//! `local` touches only FRONT. Every client-bound reply performs a
//! distributed flush of the session DV, so each `local` call re-flushes
//! the *same* BACK dependency — exactly the steady-state redundancy the
//! watermark table removes.

use std::sync::Arc;
use std::time::{Duration, Instant};

use msp_core::client::ClientOptions;
use msp_core::{ClusterConfig, Envelope, MspBuilder, MspClient, MspConfig};
use msp_net::{NetModel, Network};
use msp_types::{DomainId, Epoch, MspId};
use msp_wal::{DiskModel, MemDisk};

const FRONT: MspId = MspId(1);
const BACK: MspId = MspId(2);

fn cluster() -> ClusterConfig {
    ClusterConfig::new()
        .with_msp(FRONT, DomainId(1))
        .with_msp(BACK, DomainId(1))
}

fn cfg(id: MspId, watermarks: bool) -> MspConfig {
    let mut c = MspConfig::new(id, DomainId(1))
        .with_time_scale(0.0)
        .with_workers(4)
        .with_durability_watermarks(watermarks);
    c.rpc_timeout = Duration::from_millis(60);
    c
}

fn start_back(
    net: &Network<Envelope>,
    disk: Arc<MemDisk>,
    watermarks: bool,
) -> msp_core::MspHandle {
    MspBuilder::new(cfg(BACK, watermarks), cluster())
        .disk_model(DiskModel::zero())
        .service("count", |ctx, _| {
            let n = ctx
                .get_session("n")
                .map(|v| u64::from_le_bytes(v.try_into().unwrap()))
                .unwrap_or(0)
                + 1;
            ctx.set_session("n", n.to_le_bytes().to_vec());
            Ok(n.to_le_bytes().to_vec())
        })
        .start(net, disk)
        .unwrap()
}

fn start_front(
    net: &Network<Envelope>,
    disk: Arc<MemDisk>,
    watermarks: bool,
) -> msp_core::MspHandle {
    MspBuilder::new(cfg(FRONT, watermarks), cluster())
        .disk_model(DiskModel::zero())
        .service("relay", |ctx, payload| ctx.call(BACK, "count", payload))
        .service("local", |ctx, _| {
            let n = ctx
                .get_session("m")
                .map(|v| u64::from_le_bytes(v.try_into().unwrap()))
                .unwrap_or(0)
                + 1;
            ctx.set_session("m", n.to_le_bytes().to_vec());
            Ok(n.to_le_bytes().to_vec())
        })
        .start(net, disk)
        .unwrap()
}

/// Drive `n` front-only requests over `client`'s existing session.
fn drive_local(client: &mut MspClient, from: u64, to: u64) {
    for i in from..=to {
        let r = client.call(FRONT, "local", &[]).unwrap();
        assert_eq!(u64::from_le_bytes(r[..8].try_into().unwrap()), i);
    }
}

#[test]
fn steady_state_elides_redundant_flush_rpcs() {
    let net: Network<Envelope> = Network::new(NetModel::zero(), 11);
    let (df, db) = (Arc::new(MemDisk::new()), Arc::new(MemDisk::new()));
    let front = start_front(&net, df, true);
    let back = start_back(&net, db, true);
    let mut client = MspClient::new(&net, 1, ClientOptions::default());

    // One relay call: the session DV now depends on BACK, and the
    // client-bound reply flushed that dependency (populating the
    // watermark via the flush ack or the piggybacked hint).
    let r = client.call(FRONT, "relay", &[]).unwrap();
    assert_eq!(u64::from_le_bytes(r[..8].try_into().unwrap()), 1);

    // Twenty front-only requests re-flush the same BACK dependency.
    drive_local(&mut client, 1, 20);

    let fs = front.stats();
    assert!(
        fs.flush_rpcs_elided > 0,
        "steady state must elide flush RPCs, stats: {fs:?}"
    );
    // At most a couple of real RPCs (the first flush, plus at most one
    // race before the ack landed); the rest were elided.
    let served = back.stats().flush_requests_served;
    assert!(
        served <= 5,
        "BACK should serve few flush requests once the watermark is set, served {served}"
    );
    assert!(
        front.watermark_of(BACK).is_some(),
        "front should hold a durable watermark for BACK"
    );
    front.shutdown();
    back.shutdown();
    net.shutdown();
}

#[test]
fn watermarks_off_flushes_every_time() {
    let net: Network<Envelope> = Network::new(NetModel::zero(), 12);
    let (df, db) = (Arc::new(MemDisk::new()), Arc::new(MemDisk::new()));
    let front = start_front(&net, df, false);
    let back = start_back(&net, db, false);
    let mut client = MspClient::new(&net, 1, ClientOptions::default());

    let r = client.call(FRONT, "relay", &[]).unwrap();
    assert_eq!(u64::from_le_bytes(r[..8].try_into().unwrap()), 1);
    drive_local(&mut client, 1, 20);

    let fs = front.stats();
    assert_eq!(fs.flush_rpcs_elided, 0, "elision is off, stats: {fs:?}");
    assert_eq!(fs.flushes_elided, 0, "elision is off, stats: {fs:?}");
    assert!(
        back.stats().flush_requests_served >= 20,
        "every client-bound reply must re-flush the BACK dependency, served {}",
        back.stats().flush_requests_served
    );
    assert!(front.watermark_of(BACK).is_none());
    front.shutdown();
    back.shutdown();
    net.shutdown();
}

#[test]
fn peer_recovery_invalidates_the_watermark() {
    // Epoch safety: a watermark learned before a peer's crash must never
    // elide a flush afterwards — the recovery broadcast drops it, and the
    // next flush goes over the wire again.
    let net: Network<Envelope> = Network::new(NetModel::zero(), 13);
    let (df, db) = (Arc::new(MemDisk::new()), Arc::new(MemDisk::new()));
    let front = start_front(&net, df, true);
    let back = start_back(&net, Arc::clone(&db), true);
    let mut client = MspClient::new(&net, 1, ClientOptions::default());

    let r = client.call(FRONT, "relay", &[]).unwrap();
    assert_eq!(u64::from_le_bytes(r[..8].try_into().unwrap()), 1);
    drive_local(&mut client, 1, 5);
    assert!(
        front.watermark_of(BACK).is_some(),
        "watermark populated before the crash"
    );

    // Crash BACK between watermark population and the next send; its
    // restart broadcasts the recovery within the domain.
    back.crash();
    let back = start_back(&net, db, true);

    // Wait until the front has absorbed the broadcast (async delivery):
    // it knows BACK's new epoch and has dropped the stale watermark.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if front.knowledge().current_epoch(BACK) == Some(Epoch(1))
            && front.watermark_of(BACK).is_none()
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "front never absorbed the recovery broadcast"
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    // The old dependency is from BACK's epoch 0; the new watermark (once
    // re-learned) is for epoch 1 and must never cover it. Every further
    // client-bound reply therefore really asks BACK again.
    let served_before = back.stats().flush_requests_served;
    drive_local(&mut client, 6, 8);
    let served_after = back.stats().flush_requests_served;
    assert!(
        served_after > served_before,
        "post-crash flushes must go over the wire, served {served_before} -> {served_after}"
    );
    if let Some((epoch, _)) = front.watermark_of(BACK) {
        assert_eq!(
            epoch,
            Epoch(1),
            "re-learned watermark carries the new epoch"
        );
    }
    front.shutdown();
    back.shutdown();
    net.shutdown();
}
