//! Golden-log conformance: the exact record sequences the protocols of
//! Figures 7 and 8 must produce, verified by scanning the physical log.

use std::sync::Arc;
use std::time::Duration;

use msp_core::client::ClientOptions;
use msp_core::config::LoggingConfig;
use msp_core::{ClusterConfig, Envelope, MspBuilder, MspClient, MspConfig};
use msp_net::{NetModel, Network};
use msp_types::{DomainId, Lsn, MspId};
use msp_wal::log::DATA_START;
use msp_wal::{DiskModel, FlushPolicy, MemDisk, PhysicalLog};

const M1: MspId = MspId(1);
const M2: MspId = MspId(2);

fn cluster() -> ClusterConfig {
    ClusterConfig::new()
        .with_msp(M1, DomainId(1))
        .with_msp(M2, DomainId(1))
}

fn no_ckpt_cfg(id: MspId) -> MspConfig {
    // Disable checkpoints so the golden sequence has no interleaved
    // checkpoint records.
    MspConfig::new(id, DomainId(1))
        .with_time_scale(0.0)
        .with_workers(2)
        .with_logging(LoggingConfig {
            checkpoints_enabled: false,
            session_ckpt_threshold: u64::MAX,
            shared_ckpt_writes: u64::MAX,
            msp_ckpt_interval: Duration::from_secs(3600),
            force_ckpt_after: u32::MAX,
            checkpoint_interval_bytes: 0,
        })
}

fn scan_kinds(disk: &Arc<MemDisk>) -> Vec<String> {
    let log = PhysicalLog::open(
        Arc::clone(disk) as Arc<dyn msp_wal::Disk>,
        DiskModel::zero(),
        FlushPolicy::immediate(),
    )
    .unwrap();
    let kinds: Vec<String> = log
        .scan_from(Lsn(DATA_START))
        .map(|r| r.unwrap().1.kind().to_string())
        .collect();
    log.close();
    kinds
}

#[test]
fn figure7_and_8_record_sequence_for_one_request() {
    let net: Network<Envelope> = Network::new(NetModel::zero(), 1);
    let (d1, d2) = (Arc::new(MemDisk::new()), Arc::new(MemDisk::new()));
    let m1 = MspBuilder::new(no_ckpt_cfg(M1), cluster())
        .disk_model(DiskModel::zero())
        .shared_var("sv", vec![0])
        .service("method1", |ctx, payload| {
            let v = ctx.read_shared("sv")?; // SharedRead
            ctx.write_shared("sv", v)?; // SharedWrite
            ctx.call(M2, "method2", payload)?; // ReplyReceive (on return)
            Ok(vec![])
        })
        .start(&net, Arc::clone(&d1) as Arc<dyn msp_wal::Disk>)
        .unwrap();
    let m2 = MspBuilder::new(no_ckpt_cfg(M2), cluster())
        .disk_model(DiskModel::zero())
        .service("method2", |_ctx, _| Ok(vec![]))
        .start(&net, Arc::clone(&d2) as Arc<dyn msp_wal::Disk>)
        .unwrap();

    let mut c = MspClient::new(&net, 1, ClientOptions::default());
    c.call(M1, "method1", &[]).unwrap();
    m1.shutdown();
    m2.shutdown();
    net.shutdown();

    // MSP1's log: the first-boot incarnation marker (epoch 0, flushed
    // before the MSP serves anything, so an empty durable log can never
    // be mistaken for a fresh boot after a crash), then the request
    // receive, value logging of the read, the backward-chained write,
    // the outgoing-session binding of the first call to MSP2, and the
    // logged reply of that call — in execution order (Figures 7 and 8).
    assert_eq!(
        scan_kinds(&d1),
        vec![
            "RecoveryComplete",
            "RequestReceive",
            "SharedRead",
            "SharedWrite",
            "OutgoingBind",
            "ReplyReceive"
        ],
    );
    // MSP2's log: the boot marker, then the (intra-domain) request
    // receive.
    assert_eq!(scan_kinds(&d2), vec!["RecoveryComplete", "RequestReceive"]);
}

#[test]
fn session_end_writes_its_marker() {
    let net: Network<Envelope> = Network::new(NetModel::zero(), 2);
    let d1 = Arc::new(MemDisk::new());
    let m1 = MspBuilder::new(
        no_ckpt_cfg(M1),
        ClusterConfig::new().with_msp(M1, DomainId(1)),
    )
    .disk_model(DiskModel::zero())
    .service("noop", |_ctx, _| Ok(vec![]))
    .start(&net, Arc::clone(&d1) as Arc<dyn msp_wal::Disk>)
    .unwrap();
    let mut c = MspClient::new(&net, 1, ClientOptions::default());
    c.call(M1, "noop", &[]).unwrap();
    c.end_session(M1).unwrap();
    m1.shutdown();
    net.shutdown();
    assert_eq!(
        scan_kinds(&d1),
        vec!["RecoveryComplete", "RequestReceive", "SessionEnd"]
    );
}

#[test]
fn recovery_complete_and_announcements_reach_the_log() {
    let net: Network<Envelope> = Network::new(NetModel::zero(), 3);
    let (d1, d2) = (Arc::new(MemDisk::new()), Arc::new(MemDisk::new()));
    let build_m1 = |net: &Network<Envelope>| {
        MspBuilder::new(no_ckpt_cfg(M1), cluster())
            .disk_model(DiskModel::zero())
            .service("relay", |ctx, p| ctx.call(M2, "noop", p))
            .start(net, Arc::clone(&d1) as Arc<dyn msp_wal::Disk>)
            .unwrap()
    };
    let build_m2 = |net: &Network<Envelope>| {
        MspBuilder::new(no_ckpt_cfg(M2), cluster())
            .disk_model(DiskModel::zero())
            .service("noop", |_ctx, _| Ok(vec![]))
            .start(net, Arc::clone(&d2) as Arc<dyn msp_wal::Disk>)
            .unwrap()
    };
    let m1 = build_m1(&net);
    let m2 = build_m2(&net);
    let mut c = MspClient::new(&net, 1, ClientOptions::default());
    c.call(M1, "relay", &[]).unwrap();
    m2.crash();
    let m2 = build_m2(&net);
    // Give M1's infra thread a moment to log the broadcast.
    std::thread::sleep(Duration::from_millis(50));
    m1.shutdown();
    m2.shutdown();
    net.shutdown();

    // M2's own log ends with its RecoveryComplete marker.
    let kinds2 = scan_kinds(&d2);
    assert!(
        kinds2.iter().any(|k| k == "RecoveryComplete"),
        "M2 logs its epoch transition: {kinds2:?}"
    );
    // M1 logged (and flushed) the recovery announcement it received.
    let kinds1 = scan_kinds(&d1);
    assert!(
        kinds1.iter().any(|k| k == "RecoveryAnnouncement"),
        "M1 persists the broadcast knowledge: {kinds1:?}"
    );
}
