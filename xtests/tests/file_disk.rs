//! The full recovery stack over a real file-backed log: crash recovery
//! from an actual on-disk file rather than the simulated MemDisk.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use msp_core::client::ClientOptions;
use msp_core::{ClusterConfig, Envelope, MspBuilder, MspClient, MspConfig};
use msp_net::{NetModel, Network};
use msp_types::{DomainId, MspId};
use msp_wal::{DiskModel, FileDisk};

const M1: MspId = MspId(1);

fn log_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("msp-xtest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}.log"))
}

fn start(net: &Network<Envelope>, path: &Path) -> msp_core::MspHandle {
    let disk = Arc::new(FileDisk::open(path).unwrap());
    MspBuilder::new(
        MspConfig::new(M1, DomainId(1))
            .with_time_scale(0.0)
            .with_workers(2),
        ClusterConfig::new().with_msp(M1, DomainId(1)),
    )
    .disk_model(DiskModel::zero())
    .shared_var("sv", 0u64.to_le_bytes().to_vec())
    .service("tick", |ctx, _| {
        let n = ctx
            .get_session("n")
            .map(|v| u64::from_le_bytes(v.try_into().unwrap()))
            .unwrap_or(0)
            + 1;
        ctx.set_session("n", n.to_le_bytes().to_vec());
        let sv = u64::from_le_bytes(ctx.read_shared("sv")?[..8].try_into().unwrap()) + 1;
        ctx.write_shared("sv", sv.to_le_bytes().to_vec())?;
        Ok(n.to_le_bytes().to_vec())
    })
    .start(net, disk)
    .unwrap()
}

#[test]
fn crash_recovery_from_a_real_file() {
    let path = log_path("crash-recovery");
    let _ = std::fs::remove_file(&path);
    let net: Network<Envelope> = Network::new(NetModel::zero(), 77);
    let mut c = MspClient::new(&net, 1, ClientOptions::default());

    let msp = start(&net, &path);
    for i in 1..=12u64 {
        let r = c.call(M1, "tick", &[]).unwrap();
        assert_eq!(u64::from_le_bytes(r[..8].try_into().unwrap()), i);
    }
    msp.crash();

    // The log file on disk carries everything flushed before the crash.
    assert!(std::fs::metadata(&path).unwrap().len() > 0);

    let msp = start(&net, &path);
    for i in 13..=16u64 {
        let r = c.call(M1, "tick", &[]).unwrap();
        assert_eq!(
            u64::from_le_bytes(r[..8].try_into().unwrap()),
            i,
            "session counter continues exactly-once from the file-backed log"
        );
    }
    msp.shutdown();
    net.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn two_crashes_with_file_backed_log() {
    let path = log_path("double-crash");
    let _ = std::fs::remove_file(&path);
    let net: Network<Envelope> = Network::new(NetModel::zero(), 78);
    let mut c = MspClient::new(&net, 2, ClientOptions::default());

    let mut msp = start(&net, &path);
    let mut expected = 0u64;
    for round in 1..=2u32 {
        for _ in 0..5 {
            expected += 1;
            let r = c.call(M1, "tick", &[]).unwrap();
            assert_eq!(u64::from_le_bytes(r[..8].try_into().unwrap()), expected);
        }
        msp.crash();
        msp = start(&net, &path);
        assert_eq!(msp.epoch().0, round);
    }
    msp.shutdown();
    net.shutdown();
    let _ = std::fs::remove_file(&path);
}
