//! Three-MSP chains: transitive dependency vectors (paper Figure 5) and
//! cascading orphan recovery.
//!
//! Client → A → B → C, all in one service domain. A's session ends up
//! depending on *C* although it never talks to C directly — the DV is
//! transitive ("LSNs from all processes on which a sender depends are
//! sent with its message"). When C crashes and loses records, both B's
//! and A's sessions become orphans and must roll back; the end-to-end
//! counters must remain exactly-once.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use msp_core::client::ClientOptions;
use msp_core::{ClusterConfig, Envelope, MspBuilder, MspClient, MspConfig};
use msp_net::{NetModel, Network};
use msp_types::{DomainId, MspId};
use msp_wal::{DiskModel, MemDisk};
use parking_lot::Mutex;

const A: MspId = MspId(1);
const B: MspId = MspId(2);
const C: MspId = MspId(3);

fn cluster() -> ClusterConfig {
    ClusterConfig::new()
        .with_msp(A, DomainId(1))
        .with_msp(B, DomainId(1))
        .with_msp(C, DomainId(1))
}

fn cfg(id: MspId) -> MspConfig {
    let mut c = MspConfig::new(id, DomainId(1))
        .with_time_scale(0.0)
        .with_workers(4);
    c.rpc_timeout = Duration::from_millis(60);
    c
}

fn counter_body(ctx: &mut msp_core::ServiceContext<'_>, key: &str) -> u64 {
    let n = ctx
        .get_session(key)
        .map(|v| u64::from_le_bytes(v.try_into().unwrap()))
        .unwrap_or(0)
        + 1;
    ctx.set_session(key, n.to_le_bytes().to_vec());
    n
}

fn start_c(net: &Network<Envelope>, disk: Arc<MemDisk>) -> msp_core::MspHandle {
    MspBuilder::new(cfg(C), cluster())
        .disk_model(DiskModel::zero())
        .service("count", |ctx, _| {
            Ok(counter_body(ctx, "n").to_le_bytes().to_vec())
        })
        .start(net, disk)
        .unwrap()
}

/// B relays to C; a hook lets the test crash C right after B consumed
/// C's reply (the §5.4 orphan-generation recipe, one level deeper).
fn start_b(
    net: &Network<Envelope>,
    disk: Arc<MemDisk>,
    hook: Arc<dyn Fn() + Send + Sync>,
    hook_on_call: u64,
) -> msp_core::MspHandle {
    let calls = Arc::new(AtomicU64::new(0));
    MspBuilder::new(cfg(B), cluster())
        .disk_model(DiskModel::zero())
        .service("relay", move |ctx, payload| {
            let theirs = ctx.call(C, "count", payload)?;
            if !ctx.is_replaying() {
                let n = calls.fetch_add(1, Ordering::Relaxed) + 1;
                if hook_on_call > 0 && n == hook_on_call {
                    hook();
                }
            }
            let mine = counter_body(ctx, "n");
            let mut out = mine.to_le_bytes().to_vec();
            out.extend_from_slice(&theirs);
            Ok(out)
        })
        .start(net, disk)
        .unwrap()
}

fn start_a(net: &Network<Envelope>, disk: Arc<MemDisk>) -> msp_core::MspHandle {
    MspBuilder::new(cfg(A), cluster())
        .disk_model(DiskModel::zero())
        .service("relay", move |ctx, payload| {
            let theirs = ctx.call(B, "relay", payload)?;
            let mine = counter_body(ctx, "n");
            let mut out = mine.to_le_bytes().to_vec();
            out.extend_from_slice(&theirs);
            Ok(out)
        })
        .start(net, disk)
        .unwrap()
}

fn u64_at(v: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(v[off..off + 8].try_into().unwrap())
}

#[test]
fn transitive_dv_reaches_the_indirect_dependency() {
    let net: Network<Envelope> = Network::new(NetModel::zero(), 5);
    let (da, db, dc) = (
        Arc::new(MemDisk::new()),
        Arc::new(MemDisk::new()),
        Arc::new(MemDisk::new()),
    );
    let a = start_a(&net, Arc::clone(&da));
    let b = start_b(&net, Arc::clone(&db), Arc::new(|| {}), 0);
    let c = start_c(&net, Arc::clone(&dc));
    let mut client = MspClient::new(&net, 1, ClientOptions::default());
    let r = client.call(A, "relay", &[]).unwrap();
    assert_eq!((u64_at(&r, 0), u64_at(&r, 8), u64_at(&r, 16)), (1, 1, 1));

    // A's session must (transitively) depend on C: find the client
    // session at A and inspect its DV.
    let session = client.session_with(A).unwrap();
    let dv = a.session_dv(session).unwrap();
    assert!(dv.get(B).is_some(), "direct dependency on B");
    assert!(
        dv.get(C).is_some(),
        "transitive dependency on C via B's reply"
    );

    a.shutdown();
    b.shutdown();
    c.shutdown();
    net.shutdown();
}

#[test]
fn cascading_orphan_recovery_stays_exactly_once() {
    let net: Network<Envelope> = Network::new(NetModel::zero(), 6);
    let (da, db, dc) = (
        Arc::new(MemDisk::new()),
        Arc::new(MemDisk::new()),
        Arc::new(MemDisk::new()),
    );
    // The hook crashes C and restarts it, from a controller thread.
    let c_slot: Arc<Mutex<Option<msp_core::MspHandle>>> = Arc::new(Mutex::new(None));
    let (tx, rx) = crossbeam_channel::bounded::<()>(1);
    let controller = {
        let c_slot = Arc::clone(&c_slot);
        let net = net.clone();
        let dc = Arc::clone(&dc);
        std::thread::spawn(move || {
            while rx.recv().is_ok() {
                if let Some(h) = c_slot.lock().take() {
                    h.crash();
                }
                *c_slot.lock() = Some(start_c(&net, Arc::clone(&dc)));
            }
        })
    };

    let a = start_a(&net, Arc::clone(&da));
    let hook = Arc::new(move || {
        let _ = tx.try_send(());
    });
    // Crash C right after B consumes its 4th reply, while nothing that
    // backs it has been flushed.
    let b = start_b(&net, Arc::clone(&db), hook, 4);
    *c_slot.lock() = Some(start_c(&net, Arc::clone(&dc)));

    let mut client = MspClient::new(
        &net,
        1,
        ClientOptions {
            resend_timeout: Duration::from_millis(80),
            busy_backoff: Duration::from_millis(1),
            max_attempts: 100_000,
        },
    );
    for i in 1..=10u64 {
        let r = client.call(A, "relay", &[]).unwrap();
        assert_eq!(
            (u64_at(&r, 0), u64_at(&r, 8), u64_at(&r, 16)),
            (i, i, i),
            "all three counters stay in lock-step across C's crash"
        );
    }

    drop(controller); // detach; channel sender dropped with `b`'s hook later
    a.shutdown();
    b.shutdown();
    if let Some(h) = c_slot.lock().take() {
        h.shutdown();
    }
    net.shutdown();
}
