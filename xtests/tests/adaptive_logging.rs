//! The adaptive value/operation logging diet must be invisible except in
//! log bytes: a shared-variable RMW routed through a registered shared op
//! produces the same state whether the tracker logged it as a compact
//! `SharedOp` record or as the value pair — across crashes, recoveries,
//! chain-limit switchbacks, and cross-session contention.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use msp_core::client::ClientOptions;
use msp_core::config::LoggingConfig;
use msp_core::{ClusterConfig, Envelope, MspBuilder, MspClient, MspConfig};
use msp_harness::{run_torture, SystemConfig, TortureOptions, WorkloadShape};
use msp_net::{NetModel, Network};
use msp_types::{DomainId, MspId};
use msp_wal::{DiskModel, MemDisk};

const SERVER: MspId = MspId(1);

/// Solo MSP whose `tick` method advances a per-session counter and
/// applies the registered `add` op to a 128-byte shared counter; the
/// reply is the session counter (the shared value is checked through
/// `dump_shared`, since op-mode replay never materializes it
/// per-session).
fn start_server(
    net: &Network<Envelope>,
    disk: Arc<MemDisk>,
    adaptive: bool,
) -> msp_core::MspHandle {
    let cluster = ClusterConfig::new().with_msp(SERVER, DomainId(1));
    let logging = LoggingConfig {
        session_ckpt_threshold: 600,
        shared_ckpt_writes: 9, // shared checkpoints break op chains too
        msp_ckpt_interval: Duration::from_millis(10),
        force_ckpt_after: 3,
        checkpoints_enabled: true,
        checkpoint_interval_bytes: 0,
    };
    MspBuilder::new(
        MspConfig::new(SERVER, DomainId(1))
            .with_time_scale(0.0)
            .with_logging(logging)
            .with_workers(3)
            .with_adaptive_logging(adaptive),
        cluster,
    )
    .disk_model(DiskModel::zero())
    .shared_var("total", vec![0u8; 128])
    .shared_op("add", |old, args| {
        let n = u64::from_le_bytes(old[..8].try_into().unwrap())
            + u64::from(args.first().copied().unwrap_or(1));
        let mut v = vec![0u8; 128];
        v[..8].copy_from_slice(&n.to_le_bytes());
        v
    })
    .service("tick", |ctx, payload| {
        let mine = ctx
            .get_session("n")
            .map(|v| u64::from_le_bytes(v.try_into().unwrap()))
            .unwrap_or(0)
            + 1;
        ctx.set_session("n", mine.to_le_bytes().to_vec());
        ctx.apply_shared("total", "add", payload)?;
        Ok(mine.to_le_bytes().to_vec())
    })
    .start(net, disk)
    .unwrap()
}

fn shared_total(handle: &msp_core::MspHandle) -> u64 {
    let shared = handle.dump_shared();
    u64::from_le_bytes(shared[0][..8].try_into().unwrap())
}

/// Drive `requests` ticks (each adding `add_arg`) through crashes at the
/// given points under one diet; return the final shared total.
fn drive(
    adaptive: bool,
    requests: u64,
    add_arg: u8,
    crash_after: &std::collections::BTreeSet<u64>,
    seed: u64,
) -> u64 {
    let net: Network<Envelope> = Network::new(NetModel::zero(), seed);
    let disk = Arc::new(MemDisk::new());
    let mut server = Some(start_server(&net, Arc::clone(&disk), adaptive));
    let mut client = MspClient::new(
        &net,
        1,
        ClientOptions {
            resend_timeout: Duration::from_millis(60),
            busy_backoff: Duration::from_millis(1),
            max_attempts: 100_000,
        },
    );
    for i in 1..=requests {
        let r = client.call(SERVER, "tick", &[add_arg]).unwrap();
        assert_eq!(
            u64::from_le_bytes(r[..8].try_into().unwrap()),
            i,
            "session counter at request {i} (adaptive={adaptive})"
        );
        if crash_after.contains(&i) {
            server.take().unwrap().crash();
            server = Some(start_server(&net, Arc::clone(&disk), adaptive));
        }
    }
    let total = shared_total(server.as_ref().unwrap());
    server.take().unwrap().shutdown();
    net.shutdown();
    total
}

/// Long chains on one session cross `OP_CHAIN_LIMIT` (32), forcing the
/// diet back to a value record mid-run; crashes on both sides of the
/// switch must still recover exactly-once, and the op-logged world must
/// agree with the value-logged one.
#[test]
fn op_chain_limit_switchback_survives_crashes() {
    let crash_after: std::collections::BTreeSet<u64> = [10, 30, 35, 40].into_iter().collect();
    let on = drive(true, 48, 3, &crash_after, 90);
    let off = drive(false, 48, 3, &crash_after, 91);
    assert_eq!(on, 48 * 3, "adaptive diet lost or duplicated an op");
    assert_eq!(on, off, "op-logged total diverged from value-logged");
}

/// Two sessions ping-ponging on the variable trip the contention
/// switchback (the tracker reverts to value pairs); crashes interleaved
/// with the ping-pong must still be exactly-once.
#[test]
fn contended_variable_survives_crashes_under_the_diet() {
    let net: Network<Envelope> = Network::new(NetModel::zero(), 92);
    let disk = Arc::new(MemDisk::new());
    let mut server = Some(start_server(&net, Arc::clone(&disk), true));
    let opts = ClientOptions {
        resend_timeout: Duration::from_millis(60),
        busy_backoff: Duration::from_millis(1),
        max_attempts: 100_000,
    };
    let mut a = MspClient::new(&net, 1, opts.clone());
    let mut b = MspClient::new(&net, 2, opts);
    for i in 1..=20u64 {
        assert_eq!(
            u64::from_le_bytes(
                a.call(SERVER, "tick", &[1]).unwrap()[..8]
                    .try_into()
                    .unwrap()
            ),
            i
        );
        assert_eq!(
            u64::from_le_bytes(
                b.call(SERVER, "tick", &[1]).unwrap()[..8]
                    .try_into()
                    .unwrap()
            ),
            i
        );
        if i % 6 == 0 {
            server.take().unwrap().crash();
            server = Some(start_server(&net, Arc::clone(&disk), true));
        }
    }
    assert_eq!(shared_total(server.as_ref().unwrap()), 40);
    server.take().unwrap().shutdown();
    net.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10,
        .. ProptestConfig::default()
    })]

    /// For *any* crash schedule and op argument, the op-logged execution
    /// and the value-logged execution of the same RMW sequence land on
    /// the same exactly-once total.
    #[test]
    fn op_log_and_value_log_rmw_are_equivalent(
        crash_after in proptest::collection::btree_set(1u64..40, 0..5),
        add_arg in 1u8..9,
        seed in 0u64..1_000,
    ) {
        let on = drive(true, 40, add_arg, &crash_after, seed);
        let off = drive(false, 40, add_arg, &crash_after, seed.wrapping_add(7));
        prop_assert_eq!(on, 40 * u64::from(add_arg), "adaptive diet violated exactly-once");
        prop_assert_eq!(on, off, "diets diverged");
    }
}

/// Pinned-seed adaptive-ops crash storms on both log-based
/// configurations: the full §5.2 workload routed through shared ops,
/// under the same schedules the Default shape draws, holding the
/// three-layer exactly-once oracle.
#[test]
fn adaptive_ops_storms_hold_exactly_once() {
    for config in [SystemConfig::LoOptimistic, SystemConfig::Pessimistic] {
        for seed in [1u64, 5] {
            let mut opts = TortureOptions::new(seed, config);
            opts.shape = WorkloadShape::AdaptiveOps;
            opts.requests_per_client = 8;
            opts.settle_timeout = Duration::from_secs(90);
            let report = run_torture(&opts).unwrap_or_else(|msg| {
                panic!(
                    "adaptive-ops torture seed={seed} config={}: {msg}",
                    config.name()
                )
            });
            assert!(report.requests > 0, "storm drove no traffic: {report}");
            assert!(
                report.crashes > 0,
                "log-based storm injected no crashes: {report}"
            );
        }
    }
}
