//! Quickstart: a recoverable middleware server in ~60 lines.
//!
//! Builds one MSP with a session-scoped counter and a shared greeting,
//! drives a few requests, crashes the server, restarts it over the same
//! disk, and shows that both the private session state and the shared
//! state survive — with the client none the wiser.
//!
//! ```text
//! cargo run -p msp-harness --example quickstart
//! ```

use std::sync::Arc;

use msp_core::client::ClientOptions;
use msp_core::{ClusterConfig, Envelope, MspBuilder, MspClient, MspConfig};
use msp_net::{NetModel, Network};
use msp_types::{DomainId, MspId};
use msp_wal::{DiskModel, MemDisk};

const SERVER: MspId = MspId(1);

fn build_server(net: &Network<Envelope>, disk: Arc<MemDisk>) -> msp_core::MspHandle {
    let cluster = ClusterConfig::new().with_msp(SERVER, DomainId(1));
    MspBuilder::new(
        MspConfig::new(SERVER, DomainId(1)).with_time_scale(0.0),
        cluster,
    )
    .disk_model(DiskModel::zero())
    .shared_var("greeting", b"hello".to_vec())
    // A service method sees its session state, the shared state, and
    // outgoing calls — and must be deterministic. That's the whole
    // contract; recovery is transparent.
    .service("visit", |ctx, name| {
        let visits = ctx
            .get_session("visits")
            .map(|v| u64::from_le_bytes(v.try_into().unwrap()))
            .unwrap_or(0)
            + 1;
        ctx.set_session("visits", visits.to_le_bytes().to_vec());
        let greeting = ctx.read_shared("greeting")?;
        Ok(format!(
            "{} {} (visit #{visits})",
            String::from_utf8_lossy(&greeting),
            String::from_utf8_lossy(name),
        )
        .into_bytes())
    })
    .service("set_greeting", |ctx, g| {
        ctx.write_shared("greeting", g.to_vec())?;
        Ok(Vec::new())
    })
    .start(net, disk)
    .expect("start server")
}

fn main() {
    let net: Network<Envelope> = Network::new(NetModel::zero(), 7);
    let disk = Arc::new(MemDisk::new());

    let server = build_server(&net, Arc::clone(&disk));
    let mut client = MspClient::new(&net, 1, ClientOptions::default());

    let say = |c: &mut MspClient, method: &str, arg: &[u8]| {
        String::from_utf8_lossy(&c.call(SERVER, method, arg).expect("call")).into_owned()
    };

    println!("{}", say(&mut client, "visit", b"ada"));
    println!("{}", say(&mut client, "visit", b"ada"));
    say(&mut client, "set_greeting", b"bonjour");
    println!("{}", say(&mut client, "visit", b"ada"));

    println!("--- crash! (buffered state lost, disk survives) ---");
    server.crash();
    let server = build_server(&net, disk);

    // Same client, same session: the visit counter and the shared
    // greeting both recovered from the log.
    println!("{}", say(&mut client, "visit", b"ada"));
    assert!(say(&mut client, "visit", b"ada").contains("visit #5"));
    println!("exactly-once: 5 visits counted across the crash");

    server.shutdown();
    net.shutdown();
}
