//! An e-commerce front end with a cached catalog — the scenario the
//! paper's introduction motivates.
//!
//! * `storefront` (MSP 1) keeps each customer's **cart in session state**
//!   and a **cached product catalog in shared state** ("an MSP program
//!   can now cache shared state retrieved from a database, enabling later
//!   requests to have speedy access to it", §1.3).
//! * `inventory` (MSP 2) owns stock counts in shared state and decrements
//!   them at checkout.
//!
//! Both MSPs live in one service domain (locally optimistic logging). The
//! inventory server is crashed in the middle of the run; exactly-once
//! execution guarantees no item is ever sold twice and no cart loses an
//! entry.
//!
//! ```text
//! cargo run -p msp-harness --example shopping_cart
//! ```

use std::sync::Arc;

use msp_core::client::ClientOptions;
use msp_core::{ClusterConfig, Envelope, MspBuilder, MspClient, MspConfig};
use msp_net::{NetModel, Network};
use msp_types::{DomainId, MspId};
use msp_wal::{DiskModel, MemDisk};

const STOREFRONT: MspId = MspId(1);
const INVENTORY: MspId = MspId(2);
const DOMAIN: DomainId = DomainId(1);

fn cluster() -> ClusterConfig {
    ClusterConfig::new()
        .with_msp(STOREFRONT, DOMAIN)
        .with_msp(INVENTORY, DOMAIN)
}

fn start_storefront(net: &Network<Envelope>, disk: Arc<MemDisk>) -> msp_core::MspHandle {
    MspBuilder::new(
        MspConfig::new(STOREFRONT, DOMAIN).with_time_scale(0.0),
        cluster(),
    )
    .disk_model(DiskModel::zero())
    // The cached catalog: shared state, read by every session.
    .shared_var("catalog", b"apples:3;pears:2".to_vec())
    .service("browse", |ctx, _| ctx.read_shared("catalog"))
    .service("add_to_cart", |ctx, item| {
        let mut cart = ctx.get_session("cart").unwrap_or_default();
        if !cart.is_empty() {
            cart.push(b',');
        }
        cart.extend_from_slice(item);
        ctx.set_session("cart", cart.clone());
        Ok(cart)
    })
    .service("checkout", |ctx, _| {
        let cart = ctx.get_session("cart").unwrap_or_default();
        if cart.is_empty() {
            return Err("cart is empty".into());
        }
        // One reservation call per item; each is exactly-once even if
        // the inventory server crashes mid-checkout.
        let mut receipt = Vec::new();
        for item in cart.split(|&b| b == b',') {
            let line = ctx.call(INVENTORY, "reserve", item)?;
            if !receipt.is_empty() {
                receipt.push(b';');
            }
            receipt.extend_from_slice(&line);
        }
        ctx.set_session("cart", Vec::new());
        Ok(receipt)
    })
    .start(net, disk)
    .expect("start storefront")
}

fn start_inventory(net: &Network<Envelope>, disk: Arc<MemDisk>) -> msp_core::MspHandle {
    MspBuilder::new(
        MspConfig::new(INVENTORY, DOMAIN).with_time_scale(0.0),
        cluster(),
    )
    .disk_model(DiskModel::zero())
    .shared_var("stock:apples", 3u64.to_le_bytes().to_vec())
    .shared_var("stock:pears", 2u64.to_le_bytes().to_vec())
    .service("reserve", |ctx, item| {
        let var = format!("stock:{}", String::from_utf8_lossy(item));
        let raw = ctx.read_shared(&var)?;
        let left = u64::from_le_bytes(raw[..8].try_into().unwrap());
        if left == 0 {
            return Err(format!("{} sold out", String::from_utf8_lossy(item)));
        }
        ctx.write_shared(&var, (left - 1).to_le_bytes().to_vec())?;
        Ok(format!("{}#{}", String::from_utf8_lossy(item), left).into_bytes())
    })
    .service("stock_report", |ctx, _| {
        let apples = u64::from_le_bytes(ctx.read_shared("stock:apples")?[..8].try_into().unwrap());
        let pears = u64::from_le_bytes(ctx.read_shared("stock:pears")?[..8].try_into().unwrap());
        Ok(format!("apples={apples} pears={pears}").into_bytes())
    })
    .start(net, disk)
    .expect("start inventory")
}

fn main() {
    let net: Network<Envelope> = Network::new(NetModel::zero(), 11);
    let store_disk = Arc::new(MemDisk::new());
    let inv_disk = Arc::new(MemDisk::new());

    let storefront = start_storefront(&net, Arc::clone(&store_disk));
    let inventory = start_inventory(&net, Arc::clone(&inv_disk));

    let mut alice = MspClient::new(&net, 1, ClientOptions::default());
    let mut bob = MspClient::new(&net, 2, ClientOptions::default());

    let s = |v: Vec<u8>| String::from_utf8_lossy(&v).into_owned();

    println!(
        "catalog: {}",
        s(alice.call(STOREFRONT, "browse", &[]).unwrap())
    );
    alice.call(STOREFRONT, "add_to_cart", b"apples").unwrap();
    alice.call(STOREFRONT, "add_to_cart", b"pears").unwrap();
    bob.call(STOREFRONT, "add_to_cart", b"apples").unwrap();

    println!(
        "alice checks out: {}",
        s(alice.call(STOREFRONT, "checkout", &[]).unwrap())
    );

    println!("--- inventory server crashes and recovers ---");
    inventory.crash();
    let inventory = start_inventory(&net, inv_disk);

    // Bob's checkout happens against the *recovered* stock counts.
    println!(
        "bob checks out:   {}",
        s(bob.call(STOREFRONT, "checkout", &[]).unwrap())
    );
    let report = s(bob.call(INVENTORY, "stock_report", &[]).unwrap());
    println!("final stock:      {report}");
    assert_eq!(report, "apples=1 pears=1", "no double-sell, no lost sale");

    storefront.shutdown();
    inventory.shutdown();
    net.shutdown();
}
