//! A three-MSP travel-booking workflow with cross-domain interaction.
//!
//! * `booking` (MSP 1) orchestrates: for each trip it reserves a flight
//!   at `flights` (MSP 2) and a room at `hotels` (MSP 3).
//! * `booking` and `flights` share a service domain (fast, reliable link
//!   → locally optimistic logging between them); `hotels` belongs to a
//!   different provider in its own domain, so every message to it crosses
//!   a pessimistic boundary and forces a distributed log flush first.
//!
//! The run crashes the *flights* server between bookings; recovery
//! independence means the hotels domain never rolls back, while the
//! booking session's orphan recovery re-executes exactly what was lost.
//!
//! ```text
//! cargo run -p msp-harness --example travel_booking
//! ```

use std::sync::Arc;

use msp_core::client::ClientOptions;
use msp_core::{ClusterConfig, Envelope, MspBuilder, MspClient, MspConfig};
use msp_net::{NetModel, Network};
use msp_types::{DomainId, MspId};
use msp_wal::{DiskModel, MemDisk};

const BOOKING: MspId = MspId(1);
const FLIGHTS: MspId = MspId(2);
const HOTELS: MspId = MspId(3);

fn cluster() -> ClusterConfig {
    ClusterConfig::new()
        .with_msp(BOOKING, DomainId(1))
        .with_msp(FLIGHTS, DomainId(1)) // same domain as booking
        .with_msp(HOTELS, DomainId(2)) // separate provider
}

fn seat_counter(name: &'static str, start: u64) -> (String, Vec<u8>) {
    (name.to_string(), start.to_le_bytes().to_vec())
}

fn start_reserver(
    net: &Network<Envelope>,
    disk: Arc<MemDisk>,
    id: MspId,
    domain: DomainId,
    resource: &'static str,
    capacity: u64,
) -> msp_core::MspHandle {
    let (var, init) = seat_counter(resource, capacity);
    MspBuilder::new(MspConfig::new(id, domain).with_time_scale(0.0), cluster())
        .disk_model(DiskModel::zero())
        .shared_var(&var, init)
        .service("reserve", move |ctx, who| {
            let raw = ctx.read_shared(resource)?;
            let left = u64::from_le_bytes(raw[..8].try_into().unwrap());
            if left == 0 {
                return Err(format!("{resource}: none left"));
            }
            ctx.write_shared(resource, (left - 1).to_le_bytes().to_vec())?;
            Ok(format!("{resource}-{left}-for-{}", String::from_utf8_lossy(who)).into_bytes())
        })
        .service("remaining", move |ctx, _| {
            let raw = ctx.read_shared(resource)?;
            Ok(raw[..8].to_vec())
        })
        .start(net, disk)
        .expect("start reserver")
}

fn start_booking(net: &Network<Envelope>, disk: Arc<MemDisk>) -> msp_core::MspHandle {
    MspBuilder::new(
        MspConfig::new(BOOKING, DomainId(1)).with_time_scale(0.0),
        cluster(),
    )
    .disk_model(DiskModel::zero())
    .service("book_trip", |ctx, who| {
        // One flight (intra-domain call: optimistic, DV attached)...
        let flight = ctx.call(FLIGHTS, "reserve", who)?;
        // ...and one hotel night (cross-domain call: distributed log
        // flush *before* the request leaves the domain).
        let room = ctx.call(HOTELS, "reserve", who)?;
        let trips = ctx
            .get_session("trips")
            .map(|v| u64::from_le_bytes(v.try_into().unwrap()))
            .unwrap_or(0)
            + 1;
        ctx.set_session("trips", trips.to_le_bytes().to_vec());
        Ok(format!(
            "trip#{trips}: {} + {}",
            String::from_utf8_lossy(&flight),
            String::from_utf8_lossy(&room)
        )
        .into_bytes())
    })
    .service("trips_booked", |ctx, _| {
        Ok(ctx
            .get_session("trips")
            .unwrap_or_else(|| 0u64.to_le_bytes().to_vec()))
    })
    .start(net, disk)
    .expect("start booking")
}

fn main() {
    let net: Network<Envelope> = Network::new(NetModel::zero(), 23);
    let (bd, fd, hd) = (
        Arc::new(MemDisk::new()),
        Arc::new(MemDisk::new()),
        Arc::new(MemDisk::new()),
    );

    let booking = start_booking(&net, Arc::clone(&bd));
    let flights = start_reserver(&net, Arc::clone(&fd), FLIGHTS, DomainId(1), "seats", 10);
    let hotels = start_reserver(&net, Arc::clone(&hd), HOTELS, DomainId(2), "rooms", 10);

    let mut traveller = MspClient::new(&net, 1, ClientOptions::default());
    let s = |v: Vec<u8>| String::from_utf8_lossy(&v).into_owned();

    for _ in 0..3 {
        println!(
            "{}",
            s(traveller.call(BOOKING, "book_trip", b"ada").unwrap())
        );
    }

    println!("--- flights server crashes (same domain as booking) ---");
    flights.crash();
    let flights = start_reserver(&net, fd, FLIGHTS, DomainId(1), "seats", 10);

    for _ in 0..2 {
        println!(
            "{}",
            s(traveller.call(BOOKING, "book_trip", b"ada").unwrap())
        );
    }

    let trips = traveller.call(BOOKING, "trips_booked", &[]).unwrap();
    let seats = traveller.call(FLIGHTS, "remaining", &[]).unwrap();
    let rooms = traveller.call(HOTELS, "remaining", &[]).unwrap();
    let (trips, seats, rooms) = (
        u64::from_le_bytes(trips[..8].try_into().unwrap()),
        u64::from_le_bytes(seats[..8].try_into().unwrap()),
        u64::from_le_bytes(rooms[..8].try_into().unwrap()),
    );
    println!("summary: {trips} trips, {seats} seats left, {rooms} rooms left");
    assert_eq!(trips, 5);
    assert_eq!(
        seats, 5,
        "every flight reservation exactly once across the crash"
    );
    assert_eq!(rooms, 5, "the independent hotels domain never rolled back");

    booking.shutdown();
    flights.shutdown();
    hotels.shutdown();
    net.shutdown();
}
