//! Run the paper's §5.1 workload (Figure 13) once and print what the
//! logging layer actually did — the per-request flush counts behind the
//! locally-optimistic-vs-pessimistic comparison.
//!
//! ```text
//! cargo run --release -p msp-harness --example paper_workload -- [requests] [scale]
//! ```

use msp_harness::workload::{reply_counter, request_payload, MSP1};
use msp_harness::{SystemConfig, World, WorldOptions};

fn main() {
    let mut args = std::env::args().skip(1);
    let requests: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(200);
    let scale: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.1);

    for config in [SystemConfig::LoOptimistic, SystemConfig::Pessimistic] {
        let opts = WorldOptions {
            time_scale: scale,
            ..WorldOptions::new(config)
        };
        let world = World::start(opts);
        let mut client = world.client(1);

        let series = world.run_requests(&mut client, requests, 1);
        let summary = series.summary();

        // Exactly-once sanity: the session counter equals the request count.
        let last = client
            .call(MSP1, "ServiceMethod1", &request_payload(1))
            .unwrap();
        assert_eq!(reply_counter(&last), requests + 1);

        let log1 = world.msp1.log_stats().expect("log-based");
        let log2 = world.msp2.stats().expect("msp2 alive");
        println!("== {} ({requests} requests, scale {scale})", config.name());
        println!(
            "   avg RT {:.2} paper-ms   max {:.2}   throughput {:.1} paper-req/s",
            summary.avg_ms_paper(scale),
            summary.max_ms_paper(scale),
            summary.throughput_paper(scale),
        );
        println!(
            "   MSP1 log: {} flushes ({:.2}/request), {} sectors, {} bytes appended, {} wasted",
            log1.flushes,
            log1.flushes as f64 / requests as f64,
            log1.flushed_sectors,
            log1.appended_bytes,
            log1.padded_bytes,
        );
        let rt1 = world.msp1.stats().expect("MSP1 is up");
        println!(
            "   MSP1 runtime: {} requests, {} distributed flushes, {} session ckpts, {} MSP ckpts",
            rt1.requests, rt1.distributed_flushes, rt1.session_checkpoints, rt1.msp_checkpoints,
        );
        println!(
            "   MSP2 runtime: {} requests, {} flush requests served",
            log2.requests, log2.flush_requests_served,
        );
        world.shutdown();
    }
}
