//! Property-based tests for the foundation types: the dependency-vector
//! lattice laws, the orphan rule, and codec roundtrips.

use proptest::prelude::*;

use msp_types::codec::roundtrip;
use msp_types::{DependencyVector, Epoch, Lsn, MspId, RecoveryKnowledge, RecoveryRecord, StateId};

fn arb_state() -> impl Strategy<Value = StateId> {
    (0u32..4, 0u64..1_000).prop_map(|(e, l)| StateId::new(Epoch(e), Lsn(l)))
}

fn arb_dv() -> impl Strategy<Value = DependencyVector> {
    proptest::collection::vec((0u32..6, arb_state()), 0..8).prop_map(|pairs| {
        DependencyVector::from_entries(pairs.into_iter().map(|(m, s)| (MspId(m), s)))
    })
}

fn arb_knowledge() -> impl Strategy<Value = RecoveryKnowledge> {
    proptest::collection::vec((0u32..6, 1u32..5, 0u64..1_000), 0..10).prop_map(|recs| {
        let mut k = RecoveryKnowledge::new();
        for (m, e, l) in recs {
            k.record(RecoveryRecord {
                msp: MspId(m),
                new_epoch: Epoch(e),
                recovered_lsn: Lsn(l),
            });
        }
        k
    })
}

proptest! {
    /// Merge is commutative: a ⊔ b == b ⊔ a.
    #[test]
    fn dv_merge_commutative(a in arb_dv(), b in arb_dv()) {
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        prop_assert_eq!(ab, ba);
    }

    /// Merge is associative: (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c).
    #[test]
    fn dv_merge_associative(a in arb_dv(), b in arb_dv(), c in arb_dv()) {
        let mut left = a.clone();
        left.merge_from(&b);
        left.merge_from(&c);
        let mut bc = b.clone();
        bc.merge_from(&c);
        let mut right = a.clone();
        right.merge_from(&bc);
        prop_assert_eq!(left, right);
    }

    /// Merge is idempotent: a ⊔ a == a.
    #[test]
    fn dv_merge_idempotent(a in arb_dv()) {
        let mut aa = a.clone();
        aa.merge_from(&a);
        prop_assert_eq!(aa, a);
    }

    /// The merge result dominates both inputs.
    #[test]
    fn dv_merge_dominates_inputs(a in arb_dv(), b in arb_dv()) {
        let mut m = a.clone();
        m.merge_from(&b);
        prop_assert!(a.dominated_by(&m));
        prop_assert!(b.dominated_by(&m));
    }

    /// DVs roundtrip through the binary codec.
    #[test]
    fn dv_codec_roundtrip(a in arb_dv()) {
        prop_assert_eq!(roundtrip(&a).unwrap(), a);
    }

    /// Knowledge tables roundtrip through the binary codec.
    #[test]
    fn knowledge_codec_roundtrip(k in arb_knowledge()) {
        prop_assert_eq!(roundtrip(&k).unwrap(), k);
    }

    /// Orphanhood is monotone in the dependency's LSN: if (e, l) is clean,
    /// any (e, l') with l' <= l is clean too.
    #[test]
    fn orphan_monotone_in_lsn(k in arb_knowledge(), e in 0u32..4, l in 0u64..1_000) {
        let msp = MspId(0);
        if !k.is_orphan_dep(msp, StateId::new(Epoch(e), Lsn(l))) {
            for smaller in [0, l / 2, l.saturating_sub(1)] {
                prop_assert!(!k.is_orphan_dep(msp, StateId::new(Epoch(e), Lsn(smaller))));
            }
        }
    }

    /// Learning more recovery records can only turn clean states into
    /// orphans, never the reverse.
    #[test]
    fn orphan_monotone_in_knowledge(
        k in arb_knowledge(),
        extra in (0u32..6, 1u32..5, 0u64..1_000),
        s in arb_state(),
        m in 0u32..6,
    ) {
        let msp = MspId(m);
        let before = k.is_orphan_dep(msp, s);
        let mut k2 = k.clone();
        k2.record(RecoveryRecord {
            msp: MspId(extra.0),
            new_epoch: Epoch(extra.1),
            recovered_lsn: Lsn(extra.2),
        });
        if before {
            prop_assert!(k2.is_orphan_dep(msp, s));
        }
    }

    /// A whole-vector orphan verdict is exactly the disjunction of its
    /// entries' verdicts — `is_orphan` hides no extra state.
    #[test]
    fn dv_orphan_is_entrywise_disjunction(k in arb_knowledge(), a in arb_dv()) {
        let owner = MspId(99); // not in the generated id range
        let expected = a.iter().any(|(m, s)| k.is_orphan_dep(m, s));
        prop_assert_eq!(k.is_orphan(&a, owner), expected);
    }

    /// Merging can MASK orphanhood: if `b` carries a newer-epoch entry
    /// for the same MSP, the item-wise max replaces the doomed entry and
    /// the merged vector looks clean. This is why the protocol must check
    /// a session's own DV at every interception point BEFORE absorbing a
    /// message (§4.1) — the check-then-merge discipline in `msp-core`.
    /// The property documents the hazard: whenever the merge of an orphan
    /// `a` is clean, `b` must have dominated every orphaned entry.
    #[test]
    fn dv_merge_masking_requires_domination(
        k in arb_knowledge(),
        a in arb_dv(),
        b in arb_dv(),
    ) {
        let owner = MspId(99);
        if k.is_orphan(&a, owner) {
            let mut m = a.clone();
            m.merge_from(&b);
            if !k.is_orphan(&m, owner) {
                for (msp, s) in a.iter() {
                    if k.is_orphan_dep(msp, s) {
                        let masked = b.get(msp);
                        prop_assert!(
                            masked.is_some_and(|bs| bs > s),
                            "clean merge must dominate orphan entry {msp}:{s}"
                        );
                    }
                }
            }
        }
    }
}
