//! Identifier newtypes for the distributed system's units.
//!
//! The paper distinguishes *crash units* (MSPs) from *recovery units*
//! (sessions and shared variables): a session never crashes by itself, only
//! as part of its MSP, but it recovers independently (§3.2).

use std::fmt;

use crate::codec::{Decode, Encode};
use crate::error::CodecError;

/// Identifier of a Middleware Server Process — the paper's *crash unit*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MspId(pub u32);

/// Identifier of a *service domain*: a set of tightly associated MSPs with
/// fast, reliable communication among them (§1.3). Domains are disjoint and
/// end clients are outside every domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId(pub u32);

/// Identifier of a client session at an MSP — the paper's *recovery unit*.
///
/// Session ids are chosen by the client when it starts the session and are
/// globally unique, so a session survives (is re-identified across) both
/// client resends and MSP crash recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

/// Index of a shared variable in an MSP's shared-state registry.
///
/// The paper observes that the number of shared variables is limited, which
/// is why per-variable locks (no lock table) are affordable (§3.3); a dense
/// index keeps the registry a flat vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

/// Request sequence number used to detect duplicate and out-of-order
/// messages over a session (§3.1). The client keeps the *next available*
/// number, the MSP the *next expected* one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestSeq(pub u64);

impl RequestSeq {
    /// The first sequence number of a fresh session.
    pub const FIRST: RequestSeq = RequestSeq(0);

    /// The sequence number following this one.
    #[must_use]
    pub fn next(self) -> RequestSeq {
        RequestSeq(self.0 + 1)
    }
}

/// Log sequence number: a byte offset into an MSP's physical log.
///
/// LSNs are monotone over the whole life of the log, across crashes: after
/// recovery the MSP keeps appending to the same physical log, so a state
/// number from an earlier epoch is still a valid position.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lsn(pub u64);

impl Lsn {
    /// Smallest possible LSN (start of the log's record area).
    pub const ZERO: Lsn = Lsn(0);
    /// Sentinel for "no LSN" (e.g. the back-pointer of the first write of a
    /// shared variable, which has no predecessor).
    pub const NULL: Lsn = Lsn(u64::MAX);

    /// Whether this is the [`Lsn::NULL`] sentinel.
    pub fn is_null(self) -> bool {
        self == Lsn::NULL
    }
}

/// Epoch number: identifies a failure-free period of an MSP's execution and
/// is incremented by each crash recovery (§3.1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Epoch(pub u32);

impl Epoch {
    /// The epoch of an MSP that has never crashed.
    pub const INITIAL: Epoch = Epoch(0);

    /// The epoch entered by the next crash recovery.
    #[must_use]
    pub fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }
}

/// A process *state identifier*: `(epoch, state number)` where the state
/// number is the LSN of the process's most recent log record (§3.1).
///
/// Ordering is lexicographic — epochs dominate — so that item-wise
/// maximization of dependency vectors treats any post-recovery state as
/// newer than every lost pre-crash state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId {
    pub epoch: Epoch,
    pub lsn: Lsn,
}

impl StateId {
    /// State identifier of a freshly started, never-logged process.
    pub const INITIAL: StateId = StateId {
        epoch: Epoch::INITIAL,
        lsn: Lsn::ZERO,
    };

    pub fn new(epoch: Epoch, lsn: Lsn) -> StateId {
        StateId { epoch, lsn }
    }
}

impl fmt::Display for MspId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "msp{}", self.0)
    }
}

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dom{}", self.0)
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "se{}", self.0)
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sv{}", self.0)
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "lsn:null")
        } else {
            write!(f, "lsn:{}", self.0)
        }
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ep{}", self.0)
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.epoch, self.lsn)
    }
}

macro_rules! codec_newtype {
    ($ty:ty, $inner:ty, $put:ident, $get:ident) => {
        impl Encode for $ty {
            fn encode(&self, buf: &mut Vec<u8>) {
                crate::codec::$put(buf, self.0);
            }
        }
        impl Decode for $ty {
            fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
                Ok(Self(crate::codec::$get(buf)?))
            }
        }
    };
}

codec_newtype!(MspId, u32, put_u32, get_u32);
codec_newtype!(DomainId, u32, put_u32, get_u32);
codec_newtype!(SessionId, u64, put_u64, get_u64);
codec_newtype!(VarId, u32, put_u32, get_u32);
codec_newtype!(RequestSeq, u64, put_u64, get_u64);
codec_newtype!(Lsn, u64, put_u64, get_u64);
codec_newtype!(Epoch, u32, put_u32, get_u32);

impl Encode for StateId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.epoch.encode(buf);
        self.lsn.encode(buf);
    }
}

impl Decode for StateId {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(StateId {
            epoch: Epoch::decode(buf)?,
            lsn: Lsn::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::roundtrip;

    #[test]
    fn state_id_ordering_is_lexicographic() {
        let old = StateId::new(Epoch(0), Lsn(1_000_000));
        let new = StateId::new(Epoch(1), Lsn(10));
        assert!(
            new > old,
            "a later epoch dominates any LSN of an earlier one"
        );
        let a = StateId::new(Epoch(1), Lsn(10));
        let b = StateId::new(Epoch(1), Lsn(20));
        assert!(b > a);
    }

    #[test]
    fn lsn_null_sentinel() {
        assert!(Lsn::NULL.is_null());
        assert!(!Lsn::ZERO.is_null());
        assert!(Lsn(42) < Lsn::NULL);
    }

    #[test]
    fn request_seq_next_increments() {
        assert_eq!(RequestSeq::FIRST.next(), RequestSeq(1));
        assert_eq!(RequestSeq(7).next(), RequestSeq(8));
    }

    #[test]
    fn epoch_next_increments() {
        assert_eq!(Epoch::INITIAL.next(), Epoch(1));
    }

    #[test]
    fn id_codec_roundtrips() {
        assert_eq!(roundtrip(&MspId(7)).unwrap(), MspId(7));
        assert_eq!(roundtrip(&DomainId(3)).unwrap(), DomainId(3));
        assert_eq!(
            roundtrip(&SessionId(u64::MAX)).unwrap(),
            SessionId(u64::MAX)
        );
        assert_eq!(roundtrip(&VarId(0)).unwrap(), VarId(0));
        assert_eq!(roundtrip(&Lsn::NULL).unwrap(), Lsn::NULL);
        assert_eq!(
            roundtrip(&StateId::new(Epoch(2), Lsn(99))).unwrap(),
            StateId::new(Epoch(2), Lsn(99))
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(MspId(1).to_string(), "msp1");
        assert_eq!(SessionId(9).to_string(), "se9");
        assert_eq!(Lsn::NULL.to_string(), "lsn:null");
        assert_eq!(StateId::new(Epoch(1), Lsn(5)).to_string(), "(ep1, lsn:5)");
    }
}
