//! Error types shared across the workspace.

use std::fmt;

use crate::ids::{MspId, SessionId, VarId};

/// Errors from the binary codec ([`crate::codec`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before a complete value could be read.
    UnexpectedEof { want: usize, have: usize },
    /// A discriminant byte had no corresponding variant.
    InvalidTag { context: &'static str, tag: u8 },
    /// A length-prefixed string was not valid UTF-8.
    InvalidUtf8,
    /// `from_bytes` left unconsumed input.
    TrailingBytes(usize),
    /// A structural invariant of the decoded value was violated.
    Corrupt(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { want, have } => {
                write!(
                    f,
                    "unexpected end of input: wanted {want} bytes, had {have}"
                )
            }
            CodecError::InvalidTag { context, tag } => {
                write!(f, "invalid tag {tag} while decoding {context}")
            }
            CodecError::InvalidUtf8 => write!(f, "invalid UTF-8 in string"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            CodecError::Corrupt(msg) => write!(f, "corrupt value: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Top-level error type of the recovery stack.
#[derive(Debug)]
pub enum MspError {
    /// Encoding/decoding failure (log corruption, bad envelope).
    Codec(CodecError),
    /// Underlying storage failure.
    Io(std::io::Error),
    /// The physical log is structurally corrupt at the given offset.
    LogCorrupt { offset: u64, reason: String },
    /// A session was found to be an orphan; the operation was abandoned and
    /// orphan recovery has been (or must be) initiated.
    Orphan { session: SessionId },
    /// A shared variable's current value is an orphan (surfaced internally;
    /// readers roll the variable back instead of failing).
    OrphanVariable { var: VarId },
    /// A dependency on another MSP turned out to refer to a state that MSP
    /// lost in a crash — whoever carries this dependency is an orphan.
    OrphanDependency { msp: MspId },
    /// A distributed log flush could not complete because a participant had
    /// crashed or had already declared the requested LSN unrecoverable.
    FlushFailed { participant: MspId, reason: String },
    /// The target MSP is not reachable / not registered in the network.
    Unreachable(MspId),
    /// The MSP is shutting down or has been killed.
    Shutdown,
    /// A request timed out waiting for its reply.
    Timeout,
    /// The named service method is not registered at the target MSP.
    NoSuchMethod(String),
    /// An operation referenced a shared variable that was never registered.
    NoSuchVariable(String),
    /// Service-method code signalled an application-level failure.
    Application(String),
    /// A request was rejected because a newer one was already processed on
    /// the session (stale / out-of-order duplicate).
    StaleRequest,
    /// Invalid configuration (e.g. zero-sized thread pool).
    Config(String),
}

impl fmt::Display for MspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MspError::Codec(e) => write!(f, "codec error: {e}"),
            MspError::Io(e) => write!(f, "I/O error: {e}"),
            MspError::LogCorrupt { offset, reason } => {
                write!(f, "log corrupt at offset {offset}: {reason}")
            }
            MspError::Orphan { session } => write!(f, "session {session} is an orphan"),
            MspError::OrphanVariable { var } => write!(f, "shared variable {var} is an orphan"),
            MspError::OrphanDependency { msp } => {
                write!(f, "dependency on a state lost by {msp}")
            }
            MspError::FlushFailed {
                participant,
                reason,
            } => {
                write!(f, "distributed log flush failed at {participant}: {reason}")
            }
            MspError::Unreachable(m) => write!(f, "MSP {m} unreachable"),
            MspError::Shutdown => write!(f, "MSP is shut down"),
            MspError::Timeout => write!(f, "request timed out"),
            MspError::NoSuchMethod(m) => write!(f, "no such service method: {m}"),
            MspError::NoSuchVariable(v) => write!(f, "no such shared variable: {v}"),
            MspError::Application(msg) => write!(f, "application error: {msg}"),
            MspError::StaleRequest => write!(f, "stale or out-of-order request"),
            MspError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for MspError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MspError::Codec(e) => Some(e),
            MspError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for MspError {
    fn from(e: CodecError) -> Self {
        MspError::Codec(e)
    }
}

impl From<std::io::Error> for MspError {
    fn from(e: std::io::Error) -> Self {
        MspError::Io(e)
    }
}

/// Convenient result alias used across the workspace.
pub type MspResult<T> = Result<T, MspError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MspError::Orphan {
            session: SessionId(4),
        };
        assert!(e.to_string().contains("se4"));
        let e = MspError::FlushFailed {
            participant: MspId(2),
            reason: "crashed".into(),
        };
        assert!(e.to_string().contains("msp2"));
        assert!(e.to_string().contains("crashed"));
    }

    #[test]
    fn codec_error_converts() {
        let e: MspError = CodecError::InvalidUtf8.into();
        assert!(matches!(e, MspError::Codec(CodecError::InvalidUtf8)));
    }

    #[test]
    fn source_chain() {
        use std::error::Error;
        let e: MspError = CodecError::InvalidUtf8.into();
        assert!(e.source().is_some());
        assert!(MspError::Timeout.source().is_none());
    }
}
