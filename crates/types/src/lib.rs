//! Foundation types shared by every crate in the MSP recovery workspace.
//!
//! This crate reproduces the identifier vocabulary of *Log-Based Recovery
//! for Middleware Servers* (Wang, Salzberg, Lomet — SIGMOD 2007):
//!
//! * [`MspId`], [`DomainId`], [`SessionId`], [`VarId`] — the units of the
//!   distributed system (middleware server processes, service domains,
//!   client sessions and shared variables).
//! * [`Lsn`], [`Epoch`], [`StateId`] — log positions and the *state
//!   identifiers* used by optimistic logging (§3.1 of the paper): a state
//!   identifier is an `(epoch, state-number)` pair where the state number is
//!   the LSN of the process's most recent log record and the epoch counts
//!   failure-free periods.
//! * [`DependencyVector`] — the per-session / per-shared-variable dependency
//!   vectors that optimistic logging attaches to intra-domain messages.
//! * [`RecoveryKnowledge`] — each MSP's accumulated knowledge of other MSPs'
//!   *recovered state numbers*, used for orphan detection.
//! * [`codec`] — the small binary codec used by the physical log and the
//!   network envelopes.

pub mod codec;
pub mod dv;
pub mod error;
pub mod ids;
pub mod knowledge;

pub use codec::{Decode, Encode};
pub use dv::DependencyVector;
pub use error::{CodecError, MspError, MspResult};
pub use ids::{DomainId, Epoch, Lsn, MspId, RequestSeq, SessionId, StateId, VarId};
pub use knowledge::{RecoveryKnowledge, RecoveryRecord};
