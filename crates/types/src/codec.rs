//! A small, explicit binary codec.
//!
//! Log records and network envelopes are encoded with fixed little-endian
//! integers and length-prefixed byte strings. The format is deliberately
//! simple: the physical log must be re-readable by the analysis scan after a
//! crash, so every record must be decodable without out-of-band schema
//! information, and a torn tail must be detectable (the log layer adds
//! per-block length + checksum framing on top of this codec).

use crate::error::CodecError;

/// Types that can serialize themselves into a byte buffer.
pub trait Encode {
    fn encode(&self, buf: &mut Vec<u8>);

    /// Convenience: encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }
}

/// Types that can deserialize themselves from a byte slice, advancing it.
pub trait Decode: Sized {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError>;

    /// Convenience: decode from a complete buffer, requiring full consumption.
    fn from_bytes(mut buf: &[u8]) -> Result<Self, CodecError> {
        let v = Self::decode(&mut buf)?;
        if !buf.is_empty() {
            return Err(CodecError::TrailingBytes(buf.len()));
        }
        Ok(v)
    }
}

pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Length-prefixed (u32) byte string.
pub fn put_bytes(buf: &mut Vec<u8>, v: &[u8]) {
    put_u32(buf, v.len() as u32);
    buf.extend_from_slice(v);
}

/// Length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, v: &str) {
    put_bytes(buf, v.as_bytes());
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], CodecError> {
    if buf.len() < n {
        return Err(CodecError::UnexpectedEof {
            want: n,
            have: buf.len(),
        });
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

pub fn get_u8(buf: &mut &[u8]) -> Result<u8, CodecError> {
    Ok(take(buf, 1)?[0])
}

pub fn get_u16(buf: &mut &[u8]) -> Result<u16, CodecError> {
    Ok(u16::from_le_bytes(
        take(buf, 2)?.try_into().expect("exact slice"),
    ))
}

pub fn get_u32(buf: &mut &[u8]) -> Result<u32, CodecError> {
    Ok(u32::from_le_bytes(
        take(buf, 4)?.try_into().expect("exact slice"),
    ))
}

pub fn get_u64(buf: &mut &[u8]) -> Result<u64, CodecError> {
    Ok(u64::from_le_bytes(
        take(buf, 8)?.try_into().expect("exact slice"),
    ))
}

pub fn get_bytes(buf: &mut &[u8]) -> Result<Vec<u8>, CodecError> {
    let len = get_u32(buf)? as usize;
    Ok(take(buf, len)?.to_vec())
}

pub fn get_str(buf: &mut &[u8]) -> Result<String, CodecError> {
    let bytes = get_bytes(buf)?;
    String::from_utf8(bytes).map_err(|_| CodecError::InvalidUtf8)
}

/// Encode a `Vec<T>` with a u32 length prefix.
pub fn put_vec<T: Encode>(buf: &mut Vec<u8>, v: &[T]) {
    put_u32(buf, v.len() as u32);
    for item in v {
        item.encode(buf);
    }
}

/// Decode a `Vec<T>` with a u32 length prefix.
pub fn get_vec<T: Decode>(buf: &mut &[u8]) -> Result<Vec<T>, CodecError> {
    let len = get_u32(buf)? as usize;
    // Guard against a corrupt length prefix asking for absurd allocation:
    // each element needs at least one byte in this codec family.
    if len > buf.len() {
        return Err(CodecError::UnexpectedEof {
            want: len,
            have: buf.len(),
        });
    }
    let mut v = Vec::with_capacity(len);
    for _ in 0..len {
        v.push(T::decode(buf)?);
    }
    Ok(v)
}

impl Encode for Vec<u8> {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_bytes(buf, self);
    }
}

impl Decode for Vec<u8> {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        get_bytes(buf)
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_str(buf, self);
    }
}

impl Decode for String {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        get_str(buf)
    }
}

impl Encode for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u64(buf, *self);
    }
}

impl Decode for u64 {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        get_u64(buf)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => put_u8(buf, 0),
            Some(v) => {
                put_u8(buf, 1);
                v.encode(buf);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        match get_u8(buf)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            tag => Err(CodecError::InvalidTag {
                context: "Option",
                tag,
            }),
        }
    }
}

/// Test helper: encode then decode a value.
pub fn roundtrip<T: Encode + Decode>(v: &T) -> Result<T, CodecError> {
    T::from_bytes(&v.to_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 0xAB);
        put_u16(&mut buf, 0xBEEF);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_bytes(&mut buf, b"hello");
        put_str(&mut buf, "world");

        let mut cur = buf.as_slice();
        assert_eq!(get_u8(&mut cur).unwrap(), 0xAB);
        assert_eq!(get_u16(&mut cur).unwrap(), 0xBEEF);
        assert_eq!(get_u32(&mut cur).unwrap(), 0xDEAD_BEEF);
        assert_eq!(get_u64(&mut cur).unwrap(), u64::MAX - 1);
        assert_eq!(get_bytes(&mut cur).unwrap(), b"hello");
        assert_eq!(get_str(&mut cur).unwrap(), "world");
        assert!(cur.is_empty());
    }

    #[test]
    fn eof_is_detected() {
        let mut cur: &[u8] = &[1, 2];
        assert!(matches!(
            get_u32(&mut cur),
            Err(CodecError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn corrupt_length_prefix_is_rejected() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX); // absurd length
        let mut cur = buf.as_slice();
        assert!(get_bytes(&mut cur).is_err());
    }

    #[test]
    fn option_roundtrip() {
        assert_eq!(roundtrip(&Some(42u64)).unwrap(), Some(42));
        assert_eq!(roundtrip(&None::<u64>).unwrap(), None);
    }

    #[test]
    fn option_invalid_tag() {
        let buf = vec![9u8];
        assert!(matches!(
            Option::<u64>::from_bytes(&buf),
            Err(CodecError::InvalidTag {
                context: "Option",
                tag: 9
            })
        ));
    }

    #[test]
    fn trailing_bytes_rejected_by_from_bytes() {
        let mut buf = 7u64.to_bytes();
        buf.push(0);
        assert!(matches!(
            u64::from_bytes(&buf),
            Err(CodecError::TrailingBytes(1))
        ));
    }

    #[test]
    fn vec_roundtrip() {
        let v: Vec<u64> = vec![1, 2, 3];
        let mut buf = Vec::new();
        put_vec(&mut buf, &v);
        let mut cur = buf.as_slice();
        assert_eq!(get_vec::<u64>(&mut cur).unwrap(), v);
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, &[0xFF, 0xFE]);
        let mut cur = buf.as_slice();
        assert!(matches!(get_str(&mut cur), Err(CodecError::InvalidUtf8)));
    }
}
