//! Dependency vectors for optimistic logging (§3.1 of the paper).
//!
//! A dependency vector (DV) records, for every MSP a state transitively
//! depends on, the *state identifier* `(epoch, LSN)` of the most recent
//! depended-upon state. DVs are attached to messages sent inside a service
//! domain and merged item-wise (maximization) on receipt. Because
//! pessimistic logging is used across domain boundaries, a DV only ever
//! contains entries for MSPs of one service domain, bounding its size —
//! that is the core of *locally optimistic logging*.
//!
//! The paper refines the classical symmetric merge for shared-variable
//! access (§3.3): a **read** merges the variable's DV into the reader's
//! (never the reverse), and a **write** *replaces* the variable's DV with
//! the writer's (the old value's dependencies die with the old value).
//! Both operations are provided here ([`DependencyVector::merge_from`] and
//! plain assignment); the asymmetry lives in the shared-state layer.

use std::fmt;

use crate::codec::{self, Decode, Encode};
use crate::error::CodecError;
use crate::ids::{Epoch, Lsn, MspId, StateId};

/// A dependency vector: a sorted association list `MspId -> StateId`.
///
/// Service domains are small (a handful of MSPs), so a sorted `Vec` with
/// binary search beats a hash map on every axis: size, iteration order
/// (deterministic encoding), and cache behaviour.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DependencyVector {
    entries: Vec<(MspId, StateId)>,
}

impl DependencyVector {
    /// An empty vector (depends on nothing).
    pub fn new() -> DependencyVector {
        DependencyVector {
            entries: Vec::new(),
        }
    }

    /// Build from arbitrary `(msp, state)` pairs; later duplicates are
    /// merged by maximization.
    pub fn from_entries(pairs: impl IntoIterator<Item = (MspId, StateId)>) -> DependencyVector {
        let mut dv = DependencyVector::new();
        for (m, s) in pairs {
            dv.bump(m, s);
        }
        dv
    }

    /// Number of MSPs this vector depends on.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The dependency on `msp`, if any.
    pub fn get(&self, msp: MspId) -> Option<StateId> {
        self.entries
            .binary_search_by_key(&msp, |(m, _)| *m)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Raise the dependency on `msp` to at least `state` (item-wise max).
    pub fn bump(&mut self, msp: MspId, state: StateId) {
        match self.entries.binary_search_by_key(&msp, |(m, _)| *m) {
            Ok(i) => {
                if state > self.entries[i].1 {
                    self.entries[i].1 = state;
                }
            }
            Err(i) => self.entries.insert(i, (msp, state)),
        }
    }

    /// Overwrite the dependency on `msp` regardless of ordering.
    ///
    /// Used for the *self*-entry: a process always depends on itself at its
    /// current state identifier, which advances monotonically anyway, and
    /// for resetting after checkpoints.
    pub fn set(&mut self, msp: MspId, state: StateId) {
        match self.entries.binary_search_by_key(&msp, |(m, _)| *m) {
            Ok(i) => self.entries[i].1 = state,
            Err(i) => self.entries.insert(i, (msp, state)),
        }
    }

    /// Drop the dependency on `msp` (used when a dependency is subsumed,
    /// e.g. after a distributed flush made it stable).
    pub fn remove(&mut self, msp: MspId) -> Option<StateId> {
        match self.entries.binary_search_by_key(&msp, |(m, _)| *m) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// Item-wise maximization: after this call `self` dominates both its
    /// old value and `other`. This is the merge applied when a message (or
    /// a shared-variable read) is absorbed (§3.1, Figure 5).
    pub fn merge_from(&mut self, other: &DependencyVector) {
        for &(m, s) in &other.entries {
            self.bump(m, s);
        }
    }

    /// Iterate over `(msp, state)` pairs in ascending `MspId` order.
    pub fn iter(&self) -> impl Iterator<Item = (MspId, StateId)> + '_ {
        self.entries.iter().copied()
    }

    /// Whether `self` is dominated by `other` (every entry of `self` is
    /// present in `other` with an equal or larger state id).
    pub fn dominated_by(&self, other: &DependencyVector) -> bool {
        self.entries
            .iter()
            .all(|&(m, s)| other.get(m).is_some_and(|o| o >= s))
    }

    /// Clear all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl fmt::Display for DependencyVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (m, s)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{m}:{s}")?;
        }
        write!(f, "]")
    }
}

impl Encode for DependencyVector {
    fn encode(&self, buf: &mut Vec<u8>) {
        codec::put_u32(buf, self.entries.len() as u32);
        for &(m, s) in &self.entries {
            m.encode(buf);
            s.encode(buf);
        }
    }
}

impl Decode for DependencyVector {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let len = codec::get_u32(buf)? as usize;
        if len > buf.len() {
            return Err(CodecError::UnexpectedEof {
                want: len,
                have: buf.len(),
            });
        }
        let mut entries = Vec::with_capacity(len);
        let mut prev: Option<MspId> = None;
        for _ in 0..len {
            let m = MspId::decode(buf)?;
            let s = StateId::decode(buf)?;
            if let Some(p) = prev {
                if m <= p {
                    return Err(CodecError::Corrupt(format!(
                        "dependency vector entries out of order: {p} then {m}"
                    )));
                }
            }
            prev = Some(m);
            entries.push((m, s));
        }
        Ok(DependencyVector { entries })
    }
}

/// Build a state id quickly in tests and call sites.
pub fn state(epoch: u32, lsn: u64) -> StateId {
    StateId::new(Epoch(epoch), Lsn(lsn))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::roundtrip;

    fn dv(pairs: &[(u32, u32, u64)]) -> DependencyVector {
        DependencyVector::from_entries(pairs.iter().map(|&(m, e, l)| (MspId(m), state(e, l))))
    }

    #[test]
    fn paper_figure5_scenario() {
        // p1 logs m1 at LSN 10, sends m2 with DV [p1:10].
        let m2_dv = dv(&[(1, 0, 10)]);
        // p2 logs at 20 and sends m3 with [p1:10, p2:20] (transitivity).
        let mut p2 = DependencyVector::new();
        p2.merge_from(&m2_dv);
        p2.set(MspId(2), state(0, 20));
        // p3 receives m3 and logs at 30.
        let mut p3 = DependencyVector::new();
        p3.merge_from(&p2);
        p3.set(MspId(3), state(0, 30));
        assert_eq!(p3.get(MspId(1)), Some(state(0, 10)));
        assert_eq!(p3.get(MspId(2)), Some(state(0, 20)));
        assert_eq!(p3.get(MspId(3)), Some(state(0, 30)));
        // m5 arrives with [p1:11]; p3 logs at 31.
        p3.merge_from(&dv(&[(1, 0, 11)]));
        p3.set(MspId(3), state(0, 31));
        assert_eq!(p3.get(MspId(1)), Some(state(0, 11)));
        assert_eq!(p3.get(MspId(2)), Some(state(0, 20)));
        assert_eq!(p3.get(MspId(3)), Some(state(0, 31)));
    }

    #[test]
    fn merge_takes_item_wise_max() {
        let mut a = dv(&[(1, 0, 10), (2, 0, 5)]);
        let b = dv(&[(1, 0, 7), (2, 0, 9), (3, 1, 1)]);
        a.merge_from(&b);
        assert_eq!(a.get(MspId(1)), Some(state(0, 10)));
        assert_eq!(a.get(MspId(2)), Some(state(0, 9)));
        assert_eq!(a.get(MspId(3)), Some(state(1, 1)));
    }

    #[test]
    fn later_epoch_dominates_in_merge() {
        let mut a = dv(&[(1, 0, 1_000)]);
        a.merge_from(&dv(&[(1, 1, 5)]));
        assert_eq!(a.get(MspId(1)), Some(state(1, 5)));
    }

    #[test]
    fn set_overwrites_even_downward() {
        let mut a = dv(&[(1, 0, 100)]);
        a.set(MspId(1), state(0, 50));
        assert_eq!(a.get(MspId(1)), Some(state(0, 50)));
    }

    #[test]
    fn remove_and_clear() {
        let mut a = dv(&[(1, 0, 1), (2, 0, 2)]);
        assert_eq!(a.remove(MspId(1)), Some(state(0, 1)));
        assert_eq!(a.remove(MspId(1)), None);
        assert_eq!(a.len(), 1);
        a.clear();
        assert!(a.is_empty());
    }

    #[test]
    fn dominated_by() {
        let small = dv(&[(1, 0, 5)]);
        let big = dv(&[(1, 0, 9), (2, 0, 3)]);
        assert!(small.dominated_by(&big));
        assert!(!big.dominated_by(&small));
        assert!(DependencyVector::new().dominated_by(&small));
    }

    #[test]
    fn codec_roundtrip() {
        let a = dv(&[(1, 0, 10), (5, 2, 77), (9, 1, 3)]);
        assert_eq!(roundtrip(&a).unwrap(), a);
        assert_eq!(
            roundtrip(&DependencyVector::new()).unwrap(),
            DependencyVector::new()
        );
    }

    #[test]
    fn decode_rejects_unsorted_entries() {
        let good = dv(&[(1, 0, 1), (2, 0, 2)]);
        let mut bytes = good.to_bytes();
        // Swap the two MspId fields (offsets: 4..8 and 4+4+12..): entry is
        // (u32 msp, u32 epoch, u64 lsn) = 16 bytes, after a 4-byte count.
        bytes.swap(4, 20);
        assert!(DependencyVector::from_bytes(&bytes).is_err());
    }

    #[test]
    fn display_format() {
        let a = dv(&[(1, 0, 10)]);
        assert_eq!(a.to_string(), "[msp1:(ep0, lsn:10)]");
    }
}
