//! Recovered-state-number knowledge and the orphan test (§3.1, §4).
//!
//! After crash recovery an MSP broadcasts, within its service domain, the
//! *recovered state number*: the largest LSN that survived on disk. Every
//! other MSP in the domain logs and remembers this. A dependency
//! `(epoch e, lsn l)` on MSP `M` is an **orphan** iff some recovery of `M`
//! with new epoch `e' > e` recovered only up to `r < l` — the depended-upon
//! state was lost in that crash.
//!
//! Because an MSP keeps appending to the same physical log across crashes,
//! recovered LSNs are monotone over successive recoveries; hence it is
//! enough to test against the *first* recovery after epoch `e`, and testing
//! against all known records is equivalent (and what we do).

use std::collections::BTreeMap;

use crate::codec::{self, Decode, Encode};
use crate::dv::DependencyVector;
use crate::error::CodecError;
use crate::ids::{Epoch, Lsn, MspId, StateId};

/// One recovery announcement: "`msp` entered `new_epoch`, having recovered
/// its log up to `recovered_lsn`".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryRecord {
    pub msp: MspId,
    pub new_epoch: Epoch,
    pub recovered_lsn: Lsn,
}

impl Encode for RecoveryRecord {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.msp.encode(buf);
        self.new_epoch.encode(buf);
        self.recovered_lsn.encode(buf);
    }
}

impl Decode for RecoveryRecord {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(RecoveryRecord {
            msp: MspId::decode(buf)?,
            new_epoch: Epoch::decode(buf)?,
            recovered_lsn: Lsn::decode(buf)?,
        })
    }
}

/// An MSP's accumulated knowledge of recovered state numbers in its domain.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryKnowledge {
    /// Per MSP: `new_epoch -> recovered_lsn`, ascending by epoch.
    records: BTreeMap<MspId, BTreeMap<Epoch, Lsn>>,
}

impl RecoveryKnowledge {
    pub fn new() -> RecoveryKnowledge {
        RecoveryKnowledge::default()
    }

    /// Absorb a recovery announcement (idempotent).
    ///
    /// A given `(msp, new_epoch)` pair corresponds to exactly one recovery
    /// event, so duplicates normally carry identical LSNs; should
    /// conflicting reports ever appear (corruption, buggy peer), the
    /// *smaller* recovered LSN is kept — the conservative choice that can
    /// only turn questionable states into orphans, never resurrect lost
    /// ones, and which keeps orphan verdicts monotone in knowledge.
    pub fn record(&mut self, rec: RecoveryRecord) {
        self.records
            .entry(rec.msp)
            .or_default()
            .entry(rec.new_epoch)
            .and_modify(|lsn| *lsn = (*lsn).min(rec.recovered_lsn))
            .or_insert(rec.recovered_lsn);
    }

    /// Absorb everything another knowledge table knows (used when merging
    /// checkpointed knowledge with log-scanned knowledge during recovery).
    pub fn merge_from(&mut self, other: &RecoveryKnowledge) {
        for rec in other.iter() {
            self.record(rec);
        }
    }

    /// Whether [`record`](Self::record)ing `rec` would change nothing —
    /// the `(msp, new_epoch)` pair is already known with an LSN at least
    /// as conservative. Lets hot paths skip the absorb machinery for
    /// gossip they have already seen.
    pub fn covers(&self, rec: &RecoveryRecord) -> bool {
        self.records
            .get(&rec.msp)
            .and_then(|m| m.get(&rec.new_epoch))
            .is_some_and(|&lsn| lsn <= rec.recovered_lsn)
    }

    /// The current (highest known) epoch of `msp`, if any recovery of it
    /// has been observed.
    pub fn current_epoch(&self, msp: MspId) -> Option<Epoch> {
        self.records
            .get(&msp)
            .and_then(|m| m.keys().next_back().copied())
    }

    /// Orphan test for a single dependency `(msp, state)`.
    ///
    /// The dependency is an orphan iff some known recovery of `msp` with
    /// `new_epoch > state.epoch` recovered only up to an LSN smaller than
    /// `state.lsn`.
    pub fn is_orphan_dep(&self, msp: MspId, state: StateId) -> bool {
        let Some(recs) = self.records.get(&msp) else {
            return false;
        };
        recs.range((
            std::ops::Bound::Excluded(state.epoch),
            std::ops::Bound::Unbounded,
        ))
        .any(|(_, &recovered)| state.lsn > recovered)
    }

    /// Orphan test for a whole dependency vector — including entries for
    /// the checking MSP itself. A self-entry the session logged in the
    /// current epoch can never test as orphan (no later recovery is
    /// known), but an *echoed* self-entry — our own pre-crash LSN carried
    /// back to us through another MSP's message after a round trip — is a
    /// genuine dependency on state we lost, and exempting it would keep
    /// zombie sessions and shared values alive after the crash.
    pub fn is_orphan(&self, dv: &DependencyVector, _owner: MspId) -> bool {
        dv.iter().any(|(m, s)| self.is_orphan_dep(m, s))
    }

    /// The first orphan dependency in `dv`, if any. Useful for
    /// diagnostics and tests.
    pub fn find_orphan(&self, dv: &DependencyVector, _owner: MspId) -> Option<(MspId, StateId)> {
        dv.iter().find(|&(m, s)| self.is_orphan_dep(m, s))
    }

    /// Iterate over all known records.
    pub fn iter(&self) -> impl Iterator<Item = RecoveryRecord> + '_ {
        self.records.iter().flat_map(|(&msp, m)| {
            m.iter()
                .map(move |(&new_epoch, &recovered_lsn)| RecoveryRecord {
                    msp,
                    new_epoch,
                    recovered_lsn,
                })
        })
    }

    /// Total number of records.
    pub fn len(&self) -> usize {
        self.records.values().map(|m| m.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl Encode for RecoveryKnowledge {
    fn encode(&self, buf: &mut Vec<u8>) {
        let all: Vec<RecoveryRecord> = self.iter().collect();
        codec::put_vec(buf, &all);
    }
}

impl Decode for RecoveryKnowledge {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let all: Vec<RecoveryRecord> = codec::get_vec(buf)?;
        let mut k = RecoveryKnowledge::new();
        for rec in all {
            k.record(rec);
        }
        Ok(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::roundtrip;
    use crate::dv::state;

    fn rec(msp: u32, new_epoch: u32, recovered: u64) -> RecoveryRecord {
        RecoveryRecord {
            msp: MspId(msp),
            new_epoch: Epoch(new_epoch),
            recovered_lsn: Lsn(recovered),
        }
    }

    #[test]
    fn surviving_dependency_is_not_orphan() {
        let mut k = RecoveryKnowledge::new();
        k.record(rec(1, 1, 100));
        // Logged at LSN 50 in epoch 0, recovered up to 100: survived.
        assert!(!k.is_orphan_dep(MspId(1), state(0, 50)));
        // Exactly at the recovered LSN: survived.
        assert!(!k.is_orphan_dep(MspId(1), state(0, 100)));
    }

    #[test]
    fn lost_dependency_is_orphan() {
        let mut k = RecoveryKnowledge::new();
        k.record(rec(1, 1, 100));
        assert!(k.is_orphan_dep(MspId(1), state(0, 101)));
    }

    #[test]
    fn dependency_on_new_epoch_is_not_orphan() {
        let mut k = RecoveryKnowledge::new();
        k.record(rec(1, 1, 100));
        // A state produced *after* recovery (epoch 1) is not affected.
        assert!(!k.is_orphan_dep(MspId(1), state(1, 500)));
    }

    #[test]
    fn unknown_msp_is_never_orphan() {
        let k = RecoveryKnowledge::new();
        assert!(!k.is_orphan_dep(MspId(9), state(0, 1)));
    }

    #[test]
    fn multiple_crashes_first_recovery_decides() {
        let mut k = RecoveryKnowledge::new();
        k.record(rec(1, 1, 100));
        k.record(rec(1, 2, 250));
        // Epoch-0 state at 120: lost at the first crash even though the
        // second recovery reached 250 (LSN monotonicity means it could not
        // have been resurrected).
        assert!(k.is_orphan_dep(MspId(1), state(0, 120)));
        // Epoch-0 state at 80 survived crash 1, therefore also crash 2.
        assert!(!k.is_orphan_dep(MspId(1), state(0, 80)));
        // Epoch-1 state at 260: lost at the second crash.
        assert!(k.is_orphan_dep(MspId(1), state(1, 260)));
        assert!(!k.is_orphan_dep(MspId(1), state(1, 240)));
    }

    #[test]
    fn dv_orphan_check_includes_owner_echoes() {
        let mut k = RecoveryKnowledge::new();
        k.record(rec(1, 1, 100));
        let dv = DependencyVector::from_entries([
            (MspId(1), state(0, 999)), // lost in msp1's crash
        ]);
        // Lost at a peer: orphan.
        assert!(k.is_orphan(&dv, MspId(2)));
        // Lost at the checking MSP itself — an echoed self-dependency on
        // pre-crash state carried back via another MSP — equally orphan.
        assert!(k.is_orphan(&dv, MspId(1)));
        // A self-entry from the current epoch is not (no later recovery).
        let live = DependencyVector::from_entries([(MspId(1), state(1, 50))]);
        assert!(!k.is_orphan(&live, MspId(1)));
    }

    #[test]
    fn find_orphan_reports_culprit() {
        let mut k = RecoveryKnowledge::new();
        k.record(rec(2, 1, 10));
        let dv =
            DependencyVector::from_entries([(MspId(1), state(0, 5)), (MspId(2), state(0, 50))]);
        assert_eq!(k.find_orphan(&dv, MspId(3)), Some((MspId(2), state(0, 50))));
    }

    #[test]
    fn record_is_idempotent_and_merge_works() {
        let mut a = RecoveryKnowledge::new();
        a.record(rec(1, 1, 100));
        a.record(rec(1, 1, 100));
        assert_eq!(a.len(), 1);

        let mut b = RecoveryKnowledge::new();
        b.record(rec(2, 1, 7));
        a.merge_from(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.current_epoch(MspId(2)), Some(Epoch(1)));
    }

    #[test]
    fn current_epoch_is_max() {
        let mut k = RecoveryKnowledge::new();
        assert_eq!(k.current_epoch(MspId(1)), None);
        k.record(rec(1, 1, 100));
        k.record(rec(1, 3, 400));
        k.record(rec(1, 2, 250));
        assert_eq!(k.current_epoch(MspId(1)), Some(Epoch(3)));
    }

    #[test]
    fn codec_roundtrip() {
        let mut k = RecoveryKnowledge::new();
        k.record(rec(1, 1, 100));
        k.record(rec(1, 2, 250));
        k.record(rec(4, 1, 9));
        assert_eq!(roundtrip(&k).unwrap(), k);
        assert_eq!(
            roundtrip(&RecoveryKnowledge::new()).unwrap(),
            RecoveryKnowledge::new()
        );
    }
}
