//! Property-based tests for the physical log: arbitrary record sequences
//! roundtrip through append/flush/scan, crashes lose exactly the
//! unflushed suffix, and torn tails never break the scanner.

use std::sync::Arc;

use proptest::prelude::*;

use msp_types::{DependencyVector, Lsn, MspId, RequestSeq, SessionId, StateId, VarId};
use msp_wal::log::DATA_START;
use msp_wal::{Disk, DiskModel, FlushPolicy, LogRecord, MemDisk, PhysicalLog};

fn arb_record() -> impl Strategy<Value = LogRecord> {
    let payload = proptest::collection::vec(any::<u8>(), 0..300);
    let dv = proptest::collection::vec((0u32..4, 0u32..3, 0u64..10_000), 0..4).prop_map(|v| {
        DependencyVector::from_entries(
            v.into_iter()
                .map(|(m, e, l)| (MspId(m), StateId::new(msp_types::Epoch(e), Lsn(l)))),
        )
    });
    prop_oneof![
        (
            0u64..8,
            0u64..100,
            payload.clone(),
            proptest::option::of(dv.clone())
        )
            .prop_map(|(s, q, p, d)| LogRecord::RequestReceive {
                session: SessionId(s),
                seq: RequestSeq(q),
                method: "m".into(),
                payload: p,
                sender_dv: d,
            }),
        (0u64..8, 0u32..4, payload.clone(), dv.clone()).prop_map(|(s, v, p, d)| {
            LogRecord::SharedRead {
                session: SessionId(s),
                var: VarId(v),
                value: p,
                var_dv: d,
            }
        }),
        (0u64..8, 0u32..4, payload.clone(), dv, 0u64..100_000).prop_map(|(s, v, p, d, prev)| {
            LogRecord::SharedWrite {
                session: SessionId(s),
                var: VarId(v),
                value: p,
                writer_dv: d,
                prev_write: Lsn(prev),
            }
        }),
        (0u32..4, payload).prop_map(|(v, p)| LogRecord::SharedCheckpoint {
            var: VarId(v),
            value: p
        }),
        (0u64..8).prop_map(|s| LogRecord::SessionEnd {
            session: SessionId(s)
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Everything appended and flushed is read back by the scanner, in
    /// order, regardless of how appends are grouped into flushes.
    #[test]
    fn scan_returns_flushed_records_in_order(
        records in proptest::collection::vec(arb_record(), 1..40),
        flush_every in 1usize..5,
    ) {
        let disk = MemDisk::new();
        let log = PhysicalLog::open(
            Arc::new(disk.clone()),
            DiskModel::zero(),
            FlushPolicy::immediate(),
        ).unwrap();
        for (i, rec) in records.iter().enumerate() {
            let lsn = log.append(rec);
            if i % flush_every == 0 {
                log.flush_to(lsn).unwrap();
            }
        }
        log.flush_all().unwrap();
        let got: Vec<LogRecord> = log
            .scan_from(Lsn(DATA_START))
            .map(|r| r.unwrap().1)
            .collect();
        prop_assert_eq!(got, records);
        log.close();
    }

    /// After a crash, exactly the records flushed before the crash are
    /// recoverable: the durable prefix, nothing more, nothing less.
    #[test]
    fn crash_preserves_exactly_the_durable_prefix(
        records in proptest::collection::vec(arb_record(), 2..30),
        cut in 0usize..30,
    ) {
        let cut = cut.min(records.len());
        let disk = MemDisk::new();
        {
            let log = PhysicalLog::open(
                Arc::new(disk.clone()),
                DiskModel::zero(),
                FlushPolicy::immediate(),
            ).unwrap();
            // A flush always takes the whole tail, so append the durable
            // prefix first, flush it, then append the doomed suffix.
            let mut last_flushed = None;
            for rec in &records[..cut] {
                last_flushed = Some(log.append(rec));
            }
            if let Some(lsn) = last_flushed {
                log.flush_to(lsn).unwrap();
            }
            for rec in &records[cut..] {
                log.append(rec);
            }
            log.crash();
        }
        let log = PhysicalLog::open(
            Arc::new(disk),
            DiskModel::zero(),
            FlushPolicy::immediate(),
        ).unwrap();
        let got: Vec<LogRecord> = log
            .scan_from(Lsn(DATA_START))
            .map(|r| r.unwrap().1)
            .collect();
        prop_assert_eq!(got.as_slice(), &records[..cut]);
        log.close();
    }

    /// Random record reads by LSN return the same record the scan does.
    #[test]
    fn random_reads_match_scan(
        records in proptest::collection::vec(arb_record(), 1..25),
    ) {
        let log = PhysicalLog::open(
            Arc::new(MemDisk::new()),
            DiskModel::zero(),
            FlushPolicy::immediate(),
        ).unwrap();
        let lsns: Vec<Lsn> = records.iter().map(|r| log.append(r)).collect();
        log.flush_all().unwrap();
        for (lsn, rec) in lsns.iter().zip(&records) {
            prop_assert_eq!(&log.read_record(*lsn).unwrap(), rec);
        }
        log.close();
    }

    /// Garbage appended to the durable image never breaks the scanner —
    /// it stops at the torn tail and reports only intact records.
    #[test]
    fn garbage_tail_never_panics_scanner(
        records in proptest::collection::vec(arb_record(), 1..10),
        garbage in proptest::collection::vec(any::<u8>(), 1..200),
    ) {
        let disk = MemDisk::new();
        {
            let log = PhysicalLog::open(
                Arc::new(disk.clone()),
                DiskModel::zero(),
                FlushPolicy::immediate(),
            ).unwrap();
            for rec in &records {
                log.append(rec);
            }
            log.flush_all().unwrap();
            log.close();
        }
        let end = disk.len();
        disk.write(end, &garbage).unwrap();
        let log = PhysicalLog::open(
            Arc::new(disk),
            DiskModel::zero(),
            FlushPolicy::immediate(),
        ).unwrap();
        let got: Vec<LogRecord> = log
            .scan_from(Lsn(DATA_START))
            .filter_map(|r| r.ok().map(|(_, rec)| rec))
            .collect();
        // The intact prefix must be a prefix of what we wrote (garbage can
        // only truncate, never corrupt decoded records).
        prop_assert!(got.len() >= records.len());
        prop_assert_eq!(&got[..records.len()], records.as_slice());
        log.close();
    }
}
