//! Sector-aligned physical logging for middleware server processes.
//!
//! One MSP owns one **physical log** shared by all of its sessions and
//! shared variables (§1.3 of the paper: "This sharing lowers the amortized
//! log flush overhead, but makes log management more challenging"). This
//! crate provides that log and its supporting machinery:
//!
//! * [`disk`] — the durable-storage abstraction: a crash-survivable
//!   in-memory disk ([`disk::MemDisk`]) for tests and benches, and a real
//!   file-backed disk ([`disk::FileDisk`]).
//! * [`model`] — the disk *cost model* reproducing the paper's flush-time
//!   formula (§5.2): `TFn = rot/2 + n/63·rot + n/63·track_seek (+ OS seek
//!   share)`, under a configurable time scale.
//! * [`record`] — every log-record kind the recovery protocols write.
//! * [`log`] — the physical log itself: buffered appends, sector-aligned
//!   flushes, group commit with optional *batch flushing* (§5.5), random
//!   record reads and the crash-recovery scanner.
//! * [`pool`] — the process-wide buffer pool of 64 KB log blocks with
//!   pluggable replacement (clock / LRU / SIEVE) and prefetch tracking.
//! * [`cache`] — the replay read view: one registered pool source bound
//!   to one physical log, shared by all concurrently replaying sessions.
//! * [`anchor`] — the ARIES-style log anchor holding the LSN of the most
//!   recent MSP checkpoint (§3.4).
//! * [`fault`] — seed-driven crash-point injection: countdown-armed crash
//!   sites threaded through the append/flush/checkpoint/replay paths,
//!   used by the harness torture rig.
//! * [`position`] — per-session *position streams* that make per-session
//!   log-record extraction (and hence parallel recovery) efficient (§3.2).

pub mod anchor;
pub mod cache;
pub mod crc;
pub mod disk;
pub mod fault;
pub mod log;
pub mod model;
pub mod pool;
pub mod position;
pub mod record;
pub mod stats;
pub mod stripe;
pub mod tail;

pub use anchor::{read_floor, read_merged_floor, LogAnchor};
pub use cache::ReplayCache;
pub use disk::{Disk, FileDisk, MemDisk};
pub use fault::{CrashPoint, FaultPlan};
pub use log::{FlushPolicy, FlushTicket, LogScanner, PhysicalLog, SECTOR_SIZE};
pub use model::DiskModel;
pub use pool::{BufferPool, PoolStatsSnapshot, ReplacementPolicy, ScanFeed};
pub use position::PositionStream;
pub use record::{LogRecord, MspCheckpointBody, SessionCheckpointBody};
pub use stats::LogStats;
pub use stripe::{StripedLog, StripedScanner, Wal, WalReplayCache, WalScanner};
pub use tail::{MAX_RESERVED_FRAME, SEGMENT_RING, SEGMENT_SIZE};
