//! Disk and network cost models (paper §5.1–§5.2).
//!
//! The evaluation's headline results are *flush-count* effects: locally
//! optimistic logging wins because it replaces `2m + 1` sequential flushes
//! per end-client request with one parallel distributed flush. To reproduce
//! those shapes without the authors' hardware we charge each flush the cost
//! the paper itself derives analytically:
//!
//! ```text
//! TFn = rot/2  +  n/63 · rot  +  n/63 · track_seek  (+ OS-seek share)
//! ```
//!
//! with `rot = 60000/7200 ms` and, following the paper's own crude
//! estimate `TF2 ≈ 4.5 + 10.5/3 ms`, a deterministic one-third share of a
//! full average seek added to every flush (the OS occasionally repositions
//! the head). A global `time_scale` shrinks all simulated delays so benches
//! finish quickly while preserving every ratio; `time_scale = 0` disables
//! sleeping entirely (unit tests).

use std::time::Duration;

use crate::log::SECTOR_SIZE;

/// Cost model of the log device and of simulated message latency.
#[derive(Debug, Clone)]
pub struct DiskModel {
    /// Spindle speed; the paper's disks are 7200 RPM.
    pub rpm: u32,
    /// Default sectors per track (paper hardware table: 63).
    pub sectors_per_track: u32,
    /// Track-to-track seek (paper: 1.2 ms write / 1.0 ms read).
    pub track_seek_write: Duration,
    pub track_seek_read: Duration,
    /// Average random seek (paper: 10.5 ms write / 9.5 ms read).
    pub avg_seek_write: Duration,
    /// Deterministic share of a random seek charged per flush, modelling
    /// the OS occasionally moving the head (paper: TF2 ≈ 4.5 + 10.5/3 ms).
    pub os_seek_share: f64,
    /// Multiplier applied to every simulated delay. 1.0 = paper-scale
    /// milliseconds; the harness default is 0.02 (50× faster).
    pub time_scale: f64,
}

impl Default for DiskModel {
    fn default() -> DiskModel {
        DiskModel {
            rpm: 7200,
            sectors_per_track: 63,
            track_seek_write: Duration::from_micros(1200),
            track_seek_read: Duration::from_micros(1000),
            avg_seek_write: Duration::from_micros(10_500),
            os_seek_share: 1.0 / 3.0,
            time_scale: 0.02,
        }
    }
}

impl DiskModel {
    /// A model that charges no time at all (plain unit tests).
    pub fn zero() -> DiskModel {
        DiskModel {
            time_scale: 0.0,
            ..DiskModel::default()
        }
    }

    /// A model at the paper's native millisecond scale.
    pub fn paper_scale() -> DiskModel {
        DiskModel {
            time_scale: 1.0,
            ..DiskModel::default()
        }
    }

    /// With a different time scale.
    #[must_use]
    pub fn with_scale(mut self, scale: f64) -> DiskModel {
        self.time_scale = scale;
        self
    }

    /// One full rotation.
    fn rotation(&self) -> Duration {
        Duration::from_secs_f64(60.0 / f64::from(self.rpm))
    }

    fn scaled(&self, d: Duration) -> Duration {
        d.mul_f64(self.time_scale)
    }

    /// Number of sectors needed for `bytes` bytes.
    pub fn sectors_for(bytes: u64) -> u64 {
        bytes.div_ceil(SECTOR_SIZE as u64)
    }

    /// Simulated duration of flushing `sectors` sectors (the paper's `TFn`
    /// plus the deterministic OS-seek share), already time-scaled.
    pub fn flush_cost(&self, sectors: u64) -> Duration {
        if sectors == 0 || self.time_scale == 0.0 {
            return Duration::ZERO;
        }
        let rot = self.rotation();
        let per_track = f64::from(self.sectors_per_track);
        let frac = sectors as f64 / per_track;
        let raw = rot.mul_f64(0.5)
            + rot.mul_f64(frac)
            + self.track_seek_write.mul_f64(frac)
            + self.avg_seek_write.mul_f64(self.os_seek_share);
        self.scaled(raw)
    }

    /// Simulated duration of a large sequential read of `sectors` sectors
    /// (used by recovery log scans; paper §5.4 formula).
    pub fn read_cost(&self, sectors: u64) -> Duration {
        if sectors == 0 || self.time_scale == 0.0 {
            return Duration::ZERO;
        }
        let rot = self.rotation();
        let per_track = f64::from(self.sectors_per_track);
        let frac = sectors as f64 / per_track;
        let raw = rot.mul_f64(0.5) + rot.mul_f64(frac) + self.track_seek_read.mul_f64(frac);
        self.scaled(raw)
    }

    /// Sleep for the simulated flush duration.
    pub fn charge_flush(&self, sectors: u64) {
        sleep_exact(self.flush_cost(sectors));
    }

    /// Sleep for the simulated sequential-read duration.
    pub fn charge_read(&self, sectors: u64) {
        sleep_exact(self.read_cost(sectors));
    }
}

/// Sleep that stays reasonably accurate for sub-millisecond durations by
/// finishing with a short spin. OS sleep granularity would otherwise
/// distort scaled-down latencies.
pub fn sleep_exact(d: Duration) {
    if d.is_zero() {
        return;
    }
    let start = std::time::Instant::now();
    // Sleep for the bulk, spin for the tail.
    if d > Duration::from_micros(200) {
        std::thread::sleep(d - Duration::from_micros(150));
    }
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tf2_estimate_is_about_8ms() {
        // §5.2: "we crudely estimate TF2 to be 8ms (= 4.5 + 10.5/3)".
        let m = DiskModel::paper_scale();
        let tf2 = m.flush_cost(2);
        let ms = tf2.as_secs_f64() * 1e3;
        assert!((7.5..9.0).contains(&ms), "TF2 = {ms} ms, expected ≈ 8 ms");
    }

    #[test]
    fn flush_cost_monotone_in_sectors() {
        let m = DiskModel::paper_scale();
        let mut prev = Duration::ZERO;
        for n in 1..=128 {
            let c = m.flush_cost(n);
            assert!(c > prev);
            prev = c;
        }
    }

    #[test]
    fn recovery_read_matches_paper_figure() {
        // §5.4: reading 1 MB as 64 KB (128-sector) chunks "takes 370ms".
        let m = DiskModel::paper_scale();
        let chunks = 1_048_576 / 65_536; // 16 reads of 128 sectors
        let total: Duration = (0..chunks).map(|_| m.read_cost(128)).sum();
        let ms = total.as_secs_f64() * 1e3;
        assert!(
            (330.0..420.0).contains(&ms),
            "1MB scan = {ms} ms, paper says ≈ 370 ms"
        );
    }

    #[test]
    fn zero_model_charges_nothing() {
        let m = DiskModel::zero();
        assert_eq!(m.flush_cost(64), Duration::ZERO);
        assert_eq!(m.read_cost(64), Duration::ZERO);
    }

    #[test]
    fn scale_is_linear() {
        let full = DiskModel::paper_scale().flush_cost(4);
        let half = DiskModel::paper_scale().with_scale(0.5).flush_cost(4);
        let ratio = full.as_secs_f64() / half.as_secs_f64();
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sectors_for_rounds_up() {
        assert_eq!(DiskModel::sectors_for(0), 0);
        assert_eq!(DiskModel::sectors_for(1), 1);
        assert_eq!(DiskModel::sectors_for(512), 1);
        assert_eq!(DiskModel::sectors_for(513), 2);
        assert_eq!(DiskModel::sectors_for(1536), 3);
    }

    #[test]
    fn sleep_exact_is_close() {
        let d = Duration::from_micros(300);
        let t0 = std::time::Instant::now();
        sleep_exact(d);
        let elapsed = t0.elapsed();
        assert!(elapsed >= d);
        assert!(elapsed < d * 20, "sleep overshot badly: {elapsed:?}");
    }
}
