//! WAL striping: one logical log over N disks with a merged durability
//! watermark.
//!
//! A single MSP log serializes every flush behind one disk arm. To scale
//! past that, the log is **striped** across N [`Disk`] devices, each
//! fronted by its own [`PhysicalLog`] (own reservation tail, own flusher
//! thread, own disk-model arm). Records keep a single totally ordered
//! address space — the **global sequence number** (gsn), a virtual byte
//! offset starting at [`DATA_START`] and advancing by each record's
//! framed size exactly as single-log LSNs do — so every consumer of
//! `Lsn`s (position streams, dependency tracking, checkpoint anchors)
//! works unchanged. On disk each record travels inside a
//! [`LogRecord::Striped`] wrapper carrying its gsn, which is what lets
//! crash recovery re-merge the per-stripe streams into one totally
//! ordered log.
//!
//! # Merged durability watermark
//!
//! Each stripe flushes independently, so "durable" is a *merged* notion:
//! the watermark is the smallest gsn not yet durable on its stripe —
//! every record below it has flushed, wherever it lives. A record whose
//! own stripe flushed early is **not** reported durable while an earlier
//! record on a lagging stripe is still volatile; committing it would let
//! a crash lose a record it causally follows. `flush_to(gsn)` therefore
//! fans out one flush leg per involved stripe and settles its ticket only
//! when the last leg lands (the time between the first and last leg is
//! accounted as `merged_watermark_lag_nanos`).
//!
//! # Crash recovery
//!
//! Reopening raw-scans every stripe, reads each frame's gsn from its
//! fixed payload position, and accepts the longest *contiguous* gsn
//! prefix starting at [`DATA_START`]. The first gap — a record lost with
//! some stripe's volatile tail — ends the log: stripes whose flush ran
//! ahead are truncated back by zero-filling their stale region (zeros
//! read as sector padding / end-of-log, so later scans and audits see a
//! clean tail). This is exactly the merged-watermark guarantee replayed
//! backwards: only acknowledged (merged-durable) prefixes survive, and
//! the surviving byte stream is identical to what a single log would
//! have retained.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use msp_types::{Encode, Lsn, MspError};

use crate::cache::ReplayCache;
use crate::disk::Disk;
use crate::fault::{CrashPoint, FaultPlan};
use crate::log::{
    FlushPolicy, FlushTicket, LogScanner, PhysicalLog, RawScanner, DATA_START, FRAME_HEADER,
};
use crate::model::DiskModel;
use crate::pool::{BufferPool, ReplacementPolicy, ScanFeed};
use crate::record::LogRecord;
use crate::stats::{LogStats, LogStatsSnapshot};

/// Encoded overhead of the [`LogRecord::Striped`] wrapper: tag byte +
/// fixed 8-byte gsn.
const STRIPE_WRAPPER: u64 = 1 + 8;

/// Route an id (session or shared-variable) to a stripe. Fibonacci
/// multiply-shift so dense id ranges spread evenly.
fn hash_route(id: u64, n: usize) -> usize {
    ((id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) % n
}

fn corrupt(offset: u64, reason: &str) -> MspError {
    MspError::LogCorrupt {
        offset,
        reason: reason.into(),
    }
}

/// Strip a [`LogRecord::Striped`] wrapper, verifying the carried gsn.
fn unwrap_striped(rec: LogRecord, gsn: u64) -> Result<LogRecord, MspError> {
    match rec {
        LogRecord::Striped { gsn: g, inner } if g.0 == gsn => Ok(*inner),
        LogRecord::Striped { gsn: g, .. } => Err(corrupt(
            gsn,
            &format!("stripe frame carries gsn {} at gsn {}", g.0, gsn),
        )),
        _ => Err(corrupt(gsn, "expected a striped frame")),
    }
}

/// Per-stripe volatile bookkeeping, guarded by one mutex per stripe. The
/// gsn allocation happens under this lock, which is what guarantees that
/// each stripe's *local* append order equals its gsn order — the
/// invariant the recovery merge and the frontier computation rely on.
#[derive(Default)]
struct StripeState {
    /// gsn → local end offset of every record appended this generation
    /// that may not be durable yet; pruned as the stripe's durable
    /// horizon passes. The smallest surviving key is this stripe's
    /// durability frontier.
    pending: BTreeMap<u64, u64>,
}

/// One logical log striped over N per-disk [`PhysicalLog`]s. See the
/// module docs for the gsn address space and the merged watermark.
pub struct StripedLog {
    stripes: Vec<Arc<PhysicalLog>>,
    states: Vec<Mutex<StripeState>>,
    /// gsn the next append will receive (virtual byte offset).
    next_gsn: AtomicU64,
    /// Monotone cache of the merged durability watermark.
    merged: AtomicU64,
    /// gsn → (stripe, local LSN) for every record of this generation plus
    /// the recovered prefix; random reads (orphan chains, replay without
    /// cache) resolve through it.
    index: Mutex<HashMap<u64, (u32, u64)>>,
    /// Per stripe: (gsn, local LSN) of every record durable at open, in
    /// gsn order — positions the merged recovery scan.
    scan_tables: Vec<Vec<(u64, u64)>>,
    /// Striping-level counters (stripe_appends / stripe_flushes / merged
    /// lag); aggregate views merge these with the per-stripe snapshots.
    stats: Arc<LogStats>,
    fault: Mutex<Option<Arc<FaultPlan>>>,
    fault_armed: AtomicBool,
    /// Merged reclaim floor (gsn): every record below it has been
    /// truncated. Persisted on *every* stripe disk before any local
    /// truncation, read back as the max across disks (a crash mid-loop
    /// leaves a prefix of disks carrying the new floor).
    floor: AtomicU64,
    /// gsn targets of merged flushes still in their issue→settle window,
    /// with a refcount per target. The smallest key is the oldest pending
    /// flush — truncation must never cross it.
    pending_flushes: Arc<Mutex<BTreeMap<u64, u64>>>,
}

/// Join state of one merged flush: settles the caller's ticket when the
/// last per-stripe leg lands, accounting first-to-last leg lag.
struct FlushJoin {
    remaining: AtomicUsize,
    ok: AtomicBool,
    first_settle: Mutex<Option<Instant>>,
    ticket: FlushTicket,
    stats: Arc<LogStats>,
    /// Deregistration handle into [`StripedLog::pending_flushes`].
    registry: Arc<Mutex<BTreeMap<u64, u64>>>,
    gsn: u64,
}

impl StripedLog {
    /// Open a striped log over `disks` (one stripe per disk), re-merging
    /// whatever survived on them: accept the longest contiguous gsn
    /// prefix, truncate every stripe past it (zero-fill, so the stale
    /// region reads as end-of-log), and resume appending at the merged
    /// end.
    pub fn open(
        disks: Vec<Arc<dyn Disk>>,
        model: DiskModel,
        policy: FlushPolicy,
    ) -> Result<Arc<StripedLog>, MspError> {
        assert!(!disks.is_empty(), "a striped log needs at least one disk");
        let n = disks.len();

        // The persisted merged floor is the max over the stripe disks: it
        // is written to every disk before any local truncation, so a crash
        // mid-loop leaves some disks carrying the newest value and the
        // rest one behind.
        let mut merged_floor = DATA_START;
        for disk in &disks {
            if let Some(f) = crate::anchor::read_merged_floor(disk.as_ref())? {
                merged_floor = merged_floor.max(f);
            }
        }

        // Phase 1: raw-scan each stripe from its own persisted local
        // floor (below it the device is zeros), collecting (gsn, local
        // LSN, framed size) in local order. A frame that is not a striped
        // wrapper ends that stripe's stream, like a torn tail. Records
        // with gsn below the merged floor are dropped: a crash between
        // the merged-floor persist and a stripe's local truncation leaves
        // them on the device, but they are already reclaimed logically.
        let mut streams: Vec<Vec<(u64, u64, u64)>> = Vec::with_capacity(n);
        let mut scan_ends: Vec<u64> = Vec::with_capacity(n);
        for disk in &disks {
            let local_floor = crate::anchor::read_floor(disk.as_ref())?
                .unwrap_or(DATA_START)
                .max(DATA_START);
            let mut stream = Vec::new();
            let mut sc = RawScanner::new(Arc::clone(disk), local_floor, None, None);
            while let Some((local, payload)) = sc.step()? {
                let Some(gsn) = LogRecord::striped_gsn(&payload) else {
                    break;
                };
                if gsn.0 >= merged_floor {
                    stream.push((gsn.0, local, (FRAME_HEADER + payload.len()) as u64));
                }
            }
            scan_ends.push(sc.offset());
            streams.push(stream);
        }

        // Phase 2: k-way merge by gsn, starting at the merged floor (the
        // floor is always a surviving record's gsn or the exact append
        // point, so contiguity from there is the same invariant as from
        // `DATA_START` on a never-truncated log). The gsn space is exactly
        // contiguous (no padding — padding is stripe-local), so the
        // merge just looks for the stripe holding the expected gsn; the
        // first miss is the crash frontier.
        let mut heads = vec![0usize; n];
        let mut expected = merged_floor;
        let mut index = HashMap::new();
        let mut scan_tables: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
        loop {
            let mut hit = None;
            for s in 0..n {
                if let Some(&(gsn, local, framed)) = streams[s].get(heads[s]) {
                    if gsn == expected {
                        hit = Some((s, local, framed));
                        break;
                    }
                }
            }
            let Some((s, local, framed)) = hit else { break };
            index.insert(expected, (s as u32, local));
            scan_tables[s].push((expected, local));
            heads[s] += 1;
            expected += framed;
        }

        // Phase 3: truncate each stripe at its first record past the
        // merged frontier by zero-filling the stale region — zeros read
        // as sector padding / end-of-stream, and the next appends
        // overwrite them.
        // Per-stripe flush scheduling: legs must coalesce. A merged flush
        // fans one leg to every stripe holding records below its target,
        // so under load every stripe sees every concurrent commit's leg;
        // serving each leg with its own device write (the single-log
        // per-request baseline) would multiply the seek work by the
        // stripe count and gate every commit on the slowest stripe's
        // write queue. Each stripe therefore runs group commit: a leg is
        // still dispatched the moment it is issued — no added delay, the
        // caller's scheduling knob governs *when* legs exist — but one
        // device write serves every leg queued behind it. §5.5 batch
        // flushing keeps its window if the caller asked for it.
        let stripe_policy = if policy.batch_timeout.is_some() {
            policy
        } else {
            FlushPolicy {
                group_commit: true,
                ..policy
            }
        };
        let mut stripes = Vec::with_capacity(n);
        for s in 0..n {
            let trunc = streams[s]
                .get(heads[s])
                .map(|&(_, local, _)| local)
                .unwrap_or(scan_ends[s]);
            let len = disks[s].len();
            if len > trunc {
                disks[s]
                    .write(trunc, &vec![0u8; (len - trunc) as usize])
                    .map_err(MspError::Io)?;
            }
            stripes.push(PhysicalLog::open_at(
                Arc::clone(&disks[s]),
                model.clone(),
                stripe_policy,
                trunc,
            )?);
        }

        let stats = Arc::new(LogStats::default());
        if merged_floor > DATA_START {
            // Finish a truncation the crash interrupted: derive each
            // stripe's local floor from the merged floor (the first
            // surviving record's local position, or the whole durable
            // extent when nothing survived) and re-drive the local
            // truncations. Idempotent when the truncation had completed.
            for s in 0..n {
                let local_floor = scan_tables[s]
                    .first()
                    .map(|&(_, local)| local)
                    .unwrap_or_else(|| stripes[s].durable_lsn().0);
                if local_floor > stripes[s].floor().0 {
                    stripes[s].truncate_below(Lsn(local_floor))?;
                }
            }
            stats.note_reclaim_floor(merged_floor);
        }

        Ok(Arc::new(StripedLog {
            stripes,
            states: (0..n).map(|_| Mutex::new(StripeState::default())).collect(),
            next_gsn: AtomicU64::new(expected),
            merged: AtomicU64::new(expected),
            index: Mutex::new(index),
            scan_tables,
            stats,
            fault: Mutex::new(None),
            fault_armed: AtomicBool::new(false),
            floor: AtomicU64::new(merged_floor),
            pending_flushes: Arc::new(Mutex::new(BTreeMap::new())),
        }))
    }

    /// Number of stripes.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// The per-stripe physical logs (tests and per-stripe stat
    /// breakdowns).
    pub fn stripes(&self) -> &[Arc<PhysicalLog>] {
        &self.stripes
    }

    /// Per-stripe overhead counters, in stripe order.
    pub fn stripe_stats(&self) -> Vec<LogStatsSnapshot> {
        self.stripes.iter().map(|s| s.stats()).collect()
    }

    /// Aggregate counters: the field-wise sum of every stripe plus the
    /// striping-level counters (stripe_appends / stripe_flushes / merged
    /// watermark lag).
    pub fn stats(&self) -> LogStatsSnapshot {
        self.stripes
            .iter()
            .fold(self.stats.snapshot(), |acc, s| acc.merge(&s.stats()))
    }

    /// Which stripe a record lands on: session records follow their
    /// session, shared-variable records their variable (so a variable's
    /// backward chain stays stripe-local), MSP-level records stripe 0.
    fn route(&self, record: &LogRecord) -> usize {
        let n = self.stripes.len();
        match record {
            LogRecord::SharedWrite { var, .. }
            | LogRecord::SharedOp { var, .. }
            | LogRecord::SharedCheckpoint { var, .. } => hash_route(u64::from(var.0), n),
            _ => match record.session() {
                Some(session) => hash_route(session.0, n),
                None => 0,
            },
        }
    }

    /// Append `record`, returning its gsn and framed size in the gsn
    /// address space (= its stripe-local framed size, wrapper included).
    pub fn append_sized(&self, record: &LogRecord) -> (Lsn, u64) {
        // Same crash site as the single log's append.
        self.fault_point(CrashPoint::MidAppend);
        let stripe = self.route(record);
        // Frame size is gsn-independent (the gsn is a fixed 8 bytes), so
        // it can be measured before the gsn is allocated.
        let framed = FRAME_HEADER as u64 + STRIPE_WRAPPER + record.to_bytes().len() as u64;
        let gsn = {
            let mut st = self.states[stripe].lock();
            // Allocation under the stripe lock: local order == gsn order.
            let gsn = self.next_gsn.fetch_add(framed, Ordering::SeqCst);
            let wrapped = LogRecord::Striped {
                gsn: Lsn(gsn),
                inner: Box::new(record.clone()),
            };
            let (local, stripe_framed) = self.stripes[stripe].append_sized(&wrapped);
            debug_assert_eq!(stripe_framed, framed);
            st.pending.insert(gsn, local.0 + framed);
            // Index insert stays inside the critical section: truncation
            // snapshots the index while holding every stripe lock, and an
            // allocated-but-unindexed record could otherwise be mistaken
            // for reclaimable space.
            self.index.lock().insert(gsn, (stripe as u32, local.0));
            gsn
        };
        self.stats.on_stripe_append();
        (Lsn(gsn), framed)
    }

    /// Append without the size (see [`append_sized`](Self::append_sized)).
    pub fn append(&self, record: &LogRecord) -> Lsn {
        self.append_sized(record).0
    }

    /// gsn the next append will receive.
    pub fn end_lsn(&self) -> Lsn {
        Lsn(self.next_gsn.load(Ordering::SeqCst))
    }

    /// The merged durability watermark: every record whose gsn is
    /// strictly below it is durable on its stripe. Monotone.
    pub fn durable_lsn(&self) -> Lsn {
        // Snapshot the allocation point *before* inspecting the stripes:
        // any record allocated before this load is already in its
        // stripe's pending map (insertion shares the allocation's
        // critical section), so it cannot be missed below.
        let ceiling = self.next_gsn.load(Ordering::SeqCst);
        let mut merged = ceiling;
        for (s, state) in self.states.iter().enumerate() {
            let mut st = state.lock();
            let durable = self.stripes[s].durable_lsn().0;
            while let Some((&gsn, &end)) = st.pending.first_key_value() {
                if end <= durable {
                    st.pending.remove(&gsn);
                } else {
                    break;
                }
            }
            if let Some((&gsn, _)) = st.pending.first_key_value() {
                merged = merged.min(gsn);
            }
        }
        // Fold monotonically: a concurrent computation may have seen a
        // higher frontier; never publish a regression.
        let mut prev = self.merged.load(Ordering::SeqCst);
        loop {
            if merged <= prev {
                return Lsn(prev);
            }
            match self.merged.compare_exchange_weak(
                prev,
                merged,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return Lsn(merged),
                Err(p) => prev = p,
            }
        }
    }

    /// Merged flush request: one leg per stripe holding records at or
    /// below `lsn`, joined into a single ticket that settles when the
    /// last leg lands. See [`PhysicalLog::flush_to_async`] for ticket
    /// semantics.
    pub fn flush_to_async(&self, lsn: Lsn) -> FlushTicket {
        self.stats.on_ticket_issued();
        let ticket = FlushTicket::unsettled();
        if self.fault_point(CrashPoint::PreFlush) {
            ticket.settle_now(false);
            return ticket;
        }
        if self.durable_lsn().0 > lsn.0 || self.next_gsn.load(Ordering::SeqCst) <= lsn.0 {
            self.stats.on_ticket_completed();
            ticket.settle_now(true);
            return ticket;
        }
        let mut legs = Vec::new();
        for (s, state) in self.states.iter().enumerate() {
            // The last pending record at or below the target on this
            // stripe; flushing its end covers every earlier one.
            let target = {
                let st = state.lock();
                st.pending.range(..=lsn.0).next_back().map(|(_, &end)| end)
            };
            if let Some(end) = target {
                self.stats.on_stripe_flush();
                legs.push(self.stripes[s].flush_to_async(Lsn(end - 1)));
            }
        }
        if legs.is_empty() {
            // Every record at or below the target is already durable on
            // its stripe (the frontiers just had not been re-merged yet).
            self.stats.on_ticket_completed();
            ticket.settle_now(true);
            return ticket;
        }
        // Register the merged flush for the truncation fold: until the
        // last leg settles, the floor must stay below this target.
        *self.pending_flushes.lock().entry(lsn.0).or_insert(0) += 1;
        let join = Arc::new(FlushJoin {
            remaining: AtomicUsize::new(legs.len()),
            ok: AtomicBool::new(true),
            first_settle: Mutex::new(None),
            ticket: ticket.clone_handle(),
            stats: Arc::clone(&self.stats),
            registry: Arc::clone(&self.pending_flushes),
            gsn: lsn.0,
        });
        for leg in legs {
            let join = Arc::clone(&join);
            leg.on_settle(move |ok| {
                if !ok {
                    join.ok.store(false, Ordering::Relaxed);
                }
                let now = Instant::now();
                let first = {
                    let mut slot = join.first_settle.lock();
                    *slot.get_or_insert(now)
                };
                if join.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    {
                        let mut reg = join.registry.lock();
                        if let Some(c) = reg.get_mut(&join.gsn) {
                            if *c <= 1 {
                                reg.remove(&join.gsn);
                            } else {
                                *c -= 1;
                            }
                        }
                    }
                    join.stats
                        .on_merged_watermark_lag(now.duration_since(first).as_nanos() as u64);
                    let all_ok = join.ok.load(Ordering::Relaxed);
                    if all_ok {
                        join.stats.on_ticket_completed();
                    }
                    join.ticket.settle_now(all_ok);
                }
            });
        }
        ticket
    }

    /// Block until the record at `lsn` is merged-durable.
    pub fn flush_to(&self, lsn: Lsn) -> Result<(), MspError> {
        self.flush_to_async(lsn).wait()
    }

    /// Flush everything appended so far on every stripe.
    pub fn flush_all(&self) -> Result<(), MspError> {
        for stripe in &self.stripes {
            stripe.flush_all()?;
        }
        Ok(())
    }

    /// The merged reclaim floor (gsn): no record below it survives.
    pub fn floor(&self) -> Lsn {
        Lsn(self.floor.load(Ordering::Acquire))
    }

    /// gsn target of the oldest merged flush still in its issue→settle
    /// window, if any.
    pub fn oldest_pending_flush(&self) -> Option<Lsn> {
        self.pending_flushes.lock().keys().next().copied().map(Lsn)
    }

    /// Advance the merged reclaim floor toward `floor` and release the
    /// device space below it on every stripe. Returns the device bytes
    /// newly reclaimed (summed across stripes).
    ///
    /// The requested floor is first clamped to the merged durability
    /// watermark, then **snapped up** to the smallest live record gsn at
    /// or above it (or the exact append point when nothing at or above it
    /// is live): reopen re-merges the stripes by walking contiguous gsns
    /// from the persisted floor, so the floor must always be a real
    /// record's gsn or the next append's. The snap never crosses a live
    /// record — there are no records at all between the clamped request
    /// and the snap target. Ordering is crash-safe: the merged floor is
    /// persisted on every stripe disk, then each stripe persists its
    /// local floor before reclaiming; reopen completes whatever suffix of
    /// that sequence the crash cut off.
    pub fn truncate_below(&self, floor: Lsn) -> Result<u64, MspError> {
        let durable = self.durable_lsn().0;
        let cur = self.floor.load(Ordering::Acquire);
        let req = floor.0.min(durable).max(cur).max(DATA_START);
        if req <= cur {
            return Ok(0);
        }
        // Quiesce every stripe: no append can be mid-flight while all
        // stripe locks are held, so the index is a complete record map
        // and `next_gsn` is the exact append point.
        let (target, local_floors) = {
            let _guards: Vec<_> = self.states.iter().map(|s| s.lock()).collect();
            let mut index = self.index.lock();
            let target = index
                .keys()
                .copied()
                .filter(|&g| g >= req)
                .min()
                .unwrap_or_else(|| self.next_gsn.load(Ordering::SeqCst));
            if target <= cur {
                return Ok(0);
            }
            // Per-stripe local floor: the first surviving record's local
            // position, or the stripe's whole durable extent when nothing
            // on it survives (its volatile tail sits above the durable
            // end, so a late flush cannot land below this floor).
            let mut local_floors: Vec<Option<u64>> = vec![None; self.stripes.len()];
            for (&g, &(s, local)) in index.iter() {
                if g >= target {
                    let slot = &mut local_floors[s as usize];
                    *slot = Some(slot.map_or(local, |c: u64| c.min(local)));
                }
            }
            // Reclaimed entries can never be read again; pruning bounds
            // the index at O(live records).
            index.retain(|&g, _| g >= target);
            let local_floors: Vec<u64> = local_floors
                .iter()
                .enumerate()
                .map(|(s, lf)| lf.unwrap_or_else(|| self.stripes[s].durable_lsn().0))
                .collect();
            (target, local_floors)
        };
        // Persist the merged floor on every stripe disk *before* any
        // local truncation — reopen reads the max across disks.
        for stripe in &self.stripes {
            crate::anchor::write_merged_floor(stripe.disk().as_ref(), stripe.model(), target)?;
        }
        self.floor.fetch_max(target, Ordering::AcqRel);
        if self.fault_point(CrashPoint::TruncateStart) {
            return Err(MspError::Shutdown);
        }
        let mut reclaimed = 0;
        for (s, stripe) in self.stripes.iter().enumerate() {
            reclaimed += stripe.truncate_below(Lsn(local_floors[s]))?;
        }
        self.stats.note_reclaim_floor(target);
        if self.fault_point(CrashPoint::TruncateComplete) {
            return Err(MspError::Shutdown);
        }
        Ok(reclaimed)
    }

    /// Resolve a gsn to its (stripe, local LSN) home.
    pub(crate) fn locate(&self, gsn: u64) -> Result<(usize, u64), MspError> {
        self.index
            .lock()
            .get(&gsn)
            .map(|&(s, local)| (s as usize, local))
            .ok_or_else(|| corrupt(gsn, "read past end of log"))
    }

    /// Read and decode the record at `gsn` (tail-serving, like the
    /// single log's read).
    pub fn read_record(&self, lsn: Lsn) -> Result<LogRecord, MspError> {
        self.read_record_sized(lsn).map(|(rec, _)| rec)
    }

    /// Like [`read_record`](Self::read_record) plus the record's framed
    /// size in the gsn address space.
    pub fn read_record_sized(&self, lsn: Lsn) -> Result<(LogRecord, u64), MspError> {
        let (stripe, local) = self.locate(lsn.0)?;
        let (rec, framed) = self.stripes[stripe].read_record_sized(Lsn(local))?;
        Ok((unwrap_striped(rec, lsn.0)?, framed))
    }

    /// Merged sequential scan of the durable log from gsn `from`: one
    /// sequential scanner per stripe, k-way merged by gsn.
    pub fn scan_from(&self, from: Lsn) -> StripedScanner<'_> {
        self.scanner(from, false, None)
    }

    /// Like [`scan_from`](Self::scan_from) with each stripe's device
    /// reads running in its own prefetch thread.
    pub fn scan_from_pipelined(&self, from: Lsn) -> StripedScanner<'_> {
        self.scanner(from, true, None)
    }

    /// Like [`scan_from_pipelined`](Self::scan_from_pipelined) with each
    /// stripe's I/O leg feeding its chunks into a replay buffer pool
    /// (`feeds[s]` is stripe `s`'s feed handle).
    pub fn scan_from_pipelined_fed(&self, from: Lsn, feeds: Vec<ScanFeed>) -> StripedScanner<'_> {
        debug_assert_eq!(feeds.len(), self.stripes.len());
        self.scanner(from, true, Some(feeds))
    }

    fn scanner(
        &self,
        from: Lsn,
        pipelined: bool,
        feeds: Option<Vec<ScanFeed>>,
    ) -> StripedScanner<'_> {
        // Nothing below the merged floor survives; starting there also
        // keeps the per-stripe legs above their own local floors.
        let from = from
            .0
            .max(DATA_START)
            .max(self.floor.load(Ordering::Acquire));
        let mut legs = Vec::with_capacity(self.stripes.len());
        for (s, stripe) in self.stripes.iter().enumerate() {
            // First durable record of this stripe at or past `from`; a
            // stripe with none contributes an exhausted leg.
            let start = match self.scan_tables[s].partition_point(|&(gsn, _)| gsn < from) {
                i if i < self.scan_tables[s].len() => Some(self.scan_tables[s][i].1),
                _ => None,
            };
            let scanner = match (start, feeds.as_ref()) {
                (Some(local), Some(feeds)) if pipelined => {
                    stripe.scan_from_pipelined_fed(Lsn(local), feeds[s].clone())
                }
                (Some(local), _) if pipelined => stripe.scan_from_pipelined(Lsn(local)),
                (Some(local), _) => stripe.scan_from(Lsn(local)),
                // Position at the device end: immediately exhausted.
                (None, _) => stripe.scan_from(Lsn(stripe.disk().len())),
            };
            legs.push(ScanLeg {
                scanner,
                head: None,
                primed: false,
            });
        }
        StripedScanner {
            legs,
            position: from,
        }
    }

    /// Install a crash-point plan. Inner stripes carry no plan of their
    /// own; the striped log probes the shared crash sites itself and a
    /// fire crashes every stripe.
    pub fn install_fault_plan(&self, plan: Arc<FaultPlan>) {
        *self.fault.lock() = Some(plan);
        self.fault_armed.store(true, Ordering::Release);
    }

    /// Crash-site probe over the whole striped log; returns `true` iff
    /// this call crashed it. See [`PhysicalLog::fault_point`].
    pub fn fault_point(&self, point: CrashPoint) -> bool {
        if !self.fault_armed.load(Ordering::Acquire) {
            return false;
        }
        let plan = self.fault.lock().clone();
        let Some(plan) = plan else { return false };
        if !plan.should_fire(point) {
            return false;
        }
        self.crash();
        plan.notify_fired(point);
        true
    }

    /// Crash every stripe: volatile tails are lost, pending merged
    /// tickets fail (their legs fail). Idempotent.
    pub fn crash(&self) {
        for stripe in &self.stripes {
            stripe.crash();
        }
    }

    /// Flush everything and stop every stripe.
    pub fn close(&self) {
        let _ = self.flush_all();
        for stripe in &self.stripes {
            stripe.close();
        }
    }

    /// Charge the sequential-read cost for `bytes` of replay-window read
    /// (cache-less replay path). Charged against stripe 0's arm — the
    /// serial-equivalent bound.
    pub fn charge_sequential_read(&self, bytes: u64) {
        self.stripes[0].charge_sequential_read(bytes);
    }
}

/// One stripe's contribution to a merged scan.
struct ScanLeg<'a> {
    scanner: LogScanner<'a>,
    /// Decoded-but-not-yet-yielded head: (gsn, inner record, framed
    /// size). The framed size is the stripe scanner's position delta
    /// across the pull — which, gsn space being contiguous, is also the
    /// record's gsn span.
    head: Option<(u64, LogRecord, u64)>,
    primed: bool,
}

impl ScanLeg<'_> {
    /// Ensure `head` holds the next record (or the leg is exhausted).
    fn prime(&mut self) -> Result<(), MspError> {
        if self.primed {
            return Ok(());
        }
        self.primed = true;
        self.head = match self.scanner.next() {
            Some(Ok((local, rec))) => {
                // After a successful pull the scanner sits exactly at the
                // record's local end.
                let framed = self.scanner.position().0 - local.0;
                match rec {
                    LogRecord::Striped { gsn, inner } => Some((gsn.0, *inner, framed)),
                    other => {
                        return Err(corrupt(
                            local.0,
                            &format!("unstriped {} record on a striped log", other.kind()),
                        ))
                    }
                }
            }
            Some(Err(e)) => return Err(e),
            None => None,
        };
        Ok(())
    }
}

/// Iterator over `(gsn, record)` pairs of a striped log's durable
/// prefix, in gsn order — the striped analogue of [`LogScanner`].
pub struct StripedScanner<'a> {
    legs: Vec<ScanLeg<'a>>,
    position: u64,
}

impl StripedScanner<'_> {
    /// gsn the scan has reached (the append point when exhausted).
    pub fn position(&self) -> Lsn {
        Lsn(self.position)
    }
}

impl Iterator for StripedScanner<'_> {
    type Item = Result<(Lsn, LogRecord), MspError>;

    fn next(&mut self) -> Option<Self::Item> {
        let mut best: Option<usize> = None;
        for i in 0..self.legs.len() {
            if let Err(e) = self.legs[i].prime() {
                return Some(Err(e));
            }
            if let Some((gsn, _, _)) = self.legs[i].head {
                let best_gsn = best.map(|b| self.legs[b].head.as_ref().expect("primed").0);
                if best_gsn.is_none_or(|b| gsn < b) {
                    best = Some(i);
                }
            }
        }
        let leg = best?;
        let (gsn, rec, framed) = self.legs[leg].head.take().expect("primed head");
        self.legs[leg].primed = false;
        self.position = gsn + framed;
        Some(Ok((Lsn(gsn), rec)))
    }
}

/// The WAL facade the runtime programs against: a single physical log or
/// a striped one, with one method surface. Striping is a deployment knob,
/// not an API change.
pub enum Wal {
    Single(Arc<PhysicalLog>),
    Striped(Arc<StripedLog>),
}

impl Wal {
    /// The striped backend, if this is a striped log.
    pub fn striped(&self) -> Option<&Arc<StripedLog>> {
        match self {
            Wal::Single(_) => None,
            Wal::Striped(s) => Some(s),
        }
    }

    pub fn append(&self, record: &LogRecord) -> Lsn {
        match self {
            Wal::Single(l) => l.append(record),
            Wal::Striped(s) => s.append(record),
        }
    }

    pub fn append_sized(&self, record: &LogRecord) -> (Lsn, u64) {
        match self {
            Wal::Single(l) => l.append_sized(record),
            Wal::Striped(s) => s.append_sized(record),
        }
    }

    pub fn end_lsn(&self) -> Lsn {
        match self {
            Wal::Single(l) => l.end_lsn(),
            Wal::Striped(s) => s.end_lsn(),
        }
    }

    pub fn durable_lsn(&self) -> Lsn {
        match self {
            Wal::Single(l) => l.durable_lsn(),
            Wal::Striped(s) => s.durable_lsn(),
        }
    }

    pub fn flush_to(&self, lsn: Lsn) -> Result<(), MspError> {
        match self {
            Wal::Single(l) => l.flush_to(lsn),
            Wal::Striped(s) => s.flush_to(lsn),
        }
    }

    pub fn flush_to_async(&self, lsn: Lsn) -> FlushTicket {
        match self {
            Wal::Single(l) => l.flush_to_async(lsn),
            Wal::Striped(s) => s.flush_to_async(lsn),
        }
    }

    pub fn flush_all(&self) -> Result<(), MspError> {
        match self {
            Wal::Single(l) => l.flush_all(),
            Wal::Striped(s) => s.flush_all(),
        }
    }

    pub fn read_record(&self, lsn: Lsn) -> Result<LogRecord, MspError> {
        match self {
            Wal::Single(l) => l.read_record(lsn),
            Wal::Striped(s) => s.read_record(lsn),
        }
    }

    pub fn read_record_sized(&self, lsn: Lsn) -> Result<(LogRecord, u64), MspError> {
        match self {
            Wal::Single(l) => l.read_record_sized(lsn),
            Wal::Striped(s) => s.read_record_sized(lsn),
        }
    }

    pub fn scan_from(&self, from: Lsn) -> WalScanner<'_> {
        match self {
            Wal::Single(l) => WalScanner::Single(l.scan_from(from)),
            Wal::Striped(s) => WalScanner::Striped(s.scan_from(from)),
        }
    }

    pub fn scan_from_pipelined(&self, from: Lsn) -> WalScanner<'_> {
        match self {
            Wal::Single(l) => WalScanner::Single(l.scan_from_pipelined(from)),
            Wal::Striped(s) => WalScanner::Striped(s.scan_from_pipelined(from)),
        }
    }

    /// Pipelined scan whose I/O stage feeds the chunks it reads into
    /// `cache`'s buffer pool (per stripe when striped), so a replay that
    /// follows the scan finds its blocks already resident. Falls back to
    /// the unfed pipelined scan on a backend mismatch.
    pub fn scan_from_pipelined_fed(&self, from: Lsn, cache: &WalReplayCache) -> WalScanner<'_> {
        match (self, cache) {
            (Wal::Single(l), WalReplayCache::Single(c)) => {
                WalScanner::Single(l.scan_from_pipelined_fed(from, c.feed()))
            }
            (Wal::Striped(s), WalReplayCache::Striped { caches, .. }) => WalScanner::Striped(
                s.scan_from_pipelined_fed(from, caches.iter().map(|c| c.feed()).collect()),
            ),
            _ => self.scan_from_pipelined(from),
        }
    }

    pub fn charge_sequential_read(&self, bytes: u64) {
        match self {
            Wal::Single(l) => l.charge_sequential_read(bytes),
            Wal::Striped(s) => s.charge_sequential_read(bytes),
        }
    }

    /// Advance the reclaim floor toward `floor` and release the device
    /// space below it; returns the device bytes newly reclaimed. See
    /// [`PhysicalLog::truncate_below`] / [`StripedLog::truncate_below`].
    pub fn truncate_below(&self, floor: Lsn) -> Result<u64, MspError> {
        match self {
            Wal::Single(l) => l.truncate_below(floor),
            Wal::Striped(s) => s.truncate_below(floor),
        }
    }

    /// The current reclaim floor (LSN / merged gsn).
    pub fn floor(&self) -> Lsn {
        match self {
            Wal::Single(l) => l.floor(),
            Wal::Striped(s) => s.floor(),
        }
    }

    /// Target of the oldest flush still pending, if any — a live
    /// dependency the reclaim-floor fold must respect.
    pub fn oldest_pending_flush(&self) -> Option<Lsn> {
        match self {
            Wal::Single(l) => l.oldest_pending_flush(),
            Wal::Striped(s) => s.oldest_pending_flush(),
        }
    }

    pub fn install_fault_plan(&self, plan: Arc<FaultPlan>) {
        match self {
            Wal::Single(l) => l.install_fault_plan(plan),
            Wal::Striped(s) => s.install_fault_plan(plan),
        }
    }

    pub fn fault_point(&self, point: CrashPoint) -> bool {
        match self {
            Wal::Single(l) => l.fault_point(point),
            Wal::Striped(s) => s.fault_point(point),
        }
    }

    pub fn crash(&self) {
        match self {
            Wal::Single(l) => l.crash(),
            Wal::Striped(s) => s.crash(),
        }
    }

    pub fn close(&self) {
        match self {
            Wal::Single(l) => l.close(),
            Wal::Striped(s) => s.close(),
        }
    }

    /// Aggregate overhead counters (summed across stripes when striped).
    pub fn stats(&self) -> LogStatsSnapshot {
        match self {
            Wal::Single(l) => l.stats(),
            Wal::Striped(s) => s.stats(),
        }
    }

    /// Per-stripe counter breakdown; a single log is one "stripe".
    pub fn stripe_stats(&self) -> Vec<LogStatsSnapshot> {
        match self {
            Wal::Single(l) => vec![l.stats()],
            Wal::Striped(s) => s.stripe_stats(),
        }
    }
}

/// Scanner over either backend, with the [`LogScanner`] interface.
pub enum WalScanner<'a> {
    Single(LogScanner<'a>),
    Striped(StripedScanner<'a>),
}

impl WalScanner<'_> {
    /// Offset/gsn the scan has reached (the append point when
    /// exhausted).
    pub fn position(&self) -> Lsn {
        match self {
            WalScanner::Single(s) => s.position(),
            WalScanner::Striped(s) => s.position(),
        }
    }
}

impl Iterator for WalScanner<'_> {
    type Item = Result<(Lsn, LogRecord), MspError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            WalScanner::Single(s) => s.next(),
            WalScanner::Striped(s) => s.next(),
        }
    }
}

/// Replay cache over either backend. Striped: one [`ReplayCache`] view
/// per stripe (each covering its stripe's immutable crash-time prefix),
/// all borrowing slots from one shared [`BufferPool`], with gsn reads
/// translated to stripe-local frames and unwrapped.
pub enum WalReplayCache {
    Single(ReplayCache),
    Striped {
        log: Arc<StripedLog>,
        caches: Vec<ReplayCache>,
    },
}

impl WalReplayCache {
    /// Build a cache of `blocks` 64 KB slots over `wal`'s durable prefix
    /// (clock replacement); striped stripes share the one pool rather
    /// than splitting the budget.
    pub fn new(wal: &Wal, blocks: usize) -> WalReplayCache {
        WalReplayCache::with_pool(
            wal,
            &Arc::new(BufferPool::new(blocks, ReplacementPolicy::Clock)),
        )
    }

    /// Views over `wal` borrowing slots from a shared `pool` (one
    /// registered source per physical log / stripe).
    pub fn with_pool(wal: &Wal, pool: &Arc<BufferPool>) -> WalReplayCache {
        match wal {
            Wal::Single(l) => WalReplayCache::Single(ReplayCache::with_pool(l, pool)),
            Wal::Striped(s) => WalReplayCache::Striped {
                log: Arc::clone(s),
                caches: s
                    .stripes()
                    .iter()
                    .map(|l| ReplayCache::with_pool(l, pool))
                    .collect(),
            },
        }
    }

    /// The shared pool behind this cache's views.
    pub fn pool(&self) -> &Arc<BufferPool> {
        match self {
            WalReplayCache::Single(c) => c.pool(),
            WalReplayCache::Striped { caches, .. } => caches[0].pool(),
        }
    }

    /// Pull the blocks containing `positions` (LSNs / merged gsns) into
    /// the pool ahead of a replaying worker. Positions that cannot be
    /// located (reclaimed, or appended after the cache snapshot) are
    /// skipped — the demand path serves them.
    pub fn prefetch_positions(&self, positions: &[Lsn]) -> Result<(), MspError> {
        match self {
            WalReplayCache::Single(c) => c.prefetch_positions(positions),
            WalReplayCache::Striped { log, caches } => {
                // Translate each gsn to its stripe-local frame; group per
                // stripe so each view dedupes its own block list.
                let mut per_stripe: Vec<Vec<Lsn>> = vec![Vec::new(); caches.len()];
                for &p in positions {
                    if let Ok((stripe, local)) = log.locate(p.0) {
                        per_stripe[stripe].push(Lsn(local));
                    }
                }
                for (stripe, locals) in per_stripe.iter().enumerate() {
                    if !locals.is_empty() {
                        caches[stripe].prefetch_positions(locals)?;
                    }
                }
                Ok(())
            }
        }
    }

    /// Read and decode the record at `lsn`, plus its framed size in the
    /// log's address space.
    pub fn read_record_sized(&self, lsn: Lsn) -> Result<(LogRecord, u64), MspError> {
        match self {
            WalReplayCache::Single(c) => c.read_record_sized(lsn),
            WalReplayCache::Striped { log, caches } => {
                let (stripe, local) = log.locate(lsn.0)?;
                let (rec, framed) = caches[stripe].read_record_sized(Lsn(local))?;
                Ok((unwrap_striped(rec, lsn.0)?, framed))
            }
        }
    }

    /// Read and decode the record at `lsn`.
    pub fn read_record(&self, lsn: Lsn) -> Result<LogRecord, MspError> {
        self.read_record_sized(lsn).map(|(rec, _)| rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use msp_types::{RequestSeq, SessionId};

    fn rec(session: u64, seq: u64) -> LogRecord {
        LogRecord::RequestReceive {
            session: SessionId(session),
            seq: RequestSeq(seq),
            method: "m".into(),
            payload: vec![7; 40],
            sender_dv: None,
        }
    }

    fn open_striped(disks: &[MemDisk]) -> Arc<StripedLog> {
        StripedLog::open(
            disks
                .iter()
                .map(|d| Arc::new(d.clone()) as Arc<dyn Disk>)
                .collect(),
            DiskModel::zero(),
            FlushPolicy::immediate(),
        )
        .unwrap()
    }

    fn mem_disks(n: usize) -> Vec<MemDisk> {
        (0..n).map(|_| MemDisk::new()).collect()
    }

    #[test]
    fn gsn_space_is_contiguous_across_stripes() {
        let disks = mem_disks(3);
        let log = open_striped(&disks);
        let mut expected = DATA_START;
        for i in 0..50 {
            let (gsn, framed) = log.append_sized(&rec(i, 0));
            assert_eq!(gsn.0, expected, "gsn space must have no holes");
            expected += framed;
        }
        assert_eq!(log.end_lsn().0, expected);
        log.close();
    }

    #[test]
    fn reads_resolve_across_stripes() {
        let disks = mem_disks(4);
        let log = open_striped(&disks);
        let mut lsns = Vec::new();
        for i in 0..32 {
            lsns.push((log.append(&rec(i, i)), rec(i, i)));
        }
        for (lsn, want) in &lsns {
            assert_eq!(&log.read_record(*lsn).unwrap(), want);
        }
        log.close();
    }

    #[test]
    fn merged_watermark_requires_every_stripe() {
        let disks = mem_disks(2);
        let log = open_striped(&disks);
        // Two sessions landing on different stripes.
        let (a, b) = distinct_stripe_sessions(&log);
        let l1 = log.append(&rec(a, 0));
        let l2 = log.append(&rec(b, 0));
        assert!(l2 > l1);
        // Flush only the *later* record's stripe, directly.
        let (s2, _) = log.locate(l2.0).unwrap();
        log.stripes()[s2].flush_all().unwrap();
        // The merged watermark must still sit at or below l1: the earlier
        // record's stripe has not flushed.
        assert!(
            log.durable_lsn().0 <= l1.0,
            "merged watermark ran ahead of an unflushed stripe"
        );
        // A full merged flush advances it past both.
        log.flush_to(l2).unwrap();
        assert!(log.durable_lsn().0 > l2.0);
        log.close();
    }

    /// Two session ids routed to different stripes of `log`.
    fn distinct_stripe_sessions(log: &StripedLog) -> (u64, u64) {
        let n = log.stripe_count();
        let home = |id: u64| hash_route(id, n);
        let a = 1u64;
        let mut b = 2u64;
        while home(b) == home(a) {
            b += 1;
        }
        (a, b)
    }

    #[test]
    fn crash_truncates_to_merged_frontier() {
        let disks = mem_disks(2);
        let (a, b, l1, l2, l3);
        {
            let log = open_striped(&disks);
            (a, b) = distinct_stripe_sessions(&log);
            l1 = log.append(&rec(a, 0)); // stripe A — never flushed
            l2 = log.append(&rec(b, 0)); // stripe B
            l3 = log.append(&rec(b, 1)); // stripe B
                                         // Stripe B's arm runs ahead: its records are stripe-durable.
            let (sb, _) = log.locate(l2.0).unwrap();
            log.stripes()[sb].flush_all().unwrap();
            log.crash();
        }
        // Reopen: l1 died with stripe A's tail, so the merged prefix ends
        // before it — l2/l3 must be truncated even though their stripe
        // flushed them (they depend on a lost predecessor).
        let log = open_striped(&disks);
        assert_eq!(log.end_lsn().0, l1.0, "append point must be the gap");
        for lsn in [l1, l2, l3] {
            assert!(log.read_record(lsn).is_err(), "{lsn:?} must be gone");
        }
        // The truncated gsns are reused cleanly.
        let l4 = log.append(&rec(a, 9));
        assert_eq!(l4, l1);
        log.flush_to(l4).unwrap();
        assert_eq!(log.read_record(l4).unwrap(), rec(a, 9));
        log.close();
    }

    #[test]
    fn reopen_resumes_after_clean_close() {
        let disks = mem_disks(3);
        let mut lsns = Vec::new();
        {
            let log = open_striped(&disks);
            for i in 0..20 {
                lsns.push(log.append(&rec(i, i)));
            }
            log.close();
        }
        let log = open_striped(&disks);
        for (i, lsn) in lsns.iter().enumerate() {
            assert_eq!(
                log.read_record(*lsn).unwrap(),
                rec(i as u64, i as u64),
                "record {i} must survive a clean close"
            );
        }
        log.close();
    }

    #[test]
    fn merged_scan_yields_gsn_order() {
        let disks = mem_disks(3);
        let mut lsns = Vec::new();
        {
            let log = open_striped(&disks);
            for i in 0..40 {
                lsns.push((log.append(&rec(i, i)), rec(i, i)));
            }
            log.close();
        }
        let log = open_striped(&disks);
        let mut scan = log.scan_from(Lsn(DATA_START));
        for (lsn, want) in &lsns {
            let (got_lsn, got) = scan.next().expect("record").unwrap();
            assert_eq!(got_lsn, *lsn);
            assert_eq!(&got, want);
        }
        assert!(scan.next().is_none());
        assert_eq!(
            scan.position(),
            log.end_lsn(),
            "exhausted scan must sit at the append point"
        );
        log.close();
    }

    #[test]
    fn scan_from_midpoint_skips_earlier_records() {
        let disks = mem_disks(2);
        let log = open_striped(&disks);
        let mut lsns = Vec::new();
        for i in 0..10 {
            lsns.push(log.append(&rec(i, i)));
        }
        log.flush_all().unwrap();
        drop(log);
        let log = open_striped(&disks);
        let from = lsns[5];
        let got: Vec<Lsn> = log.scan_from(from).map(|r| r.unwrap().0).collect();
        assert_eq!(got, lsns[5..].to_vec());
        log.close();
    }

    #[test]
    fn single_stripe_behaves_like_a_plain_log() {
        let disks = mem_disks(1);
        let log = open_striped(&disks);
        let l1 = log.append(&rec(1, 0));
        log.flush_to(l1).unwrap();
        assert!(log.durable_lsn() > l1);
        assert_eq!(log.read_record(l1).unwrap(), rec(1, 0));
        log.close();
    }

    #[test]
    fn stripe_counters_accumulate() {
        let disks = mem_disks(2);
        let log = open_striped(&disks);
        let (a, b) = distinct_stripe_sessions(&log);
        let l1 = log.append(&rec(a, 0));
        let l2 = log.append(&rec(b, 0));
        log.flush_to(l1.max(l2)).unwrap();
        let stats = log.stats();
        assert_eq!(stats.stripe_appends, 2);
        assert!(
            stats.stripe_flushes >= 2,
            "a merged flush spanning two stripes issues two legs"
        );
        // Per-stripe breakdown: each stripe saw exactly one append.
        let per = log.stripe_stats();
        assert_eq!(per.len(), 2);
        assert_eq!(per[0].appends, 1);
        assert_eq!(per[1].appends, 1);
        log.close();
    }

    #[test]
    fn replay_cache_translates_gsns() {
        let disks = mem_disks(2);
        let mut lsns = Vec::new();
        {
            let log = open_striped(&disks);
            for i in 0..16 {
                lsns.push(log.append(&rec(i, i)));
            }
            log.close();
        }
        let wal = Wal::Striped(open_striped(&disks));
        let cache = WalReplayCache::new(&wal, 8);
        for (i, lsn) in lsns.iter().enumerate() {
            let (got, framed) = cache.read_record_sized(*lsn).unwrap();
            assert_eq!(got, rec(i as u64, i as u64));
            assert!(framed > 0);
        }
        wal.close();
    }

    fn total_footprint(disks: &[MemDisk]) -> u64 {
        disks.iter().map(|d| d.footprint()).sum()
    }

    #[test]
    fn striped_truncation_reclaims_and_survives_reopen() {
        let disks = mem_disks(3);
        let log = open_striped(&disks);
        let mut lsns = Vec::new();
        for i in 0..30 {
            lsns.push((log.append(&rec(i, i)), rec(i, i)));
        }
        log.flush_all().unwrap();
        let before = total_footprint(&disks);
        let floor = lsns[12].0;
        let reclaimed = log.truncate_below(floor).unwrap();
        assert!(reclaimed > 0, "truncation must free device bytes");
        assert_eq!(log.floor(), floor, "floor snaps to the requested record");
        assert_eq!(total_footprint(&disks), before - reclaimed);
        let want: Vec<_> = lsns[12..].to_vec();
        // Survivors still read individually; reclaimed gsns do not.
        assert_eq!(log.read_record(lsns[20].0).unwrap(), lsns[20].1);
        assert!(log.read_record(lsns[3].0).is_err());
        log.close();

        // Reopen: floor comes back, survivors merge contiguously from it.
        let log = open_striped(&disks);
        assert_eq!(log.floor(), floor);
        let got: Vec<_> = log.scan_from(Lsn(DATA_START)).map(|r| r.unwrap()).collect();
        assert_eq!(got, want);
        // And the log keeps working.
        let end_before = log.end_lsn();
        let next = log.append(&rec(99, 0));
        assert_eq!(next, end_before, "appends resume at the merged end");
        log.flush_to(next).unwrap();
        assert_eq!(log.read_record(next).unwrap(), rec(99, 0));
        log.close();
    }

    #[test]
    fn striped_truncation_with_no_survivors_floors_at_append_point() {
        let disks = mem_disks(2);
        let log = open_striped(&disks);
        for i in 0..10 {
            log.append(&rec(i, i));
        }
        log.flush_all().unwrap();
        let end = log.end_lsn();
        // Everything is reclaimable: the floor snaps to the append point.
        log.truncate_below(end).unwrap();
        assert_eq!(log.floor(), end);
        log.close();

        // Reopen at the empty-above-floor state, then append: the merge
        // must pick the new records up contiguously from the floor.
        let log = open_striped(&disks);
        assert_eq!(log.floor(), end);
        assert_eq!(log.end_lsn(), end);
        let l = log.append(&rec(42, 0));
        assert_eq!(l, end, "first post-truncation append sits at the floor");
        log.flush_to(l).unwrap();
        log.close();
        let log = open_striped(&disks);
        let got: Vec<_> = log.scan_from(Lsn(DATA_START)).map(|r| r.unwrap()).collect();
        assert_eq!(got, vec![(l, rec(42, 0))]);
        log.close();
    }

    #[test]
    fn crash_mid_striped_truncation_recovers() {
        let disks = mem_disks(3);
        let floor;
        let want: Vec<_>;
        {
            let log = open_striped(&disks);
            let mut lsns = Vec::new();
            for i in 0..24 {
                lsns.push((log.append(&rec(i, i)), rec(i, i)));
            }
            log.flush_all().unwrap();
            floor = lsns[10].0;
            want = lsns[10..].to_vec();
            // Merged floor persisted on every disk, no local truncation.
            log.install_fault_plan(FaultPlan::armed(CrashPoint::TruncateStart, 1));
            assert!(matches!(log.truncate_below(floor), Err(MspError::Shutdown)));
        }
        // Reopen: the advanced floor wins, the interrupted per-stripe
        // truncations are completed, and the survivors match the
        // untruncated baseline above the floor.
        let log = open_striped(&disks);
        assert_eq!(log.floor(), floor);
        let got: Vec<_> = log.scan_from(Lsn(DATA_START)).map(|r| r.unwrap()).collect();
        assert_eq!(got, want);
        // Every stripe's local floor was persisted and its prefix zeroed.
        for (s, stripe) in log.stripes().iter().enumerate() {
            let lf = stripe.floor().0;
            if lf > DATA_START {
                let mut below = vec![9u8; (lf - DATA_START) as usize];
                disks[s].read(DATA_START, &mut below).unwrap();
                assert!(
                    below.iter().all(|&b| b == 0),
                    "stripe {s}: open must finish the interrupted reclaim"
                );
            }
        }
        log.close();
    }

    #[test]
    fn striped_oldest_pending_flush_tracks_merged_tickets() {
        let disks = mem_disks(2);
        let log = open_striped(&disks);
        assert_eq!(log.oldest_pending_flush(), None);
        let l = log.append(&rec(1, 0));
        let t = log.flush_to_async(l);
        t.wait().unwrap();
        // Settled tickets deregister.
        assert_eq!(log.oldest_pending_flush(), None);
        log.close();
    }

    #[test]
    fn crashed_log_fails_merged_tickets() {
        let disks = mem_disks(2);
        let log = open_striped(&disks);
        let lsn = log.append(&rec(1, 0));
        log.crash();
        let ticket = log.flush_to_async(lsn);
        assert!(ticket.wait().is_err(), "post-crash flush must fail");
    }
}
