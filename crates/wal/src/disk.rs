//! Durable-storage abstraction beneath the physical log.
//!
//! The paper ran on real 7200 RPM disks; our benches run on a simulated
//! disk so that (a) a "crash" can be simulated by dropping every volatile
//! structure while the disk's contents survive, and (b) timing comes from
//! the explicit [`crate::model::DiskModel`] rather than from whatever
//! hardware happens to host the benchmark. A real file-backed disk is also
//! provided for durability beyond the process.
//!
//! `Disk` implementations are purely mechanical: a write is durable when
//! `write` returns. All *timing* (rotational latency, seeks, transfer) is
//! charged by the log layer via the cost model, keeping the two concerns
//! independent and the model testable.

use std::fs::{File, OpenOptions};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// A durable, randomly addressable byte store.
pub trait Disk: Send + Sync {
    /// Write `data` at `offset`; the data is durable when this returns.
    fn write(&self, offset: u64, data: &[u8]) -> io::Result<()>;

    /// Read up to `buf.len()` bytes at `offset`; returns the number read
    /// (short only at end of device).
    fn read(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize>;

    /// Current high-water mark: one past the last durable byte.
    fn len(&self) -> u64;

    /// Whether no byte has ever been written.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Release the byte range `[start, end)` back to the device: after
    /// this returns, the range reads as zeros and (where the backing
    /// store supports it) occupies no space. `len()` is unchanged — the
    /// log's offsets are absolute forever. The default is a no-op so
    /// existing implementations stay correct (reclaim is an optimisation;
    /// truncation safety never depends on it).
    fn reclaim(&self, _start: u64, _end: u64) -> io::Result<()> {
        Ok(())
    }

    /// Bytes of backing store the device currently occupies — `len()`
    /// minus whatever `reclaim` has released. The bounded-log torture
    /// tier asserts this stays under a cap even as `len()` grows.
    fn footprint(&self) -> u64 {
        self.len()
    }
}

/// Crash-survivable in-memory disk.
///
/// Cloning shares the same underlying storage, so a "restarted MSP" opens
/// the same `MemDisk` and sees exactly what was durable at the crash.
#[derive(Clone)]
pub struct MemDisk {
    inner: Arc<Mutex<Vec<u8>>>,
    reads: Arc<AtomicU64>,
    /// The union of every `reclaim` call as one range: lowest start
    /// (`u64::MAX` while none) and highest end. The log only ever
    /// reclaims a growing prefix of the record area, so a single range
    /// models the punched hole exactly.
    reclaim_lo: Arc<AtomicU64>,
    reclaim_hi: Arc<AtomicU64>,
}

impl Default for MemDisk {
    fn default() -> MemDisk {
        MemDisk {
            inner: Arc::default(),
            reads: Arc::default(),
            reclaim_lo: Arc::new(AtomicU64::new(u64::MAX)),
            reclaim_hi: Arc::default(),
        }
    }
}

impl MemDisk {
    pub fn new() -> MemDisk {
        MemDisk::default()
    }

    /// Snapshot of the durable contents (diagnostics / tests).
    pub fn snapshot(&self) -> Vec<u8> {
        self.inner.lock().clone()
    }

    /// Device read operations served so far (shared across clones) —
    /// lets tests assert I/O batching, e.g. the scanner's read-ahead.
    pub fn read_count(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }
}

impl Disk for MemDisk {
    fn write(&self, offset: u64, data: &[u8]) -> io::Result<()> {
        let mut v = self.inner.lock();
        let end = offset as usize + data.len();
        if v.len() < end {
            v.resize(end, 0);
        }
        v[offset as usize..end].copy_from_slice(data);
        Ok(())
    }

    fn read(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        let v = self.inner.lock();
        let off = offset as usize;
        if off >= v.len() {
            return Ok(0);
        }
        let n = buf.len().min(v.len() - off);
        buf[..n].copy_from_slice(&v[off..off + n]);
        Ok(n)
    }

    fn len(&self) -> u64 {
        self.inner.lock().len() as u64
    }

    fn reclaim(&self, start: u64, end: u64) -> io::Result<()> {
        if end <= start {
            return Ok(());
        }
        // Punch the hole: the range reads as zeros from now on, exactly
        // like the never-written gaps, and footprint stops counting it.
        {
            let mut v = self.inner.lock();
            let lo = (start as usize).min(v.len());
            let hi = (end as usize).min(v.len());
            v[lo..hi].fill(0);
        }
        self.reclaim_lo.fetch_min(start, Ordering::SeqCst);
        self.reclaim_hi.fetch_max(end, Ordering::SeqCst);
        Ok(())
    }

    fn footprint(&self) -> u64 {
        let len = self.len();
        let lo = self.reclaim_lo.load(Ordering::SeqCst);
        let hi = self.reclaim_hi.load(Ordering::SeqCst).min(len);
        len - hi.saturating_sub(lo)
    }
}

/// File-backed disk using positional I/O plus `sync_data` for durability.
pub struct FileDisk {
    file: File,
    len: AtomicU64,
}

impl FileDisk {
    /// Open (creating if absent) the file at `path`.
    pub fn open(path: &Path) -> io::Result<FileDisk> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        Ok(FileDisk {
            file,
            len: AtomicU64::new(len),
        })
    }
}

impl Disk for FileDisk {
    fn write(&self, offset: u64, data: &[u8]) -> io::Result<()> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.write_all_at(data, offset)?;
        }
        #[cfg(not(unix))]
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut f = &self.file;
            f.seek(SeekFrom::Start(offset))?;
            f.write_all(data)?;
        }
        self.file.sync_data()?;
        self.len
            .fetch_max(offset + data.len() as u64, Ordering::SeqCst);
        Ok(())
    }

    fn read(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            let mut read = 0;
            while read < buf.len() {
                let n = self.file.read_at(&mut buf[read..], offset + read as u64)?;
                if n == 0 {
                    break;
                }
                read += n;
            }
            Ok(read)
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let mut f = &self.file;
            f.seek(SeekFrom::Start(offset))?;
            f.read(buf)
        }
    }

    fn len(&self) -> u64 {
        self.len.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(disk: &dyn Disk) {
        assert!(disk.is_empty());
        disk.write(0, b"hello").unwrap();
        assert_eq!(disk.len(), 5);
        disk.write(10, b"world").unwrap();
        assert_eq!(disk.len(), 15);

        let mut buf = [0u8; 5];
        assert_eq!(disk.read(0, &mut buf).unwrap(), 5);
        assert_eq!(&buf, b"hello");
        assert_eq!(disk.read(10, &mut buf).unwrap(), 5);
        assert_eq!(&buf, b"world");

        // Gap reads as zeros.
        let mut gap = [9u8; 5];
        assert_eq!(disk.read(5, &mut gap).unwrap(), 5);
        assert_eq!(&gap, &[0u8; 5]);

        // Reading past the end is short.
        let mut big = [0u8; 32];
        assert_eq!(disk.read(12, &mut big).unwrap(), 3);
        assert_eq!(disk.read(100, &mut big).unwrap(), 0);

        // Overwrite.
        disk.write(0, b"HELLO").unwrap();
        assert_eq!(disk.read(0, &mut buf).unwrap(), 5);
        assert_eq!(&buf, b"HELLO");
    }

    #[test]
    fn memdisk_semantics() {
        exercise(&MemDisk::new());
    }

    #[test]
    fn filedisk_semantics() {
        let dir = std::env::temp_dir().join(format!("msp-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("disk-semantics.log");
        let _ = std::fs::remove_file(&path);
        exercise(&FileDisk::open(&path).unwrap());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reclaim_zeroes_and_shrinks_footprint() {
        let d = MemDisk::new();
        d.write(0, &[1u8; 4096]).unwrap();
        assert_eq!(d.footprint(), 4096);
        d.reclaim(512, 2048).unwrap();
        // Range reads as zeros; len is unchanged; footprint shrank.
        let mut buf = [9u8; 1536];
        assert_eq!(d.read(512, &mut buf).unwrap(), 1536);
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(d.len(), 4096);
        assert_eq!(d.footprint(), 4096 - 1536);
        // Reclaim is idempotent and extends as one prefix range.
        d.reclaim(512, 2048).unwrap();
        d.reclaim(512, 3072).unwrap();
        assert_eq!(d.footprint(), 4096 - 2560);
        // A degenerate range is a no-op.
        d.reclaim(100, 100).unwrap();
        assert_eq!(d.footprint(), 4096 - 2560);
        // Growth past the hole counts again.
        d.write(4096, &[2u8; 1024]).unwrap();
        assert_eq!(d.footprint(), 5120 - 2560);
    }

    #[test]
    fn default_footprint_matches_len() {
        let dir = std::env::temp_dir().join(format!("msp-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("disk-footprint.log");
        let _ = std::fs::remove_file(&path);
        let d = FileDisk::open(&path).unwrap();
        d.write(0, &[1u8; 100]).unwrap();
        // The trait defaults: reclaim is a no-op, footprint == len.
        d.reclaim(0, 50).unwrap();
        assert_eq!(d.footprint(), d.len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn memdisk_clone_shares_storage() {
        let a = MemDisk::new();
        let b = a.clone();
        a.write(0, b"shared").unwrap();
        let mut buf = [0u8; 6];
        assert_eq!(b.read(0, &mut buf).unwrap(), 6);
        assert_eq!(&buf, b"shared");
    }

    #[test]
    fn filedisk_reopen_preserves_contents() {
        let dir = std::env::temp_dir().join(format!("msp-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("disk-reopen.log");
        let _ = std::fs::remove_file(&path);
        {
            let d = FileDisk::open(&path).unwrap();
            d.write(0, b"persist").unwrap();
        }
        let d = FileDisk::open(&path).unwrap();
        assert_eq!(d.len(), 7);
        let mut buf = [0u8; 7];
        d.read(0, &mut buf).unwrap();
        assert_eq!(&buf, b"persist");
        std::fs::remove_file(&path).unwrap();
    }
}
