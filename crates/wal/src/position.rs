//! Per-session position streams (§3.2).
//!
//! "All sessions of an MSP share one physical log. To recover a session,
//! its log records need to be extracted from the shared log. To make such
//! extraction efficient, each session maintains a position stream
//! consisting of the positions (inside the physical log) of its log
//! records since the latest session checkpoint."
//!
//! The stream is volatile: positions lost in a crash are reconstructed by
//! the crash-recovery analysis scan. During orphan recovery the stream is
//! truncated to drop skipped (orphaned) records so that they become
//! invisible to any later recovery of the same session (§4.1).
//!
//! The paper flushes full position buffers to disk as a cost optimization;
//! we account for those flushes in the owner's `LogStats` via the physical
//! log when they would occur, but keep the positions in memory — the
//! observable behaviour (what recovery reads) is identical because the
//! scan rebuilds the stream regardless.

use msp_types::Lsn;

/// Ordered positions of one session's log records since its most recent
/// checkpoint.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PositionStream {
    positions: Vec<Lsn>,
}

impl PositionStream {
    pub fn new() -> PositionStream {
        PositionStream::default()
    }

    /// Record that the session wrote a log record at `lsn`. Positions must
    /// arrive in increasing order (the log is append-only).
    pub fn push(&mut self, lsn: Lsn) {
        debug_assert!(
            self.positions.last().is_none_or(|&last| last < lsn),
            "positions must be strictly increasing"
        );
        self.positions.push(lsn);
    }

    /// Number of recorded positions.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Discard everything — done when a session checkpoint completes
    /// ("previous positions are discarded by truncating the position
    /// stream to zero length") or when the session ends.
    pub fn truncate(&mut self) {
        self.positions.clear();
    }

    /// Drop every position at or after `from` — orphan recovery removing
    /// the positions of skipped log records.
    pub fn truncate_from(&mut self, from: Lsn) {
        let idx = self.positions.partition_point(|&p| p < from);
        self.positions.truncate(idx);
    }

    /// Remove the closed position range `[from, to]` — used when an EOS
    /// record found during replay marks an embedded skip region while
    /// later records remain live (§4.3, "EOS Found").
    pub fn remove_range(&mut self, from: Lsn, to: Lsn) {
        self.positions.retain(|&p| p < from || p > to);
    }

    /// The positions, in order.
    pub fn iter(&self) -> impl Iterator<Item = Lsn> + '_ {
        self.positions.iter().copied()
    }

    /// Positions at or after `from`.
    pub fn iter_from(&self, from: Lsn) -> impl Iterator<Item = Lsn> + '_ {
        let idx = self.positions.partition_point(|&p| p < from);
        self.positions[idx..].iter().copied()
    }

    /// First recorded position, if any.
    pub fn first(&self) -> Option<Lsn> {
        self.positions.first().copied()
    }

    /// Last recorded position, if any.
    pub fn last(&self) -> Option<Lsn> {
        self.positions.last().copied()
    }

    /// Total log-byte span covered (for charging sequential read cost when
    /// replaying: `last - first` approximates the contiguous region read).
    pub fn span_bytes(&self) -> u64 {
        match (self.first(), self.last()) {
            (Some(a), Some(b)) => b.0.saturating_sub(a.0),
            _ => 0,
        }
    }
}

impl FromIterator<Lsn> for PositionStream {
    fn from_iter<I: IntoIterator<Item = Lsn>>(iter: I) -> PositionStream {
        let mut s = PositionStream::new();
        for lsn in iter {
            s.push(lsn);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(ps: &[u64]) -> PositionStream {
        ps.iter().map(|&p| Lsn(p)).collect()
    }

    #[test]
    fn push_and_iterate_in_order() {
        let s = stream(&[10, 20, 30]);
        assert_eq!(s.len(), 3);
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![Lsn(10), Lsn(20), Lsn(30)]
        );
        assert_eq!(s.first(), Some(Lsn(10)));
        assert_eq!(s.last(), Some(Lsn(30)));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn out_of_order_push_panics_in_debug() {
        let mut s = stream(&[10]);
        s.push(Lsn(5));
    }

    #[test]
    fn truncate_clears() {
        let mut s = stream(&[10, 20]);
        s.truncate();
        assert!(s.is_empty());
        // And a fresh checkpointed epoch can start over at lower LSNs? No —
        // LSNs only grow; but push after truncate works.
        s.push(Lsn(30));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn truncate_from_drops_suffix() {
        let mut s = stream(&[10, 20, 30, 40]);
        s.truncate_from(Lsn(30));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![Lsn(10), Lsn(20)]);
        // Boundary not present in the stream: drops everything >= it.
        let mut s = stream(&[10, 20, 30, 40]);
        s.truncate_from(Lsn(25));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![Lsn(10), Lsn(20)]);
    }

    #[test]
    fn remove_range_is_inclusive_and_keeps_tail() {
        let mut s = stream(&[10, 20, 30, 40, 50]);
        s.remove_range(Lsn(20), Lsn(40));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![Lsn(10), Lsn(50)]);
    }

    #[test]
    fn iter_from_starts_at_boundary() {
        let s = stream(&[10, 20, 30]);
        assert_eq!(
            s.iter_from(Lsn(20)).collect::<Vec<_>>(),
            vec![Lsn(20), Lsn(30)]
        );
        assert_eq!(s.iter_from(Lsn(21)).collect::<Vec<_>>(), vec![Lsn(30)]);
        assert_eq!(s.iter_from(Lsn(99)).count(), 0);
    }

    #[test]
    fn span_bytes() {
        assert_eq!(stream(&[]).span_bytes(), 0);
        assert_eq!(stream(&[100]).span_bytes(), 0);
        assert_eq!(stream(&[100, 600]).span_bytes(), 500);
    }
}
