//! Every log-record kind written by the recovery protocols.
//!
//! The paper's single physical log per MSP interleaves records of all of
//! the MSP's sessions and shared variables. The kinds below map 1:1 onto
//! the events of §3 and §4:
//!
//! | Record | Paper source |
//! |---|---|
//! | [`LogRecord::RequestReceive`] | message logging, Figure 7 |
//! | [`LogRecord::ReplyReceive`] | message logging, Figure 7 |
//! | [`LogRecord::SharedRead`] | value logging of reads, Figure 8 |
//! | [`LogRecord::SharedWrite`] | value logging of writes (backward chained), Figure 8 |
//! | [`LogRecord::SharedCheckpoint`] | shared-state checkpointing, Figure 9 |
//! | [`LogRecord::SessionCheckpoint`] | session checkpointing, §3.2 |
//! | [`LogRecord::MspCheckpoint`] | fuzzy MSP checkpoint, §3.4, Figure 10 |
//! | [`LogRecord::RecoveryAnnouncement`] | logged recovered state numbers, §3.1 |
//! | [`LogRecord::RecoveryComplete`] | the MSP's own epoch transitions, §4.3 |
//! | [`LogRecord::SessionEnd`] | session end marker, §3.2 |
//! | [`LogRecord::Eos`] | end-of-skip record of orphan recovery, §4.1 |

use msp_types::codec::{self, Decode, Encode};
use msp_types::{
    CodecError, DependencyVector, Epoch, Lsn, MspId, RecoveryKnowledge, RecoveryRecord, RequestSeq,
    SessionId, VarId,
};

/// State captured by a session checkpoint (§3.2).
///
/// Deliberately excludes control state (stacks, program counters): a
/// checkpoint is only taken *between* requests, when the session has no
/// control state. The session's dependency vector is absent too — the
/// distributed log flush performed immediately before the checkpoint makes
/// every dependency durable, so the checkpointed state can never become an
/// orphan and restarts with an empty (self-only) DV.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SessionCheckpointBody {
    /// The session variables (private state), name → value.
    pub vars: Vec<(String, Vec<u8>)>,
    /// The buffered reply of the latest request, for duplicate resends.
    pub buffered_reply: Option<(RequestSeq, Vec<u8>)>,
    /// Next expected request sequence number on this (incoming) session.
    pub next_expected: RequestSeq,
    /// For every outgoing session this session has started: the target MSP,
    /// the outgoing session's id, and its next available request sequence
    /// number.
    pub outgoing: Vec<(MspId, SessionId, RequestSeq)>,
}

impl Encode for SessionCheckpointBody {
    fn encode(&self, buf: &mut Vec<u8>) {
        codec::put_u32(buf, self.vars.len() as u32);
        for (name, value) in &self.vars {
            codec::put_str(buf, name);
            codec::put_bytes(buf, value);
        }
        match &self.buffered_reply {
            None => codec::put_u8(buf, 0),
            Some((seq, payload)) => {
                codec::put_u8(buf, 1);
                seq.encode(buf);
                codec::put_bytes(buf, payload);
            }
        }
        self.next_expected.encode(buf);
        codec::put_u32(buf, self.outgoing.len() as u32);
        for (msp, session, seq) in &self.outgoing {
            msp.encode(buf);
            session.encode(buf);
            seq.encode(buf);
        }
    }
}

impl Decode for SessionCheckpointBody {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let nvars = codec::get_u32(buf)? as usize;
        let mut vars = Vec::with_capacity(nvars.min(buf.len()));
        for _ in 0..nvars {
            let name = codec::get_str(buf)?;
            let value = codec::get_bytes(buf)?;
            vars.push((name, value));
        }
        let buffered_reply = match codec::get_u8(buf)? {
            0 => None,
            1 => {
                let seq = RequestSeq::decode(buf)?;
                let payload = codec::get_bytes(buf)?;
                Some((seq, payload))
            }
            tag => {
                return Err(CodecError::InvalidTag {
                    context: "buffered_reply",
                    tag,
                })
            }
        };
        let next_expected = RequestSeq::decode(buf)?;
        let nout = codec::get_u32(buf)? as usize;
        let mut outgoing = Vec::with_capacity(nout.min(buf.len()));
        for _ in 0..nout {
            outgoing.push((
                MspId::decode(buf)?,
                SessionId::decode(buf)?,
                RequestSeq::decode(buf)?,
            ));
        }
        Ok(SessionCheckpointBody {
            vars,
            buffered_reply,
            next_expected,
            outgoing,
        })
    }
}

/// Where crash recovery should begin replaying a session from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionAnchor {
    pub session: SessionId,
    /// LSN of the session's most recent checkpoint, or of its first log
    /// record if it has never been checkpointed.
    pub lsn: Lsn,
    /// Whether `lsn` points at a [`LogRecord::SessionCheckpoint`].
    pub is_checkpoint: bool,
}

impl Encode for SessionAnchor {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.session.encode(buf);
        self.lsn.encode(buf);
        codec::put_u8(buf, u8::from(self.is_checkpoint));
    }
}

impl Decode for SessionAnchor {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(SessionAnchor {
            session: SessionId::decode(buf)?,
            lsn: Lsn::decode(buf)?,
            is_checkpoint: codec::get_u8(buf)? != 0,
        })
    }
}

/// Body of the fuzzy MSP checkpoint (§3.4).
///
/// "Mainly contains recovered state numbers of MSPs in the service domain,
/// the LSN of each session's most recent checkpoint, and the LSN of each
/// shared variable's most recent checkpoint." Ongoing activity is *not*
/// blocked while this is assembled — hence "fuzzy".
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MspCheckpointBody {
    /// The MSP's current epoch at checkpoint time.
    pub epoch: Epoch,
    /// Knowledge about other MSPs' recovered state numbers.
    pub knowledge: RecoveryKnowledge,
    /// Per live session: where its replay would start.
    pub sessions: Vec<SessionAnchor>,
    /// Per shared variable: LSN of its most recent checkpoint record.
    pub shared: Vec<(VarId, Lsn)>,
    /// Minimum of all anchors above — the crash-recovery scan start.
    pub min_lsn: Lsn,
}

impl Encode for MspCheckpointBody {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.epoch.encode(buf);
        self.knowledge.encode(buf);
        codec::put_vec(buf, &self.sessions);
        codec::put_u32(buf, self.shared.len() as u32);
        for (var, lsn) in &self.shared {
            var.encode(buf);
            lsn.encode(buf);
        }
        self.min_lsn.encode(buf);
    }
}

impl Decode for MspCheckpointBody {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let epoch = Epoch::decode(buf)?;
        let knowledge = RecoveryKnowledge::decode(buf)?;
        let sessions = codec::get_vec(buf)?;
        let nshared = codec::get_u32(buf)? as usize;
        let mut shared = Vec::with_capacity(nshared.min(buf.len()));
        for _ in 0..nshared {
            shared.push((VarId::decode(buf)?, Lsn::decode(buf)?));
        }
        let min_lsn = Lsn::decode(buf)?;
        Ok(MspCheckpointBody {
            epoch,
            knowledge,
            sessions,
            shared,
            min_lsn,
        })
    }
}

/// A record in an MSP's physical log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// A request arrived on `session` and began processing. `sender_dv` is
    /// present iff the sender is a session of an MSP in the same service
    /// domain (optimistic logging); pessimistically logged messages carry
    /// no DV (Figure 7).
    RequestReceive {
        session: SessionId,
        seq: RequestSeq,
        method: String,
        payload: Vec<u8>,
        sender_dv: Option<DependencyVector>,
    },
    /// The reply to an outgoing request made by `session` over its
    /// outgoing session `outgoing` was received.
    ReplyReceive {
        session: SessionId,
        outgoing: SessionId,
        seq: RequestSeq,
        payload: Vec<u8>,
        sender_dv: Option<DependencyVector>,
    },
    /// Value logging of a shared-variable read: the value and the
    /// variable's DV at read time (Figure 8, left column).
    SharedRead {
        session: SessionId,
        var: VarId,
        value: Vec<u8>,
        var_dv: DependencyVector,
    },
    /// Value logging of a shared-variable write: the new value, the writer
    /// session's DV, and a back-pointer to the variable's previous write
    /// record (Figure 8, right column; Figure 9's backward chain).
    SharedWrite {
        session: SessionId,
        var: VarId,
        value: Vec<u8>,
        writer_dv: DependencyVector,
        prev_write: Lsn,
    },
    /// Operation logging of a shared-variable read-modify-write (the
    /// adaptive logging diet, after "Adaptive Logging for Distributed
    /// In-memory Databases"): instead of the `SharedRead` + `SharedWrite`
    /// value pair, log only the registered operation's id and arguments;
    /// recovery recomputes the value by re-running the operation.
    /// `writer_dv` is the writer session's DV merged with the variable's
    /// DV at update time — the op both reads and writes the variable, so
    /// one vector carries the full dependency closure (and makes every
    /// op chain DV a superset of its predecessors') — and `prev_write`
    /// is the variable's backward chain, exactly as in `SharedWrite`.
    SharedOp {
        session: SessionId,
        var: VarId,
        op: u32,
        args: Vec<u8>,
        writer_dv: DependencyVector,
        prev_write: Lsn,
    },
    /// A shared-variable checkpoint: the value is never an orphan (a
    /// distributed flush preceded it) and the backward chain breaks here.
    SharedCheckpoint { var: VarId, value: Vec<u8> },
    /// A session checkpoint (§3.2).
    SessionCheckpoint {
        session: SessionId,
        body: SessionCheckpointBody,
    },
    /// The fuzzy MSP checkpoint (§3.4).
    MspCheckpoint(MspCheckpointBody),
    /// Another MSP's recovery announcement, logged so the knowledge
    /// survives our own crashes.
    RecoveryAnnouncement(RecoveryRecord),
    /// Our own crash recovery completed: we entered `new_epoch` having
    /// recovered up to `recovered_lsn`. Flushed before normal execution
    /// resumes, so later scans can establish the current epoch.
    RecoveryComplete {
        new_epoch: Epoch,
        recovered_lsn: Lsn,
    },
    /// The session ended; its position stream is discarded (§3.2).
    SessionEnd { session: SessionId },
    /// End-of-skip: orphan recovery of `session` terminated replay at the
    /// orphan record `orphan_lsn`; records from `orphan_lsn` up to this
    /// record are dead and must be skipped by any later recovery (§4.1).
    Eos { session: SessionId, orphan_lsn: Lsn },
    /// `session` opened the outgoing session `outgoing` to `target`.
    /// Allocating the outgoing session id is a nondeterministic event in
    /// the session's execution and so must be logged: a replay that went
    /// live before this point re-allocates (safely — everything after is
    /// equally lost and orphaned), but a replay that passes this record
    /// must reuse the same id and sequence numbers so resent calls hit
    /// the target's duplicate filter instead of re-executing.
    OutgoingBind {
        session: SessionId,
        target: MspId,
        outgoing: SessionId,
    },
    /// Stripe-transport wrapper: on a striped log every stripe-local frame
    /// carries the record's **global** sequence number so crash recovery
    /// can re-merge the per-stripe streams into one totally ordered log.
    /// The gsn sits at a fixed position (payload bytes 1..9) so the merge
    /// scan can read it without decoding the inner record.
    Striped { gsn: Lsn, inner: Box<LogRecord> },
}

mod tag {
    pub const REQUEST_RECEIVE: u8 = 1;
    pub const REPLY_RECEIVE: u8 = 2;
    pub const SHARED_READ: u8 = 3;
    pub const SHARED_WRITE: u8 = 4;
    pub const SHARED_CHECKPOINT: u8 = 5;
    pub const SESSION_CHECKPOINT: u8 = 6;
    pub const MSP_CHECKPOINT: u8 = 7;
    pub const RECOVERY_ANNOUNCEMENT: u8 = 8;
    pub const RECOVERY_COMPLETE: u8 = 9;
    pub const SESSION_END: u8 = 10;
    pub const EOS: u8 = 11;
    pub const OUTGOING_BIND: u8 = 12;
    pub const STRIPED: u8 = 13;
    pub const SHARED_OP: u8 = 14;
}

impl LogRecord {
    /// The session this record belongs to, if it is a session record.
    /// Shared-variable and MSP-level records return `None` — they belong
    /// to other recovery units.
    pub fn session(&self) -> Option<SessionId> {
        match self {
            LogRecord::RequestReceive { session, .. }
            | LogRecord::ReplyReceive { session, .. }
            | LogRecord::SharedRead { session, .. }
            | LogRecord::SessionCheckpoint { session, .. }
            | LogRecord::SessionEnd { session }
            | LogRecord::Eos { session, .. }
            | LogRecord::OutgoingBind { session, .. } => Some(*session),
            // Transport wrapper: attribution belongs to the inner record.
            LogRecord::Striped { inner, .. } => inner.session(),
            // A write primarily advances the *variable's* state number
            // (Figure 8): the stripe router keeps it on the variable's
            // stripe and the audit's Eos fencing never points at one, so
            // it attributes to the variable here. (It *does* also join
            // the writing session's replay stream — the recovery scan
            // handles that explicitly via the record's `session` field.)
            LogRecord::SharedWrite { .. }
            | LogRecord::SharedOp { .. }
            | LogRecord::SharedCheckpoint { .. }
            | LogRecord::MspCheckpoint(_)
            | LogRecord::RecoveryAnnouncement(_)
            | LogRecord::RecoveryComplete { .. } => None,
        }
    }

    /// Short name for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            LogRecord::RequestReceive { .. } => "RequestReceive",
            LogRecord::ReplyReceive { .. } => "ReplyReceive",
            LogRecord::SharedRead { .. } => "SharedRead",
            LogRecord::SharedWrite { .. } => "SharedWrite",
            LogRecord::SharedOp { .. } => "SharedOp",
            LogRecord::SharedCheckpoint { .. } => "SharedCheckpoint",
            LogRecord::SessionCheckpoint { .. } => "SessionCheckpoint",
            LogRecord::MspCheckpoint(_) => "MspCheckpoint",
            LogRecord::RecoveryAnnouncement(_) => "RecoveryAnnouncement",
            LogRecord::RecoveryComplete { .. } => "RecoveryComplete",
            LogRecord::SessionEnd { .. } => "SessionEnd",
            LogRecord::Eos { .. } => "Eos",
            LogRecord::OutgoingBind { .. } => "OutgoingBind",
            LogRecord::Striped { .. } => "Striped",
        }
    }

    /// Peek the gsn of an *encoded* [`LogRecord::Striped`] payload without
    /// decoding the inner record — the merge scan's fast path.
    pub fn striped_gsn(payload: &[u8]) -> Option<Lsn> {
        if payload.len() < 9 || payload[0] != tag::STRIPED {
            return None;
        }
        Some(Lsn(u64::from_le_bytes(
            payload[1..9].try_into().expect("slice"),
        )))
    }
}

impl Encode for LogRecord {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            LogRecord::RequestReceive {
                session,
                seq,
                method,
                payload,
                sender_dv,
            } => {
                codec::put_u8(buf, tag::REQUEST_RECEIVE);
                session.encode(buf);
                seq.encode(buf);
                codec::put_str(buf, method);
                codec::put_bytes(buf, payload);
                sender_dv.encode(buf);
            }
            LogRecord::ReplyReceive {
                session,
                outgoing,
                seq,
                payload,
                sender_dv,
            } => {
                codec::put_u8(buf, tag::REPLY_RECEIVE);
                session.encode(buf);
                outgoing.encode(buf);
                seq.encode(buf);
                codec::put_bytes(buf, payload);
                sender_dv.encode(buf);
            }
            LogRecord::SharedRead {
                session,
                var,
                value,
                var_dv,
            } => {
                codec::put_u8(buf, tag::SHARED_READ);
                session.encode(buf);
                var.encode(buf);
                codec::put_bytes(buf, value);
                var_dv.encode(buf);
            }
            LogRecord::SharedWrite {
                session,
                var,
                value,
                writer_dv,
                prev_write,
            } => {
                codec::put_u8(buf, tag::SHARED_WRITE);
                session.encode(buf);
                var.encode(buf);
                codec::put_bytes(buf, value);
                writer_dv.encode(buf);
                prev_write.encode(buf);
            }
            LogRecord::SharedOp {
                session,
                var,
                op,
                args,
                writer_dv,
                prev_write,
            } => {
                codec::put_u8(buf, tag::SHARED_OP);
                session.encode(buf);
                var.encode(buf);
                codec::put_u32(buf, *op);
                codec::put_bytes(buf, args);
                writer_dv.encode(buf);
                prev_write.encode(buf);
            }
            LogRecord::SharedCheckpoint { var, value } => {
                codec::put_u8(buf, tag::SHARED_CHECKPOINT);
                var.encode(buf);
                codec::put_bytes(buf, value);
            }
            LogRecord::SessionCheckpoint { session, body } => {
                codec::put_u8(buf, tag::SESSION_CHECKPOINT);
                session.encode(buf);
                body.encode(buf);
            }
            LogRecord::MspCheckpoint(body) => {
                codec::put_u8(buf, tag::MSP_CHECKPOINT);
                body.encode(buf);
            }
            LogRecord::RecoveryAnnouncement(rec) => {
                codec::put_u8(buf, tag::RECOVERY_ANNOUNCEMENT);
                rec.encode(buf);
            }
            LogRecord::RecoveryComplete {
                new_epoch,
                recovered_lsn,
            } => {
                codec::put_u8(buf, tag::RECOVERY_COMPLETE);
                new_epoch.encode(buf);
                recovered_lsn.encode(buf);
            }
            LogRecord::SessionEnd { session } => {
                codec::put_u8(buf, tag::SESSION_END);
                session.encode(buf);
            }
            LogRecord::Eos {
                session,
                orphan_lsn,
            } => {
                codec::put_u8(buf, tag::EOS);
                session.encode(buf);
                orphan_lsn.encode(buf);
            }
            LogRecord::OutgoingBind {
                session,
                target,
                outgoing,
            } => {
                codec::put_u8(buf, tag::OUTGOING_BIND);
                session.encode(buf);
                target.encode(buf);
                outgoing.encode(buf);
            }
            LogRecord::Striped { gsn, inner } => {
                codec::put_u8(buf, tag::STRIPED);
                gsn.encode(buf);
                inner.encode(buf);
            }
        }
    }
}

impl Decode for LogRecord {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let t = codec::get_u8(buf)?;
        Ok(match t {
            tag::REQUEST_RECEIVE => LogRecord::RequestReceive {
                session: SessionId::decode(buf)?,
                seq: RequestSeq::decode(buf)?,
                method: codec::get_str(buf)?,
                payload: codec::get_bytes(buf)?,
                sender_dv: Option::decode(buf)?,
            },
            tag::REPLY_RECEIVE => LogRecord::ReplyReceive {
                session: SessionId::decode(buf)?,
                outgoing: SessionId::decode(buf)?,
                seq: RequestSeq::decode(buf)?,
                payload: codec::get_bytes(buf)?,
                sender_dv: Option::decode(buf)?,
            },
            tag::SHARED_READ => LogRecord::SharedRead {
                session: SessionId::decode(buf)?,
                var: VarId::decode(buf)?,
                value: codec::get_bytes(buf)?,
                var_dv: DependencyVector::decode(buf)?,
            },
            tag::SHARED_WRITE => LogRecord::SharedWrite {
                session: SessionId::decode(buf)?,
                var: VarId::decode(buf)?,
                value: codec::get_bytes(buf)?,
                writer_dv: DependencyVector::decode(buf)?,
                prev_write: Lsn::decode(buf)?,
            },
            tag::SHARED_OP => LogRecord::SharedOp {
                session: SessionId::decode(buf)?,
                var: VarId::decode(buf)?,
                op: codec::get_u32(buf)?,
                args: codec::get_bytes(buf)?,
                writer_dv: DependencyVector::decode(buf)?,
                prev_write: Lsn::decode(buf)?,
            },
            tag::SHARED_CHECKPOINT => LogRecord::SharedCheckpoint {
                var: VarId::decode(buf)?,
                value: codec::get_bytes(buf)?,
            },
            tag::SESSION_CHECKPOINT => LogRecord::SessionCheckpoint {
                session: SessionId::decode(buf)?,
                body: SessionCheckpointBody::decode(buf)?,
            },
            tag::MSP_CHECKPOINT => LogRecord::MspCheckpoint(MspCheckpointBody::decode(buf)?),
            tag::RECOVERY_ANNOUNCEMENT => {
                LogRecord::RecoveryAnnouncement(RecoveryRecord::decode(buf)?)
            }
            tag::RECOVERY_COMPLETE => LogRecord::RecoveryComplete {
                new_epoch: Epoch::decode(buf)?,
                recovered_lsn: Lsn::decode(buf)?,
            },
            tag::SESSION_END => LogRecord::SessionEnd {
                session: SessionId::decode(buf)?,
            },
            tag::EOS => LogRecord::Eos {
                session: SessionId::decode(buf)?,
                orphan_lsn: Lsn::decode(buf)?,
            },
            tag::OUTGOING_BIND => LogRecord::OutgoingBind {
                session: SessionId::decode(buf)?,
                target: MspId::decode(buf)?,
                outgoing: SessionId::decode(buf)?,
            },
            tag::STRIPED => LogRecord::Striped {
                gsn: Lsn::decode(buf)?,
                inner: Box::new(LogRecord::decode(buf)?),
            },
            other => {
                return Err(CodecError::InvalidTag {
                    context: "LogRecord",
                    tag: other,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp_types::codec::roundtrip;
    use msp_types::dv::state;

    fn sample_records() -> Vec<LogRecord> {
        let dv = DependencyVector::from_entries([(MspId(1), state(0, 10))]);
        vec![
            LogRecord::RequestReceive {
                session: SessionId(1),
                seq: RequestSeq(3),
                method: "ServiceMethod1".into(),
                payload: vec![1, 2, 3],
                sender_dv: Some(dv.clone()),
            },
            LogRecord::RequestReceive {
                session: SessionId(1),
                seq: RequestSeq(4),
                method: "m".into(),
                payload: vec![],
                sender_dv: None,
            },
            LogRecord::ReplyReceive {
                session: SessionId(1),
                outgoing: SessionId(2),
                seq: RequestSeq(0),
                payload: vec![9; 100],
                sender_dv: Some(dv.clone()),
            },
            LogRecord::SharedRead {
                session: SessionId(1),
                var: VarId(0),
                value: vec![0; 128],
                var_dv: dv.clone(),
            },
            LogRecord::SharedWrite {
                session: SessionId(1),
                var: VarId(0),
                value: vec![7; 128],
                writer_dv: dv,
                prev_write: Lsn(512),
            },
            LogRecord::SharedOp {
                session: SessionId(1),
                var: VarId(0),
                op: 2,
                args: vec![5; 8],
                writer_dv: DependencyVector::from_entries([(MspId(1), state(0, 11))]),
                prev_write: Lsn(640),
            },
            LogRecord::SharedCheckpoint {
                var: VarId(3),
                value: vec![1],
            },
            LogRecord::SessionCheckpoint {
                session: SessionId(1),
                body: SessionCheckpointBody {
                    vars: vec![("state".into(), vec![0; 64])],
                    buffered_reply: Some((RequestSeq(3), vec![2; 100])),
                    next_expected: RequestSeq(4),
                    outgoing: vec![(MspId(2), SessionId(2), RequestSeq(9))],
                },
            },
            LogRecord::MspCheckpoint(MspCheckpointBody {
                epoch: Epoch(1),
                knowledge: {
                    let mut k = RecoveryKnowledge::new();
                    k.record(RecoveryRecord {
                        msp: MspId(2),
                        new_epoch: Epoch(1),
                        recovered_lsn: Lsn(4096),
                    });
                    k
                },
                sessions: vec![SessionAnchor {
                    session: SessionId(1),
                    lsn: Lsn(1024),
                    is_checkpoint: true,
                }],
                shared: vec![(VarId(0), Lsn(512))],
                min_lsn: Lsn(512),
            }),
            LogRecord::RecoveryAnnouncement(RecoveryRecord {
                msp: MspId(2),
                new_epoch: Epoch(2),
                recovered_lsn: Lsn(8192),
            }),
            LogRecord::RecoveryComplete {
                new_epoch: Epoch(1),
                recovered_lsn: Lsn(2048),
            },
            LogRecord::SessionEnd {
                session: SessionId(1),
            },
            LogRecord::Eos {
                session: SessionId(1),
                orphan_lsn: Lsn(700),
            },
        ]
    }

    #[test]
    fn all_kinds_roundtrip() {
        for rec in sample_records() {
            assert_eq!(roundtrip(&rec).unwrap(), rec, "kind {}", rec.kind());
        }
    }

    #[test]
    fn invalid_tag_rejected() {
        assert!(matches!(
            LogRecord::from_bytes(&[200]),
            Err(CodecError::InvalidTag {
                context: "LogRecord",
                tag: 200
            })
        ));
    }

    #[test]
    fn session_attribution() {
        for rec in sample_records() {
            match &rec {
                LogRecord::RequestReceive { .. }
                | LogRecord::ReplyReceive { .. }
                | LogRecord::SharedRead { .. }
                | LogRecord::SessionCheckpoint { .. }
                | LogRecord::SessionEnd { .. }
                | LogRecord::Eos { .. } => assert_eq!(rec.session(), Some(SessionId(1))),
                _ => assert_eq!(rec.session(), None, "kind {}", rec.kind()),
            }
        }
    }

    #[test]
    fn shared_write_is_not_a_session_record() {
        // Figure 8: a write changes the *variable's* state number; the
        // writer session does not replay it, the variable's separate
        // recovery handles it.
        let rec = LogRecord::SharedWrite {
            session: SessionId(5),
            var: VarId(1),
            value: vec![],
            writer_dv: DependencyVector::new(),
            prev_write: Lsn::NULL,
        };
        assert_eq!(rec.session(), None);
    }

    #[test]
    fn striped_wrapper_roundtrips_and_peeks() {
        for inner in sample_records() {
            let rec = LogRecord::Striped {
                gsn: Lsn(0xAABB_CCDD_1122_3344),
                inner: Box::new(inner.clone()),
            };
            assert_eq!(roundtrip(&rec).unwrap(), rec);
            // The gsn is peekable at a fixed payload position.
            let bytes = rec.to_bytes();
            assert_eq!(
                LogRecord::striped_gsn(&bytes),
                Some(Lsn(0xAABB_CCDD_1122_3344))
            );
            // Attribution delegates to the wrapped record.
            assert_eq!(rec.session(), inner.session());
        }
        // Non-striped payloads peek as None.
        assert_eq!(
            LogRecord::striped_gsn(&sample_records()[0].to_bytes()),
            None
        );
    }

    #[test]
    fn empty_checkpoint_bodies_roundtrip() {
        assert_eq!(
            roundtrip(&SessionCheckpointBody::default()).unwrap(),
            SessionCheckpointBody::default()
        );
        assert_eq!(
            roundtrip(&MspCheckpointBody::default()).unwrap(),
            MspCheckpointBody::default()
        );
    }
}
