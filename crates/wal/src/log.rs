//! The physical log: one per MSP, shared by all sessions (§1.3, §3).
//!
//! # On-disk layout
//!
//! ```text
//! sector 0          : log anchor (see `anchor.rs`)
//! offset 512 ..     : framed records, zero-padded to sector boundaries
//! ```
//!
//! Each record is framed as `[magic 0xA5][len u32][crc u32][payload]`; the
//! **LSN of a record is the file offset of its magic byte**. A flush takes
//! the whole in-memory tail, pads it with zeros to the next sector
//! boundary and writes it as one device write — reproducing the paper's
//! observation that "log blocks are aligned at sector boundaries and when
//! a log block is flushed, its last sector may not be full. On average, a
//! half sector is wasted on every flush."
//!
//! # Flush discipline
//!
//! A single flusher thread serializes device writes (like a real disk arm)
//! and charges the [`DiskModel`] cost per flush. `flush_to(lsn)` blocks
//! until the record at `lsn` is durable; concurrent callers coalesce into
//! one device write (group commit). With [`FlushPolicy::batch_timeout`]
//! set, the flusher additionally waits that long before writing, giving
//! the paper's §5.5 *batch flushing*.
//!
//! # Crash semantics
//!
//! Dropping the log (or calling [`PhysicalLog::crash`]) discards the
//! un-flushed tail — exactly the information a real crash loses. Re-opening
//! the same disk scans forward from the start (or any known-valid LSN) and
//! resumes appending after the last intact record, overwriting any torn
//! tail.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam_channel::{Receiver, Sender};
use parking_lot::{Condvar, Mutex};

use msp_types::{Decode, Encode, Lsn, MspError};

use crate::crc::crc32;
use crate::disk::Disk;
use crate::fault::{CrashPoint, FaultPlan};
use crate::model::DiskModel;
use crate::pool::ScanFeed;
use crate::record::LogRecord;
use crate::stats::{LogStats, LogStatsSnapshot};
use crate::tail::ReservedTail;

/// Device sector size; the paper's disks use 512-byte sectors.
pub const SECTOR_SIZE: usize = 512;

/// First byte of the record area (sector 0 is the log anchor).
pub const DATA_START: u64 = SECTOR_SIZE as u64;

/// Marker byte opening every record frame.
pub(crate) const FRAME_MAGIC: u8 = 0xA5;

/// Frame header: magic (1) + len (4) + crc (4).
pub(crate) const FRAME_HEADER: usize = 9;

/// Upper bound on a single record's payload; a decoded length beyond this
/// is treated as corruption.
pub(crate) const MAX_RECORD: u32 = 64 << 20;

/// Size of the sequential-read unit used by recovery scans (§5.4: "Log
/// reads are 128 sectors (= 64KB)").
pub const SCAN_CHUNK: usize = 128 * SECTOR_SIZE;

/// When and how much the flusher writes per device operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushPolicy {
    /// `None`: flush as soon as requested. `Some(t)`: wait `t` after the
    /// first request so several requests share one device write — the
    /// paper's §5.5 *batch flushing*.
    pub batch_timeout: Option<Duration>,
    /// `true`: every device write takes the *whole* tail, padded to a
    /// sector boundary (classic group commit — an engineering improvement
    /// over the paper's prototype, whose baseline writes per request).
    /// `false`: each write covers only the records flush requests asked
    /// for, ending exactly at a record boundary (the partial last sector
    /// is rewritten by the next flush, as on a real log disk).
    pub group_commit: bool,
    /// Extra delay after the first wakeup in group-commit mode, so
    /// commits that arrive while the previous flush is in flight are
    /// absorbed into the same device write. `None` flushes as soon as
    /// the flusher wakes. Scaled by the disk model's time scale, like
    /// `batch_timeout`.
    pub group_commit_window: Option<Duration>,
    /// `true`: use the legacy append path that copies each frame into
    /// the tail buffer under one global mutex. Kept as a compatibility
    /// baseline; the default is the reservation-based pipeline that
    /// assigns LSNs with an atomic bump and fills segment buffers
    /// outside any lock (see [`crate::tail`]).
    pub serialized_append: bool,
}

impl Default for FlushPolicy {
    fn default() -> FlushPolicy {
        FlushPolicy::immediate()
    }
}

impl FlushPolicy {
    /// Flush on demand with group commit — the library default.
    pub fn immediate() -> FlushPolicy {
        FlushPolicy {
            batch_timeout: None,
            group_commit: true,
            group_commit_window: None,
            serialized_append: false,
        }
    }

    /// The paper's §5.5 batch flushing: delay by `timeout`, then write
    /// exactly what was requested.
    pub fn batched(timeout: Duration) -> FlushPolicy {
        FlushPolicy {
            batch_timeout: Some(timeout),
            group_commit: false,
            group_commit_window: None,
            serialized_append: false,
        }
    }

    /// The paper prototype's non-batched baseline: one write per flush
    /// request, no group commit.
    pub fn per_request() -> FlushPolicy {
        FlushPolicy {
            batch_timeout: None,
            group_commit: false,
            group_commit_window: None,
            serialized_append: false,
        }
    }

    /// Set the group-commit coalescing window.
    #[must_use]
    pub fn with_group_commit_window(mut self, window: Option<Duration>) -> FlushPolicy {
        // A coalescing window only makes sense under group commit; setting
        // one opts the policy in.
        self.group_commit |= window.is_some();
        self.group_commit_window = window;
        self
    }

    /// Select the legacy single-mutex append path.
    #[must_use]
    pub fn with_serialized_append(mut self, serialized: bool) -> FlushPolicy {
        self.serialized_append = serialized;
        self
    }
}

/// Completion state shared between a [`FlushTicket`] and the log that
/// issued it.
struct TicketInner {
    state: Mutex<TicketState>,
    cv: Condvar,
}

struct TicketState {
    /// `None` while pending; `Some(true)` once the durable horizon passed
    /// the target, `Some(false)` when the log stopped first.
    done: Option<bool>,
    /// Callback armed by [`FlushTicket::on_settle`], invoked exactly once
    /// at settlement (usually on the flusher thread).
    waker: Option<Box<dyn FnOnce(bool) + Send>>,
}

impl TicketInner {
    fn new() -> Arc<TicketInner> {
        Arc::new(TicketInner {
            state: Mutex::new(TicketState {
                done: None,
                waker: None,
            }),
            cv: Condvar::new(),
        })
    }

    /// Settle the ticket (idempotent); returns `true` on the first call.
    fn settle(&self, ok: bool) -> bool {
        self.settle_then(ok, || {})
    }

    /// Like [`settle`](Self::settle), running `first` under the state
    /// lock on the winning call — before any waiter can observe the
    /// outcome (used to keep stats counters ahead of observers).
    fn settle_then(&self, ok: bool, first: impl FnOnce()) -> bool {
        let waker = {
            let mut st = self.state.lock();
            if st.done.is_some() {
                return false;
            }
            st.done = Some(ok);
            first();
            self.cv.notify_all();
            st.waker.take()
        };
        if let Some(w) = waker {
            w(ok);
        }
        true
    }
}

/// Handle returned by [`PhysicalLog::flush_to_async`]: settles when the
/// durable horizon passes the requested LSN, or fails when the log stops
/// (crash or close) first. The blocking [`PhysicalLog::flush_to`] is
/// exactly `flush_to_async(lsn).wait()`.
pub struct FlushTicket {
    inner: Arc<TicketInner>,
}

impl FlushTicket {
    /// A ticket with no owning log, settled manually by its creator — the
    /// striped log's merged flush builds one per request and settles it
    /// when every per-stripe leg has.
    pub(crate) fn unsettled() -> FlushTicket {
        FlushTicket {
            inner: TicketInner::new(),
        }
    }

    /// Settle a manually managed ticket (idempotent).
    pub(crate) fn settle_now(&self, ok: bool) {
        self.inner.settle(ok);
    }

    /// Second handle onto the same settlement state, so the striped log
    /// can keep one inside the join callback and return the other.
    pub(crate) fn clone_handle(&self) -> FlushTicket {
        FlushTicket {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Block until the ticket settles.
    pub fn wait(&self) -> Result<(), MspError> {
        let mut st = self.inner.state.lock();
        while st.done.is_none() {
            self.inner.cv.wait(&mut st);
        }
        if st.done == Some(true) {
            Ok(())
        } else {
            Err(MspError::Shutdown)
        }
    }

    /// Non-blocking probe: `None` while pending.
    pub fn poll(&self) -> Option<Result<(), MspError>> {
        self.inner
            .state
            .lock()
            .done
            .map(|ok| if ok { Ok(()) } else { Err(MspError::Shutdown) })
    }

    /// Arm a settlement callback, invoked exactly once with the outcome.
    /// If the ticket already settled it runs inline on this thread;
    /// otherwise it runs on the settling thread (the flusher for
    /// completions, the crashing/closing thread for failures) and must
    /// not block.
    pub fn on_settle(&self, f: impl FnOnce(bool) + Send + 'static) {
        let mut st = self.inner.state.lock();
        match st.done {
            Some(ok) => {
                drop(st);
                f(ok);
            }
            None => {
                debug_assert!(st.waker.is_none(), "one settlement callback per ticket");
                st.waker = Some(Box::new(f));
            }
        }
    }
}

/// Volatile state of the log.
struct Buffer {
    /// Framed bytes not yet handed to the device.
    tail: Vec<u8>,
    /// LSN of `tail[0]`.
    tail_start: u64,
    /// Every byte below this is durable.
    durable: u64,
    /// Absolute end offsets of the unflushed records, in order — the
    /// legal split points for non-group-commit flushes.
    record_ends: Vec<u64>,
    /// Highest flush target already handed to the flusher. Offsets are
    /// monotone and every signalled target is eventually flushed, so a
    /// `flush_to` whose target is at or below this needs no new wakeup
    /// — it just waits for the durable horizon to reach it.
    requested: u64,
}

/// Which append pipeline backs the volatile tail.
enum TailImpl {
    /// Legacy: every append copies its frame into one `Vec` under a
    /// global mutex ([`FlushPolicy::serialized_append`]).
    Serialized(Mutex<Buffer>),
    /// Default: lock-free LSN reservation + out-of-lock segment filling
    /// (see [`crate::tail`]).
    Reserved(ReservedTail),
}

/// The append/flush/read interface over one MSP's log device.
pub struct PhysicalLog {
    disk: Arc<dyn Disk>,
    model: DiskModel,
    tail: TailImpl,
    durable_cv: Condvar,
    wakeup_tx: Sender<u64>,
    stopped: AtomicBool,
    stats: LogStats,
    /// Pending flush tickets keyed by target LSN. The flusher settles
    /// every ticket strictly below the durable horizon after each device
    /// flush; shutdown fails whatever is left.
    tickets: Mutex<BTreeMap<u64, Vec<Arc<TicketInner>>>>,
    flusher: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Armed crash-point plan (torture rig); `fault_armed` is the lock-free
    /// fast path so un-instrumented runs pay one relaxed load per site.
    fault: Mutex<Option<Arc<FaultPlan>>>,
    fault_armed: AtomicBool,
    /// Reclaim floor: every record at an LSN below this has been (or is
    /// being) reclaimed from the device. Persisted in sector 0 *before*
    /// any space is released, so a crash mid-truncation can only leave
    /// stale-but-unreferenced bytes, never a floor that lies low. All
    /// scans clamp their start to this — the bytes below read as zeros,
    /// and a zero byte mid-sector would make the padding-skip heuristic
    /// step *past* a floor that is not sector-aligned.
    floor: AtomicU64,
}

impl PhysicalLog {
    /// Open a log over `disk`, scanning forward from the persisted reclaim
    /// floor (`DATA_START` when the log was never truncated) to find the
    /// end of the intact record stream, and start the flusher thread.
    pub fn open(
        disk: Arc<dyn Disk>,
        model: DiskModel,
        policy: FlushPolicy,
    ) -> Result<Arc<PhysicalLog>, MspError> {
        // The probe must start exactly at the floor: below it the device
        // reads as zeros, and a mid-sector floor would be skipped over by
        // the padding heuristic if the scan started any earlier.
        let floor = crate::anchor::read_floor(disk.as_ref())?
            .unwrap_or(DATA_START)
            .max(DATA_START);
        // Determine the append position: walk the durable records until the
        // first torn / absent frame.
        let append_at = {
            let probe = RawScanner::new(disk.clone(), floor, None, None);
            probe.find_end()?
        };
        Self::open_at(disk, model, policy, append_at)
    }

    /// Open with a known append position (used by tests and by recovery
    /// paths that have already scanned).
    pub fn open_at(
        disk: Arc<dyn Disk>,
        model: DiskModel,
        policy: FlushPolicy,
        append_at: u64,
    ) -> Result<Arc<PhysicalLog>, MspError> {
        let (wakeup_tx, wakeup_rx) = crossbeam_channel::unbounded::<u64>();
        let floor = crate::anchor::read_floor(disk.as_ref())?
            .unwrap_or(DATA_START)
            .max(DATA_START);
        let at = append_at.max(DATA_START).max(floor);
        let tail = if policy.serialized_append {
            TailImpl::Serialized(Mutex::new(Buffer {
                tail: Vec::with_capacity(64 * 1024),
                tail_start: at,
                durable: at,
                record_ends: Vec::new(),
                requested: at,
            }))
        } else {
            TailImpl::Reserved(ReservedTail::new(at))
        };
        let log = Arc::new(PhysicalLog {
            disk,
            model,
            tail,
            durable_cv: Condvar::new(),
            wakeup_tx,
            stopped: AtomicBool::new(false),
            stats: LogStats::default(),
            tickets: Mutex::new(BTreeMap::new()),
            flusher: Mutex::new(None),
            fault: Mutex::new(None),
            fault_armed: AtomicBool::new(false),
            floor: AtomicU64::new(floor),
        });
        if floor > DATA_START {
            // A crash between the floor write and the reclaim leaves stale
            // bytes under the floor; re-issuing the (idempotent) reclaim at
            // every open restores the zeros-below-floor invariant the
            // audits check.
            log.disk.reclaim(DATA_START, floor).map_err(MspError::Io)?;
            log.stats.note_reclaim_floor(floor);
        }
        let worker = Arc::clone(&log);
        let handle = std::thread::Builder::new()
            .name("log-flusher".into())
            .spawn(move || worker.flusher_loop(wakeup_rx, policy))
            .map_err(MspError::Io)?;
        *log.flusher.lock() = Some(handle);
        Ok(log)
    }

    /// The disk this log writes to (shared with the restarted MSP after a
    /// simulated crash).
    pub fn disk(&self) -> Arc<dyn Disk> {
        Arc::clone(&self.disk)
    }

    /// The cost model in force.
    pub fn model(&self) -> &DiskModel {
        &self.model
    }

    /// Overhead counters.
    pub fn stats(&self) -> LogStatsSnapshot {
        self.stats.snapshot()
    }

    /// The live counter struct, for in-crate collaborators (the replay
    /// cache accounts its hits/misses against the log it fronts).
    pub(crate) fn stats_ref(&self) -> &LogStats {
        &self.stats
    }

    /// Install a crash-point plan on the live log (torture rig). The plan
    /// fires at most once; see [`crate::fault`].
    pub fn install_fault_plan(&self, plan: Arc<FaultPlan>) {
        *self.fault.lock() = Some(plan);
        self.fault_armed.store(true, Ordering::Release);
    }

    /// Crash-site probe: if an armed [`FaultPlan`]'s countdown for `point`
    /// expires on this traversal, crash the log **here** — the unclean
    /// shutdown runs synchronously, discarding the volatile tail before
    /// the surrounding operation can complete — and report the fire.
    /// Returns `true` iff this call crashed the log.
    pub fn fault_point(&self, point: CrashPoint) -> bool {
        if !self.fault_armed.load(Ordering::Acquire) {
            return false;
        }
        let plan = self.fault.lock().clone();
        let Some(plan) = plan else { return false };
        if !plan.should_fire(point) {
            return false;
        }
        self.shutdown(false);
        plan.notify_fired(point);
        true
    }

    /// Append `record` to the volatile tail; returns its LSN. Does not
    /// make it durable — pair with [`flush_to`](Self::flush_to).
    pub fn append(&self, record: &LogRecord) -> Lsn {
        self.append_sized(record).0
    }

    /// Append `record` and also return its framed size (header +
    /// payload) in the log. Callers that feed per-session log-consumption
    /// counters need the size; measuring it with a pair of `end_lsn`
    /// probes around the append is racy once appends run concurrently,
    /// so the append itself reports it.
    pub fn append_sized(&self, record: &LogRecord) -> (Lsn, u64) {
        // Crash site: the record's reservation goes through but its bytes
        // die with the discarded tail (the reserved path abandons the
        // fill once stopped), modelling a kill mid-append.
        self.fault_point(CrashPoint::MidAppend);
        let payload = record.to_bytes();
        debug_assert!(payload.len() as u32 <= MAX_RECORD);
        let crc = crc32(&payload);
        let framed = (FRAME_HEADER + payload.len()) as u64;
        let lsn = match &self.tail {
            TailImpl::Serialized(inner) => {
                let mut inner = inner.lock();
                let lsn = inner.tail_start + inner.tail.len() as u64;
                inner.tail.push(FRAME_MAGIC);
                inner
                    .tail
                    .extend_from_slice(&(payload.len() as u32).to_le_bytes());
                inner.tail.extend_from_slice(&crc.to_le_bytes());
                inner.tail.extend_from_slice(&payload);
                let end = inner.tail_start + inner.tail.len() as u64;
                inner.record_ends.push(end);
                lsn
            }
            TailImpl::Reserved(rt) => {
                // Encode the full frame first — outside any lock — then
                // reserve a range and copy it into the staging ring.
                let mut frame = Vec::with_capacity(framed as usize);
                frame.push(FRAME_MAGIC);
                frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                frame.extend_from_slice(&crc.to_le_bytes());
                frame.extend_from_slice(&payload);
                self.stats.on_reservation();
                rt.append(&frame, &self.wakeup_tx, &self.stopped)
            }
        };
        self.stats.on_append(framed);
        (Lsn(lsn), framed)
    }

    /// LSN the next append will receive (under concurrent appends this
    /// is a snapshot — another reservation may land immediately after).
    pub fn end_lsn(&self) -> Lsn {
        match &self.tail {
            TailImpl::Serialized(inner) => {
                let inner = inner.lock();
                Lsn(inner.tail_start + inner.tail.len() as u64)
            }
            TailImpl::Reserved(rt) => Lsn(rt.reserved()),
        }
    }

    /// LSN of the most recently appended record's *end*; every record with
    /// LSN strictly below the durable point is safe.
    pub fn durable_lsn(&self) -> Lsn {
        match &self.tail {
            TailImpl::Serialized(inner) => Lsn(inner.lock().durable),
            TailImpl::Reserved(rt) => Lsn(rt.durable()),
        }
    }

    /// Block until the record at `lsn` (and everything before it) is
    /// durable. Wakes the flusher if needed.
    pub fn flush_to(&self, lsn: Lsn) -> Result<(), MspError> {
        self.flush_to_async(lsn).wait()
    }

    /// Non-blocking flush request: register interest in the durable
    /// horizon passing `lsn`, wake the flusher if needed, and return a
    /// [`FlushTicket`] that settles when it does. Tickets at-or-below the
    /// new durable horizon settle together after each device flush (group
    /// commit batches them); a crash or close fails whatever is pending.
    pub fn flush_to_async(&self, lsn: Lsn) -> FlushTicket {
        self.stats.on_ticket_issued();
        let ticket = FlushTicket {
            inner: TicketInner::new(),
        };
        // Crash site: records were appended (reservations complete) but
        // the kill lands before any of them can reach the device.
        if self.fault_point(CrashPoint::PreFlush) {
            ticket.inner.settle(false);
            return ticket;
        }
        match &self.tail {
            TailImpl::Serialized(inner_mx) => {
                {
                    let inner = inner_mx.lock();
                    let tail_end = inner.tail_start + inner.tail.len() as u64;
                    // Already durable — or nothing at that LSN has even
                    // been appended (defensive, as in the old blocking
                    // loop): settle without touching the registry.
                    if inner.durable > lsn.0 || tail_end <= lsn.0 {
                        drop(inner);
                        self.stats.on_ticket_completed();
                        ticket.inner.settle(true);
                        return ticket;
                    }
                }
                // Register before the stop-flag check: `shutdown` sets the
                // flag before sweeping the registry, so a ticket that
                // misses the sweep observes the flag here and fails
                // itself.
                self.tickets
                    .lock()
                    .entry(lsn.0)
                    .or_default()
                    .push(Arc::clone(&ticket.inner));
                if self.stopped.load(Ordering::SeqCst) {
                    ticket.inner.settle(false);
                    return ticket;
                }
                let mut inner = inner_mx.lock();
                let tail_end = inner.tail_start + inner.tail.len() as u64;
                // `record_ends` is sorted, so the end of the record
                // containing `lsn` is the first entry past it.
                let idx = inner.record_ends.partition_point(|&e| e <= lsn.0);
                let target = inner.record_ends.get(idx).copied().unwrap_or(tail_end);
                if target > inner.requested {
                    inner.requested = target;
                    drop(inner);
                    if self.wakeup_tx.send(target).is_err() {
                        ticket.inner.settle(false);
                        return ticket;
                    }
                } else {
                    drop(inner);
                }
                // The flusher may have advanced the horizon between the
                // fast-path check and the registration; sweep once so the
                // ticket cannot be stranded.
                let durable = inner_mx.lock().durable;
                if durable > lsn.0 {
                    self.complete_tickets(durable);
                }
            }
            TailImpl::Reserved(rt) => {
                if rt.durable() > lsn.0 || rt.reserved() <= lsn.0 {
                    self.stats.on_ticket_completed();
                    ticket.inner.settle(true);
                    return ticket;
                }
                self.tickets
                    .lock()
                    .entry(lsn.0)
                    .or_default()
                    .push(Arc::clone(&ticket.inner));
                if self.stopped.load(Ordering::SeqCst) {
                    ticket.inner.settle(false);
                    return ticket;
                }
                // Reservation points always sit on frame boundaries, so
                // the current reserved end is a legal target; it also
                // absorbs every record appended so far, which is exactly
                // group commit's job.
                let reserved = rt.reserved();
                if rt.note_requested(reserved) && self.wakeup_tx.send(reserved).is_err() {
                    ticket.inner.settle(false);
                    return ticket;
                }
                let durable = rt.durable();
                if durable > lsn.0 {
                    self.complete_tickets(durable);
                }
            }
        }
        ticket
    }

    /// Settle every registered ticket whose target is strictly below the
    /// durable horizon (`durable > lsn` is the completion condition,
    /// matching the blocking wait predicate).
    fn complete_tickets(&self, durable: u64) {
        let ready: Vec<Arc<TicketInner>> = {
            let mut reg = self.tickets.lock();
            if reg.is_empty() {
                return;
            }
            let keep = reg.split_off(&durable);
            let ready = std::mem::replace(&mut *reg, keep);
            ready.into_values().flatten().collect()
        };
        for t in ready {
            t.settle_then(true, || self.stats.on_ticket_completed());
        }
    }

    /// Fail every pending ticket — crash/close path. Idempotent.
    fn fail_all_tickets(&self) {
        let all: Vec<Arc<TicketInner>> = std::mem::take(&mut *self.tickets.lock())
            .into_values()
            .flatten()
            .collect();
        for t in all {
            t.settle(false);
        }
    }

    /// Flush everything appended so far.
    pub fn flush_all(&self) -> Result<(), MspError> {
        let end = self.end_lsn();
        if end.0 == 0 {
            return Ok(());
        }
        self.flush_to(Lsn(end.0 - 1))
    }

    /// Like [`read_record`](Self::read_record) but also returns the
    /// record's framed size in the log (header + payload) — used by
    /// replay to maintain the per-session log-consumption counter that
    /// drives checkpointing. The size comes from the fetched frame
    /// itself; the record is never re-encoded to measure it.
    pub fn read_record_sized(&self, lsn: Lsn) -> Result<(LogRecord, u64), MspError> {
        self.stats.on_record_read();
        let payload = self.read_frame(lsn)?;
        let framed = (FRAME_HEADER + payload.len()) as u64;
        let rec = LogRecord::from_bytes(&payload).map_err(|e| MspError::LogCorrupt {
            offset: lsn.0,
            reason: e.to_string(),
        })?;
        Ok((rec, framed))
    }

    /// Read and decode the record at `lsn`, serving from the volatile tail
    /// if it has not been flushed yet (orphan recovery runs while the MSP
    /// is alive, so the record may still be buffered).
    pub fn read_record(&self, lsn: Lsn) -> Result<LogRecord, MspError> {
        self.stats.on_record_read();
        let payload = self.read_frame(lsn)?;
        LogRecord::from_bytes(&payload).map_err(|e| MspError::LogCorrupt {
            offset: lsn.0,
            reason: e.to_string(),
        })
    }

    /// Fetch the validated frame payload at `lsn`, from the volatile
    /// tail if still buffered, else from the device.
    fn read_frame(&self, lsn: Lsn) -> Result<Vec<u8>, MspError> {
        let corrupt = |reason: &str| MspError::LogCorrupt {
            offset: lsn.0,
            reason: reason.into(),
        };
        match &self.tail {
            TailImpl::Serialized(inner) => {
                {
                    let inner = inner.lock();
                    if lsn.0 >= inner.tail_start {
                        let off = (lsn.0 - inner.tail_start) as usize;
                        if off >= inner.tail.len() {
                            return Err(corrupt("read past end of log"));
                        }
                        return read_frame_from_slice(&inner.tail, off, lsn.0);
                    }
                }
                read_frame_from_disk(self.disk.as_ref(), lsn.0)
            }
            TailImpl::Reserved(rt) => {
                // A known LSN is fully staged (its append returned before
                // the LSN could escape), so the only race is the slot
                // being retired mid-read — in which case the bytes are
                // durable and the device serves them.
                while lsn.0 >= rt.durable() {
                    if lsn.0 >= rt.reserved() {
                        return Err(corrupt("read past end of log"));
                    }
                    let mut header = [0u8; FRAME_HEADER];
                    if !rt.try_copy_out(lsn.0, &mut header) {
                        continue;
                    }
                    if header[0] != FRAME_MAGIC {
                        return Err(corrupt("bad frame magic"));
                    }
                    let len = u32::from_le_bytes(header[1..5].try_into().expect("slice")) as usize;
                    let crc = u32::from_le_bytes(header[5..9].try_into().expect("slice"));
                    if len as u32 > MAX_RECORD {
                        return Err(corrupt("oversized frame"));
                    }
                    let mut payload = vec![0u8; len];
                    if !rt.try_copy_out(lsn.0 + FRAME_HEADER as u64, &mut payload) {
                        continue;
                    }
                    if crc32(&payload) != crc {
                        return Err(corrupt("crc mismatch"));
                    }
                    return Ok(payload);
                }
                read_frame_from_disk(self.disk.as_ref(), lsn.0)
            }
        }
    }

    /// Sequential scanner over the *durable* log starting at `from`,
    /// charging the disk model's sequential-read cost per 64 KB chunk.
    /// Used by crash recovery; the volatile tail is, by definition of a
    /// crash, not present.
    pub fn scan_from(&self, from: Lsn) -> LogScanner<'_> {
        LogScanner {
            raw: RawScanner::new(
                self.disk.clone(),
                self.clamp_scan_start(from),
                Some(&self.model),
                Some(&self.stats),
            ),
        }
    }

    /// Every scan starts at or above the reclaim floor: the bytes below it
    /// read as zeros, and a zero at a non-sector-aligned floor would make
    /// the padding-skip heuristic jump past the first live record.
    fn clamp_scan_start(&self, from: Lsn) -> u64 {
        from.0
            .max(DATA_START)
            .max(self.floor.load(Ordering::Acquire))
    }

    /// Like [`scan_from`](Self::scan_from), but with the device reads
    /// (and their disk-model cost) running in a dedicated prefetch thread
    /// that streams 64 KB chunks ahead of the caller, so decode/analysis
    /// overlaps I/O instead of alternating with it. Falls back to the
    /// serial scanner if the prefetch thread cannot be spawned.
    pub fn scan_from_pipelined(self: &Arc<Self>, from: Lsn) -> LogScanner<'_> {
        let start = self.clamp_scan_start(from);
        match Prefetcher::spawn(Arc::clone(self), start, None) {
            Ok(pf) => LogScanner {
                raw: RawScanner::with_prefetch(self.disk.clone(), start, Some(&self.stats), pf),
            },
            Err(_) => self.scan_from(from),
        }
    }

    /// Like [`scan_from_pipelined`](Self::scan_from_pipelined), with the
    /// I/O stage additionally pushing each block-aligned chunk it reads
    /// into a replay buffer pool (the overlapped-recovery warm-in: the
    /// analysis scan pays for the region once and replay finds it
    /// resident). The prefetch reads are aligned down to the 64 KB block
    /// grid so the fed chunks land on pool block boundaries; the decode
    /// stage still starts at `from`.
    pub fn scan_from_pipelined_fed(self: &Arc<Self>, from: Lsn, feed: ScanFeed) -> LogScanner<'_> {
        let start = self.clamp_scan_start(from);
        match Prefetcher::spawn(Arc::clone(self), start, Some(feed)) {
            Ok(pf) => LogScanner {
                raw: RawScanner::with_prefetch(self.disk.clone(), start, Some(&self.stats), pf),
            },
            Err(_) => self.scan_from(from),
        }
    }

    /// The current reclaim floor: no record below this LSN survives on
    /// the device. `DATA_START` when the log was never truncated.
    pub fn floor(&self) -> Lsn {
        Lsn(self.floor.load(Ordering::Acquire))
    }

    /// Target LSN of the oldest flush ticket still pending, if any. A
    /// pending ticket's record may not be durable yet, so truncation must
    /// never cross it — the reclaim-floor fold includes this.
    pub fn oldest_pending_flush(&self) -> Option<Lsn> {
        self.tickets.lock().keys().next().copied().map(Lsn)
    }

    /// Advance the reclaim floor to `floor` (clamped to the durable
    /// horizon and never moved backwards) and release the device space
    /// below it. Returns the number of bytes newly reclaimed (0 when the
    /// clamp leaves the floor where it was).
    ///
    /// Ordering is crash-safe: the new floor is persisted in sector 0
    /// *before* any space is released. A crash after the persist but
    /// before the reclaim ([`CrashPoint::TruncateStart`]) leaves stale
    /// bytes under an advanced floor — re-opening re-issues the reclaim
    /// and every scan already starts at the floor, so the stale bytes are
    /// unreachable. The caller guarantees `floor` does not exceed any
    /// live dependency (see the reclaim-floor fold in `core`).
    pub fn truncate_below(&self, floor: Lsn) -> Result<u64, MspError> {
        if self.stopped.load(Ordering::SeqCst) {
            return Err(MspError::Shutdown);
        }
        let durable = self.durable_lsn().0;
        let cur = self.floor.load(Ordering::Acquire);
        let target = floor.0.min(durable).max(cur).max(DATA_START);
        if target <= cur {
            return Ok(0);
        }
        crate::anchor::write_floor(self.disk.as_ref(), &self.model, target)?;
        self.floor.fetch_max(target, Ordering::AcqRel);
        if self.fault_point(CrashPoint::TruncateStart) {
            return Err(MspError::Shutdown);
        }
        let reclaimed = target - cur;
        self.disk
            .reclaim(DATA_START, target)
            .map_err(MspError::Io)?;
        self.stats.on_truncation(reclaimed, target);
        if self.fault_point(CrashPoint::TruncateComplete) {
            return Err(MspError::Shutdown);
        }
        Ok(reclaimed)
    }

    /// Charge the model's sequential-read cost for `bytes` of log read by
    /// a recovery path that reads via [`read_record`](Self::read_record)
    /// (position-stream driven replay reads 64 KB chunks in the paper).
    pub fn charge_sequential_read(&self, bytes: u64) {
        let chunks = bytes.div_ceil(SCAN_CHUNK as u64);
        for _ in 0..chunks {
            self.stats.on_scan_chunk();
            self.model.charge_read(128);
        }
    }

    /// Stop the flusher *without* flushing the tail: the simulated crash.
    /// Buffered records are lost, exactly as in a real power failure.
    pub fn crash(&self) {
        self.shutdown(false);
    }

    /// Flush everything and stop the flusher: clean shutdown.
    pub fn close(&self) {
        let _ = self.flush_all();
        self.shutdown(true);
    }

    fn shutdown(&self, clean: bool) {
        if !clean {
            // Discard the volatile tail so the flusher's final drain
            // cannot accidentally make it durable.
            match &self.tail {
                TailImpl::Serialized(inner) => {
                    let mut inner = inner.lock();
                    inner.tail.clear();
                    inner.record_ends.clear();
                }
                TailImpl::Reserved(rt) => rt.set_discard(),
            }
        }
        self.stopped.store(true, Ordering::SeqCst);
        if let TailImpl::Reserved(rt) = &self.tail {
            // Unpark a flusher waiting for segment completion promptly.
            rt.notify_force();
        }
        let _ = self.wakeup_tx.send(u64::MAX);
        if let Some(h) = self.flusher.lock().take() {
            let _ = h.join();
        }
        // Fail whatever tickets the (now stopped) flusher left pending.
        // Tickets registered after this sweep observe the stop flag and
        // fail themselves.
        self.fail_all_tickets();
        // Wake any stragglers stuck in flush_to. Bracketing the notify
        // with the buffer lock closes the missed-wakeup window: a waiter
        // holds the lock from its stop-flag check until it enters the
        // wait, so by the time this lock is acquired the waiter either
        // saw `stopped` or is already parked and will receive the
        // notification.
        match &self.tail {
            TailImpl::Serialized(inner) => {
                drop(inner.lock());
                self.durable_cv.notify_all();
            }
            TailImpl::Reserved(rt) => rt.notify_force(),
        }
    }

    fn flusher_loop(self: Arc<PhysicalLog>, wakeup_rx: Receiver<u64>, policy: FlushPolicy) {
        loop {
            // Purely event-driven: block until a flush target (or the
            // shutdown sentinel) arrives; no periodic poll.
            let first = match wakeup_rx.recv() {
                Ok(t) => t,
                Err(crossbeam_channel::RecvError) => return,
            };
            if self.stopped.load(Ordering::SeqCst) {
                // Final drain so close() callers are not stranded.
                self.final_drain(policy);
                return;
            }
            if let Some(t) = policy.batch_timeout {
                // Batch flushing (§5.5): delay so several requests are
                // served by one device write.
                crate::model::sleep_exact(t.mul_f64(self.model.time_scale.max(0.0)));
            } else if policy.group_commit {
                if let Some(w) = policy.group_commit_window {
                    // Hold the device briefly so commits arriving while
                    // this flush is being assembled join it.
                    crate::model::sleep_exact(w.mul_f64(self.model.time_scale.max(0.0)));
                }
            }
            // Absorb every request that queued up behind the first; one
            // device write serves them all (group commit / batching).
            let target = if policy.group_commit || policy.batch_timeout.is_some() {
                let mut target = first;
                let mut extra = 0u64;
                while let Ok(t) = wakeup_rx.try_recv() {
                    target = target.max(t);
                    extra += 1;
                }
                if extra > 0 {
                    self.stats.on_group_commit_batch();
                }
                target
            } else {
                first
            };
            match &self.tail {
                TailImpl::Serialized(_) => {
                    if policy.group_commit {
                        // Group commit: one write takes everything pending.
                        self.perform_flush(None);
                    } else if policy.batch_timeout.is_some() {
                        // Batch flushing (§5.5): the timeout window
                        // coalesced all requests into one write.
                        self.perform_flush(Some(target));
                    } else {
                        // The paper prototype's baseline: one device write
                        // per flush request (already-covered targets are
                        // no-ops).
                        self.perform_flush(Some(first));
                    }
                }
                TailImpl::Reserved(rt) => {
                    if policy.group_commit {
                        let goal = rt.requested().max(rt.reserved());
                        self.flush_reserved(rt, goal, true);
                    } else {
                        self.flush_reserved(rt, target.max(first), false);
                    }
                }
            }
            // The coalescing drains above may have consumed the shutdown
            // sentinel; recheck so shutdown() is never left joining a
            // flusher that is blocked on an empty channel.
            if self.stopped.load(Ordering::SeqCst) {
                self.final_drain(policy);
                return;
            }
        }
    }

    /// Last flush before the flusher exits, so `close()` callers are not
    /// stranded. A crash (`discard`) makes this a no-op on the reserved
    /// path; the serialized path's tail was already cleared.
    fn final_drain(&self, policy: FlushPolicy) {
        match &self.tail {
            TailImpl::Serialized(_) => self.perform_flush(None),
            TailImpl::Reserved(rt) => {
                if !rt.discarded() {
                    let goal = rt.requested().max(rt.reserved());
                    self.flush_reserved(rt, goal, policy.group_commit);
                }
                rt.notify_force();
            }
        }
    }

    /// Drive the reserved tail durable up to `goal` (clamped to the
    /// reserved end), waiting for segment completion watermarks as
    /// needed. `pad` rounds the final write up to a sector boundary when
    /// no concurrent reservation races in.
    fn flush_reserved(&self, rt: &ReservedTail, goal: u64, pad: bool) {
        loop {
            if rt.discarded() {
                break;
            }
            let durable = rt.durable();
            let goal_now = goal.min(rt.reserved());
            if durable >= goal_now {
                break;
            }
            // Never ship a range with holes: advance only over segments
            // whose completion watermark accounts for every reserved
            // byte.
            let prefix = rt.complete_prefix(durable, goal_now);
            if prefix <= durable {
                if self.stopped.load(Ordering::SeqCst) {
                    // An appender may have aborted mid-copy at shutdown;
                    // the hole will never fill, so give up.
                    break;
                }
                rt.wait(|| {
                    rt.complete_prefix(durable, goal_now) > durable
                        || self.stopped.load(Ordering::SeqCst)
                        || rt.discarded()
                });
                continue;
            }
            let mut bytes = Vec::new();
            rt.collect(durable, prefix, &mut bytes);
            let mut end = prefix;
            let padding = ReservedTail::pad_to_sector(prefix);
            if pad && padding > 0 && rt.claim_padding(prefix, padding) {
                // The pad range is now reserved for these zeros; account
                // it filled so the watermark check stays exact.
                rt.account_padding(prefix, padding);
                bytes.resize(bytes.len() + padding as usize, 0);
                end = prefix + padding;
            }
            // Sector span actually touched (the first sector may be a
            // partial rewrite); an unpadded partial last sector is waste
            // this flush pays for, exactly like the serialized path.
            let first_sector = durable / SECTOR_SIZE as u64;
            let last_sector = end.div_ceil(SECTOR_SIZE as u64);
            let sectors = last_sector - first_sector;
            self.model.charge_flush(sectors);
            if self.disk.write(durable, &bytes).is_err() {
                break;
            }
            self.stats.on_flush(sectors, padding);
            rt.publish_durable(end);
            rt.retire_through(end);
            self.complete_tickets(rt.durable());
        }
        rt.notify_force();
    }

    /// One device write. `limit = None` takes the whole tail and pads it
    /// to a sector boundary (group commit); `limit = Some(end)` writes
    /// only up to the record boundary `end`, unpadded — the next flush
    /// rewrites the partial last sector, as on a real log disk.
    fn perform_flush(&self, limit: Option<u64>) {
        let TailImpl::Serialized(inner_mx) = &self.tail else {
            return;
        };
        let (start, bytes, padded, end) = {
            let mut inner = inner_mx.lock();
            if inner.tail.is_empty() {
                self.durable_cv.notify_all();
                return;
            }
            let start = inner.tail_start;
            let tail_end = start + inner.tail.len() as u64;
            match limit {
                None => {
                    let mut bytes = std::mem::take(&mut inner.tail);
                    let pad =
                        (SECTOR_SIZE as u64 - tail_end % SECTOR_SIZE as u64) % SECTOR_SIZE as u64;
                    bytes.resize(bytes.len() + pad as usize, 0);
                    inner.tail_start = tail_end + pad;
                    inner.record_ends.clear();
                    (start, bytes, pad, tail_end + pad)
                }
                Some(l) => {
                    // Clamp to a record boundary within the tail.
                    let end = l.clamp(start, tail_end);
                    if end <= start {
                        self.durable_cv.notify_all();
                        return;
                    }
                    debug_assert!(
                        inner.record_ends.binary_search(&end).is_ok() || end == tail_end,
                        "flush limit must be a record boundary"
                    );
                    let take = (end - start) as usize;
                    let bytes: Vec<u8> = inner.tail.drain(..take).collect();
                    inner.tail_start = end;
                    let keep = inner.record_ends.partition_point(|&e| e <= end);
                    inner.record_ends.drain(..keep);
                    // The unwritten remainder of the last sector is waste
                    // this flush pays for (it will be rewritten).
                    let waste =
                        (SECTOR_SIZE as u64 - end % SECTOR_SIZE as u64) % SECTOR_SIZE as u64;
                    (start, bytes, waste, end)
                }
            }
        };
        // Sector span actually touched by this write (the first sector may
        // be a partial rewrite).
        let first_sector = start / SECTOR_SIZE as u64;
        let last_sector = end.div_ceil(SECTOR_SIZE as u64);
        let sectors = last_sector - first_sector;
        self.model.charge_flush(sectors);
        // MemDisk writes cannot fail; FileDisk failures would need real
        // error propagation — surfaced as a poisoned durable horizon.
        if self.disk.write(start, &bytes).is_ok() {
            let durable = {
                let mut inner = inner_mx.lock();
                inner.durable = inner.durable.max(end);
                self.stats.on_flush(sectors, padded);
                inner.durable
            };
            self.complete_tickets(durable);
        }
        self.durable_cv.notify_all();
    }
}

impl Drop for PhysicalLog {
    fn drop(&mut self) {
        // Crash-consistent by default: the tail is NOT flushed. Callers
        // wanting durability must call `close()`.
        match &self.tail {
            TailImpl::Serialized(inner) => {
                let mut inner = inner.lock();
                inner.tail.clear();
                inner.record_ends.clear();
            }
            TailImpl::Reserved(rt) => rt.set_discard(),
        }
        self.stopped.store(true, Ordering::SeqCst);
        if let TailImpl::Reserved(rt) = &self.tail {
            rt.notify_force();
        }
        let _ = self.wakeup_tx.send(u64::MAX);
        if let Some(h) = self.flusher.lock().take() {
            let _ = h.join();
        }
        // A FlushTicket only holds the shared TicketInner, so a waiter
        // can outlive the log; fail the registry or they hang forever.
        self.fail_all_tickets();
    }
}

fn read_frame_from_slice(buf: &[u8], off: usize, lsn: u64) -> Result<Vec<u8>, MspError> {
    let corrupt = |reason: &str| MspError::LogCorrupt {
        offset: lsn,
        reason: reason.into(),
    };
    if buf.len() < off + FRAME_HEADER {
        return Err(corrupt("truncated frame header"));
    }
    if buf[off] != FRAME_MAGIC {
        return Err(corrupt("bad frame magic"));
    }
    let len = u32::from_le_bytes(buf[off + 1..off + 5].try_into().expect("slice")) as usize;
    let crc = u32::from_le_bytes(buf[off + 5..off + 9].try_into().expect("slice"));
    if len as u32 > MAX_RECORD || buf.len() < off + FRAME_HEADER + len {
        return Err(corrupt("truncated frame payload"));
    }
    let payload = &buf[off + FRAME_HEADER..off + FRAME_HEADER + len];
    if crc32(payload) != crc {
        return Err(corrupt("crc mismatch"));
    }
    Ok(payload.to_vec())
}

fn read_frame_from_disk(disk: &dyn Disk, lsn: u64) -> Result<Vec<u8>, MspError> {
    let corrupt = |reason: &str| MspError::LogCorrupt {
        offset: lsn,
        reason: reason.into(),
    };
    let mut header = [0u8; FRAME_HEADER];
    let n = disk.read(lsn, &mut header).map_err(MspError::Io)?;
    if n < FRAME_HEADER {
        return Err(corrupt("truncated frame header"));
    }
    if header[0] != FRAME_MAGIC {
        return Err(corrupt("bad frame magic"));
    }
    let len = u32::from_le_bytes(header[1..5].try_into().expect("slice")) as usize;
    let crc = u32::from_le_bytes(header[5..9].try_into().expect("slice"));
    if len as u32 > MAX_RECORD {
        return Err(corrupt("oversized frame"));
    }
    let mut payload = vec![0u8; len];
    let n = disk
        .read(lsn + FRAME_HEADER as u64, &mut payload)
        .map_err(MspError::Io)?;
    if n < len {
        return Err(corrupt("truncated frame payload"));
    }
    if crc32(&payload) != crc {
        return Err(corrupt("crc mismatch"));
    }
    Ok(payload)
}

/// Depth of the pipelined scan: 64 KB chunks buffered between the I/O
/// stage and the decode stage.
const PREFETCH_DEPTH: usize = 4;

/// I/O stage of a pipelined scan ([`PhysicalLog::scan_from_pipelined`]):
/// a thread streaming consecutive [`SCAN_CHUNK`] chunks off the device
/// into a bounded channel, paying the disk model's sequential-read cost
/// as it goes so the decode stage never waits on simulated disk time.
struct Prefetcher {
    rx: Option<Receiver<(u64, Vec<u8>)>>,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Prefetcher {
    fn spawn(
        log: Arc<PhysicalLog>,
        from: u64,
        feed: Option<ScanFeed>,
    ) -> std::io::Result<Prefetcher> {
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = crossbeam_channel::bounded::<(u64, Vec<u8>)>(PREFETCH_DEPTH);
        let flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("log-prefetch".into())
            .spawn(move || {
                // The device length is fixed for the duration of a
                // recovery scan (recovery appends only after analysis).
                let limit = log.disk.len();
                // When feeding a buffer pool, align the reads down to the
                // block grid: every chunk then covers exactly one pool
                // block (the decode stage tolerates a chunk starting
                // before its read position). Costs at most one extra
                // chunk over the unaligned walk.
                let mut off = if feed.is_some() {
                    from - from % SCAN_CHUNK as u64
                } else {
                    from
                };
                while off < limit && !flag.load(Ordering::Relaxed) {
                    let mut chunk = vec![0u8; SCAN_CHUNK];
                    let n = match log.disk.read(off, &mut chunk) {
                        Ok(n) => n,
                        Err(_) => break,
                    };
                    if n == 0 {
                        break;
                    }
                    chunk.truncate(n);
                    log.model.charge_read(128);
                    log.stats.on_prefetch_chunk();
                    log.stats.on_scan_chunk();
                    if let Some(feed) = &feed {
                        if off % SCAN_CHUNK as u64 == 0 {
                            feed.insert(off / SCAN_CHUNK as u64, chunk.clone());
                        }
                    }
                    if tx.send((off, chunk)).is_err() {
                        break; // decode stage gone: scan ended early
                    }
                    off += n as u64;
                }
            })?;
        Ok(Prefetcher {
            rx: Some(rx),
            stop,
            handle: Some(handle),
        })
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Dropping the receiver unblocks a sender stalled on a full
        // pipeline; then the thread observes the flag or the send error.
        self.rx.take();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Low-level frame walker over the durable portion of a disk.
///
/// Reads through a 64 KB ([`SCAN_CHUNK`]) read-ahead buffer so a
/// sequential scan costs one device read per chunk rather than three
/// small reads (padding probe, header, payload) per record.
pub(crate) struct RawScanner<'a> {
    disk: Arc<dyn Disk>,
    offset: u64,
    limit: u64,
    charge: Option<DiskModel>,
    charged_until: u64,
    stats: Option<&'a LogStats>,
    /// `Some`: chunks arrive from the prefetch thread instead of direct
    /// device reads, and the model cost is charged there.
    prefetch: Option<Prefetcher>,
    /// Read-ahead buffer holding `buf` bytes of the device starting at
    /// absolute offset `buf_start`.
    buf: Vec<u8>,
    buf_start: u64,
}

impl<'a> RawScanner<'a> {
    pub(crate) fn new(
        disk: Arc<dyn Disk>,
        from: u64,
        model: Option<&DiskModel>,
        stats: Option<&'a LogStats>,
    ) -> RawScanner<'a> {
        let limit = disk.len();
        RawScanner {
            disk,
            offset: from,
            limit,
            charge: model.cloned(),
            charged_until: from,
            stats,
            prefetch: None,
            buf: Vec::new(),
            buf_start: from,
        }
    }

    fn with_prefetch(
        disk: Arc<dyn Disk>,
        from: u64,
        stats: Option<&'a LogStats>,
        prefetch: Prefetcher,
    ) -> RawScanner<'a> {
        let limit = disk.len();
        RawScanner {
            disk,
            offset: from,
            limit,
            // The prefetch thread charges the model; charging here too
            // would double-bill the scan.
            charge: None,
            charged_until: from,
            stats,
            prefetch: Some(prefetch),
            buf: Vec::new(),
            buf_start: from,
        }
    }

    /// Offset the scan has reached (the append point when exhausted).
    pub(crate) fn offset(&self) -> u64 {
        self.offset
    }

    /// Walk frames until the stream ends; return the offset where the
    /// next append should go.
    fn find_end(mut self) -> Result<u64, MspError> {
        while self.step()?.is_some() {}
        Ok(self.offset)
    }

    /// Copy `out.len()` bytes starting at absolute offset `off` out of
    /// the read-ahead buffer, refilling it one [`SCAN_CHUNK`] device
    /// read at a time. Returns the number of bytes actually available
    /// (short at end of device).
    fn read_buffered(&mut self, mut off: u64, out: &mut [u8]) -> Result<usize, MspError> {
        let mut copied = 0;
        while copied < out.len() {
            let buf_end = self.buf_start + self.buf.len() as u64;
            if off < self.buf_start || off >= buf_end {
                if let Some(pf) = &self.prefetch {
                    // Pipelined refill: pull chunks until one covers
                    // `off`. The scan only moves forward and the chunks
                    // arrive in device order, so behind-us chunks can be
                    // discarded and a closed channel means end of device.
                    let Some(rx) = pf.rx.as_ref() else { break };
                    let mut refilled = false;
                    while let Ok((start, data)) = rx.recv() {
                        if off < start + data.len() as u64 {
                            self.buf = data;
                            self.buf_start = start;
                            refilled = true;
                            break;
                        }
                    }
                    if !refilled {
                        break;
                    }
                } else {
                    self.buf.resize(SCAN_CHUNK, 0);
                    let n = self.disk.read(off, &mut self.buf).map_err(MspError::Io)?;
                    self.buf.truncate(n);
                    self.buf_start = off;
                    if n == 0 {
                        break;
                    }
                    if let Some(s) = self.stats {
                        s.on_readahead_chunk();
                    }
                }
            }
            let at = (off - self.buf_start) as usize;
            let take = (self.buf.len() - at).min(out.len() - copied);
            out[copied..copied + take].copy_from_slice(&self.buf[at..at + take]);
            copied += take;
            off += take as u64;
        }
        Ok(copied)
    }

    /// Read and validate the frame at `lsn` through the read-ahead
    /// buffer — the buffered analogue of [`read_frame_from_disk`].
    fn read_frame_buffered(&mut self, lsn: u64) -> Result<Vec<u8>, MspError> {
        let corrupt = |reason: &str| MspError::LogCorrupt {
            offset: lsn,
            reason: reason.into(),
        };
        let mut header = [0u8; FRAME_HEADER];
        if self.read_buffered(lsn, &mut header)? < FRAME_HEADER {
            return Err(corrupt("truncated frame header"));
        }
        if header[0] != FRAME_MAGIC {
            return Err(corrupt("bad frame magic"));
        }
        let len = u32::from_le_bytes(header[1..5].try_into().expect("slice")) as usize;
        let crc = u32::from_le_bytes(header[5..9].try_into().expect("slice"));
        if len as u32 > MAX_RECORD {
            return Err(corrupt("oversized frame"));
        }
        let mut payload = vec![0u8; len];
        if self.read_buffered(lsn + FRAME_HEADER as u64, &mut payload)? < len {
            return Err(corrupt("truncated frame payload"));
        }
        if crc32(&payload) != crc {
            return Err(corrupt("crc mismatch"));
        }
        Ok(payload)
    }

    /// Yield the next `(lsn, payload)` pair, skipping sector padding;
    /// `None` at the intact end of the stream (including a torn tail,
    /// which is indistinguishable from "the crash hit mid-flush" and is
    /// therefore treated as the end).
    pub(crate) fn step(&mut self) -> Result<Option<(u64, Vec<u8>)>, MspError> {
        loop {
            if self.offset >= self.limit {
                return Ok(None);
            }
            // Charge sequential-read cost lazily, 64 KB at a time.
            if let Some(model) = &self.charge {
                while self.offset >= self.charged_until {
                    model.charge_read(128);
                    if let Some(s) = self.stats {
                        s.on_scan_chunk();
                    }
                    self.charged_until += SCAN_CHUNK as u64;
                }
            }
            let mut first = [0u8; 1];
            if self.read_buffered(self.offset, &mut first)? == 0 {
                return Ok(None);
            }
            if first[0] == 0 {
                // Sector padding: skip to the next boundary.
                let next = (self.offset / SECTOR_SIZE as u64 + 1) * SECTOR_SIZE as u64;
                self.offset = next;
                continue;
            }
            return match self.read_frame_buffered(self.offset) {
                Ok(payload) => {
                    let lsn = self.offset;
                    self.offset += (FRAME_HEADER + payload.len()) as u64;
                    Ok(Some((lsn, payload)))
                }
                // A torn tail reads as corruption at the very end of the
                // stream; the scan simply ends there.
                Err(MspError::LogCorrupt { .. }) => Ok(None),
                Err(e) => Err(e),
            };
        }
    }
}

/// Iterator over `(Lsn, LogRecord)` pairs of the durable log.
pub struct LogScanner<'a> {
    raw: RawScanner<'a>,
}

impl LogScanner<'_> {
    /// Offset the scan has reached (the append point when exhausted).
    pub fn position(&self) -> Lsn {
        Lsn(self.raw.offset)
    }
}

impl Iterator for LogScanner<'_> {
    type Item = Result<(Lsn, LogRecord), MspError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.raw.step() {
            Ok(Some((lsn, payload))) => match LogRecord::from_bytes(&payload) {
                Ok(rec) => Some(Ok((Lsn(lsn), rec))),
                Err(e) => Some(Err(MspError::LogCorrupt {
                    offset: lsn,
                    reason: e.to_string(),
                })),
            },
            Ok(None) => None,
            Err(e) => Some(Err(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use msp_types::{RequestSeq, SessionId};

    fn rec(session: u64, seq: u64) -> LogRecord {
        LogRecord::RequestReceive {
            session: SessionId(session),
            seq: RequestSeq(seq),
            method: "m".into(),
            payload: vec![7; 50],
            sender_dv: None,
        }
    }

    fn open_mem() -> (MemDisk, Arc<PhysicalLog>) {
        let disk = MemDisk::new();
        let log = PhysicalLog::open(
            Arc::new(disk.clone()),
            DiskModel::zero(),
            FlushPolicy::immediate(),
        )
        .unwrap();
        (disk, log)
    }

    #[test]
    fn append_assigns_monotone_lsns() {
        let (_, log) = open_mem();
        let a = log.append(&rec(1, 0));
        let b = log.append(&rec(1, 1));
        assert_eq!(a, Lsn(DATA_START));
        assert!(b > a);
        log.close();
    }

    #[test]
    fn flush_makes_records_durable_and_padded() {
        let (disk, log) = open_mem();
        let a = log.append(&rec(1, 0));
        log.flush_to(a).unwrap();
        assert!(log.durable_lsn().0 > a.0);
        // Durable extent is sector aligned.
        assert_eq!(disk.len() % SECTOR_SIZE as u64, 0);
        let stats = log.stats();
        assert_eq!(stats.flushes, 1);
        assert!(
            stats.padded_bytes > 0,
            "a 50-byte record must leave padding"
        );
        log.close();
    }

    #[test]
    fn read_record_from_tail_and_disk() {
        let (_, log) = open_mem();
        let a = log.append(&rec(1, 0));
        // Unflushed: served from the tail.
        assert_eq!(log.read_record(a).unwrap(), rec(1, 0));
        log.flush_to(a).unwrap();
        let b = log.append(&rec(1, 1));
        // `a` now on disk, `b` still in the tail.
        assert_eq!(log.read_record(a).unwrap(), rec(1, 0));
        assert_eq!(log.read_record(b).unwrap(), rec(1, 1));
        log.close();
    }

    #[test]
    fn crash_loses_tail_close_keeps_it() {
        let disk = MemDisk::new();
        let lsns: Vec<Lsn>;
        {
            let log = PhysicalLog::open(
                Arc::new(disk.clone()),
                DiskModel::zero(),
                FlushPolicy::immediate(),
            )
            .unwrap();
            let a = log.append(&rec(1, 0));
            log.flush_to(a).unwrap();
            let b = log.append(&rec(1, 1)); // never flushed
            lsns = vec![a, b];
            log.crash();
        }
        let log = PhysicalLog::open(
            Arc::new(disk.clone()),
            DiskModel::zero(),
            FlushPolicy::immediate(),
        )
        .unwrap();
        assert_eq!(log.read_record(lsns[0]).unwrap(), rec(1, 0));
        assert!(
            log.read_record(lsns[1]).is_err(),
            "unflushed record must be lost"
        );
        log.close();
    }

    #[test]
    fn reopen_appends_after_last_intact_record() {
        let disk = MemDisk::new();
        {
            let log = PhysicalLog::open(
                Arc::new(disk.clone()),
                DiskModel::zero(),
                FlushPolicy::immediate(),
            )
            .unwrap();
            let a = log.append(&rec(1, 0));
            log.flush_to(a).unwrap();
            log.crash();
        }
        let log = PhysicalLog::open(
            Arc::new(disk.clone()),
            DiskModel::zero(),
            FlushPolicy::immediate(),
        )
        .unwrap();
        let c = log.append(&rec(2, 0));
        log.flush_to(c).unwrap();
        // Scan sees both records in order.
        let recs: Vec<_> = log
            .scan_from(Lsn(DATA_START))
            .map(|r| r.unwrap().1)
            .collect();
        assert_eq!(recs, vec![rec(1, 0), rec(2, 0)]);
        log.close();
    }

    #[test]
    fn scan_skips_padding_between_flushes() {
        let (_, log) = open_mem();
        for i in 0..5 {
            let l = log.append(&rec(1, i));
            log.flush_to(l).unwrap(); // one flush per record → padding each time
        }
        let got: Vec<_> = log.scan_from(Lsn(DATA_START)).map(|r| r.unwrap()).collect();
        assert_eq!(got.len(), 5);
        for (i, (lsn, r)) in got.iter().enumerate() {
            assert_eq!(*r, rec(1, i as u64));
            if i > 0 {
                assert_eq!(
                    lsn.0 % SECTOR_SIZE as u64,
                    0,
                    "post-flush records start on boundaries"
                );
            }
        }
        log.close();
    }

    #[test]
    fn torn_tail_stops_scan_cleanly() {
        let disk = MemDisk::new();
        {
            let log = PhysicalLog::open(
                Arc::new(disk.clone()),
                DiskModel::zero(),
                FlushPolicy::immediate(),
            )
            .unwrap();
            let a = log.append(&rec(1, 0));
            log.flush_to(a).unwrap();
            log.close();
        }
        // Simulate a torn write: a frame whose payload was cut short.
        let end = disk.len();
        disk.write(end, &[FRAME_MAGIC, 100, 0, 0, 0, 1, 2, 3, 4, 42])
            .unwrap();
        let log = PhysicalLog::open(
            Arc::new(disk.clone()),
            DiskModel::zero(),
            FlushPolicy::immediate(),
        )
        .unwrap();
        let recs: Vec<_> = log
            .scan_from(Lsn(DATA_START))
            .map(|r| r.unwrap().1)
            .collect();
        assert_eq!(recs, vec![rec(1, 0)]);
        // And new appends overwrite the garbage.
        let b = log.append(&rec(2, 2));
        assert_eq!(b.0, end, "append resumes at the torn frame");
        log.close();
    }

    #[test]
    fn group_commit_coalesces_concurrent_flushes() {
        let (_, log) = open_mem();
        let mut lsns = Vec::new();
        for i in 0..32 {
            lsns.push(log.append(&rec(1, i)));
        }
        std::thread::scope(|s| {
            for &lsn in &lsns {
                let log = &log;
                s.spawn(move || log.flush_to(lsn).unwrap());
            }
        });
        let stats = log.stats();
        assert!(
            stats.flushes < 32,
            "32 concurrent flush_to calls must coalesce, got {} flushes",
            stats.flushes
        );
        log.close();
    }

    #[test]
    fn flush_to_already_durable_is_noop() {
        let (_, log) = open_mem();
        let a = log.append(&rec(1, 0));
        log.flush_to(a).unwrap();
        let before = log.stats().flushes;
        log.flush_to(a).unwrap();
        assert_eq!(log.stats().flushes, before);
        log.close();
    }

    #[test]
    fn batch_flushing_merges_requests() {
        let disk = MemDisk::new();
        // Use a tiny real timeout with paper-scale model disabled: scale 0
        // makes the sleep zero, so emulate with an unscaled model of 1.0
        // but a microscopic timeout to keep the test fast.
        let log = PhysicalLog::open(
            Arc::new(disk),
            DiskModel::zero().with_scale(1.0),
            FlushPolicy::batched(Duration::from_millis(2)),
        )
        .unwrap();
        let mut lsns = Vec::new();
        for i in 0..8 {
            lsns.push(log.append(&rec(1, i)));
        }
        std::thread::scope(|s| {
            for &lsn in &lsns {
                let log = &log;
                s.spawn(move || log.flush_to(lsn).unwrap());
            }
        });
        assert!(
            log.stats().flushes <= 3,
            "batching should merge most requests"
        );
        log.close();
    }

    #[test]
    fn flush_after_shutdown_errors() {
        let (_, log) = open_mem();
        let a = log.append(&rec(1, 0));
        log.crash();
        assert!(matches!(log.flush_to(a), Err(MspError::Shutdown)));
    }

    #[test]
    fn end_lsn_tracks_appends() {
        let (_, log) = open_mem();
        let e0 = log.end_lsn();
        assert_eq!(e0, Lsn(DATA_START));
        log.append(&rec(1, 0));
        assert!(log.end_lsn() > e0);
        log.close();
    }

    #[test]
    fn read_record_sized_reports_framed_size() {
        let (_, log) = open_mem();
        let r = rec(1, 0);
        let a = log.append(&r);
        let expected = (FRAME_HEADER + r.to_bytes().len()) as u64;
        // From the volatile tail...
        let (got, framed) = log.read_record_sized(a).unwrap();
        assert_eq!(got, r);
        assert_eq!(framed, expected);
        // ...and from the device.
        log.flush_to(a).unwrap();
        let (got, framed) = log.read_record_sized(a).unwrap();
        assert_eq!(got, r);
        assert_eq!(framed, expected);
        log.close();
    }

    #[test]
    fn scan_reads_one_chunk_not_three_reads_per_record() {
        let (disk, log) = open_mem();
        let n = 50u64;
        for i in 0..n {
            let l = log.append(&rec(1, i));
            log.flush_to(l).unwrap();
        }
        let reads_before = disk.read_count();
        let got: Vec<_> = log.scan_from(Lsn(DATA_START)).map(|r| r.unwrap()).collect();
        assert_eq!(got.len(), n as usize);
        let scan_reads = disk.read_count() - reads_before;
        // 50 one-sector records span a couple of 64 KB chunks at most;
        // the old scanner issued 3 device reads per record (150+).
        assert!(
            scan_reads < n,
            "read-ahead should need far fewer device reads than records, got {scan_reads}"
        );
        assert!(log.stats().readahead_chunks > 0);
        assert_eq!(log.stats().readahead_chunks, scan_reads);
        log.close();
    }

    fn big_rec(session: u64, seq: u64, payload_len: usize) -> LogRecord {
        LogRecord::RequestReceive {
            session: SessionId(session),
            seq: RequestSeq(seq),
            method: "m".into(),
            payload: vec![0xB7; payload_len],
            sender_dv: None,
        }
    }

    #[test]
    fn serialized_append_path_still_works() {
        let disk = MemDisk::new();
        let log = PhysicalLog::open(
            Arc::new(disk.clone()),
            DiskModel::zero(),
            FlushPolicy::immediate().with_serialized_append(true),
        )
        .unwrap();
        let a = log.append(&rec(1, 0));
        assert_eq!(log.read_record(a).unwrap(), rec(1, 0));
        log.flush_to(a).unwrap();
        assert_eq!(disk.len() % SECTOR_SIZE as u64, 0);
        assert_eq!(log.read_record(a).unwrap(), rec(1, 0));
        assert_eq!(
            log.stats().append_reservations,
            0,
            "serialized path must not touch the reservation pipeline"
        );
        log.close();
    }

    #[test]
    fn reserved_append_counts_reservations() {
        let (_, log) = open_mem();
        let a = log.append(&rec(1, 0));
        let (b, framed) = log.append_sized(&rec(1, 1));
        assert_eq!(framed, (FRAME_HEADER + rec(1, 1).to_bytes().len()) as u64);
        assert_eq!(b.0, a.0 + framed);
        assert_eq!(log.stats().append_reservations, 2);
        log.close();
    }

    #[test]
    fn appends_cross_segment_boundaries_cleanly() {
        let (_, log) = open_mem();
        // ~2.5 MB of 64 KB records crosses two segment boundaries; the
        // no-span placement rule inserts zero gaps the scanner must skip.
        let n = 40u64;
        let mut lsns = Vec::new();
        for i in 0..n {
            lsns.push(log.append(&big_rec(1, i, 64 * 1024)));
        }
        assert!(log.end_lsn().0 > 2 * crate::tail::SEGMENT_SIZE as u64);
        log.flush_all().unwrap();
        for (i, &lsn) in lsns.iter().enumerate() {
            assert_eq!(
                log.read_record(lsn).unwrap(),
                big_rec(1, i as u64, 64 * 1024)
            );
        }
        let got: Vec<_> = log
            .scan_from(Lsn(DATA_START))
            .map(|r| r.unwrap().1)
            .collect();
        assert_eq!(got.len(), n as usize);
        log.close();
    }

    #[test]
    fn oversized_frame_spans_segments() {
        let (_, log) = open_mem();
        // A payload bigger than one segment must span, exercise the
        // span-floor clamp, and still read back intact.
        let r = big_rec(
            1,
            0,
            crate::tail::SEGMENT_SIZE + crate::tail::SEGMENT_SIZE / 2,
        );
        let a = log.append(&r);
        log.flush_to(a).unwrap();
        assert_eq!(log.read_record(a).unwrap(), r);
        let b = log.append(&rec(1, 1));
        log.flush_to(b).unwrap();
        assert_eq!(log.read_record(b).unwrap(), rec(1, 1));
        log.close();
    }

    #[test]
    fn concurrent_flushers_count_group_commit_batches() {
        let (_, log) = open_mem();
        let mut lsns = Vec::new();
        for i in 0..64 {
            lsns.push(log.append(&rec(1, i)));
        }
        std::thread::scope(|s| {
            for &lsn in &lsns {
                let log = &log;
                s.spawn(move || log.flush_to(lsn).unwrap());
            }
        });
        let stats = log.stats();
        assert!(
            stats.flushes < 64,
            "concurrent flush_to calls must coalesce, got {}",
            stats.flushes
        );
        log.close();
    }

    #[test]
    fn pipelined_scan_matches_serial_scan() {
        let (_, log) = open_mem();
        let n = 300u64;
        for i in 0..n {
            let l = log.append(&big_rec(1, i, 1500));
            if i % 7 == 0 {
                log.flush_to(l).unwrap(); // padding the scanner must skip
            }
        }
        log.flush_all().unwrap();
        let serial: Vec<_> = log.scan_from(Lsn(DATA_START)).map(|r| r.unwrap()).collect();
        let piped: Vec<_> = log
            .scan_from_pipelined(Lsn(DATA_START))
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(serial, piped);
        assert!(
            log.stats().prefetch_chunks > 0,
            "pipelined scan must stream chunks through the prefetch stage"
        );
        log.close();
    }

    #[test]
    fn pipelined_scan_dropped_early_stops_the_prefetcher() {
        let (_, log) = open_mem();
        for i in 0..200u64 {
            log.append(&big_rec(1, i, 4096));
        }
        log.flush_all().unwrap();
        let mut scan = log.scan_from_pipelined(Lsn(DATA_START));
        let first = scan.next().unwrap().unwrap();
        assert_eq!(first.1, big_rec(1, 0, 4096));
        drop(scan); // must join the prefetch thread without hanging
        log.close();
    }

    #[test]
    fn async_ticket_settles_on_flush() {
        let (_, log) = open_mem();
        let a = log.append(&rec(1, 0));
        let t = log.flush_to_async(a);
        t.wait().unwrap();
        assert!(log.durable_lsn().0 > a.0);
        let s = log.stats();
        assert!(s.flush_tickets_issued >= 1);
        assert!(s.flush_tickets_completed >= 1);
        log.close();
    }

    #[test]
    fn async_ticket_already_durable_settles_immediately() {
        let (_, log) = open_mem();
        let a = log.append(&rec(1, 0));
        log.flush_to(a).unwrap();
        let t = log.flush_to_async(a);
        assert!(matches!(t.poll(), Some(Ok(()))));
        log.close();
    }

    #[test]
    fn on_settle_runs_inline_when_already_settled() {
        let (_, log) = open_mem();
        let a = log.append(&rec(1, 0));
        let t = log.flush_to_async(a);
        t.wait().unwrap();
        let (tx, rx) = crossbeam_channel::bounded(1);
        t.on_settle(move |ok| {
            let _ = tx.send(ok);
        });
        assert_eq!(rx.try_recv(), Ok(true));
        log.close();
    }

    #[test]
    fn crash_fails_pending_tickets_and_fires_waker() {
        // A long batch timeout keeps the flusher asleep so the crash
        // wins the race against completion.
        let log = PhysicalLog::open(
            Arc::new(MemDisk::new()),
            DiskModel::zero().with_scale(1.0),
            FlushPolicy::batched(Duration::from_millis(100)),
        )
        .unwrap();
        let a = log.append(&rec(1, 0));
        let t = log.flush_to_async(a);
        let (tx, rx) = crossbeam_channel::bounded(1);
        t.on_settle(move |ok| {
            let _ = tx.send(ok);
        });
        log.crash();
        assert!(matches!(t.wait(), Err(MspError::Shutdown)));
        assert!(!rx.recv().unwrap());
        assert_eq!(log.stats().flush_tickets_completed, 0);
    }

    #[test]
    fn ticket_issued_after_shutdown_fails() {
        let (_, log) = open_mem();
        let a = log.append(&rec(1, 0));
        log.crash();
        let t = log.flush_to_async(a);
        assert!(matches!(t.wait(), Err(MspError::Shutdown)));
    }

    #[test]
    fn many_async_tickets_coalesce_into_few_flushes() {
        let (_, log) = open_mem();
        let tickets: Vec<FlushTicket> = (0..32)
            .map(|i| {
                let l = log.append(&rec(1, i));
                log.flush_to_async(l)
            })
            .collect();
        for t in &tickets {
            t.wait().unwrap();
        }
        let s = log.stats();
        assert_eq!(s.flush_tickets_completed, 32);
        assert!(
            s.flushes < 32,
            "tickets must ride the group-commit batches, got {} flushes",
            s.flushes
        );
        log.close();
    }

    #[test]
    fn truncate_reclaims_space_and_scans_survive() {
        let (disk, log) = open_mem();
        let mut lsns = Vec::new();
        for i in 0..20u64 {
            let l = log.append(&rec(1, i));
            log.flush_to(l).unwrap(); // padding → each record on a boundary
            lsns.push(l);
        }
        let floor = lsns[10];
        let reclaimed = log.truncate_below(floor).unwrap();
        assert_eq!(reclaimed, floor.0 - DATA_START);
        assert_eq!(log.floor(), floor);
        // Device: zeros below the floor, footprint shrank, len unchanged.
        let mut below = vec![9u8; (floor.0 - DATA_START) as usize];
        disk.read(DATA_START, &mut below).unwrap();
        assert!(below.iter().all(|&b| b == 0));
        assert_eq!(disk.footprint(), disk.len() - reclaimed);
        // Scans — even ones asking for the file head — start at the floor
        // and see exactly the surviving records.
        let got: Vec<_> = log
            .scan_from(Lsn(DATA_START))
            .map(|r| r.unwrap().1)
            .collect();
        let want: Vec<_> = (10..20).map(|i| rec(1, i)).collect();
        assert_eq!(got, want);
        let piped: Vec<_> = log
            .scan_from_pipelined(Lsn(DATA_START))
            .map(|r| r.unwrap().1)
            .collect();
        assert_eq!(piped, want);
        // Records above the floor still read individually.
        assert_eq!(log.read_record(lsns[15]).unwrap(), rec(1, 15));
        let s = log.stats();
        assert_eq!(s.log_truncations, 1);
        assert_eq!(s.bytes_reclaimed, reclaimed);
        assert_eq!(s.reclaim_floor_lsn, floor.0);
        log.close();
    }

    #[test]
    fn truncate_is_monotone_and_clamped_to_durable() {
        let (_, log) = open_mem();
        let a = log.append(&rec(1, 0));
        log.flush_to(a).unwrap();
        let durable = log.durable_lsn().0;
        let b = log.append(&rec(1, 1)); // appended, NOT durable
                                        // A floor beyond the durable horizon clamps to it.
        let reclaimed = log.truncate_below(Lsn(b.0 + 10_000)).unwrap();
        assert_eq!(log.floor().0, durable);
        assert_eq!(reclaimed, durable - DATA_START);
        // Moving the floor backwards is a no-op.
        assert_eq!(log.truncate_below(Lsn(DATA_START)).unwrap(), 0);
        assert_eq!(log.floor().0, durable);
        log.close();
    }

    #[test]
    fn reopen_after_truncation_resumes_at_floor() {
        let disk = MemDisk::new();
        let floor;
        let survivor;
        {
            let log = PhysicalLog::open(
                Arc::new(disk.clone()),
                DiskModel::zero(),
                FlushPolicy::immediate(),
            )
            .unwrap();
            for i in 0..8u64 {
                let l = log.append(&rec(1, i));
                log.flush_to(l).unwrap();
            }
            survivor = log.append(&rec(1, 8));
            log.flush_to(survivor).unwrap();
            floor = survivor;
            log.truncate_below(floor).unwrap();
            log.close();
        }
        let log = PhysicalLog::open(
            Arc::new(disk.clone()),
            DiskModel::zero(),
            FlushPolicy::immediate(),
        )
        .unwrap();
        // The persisted floor came back and the probe found the real end.
        assert_eq!(log.floor(), floor);
        let got: Vec<_> = log.scan_from(Lsn(DATA_START)).map(|r| r.unwrap()).collect();
        assert_eq!(got, vec![(survivor, rec(1, 8))]);
        // Appends continue after the surviving record, not at the floor.
        let next = log.append(&rec(2, 0));
        assert!(next.0 > survivor.0);
        log.flush_to(next).unwrap();
        log.close();
    }

    #[test]
    fn crash_between_floor_persist_and_reclaim_recovers() {
        let disk = MemDisk::new();
        let floor;
        let tail_rec;
        {
            let log = PhysicalLog::open(
                Arc::new(disk.clone()),
                DiskModel::zero(),
                FlushPolicy::immediate(),
            )
            .unwrap();
            for i in 0..6u64 {
                let l = log.append(&rec(1, i));
                log.flush_to(l).unwrap();
            }
            tail_rec = log.append(&rec(1, 6));
            log.flush_to(tail_rec).unwrap();
            floor = tail_rec;
            // Arm the half-truncated crash: floor persisted, no reclaim.
            log.install_fault_plan(FaultPlan::armed(CrashPoint::TruncateStart, 1));
            assert!(matches!(log.truncate_below(floor), Err(MspError::Shutdown)));
        }
        // Stale bytes sit below the persisted floor; reopening re-issues
        // the reclaim and scans start at the floor.
        let log = PhysicalLog::open(
            Arc::new(disk.clone()),
            DiskModel::zero(),
            FlushPolicy::immediate(),
        )
        .unwrap();
        assert_eq!(log.floor(), floor);
        let mut below = vec![9u8; (floor.0 - DATA_START) as usize];
        disk.read(DATA_START, &mut below).unwrap();
        assert!(
            below.iter().all(|&b| b == 0),
            "open must re-issue the interrupted reclaim"
        );
        let got: Vec<_> = log
            .scan_from(Lsn(DATA_START))
            .map(|r| r.unwrap().1)
            .collect();
        assert_eq!(got, vec![rec(1, 6)]);
        log.close();
    }

    #[test]
    fn mid_sector_floor_scans_exactly_from_floor() {
        // Pack several records into each sector (no per-record flush) so
        // the floor lands mid-sector; the zeros below it would fool the
        // padding-skip heuristic if the scan started at the sector head.
        let (_, log) = open_mem();
        let mut lsns = Vec::new();
        for i in 0..12u64 {
            lsns.push(log.append(&rec(1, i)));
        }
        log.flush_all().unwrap();
        let floor = lsns[5];
        assert_ne!(floor.0 % SECTOR_SIZE as u64, 0, "floor must be mid-sector");
        log.truncate_below(floor).unwrap();
        let got: Vec<_> = log
            .scan_from(Lsn(DATA_START))
            .map(|r| r.unwrap().1)
            .collect();
        let want: Vec<_> = (5..12).map(|i| rec(1, i)).collect();
        assert_eq!(got, want);
        log.close();
    }

    #[test]
    fn oldest_pending_flush_tracks_ticket_registry() {
        // Long batch timeout parks the flusher so tickets stay pending.
        let log = PhysicalLog::open(
            Arc::new(MemDisk::new()),
            DiskModel::zero().with_scale(1.0),
            FlushPolicy::batched(Duration::from_millis(200)),
        )
        .unwrap();
        assert_eq!(log.oldest_pending_flush(), None);
        let a = log.append(&rec(1, 0));
        let b = log.append(&rec(1, 1));
        let _tb = log.flush_to_async(b);
        let _ta = log.flush_to_async(a);
        assert_eq!(log.oldest_pending_flush(), Some(a));
        log.crash();
    }

    #[test]
    fn scanner_position_reports_append_point() {
        let (_, log) = open_mem();
        let a = log.append(&rec(1, 0));
        log.flush_to(a).unwrap();
        let mut scan = log.scan_from(Lsn(DATA_START));
        while scan.next().is_some() {}
        assert_eq!(scan.position().0 % SECTOR_SIZE as u64, 0);
        log.close();
    }
}
