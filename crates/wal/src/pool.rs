//! Process-wide buffer pool for replay block reads.
//!
//! PR 3's `ReplayCache` gave each recovering MSP its own fixed clock
//! cache; co-located runtimes (sharded deployments, striped logs) each
//! carved private pools out of memory that none of them could share.
//! This module hoists the slot pool one level up: one `BufferPool` per
//! process, holding 64 KB log blocks keyed by `(source, block)` where a
//! *source* is one registered consumer (one `ReplayCache` view over one
//! physical log or stripe). Views borrow slots from the common pool, so
//! a shard that finishes recovery early returns its memory to the shard
//! still replaying, and the whole pool is observable as one stats block.
//!
//! Replacement is pluggable ([`ReplacementPolicy`]):
//!
//! - **Clock** — second-chance, the PR 3 behaviour and the default. One
//!   reference bit per slot, a hand that clears bits until it finds a
//!   cold slot. Cheap, scan-resistant enough for replay's mostly
//!   sequential block walk.
//! - **LRU** — exact least-recently-used via a recency stamp per slot.
//!   Best hit rate when replay windows re-walk the same few blocks
//!   (heavily checkpointed sessions), at the cost of a victim scan.
//! - **SIEVE** — a FIFO queue with one visited bit and a hand that
//!   moves from the oldest entry toward the newest, evicting the first
//!   unvisited entry; new blocks enter unvisited at the newest end.
//!   Keeps one-touch scan blocks from displacing re-referenced ones
//!   without any promotion bookkeeping on hits.
//!
//! Prefetched blocks ([`BufferPool::insert_prefetched`] /
//! [`BufferPool::prefetch_with`]) are tagged so the pool can report how
//! many prefetches were actually consumed by a demand read
//! (`pool_prefetch_hits`) versus merely loaded.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use msp_types::MspError;

/// Which block the pool sacrifices when it is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplacementPolicy {
    /// Second-chance clock (the PR 3 replay-cache behaviour).
    #[default]
    Clock,
    /// Exact least-recently-used.
    Lru,
    /// SIEVE: FIFO order, one visited bit, hand from oldest to newest.
    Sieve,
}

impl ReplacementPolicy {
    /// Canonical lower-case name (config/report surface).
    pub fn name(self) -> &'static str {
        match self {
            ReplacementPolicy::Clock => "clock",
            ReplacementPolicy::Lru => "lru",
            ReplacementPolicy::Sieve => "sieve",
        }
    }

    /// Parse a config-knob string; `None` for unknown names.
    pub fn parse(s: &str) -> Option<ReplacementPolicy> {
        match s {
            "clock" => Some(ReplacementPolicy::Clock),
            "lru" => Some(ReplacementPolicy::Lru),
            "sieve" => Some(ReplacementPolicy::Sieve),
            _ => None,
        }
    }
}

/// One pooled block.
struct Slot {
    /// `(source, block_no)` owner, `None` while the slot is free.
    key: Option<(u32, u64)>,
    data: Arc<Vec<u8>>,
    /// Clock reference bit / SIEVE visited bit: set on demand hit.
    referenced: bool,
    /// LRU recency stamp (global tick at last touch).
    stamp: u64,
    /// Loaded by a prefetcher and not yet claimed by a demand read.
    prefetched: bool,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            key: None,
            data: Arc::new(Vec::new()),
            referenced: false,
            stamp: 0,
            prefetched: false,
        }
    }
}

struct PoolInner {
    map: HashMap<(u32, u64), usize>,
    slots: Vec<Slot>,
    /// Slot indices with no resident block (initial fill + retired
    /// sources); consumed before any eviction.
    free: Vec<usize>,
    /// Clock hand over `slots`.
    hand: usize,
    /// LRU tick source.
    tick: u64,
    /// Occupied slots in insertion order, oldest first (SIEVE queue; also
    /// kept for Clock/LRU so retirement bookkeeping is policy-agnostic).
    order: Vec<usize>,
    /// SIEVE hand: index into `order`, sweeping oldest → newest.
    sieve_hand: usize,
}

/// Monotone pool counters.
#[derive(Default)]
struct PoolStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    prefetch_hits: AtomicU64,
    prefetched_blocks: AtomicU64,
}

/// Point-in-time copy of the pool counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStatsSnapshot {
    /// Demand reads served from a resident block.
    pub pool_hits: u64,
    /// Demand reads that had to fetch from the device.
    pub pool_misses: u64,
    /// Occupied blocks displaced to make room.
    pub pool_evictions: u64,
    /// Demand hits whose block was loaded by a prefetcher.
    pub pool_prefetch_hits: u64,
    /// Blocks loaded by prefetch (scan feed or schedule walk).
    pub pool_prefetched_blocks: u64,
}

impl PoolStatsSnapshot {
    /// Counters accumulated since `base` (field-wise saturating delta).
    pub fn since(&self, base: &PoolStatsSnapshot) -> PoolStatsSnapshot {
        PoolStatsSnapshot {
            pool_hits: self.pool_hits.saturating_sub(base.pool_hits),
            pool_misses: self.pool_misses.saturating_sub(base.pool_misses),
            pool_evictions: self.pool_evictions.saturating_sub(base.pool_evictions),
            pool_prefetch_hits: self
                .pool_prefetch_hits
                .saturating_sub(base.pool_prefetch_hits),
            pool_prefetched_blocks: self
                .pool_prefetched_blocks
                .saturating_sub(base.pool_prefetched_blocks),
        }
    }

    /// Field-wise sum (aggregating across pools/processes).
    pub fn merge(&self, other: &PoolStatsSnapshot) -> PoolStatsSnapshot {
        PoolStatsSnapshot {
            pool_hits: self.pool_hits + other.pool_hits,
            pool_misses: self.pool_misses + other.pool_misses,
            pool_evictions: self.pool_evictions + other.pool_evictions,
            pool_prefetch_hits: self.pool_prefetch_hits + other.pool_prefetch_hits,
            pool_prefetched_blocks: self.pool_prefetched_blocks + other.pool_prefetched_blocks,
        }
    }
}

/// What a demand [`BufferPool::get`] did, so the calling view can charge
/// its per-log counters without the pool knowing about `LogStats`.
#[derive(Debug, Clone, Copy)]
pub struct PoolReadOutcome {
    /// Served from a resident block without touching the device.
    pub hit: bool,
    /// The resident block had been loaded by a prefetcher.
    pub prefetch_hit: bool,
    /// Installing the block displaced another occupied slot.
    pub evicted: bool,
}

/// Fixed-size, process-wide pool of 64 KB log blocks shared by every
/// registered consumer. See the module docs.
pub struct BufferPool {
    policy: ReplacementPolicy,
    inner: Mutex<PoolInner>,
    stats: PoolStats,
    next_source: AtomicU32,
}

impl BufferPool {
    /// A pool of `blocks` slots (clamped to at least 1).
    pub fn new(blocks: usize, policy: ReplacementPolicy) -> BufferPool {
        let blocks = blocks.max(1);
        let slots = (0..blocks).map(|_| Slot::empty()).collect();
        BufferPool {
            policy,
            inner: Mutex::new(PoolInner {
                map: HashMap::new(),
                slots,
                free: (0..blocks).rev().collect(),
                hand: 0,
                tick: 0,
                order: Vec::with_capacity(blocks),
                sieve_hand: 0,
            }),
            stats: PoolStats::default(),
            next_source: AtomicU32::new(0),
        }
    }

    /// Allocate a fresh source id for one consumer (one replay view over
    /// one physical log or stripe).
    pub fn register(&self) -> u32 {
        self.next_source.fetch_add(1, Ordering::Relaxed)
    }

    /// Drop every block a source loaded, returning its slots to the free
    /// list (called when a view is dropped, e.g. recovery finished).
    pub fn retire(&self, source: u32) {
        let mut inner = self.inner.lock();
        let keys: Vec<(u32, u64)> = inner
            .map
            .keys()
            .filter(|k| k.0 == source)
            .copied()
            .collect();
        for key in keys {
            let slot = inner.map.remove(&key).expect("key just listed");
            inner.slots[slot] = Slot::empty();
            Self::unlink(&mut inner, slot);
            inner.free.push(slot);
        }
    }

    /// Total slot count.
    pub fn capacity(&self) -> usize {
        self.inner.lock().slots.len()
    }

    /// The configured replacement policy.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> PoolStatsSnapshot {
        PoolStatsSnapshot {
            pool_hits: self.stats.hits.load(Ordering::Relaxed),
            pool_misses: self.stats.misses.load(Ordering::Relaxed),
            pool_evictions: self.stats.evictions.load(Ordering::Relaxed),
            pool_prefetch_hits: self.stats.prefetch_hits.load(Ordering::Relaxed),
            pool_prefetched_blocks: self.stats.prefetched_blocks.load(Ordering::Relaxed),
        }
    }

    /// Whether `(source, block_no)` is resident (no touch, no counting).
    pub fn contains(&self, source: u32, block_no: u64) -> bool {
        self.inner.lock().map.contains_key(&(source, block_no))
    }

    /// Demand read: return the resident block, or run `fetch` (outside
    /// the pool lock — concurrent readers keep hitting meanwhile) and
    /// install the result. The outcome tells the caller what to charge.
    pub fn get(
        &self,
        source: u32,
        block_no: u64,
        fetch: impl FnOnce() -> Result<Vec<u8>, MspError>,
    ) -> Result<(Arc<Vec<u8>>, PoolReadOutcome), MspError> {
        let key = (source, block_no);
        {
            let mut inner = self.inner.lock();
            if let Some(&slot) = inner.map.get(&key) {
                let prefetch_hit = Self::touch(&mut inner, slot);
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                if prefetch_hit {
                    self.stats.prefetch_hits.fetch_add(1, Ordering::Relaxed);
                }
                return Ok((
                    Arc::clone(&inner.slots[slot].data),
                    PoolReadOutcome {
                        hit: true,
                        prefetch_hit,
                        evicted: false,
                    },
                ));
            }
        }
        // Miss: the device read happens unlocked; a concurrent miss on
        // the same block may fetch too (both are real I/O, both counted
        // by the caller), but only the first install keeps its copy.
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        let data = Arc::new(fetch()?);
        let mut inner = self.inner.lock();
        if let Some(&slot) = inner.map.get(&key) {
            let prefetch_hit = Self::touch(&mut inner, slot);
            if prefetch_hit {
                self.stats.prefetch_hits.fetch_add(1, Ordering::Relaxed);
            }
            return Ok((
                Arc::clone(&inner.slots[slot].data),
                PoolReadOutcome {
                    hit: false,
                    prefetch_hit,
                    evicted: false,
                },
            ));
        }
        let (slot, evicted) = self.allocate(&mut inner);
        if evicted {
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Self::install(self.policy, &mut inner, slot, key, Arc::clone(&data), false);
        Ok((
            data,
            PoolReadOutcome {
                hit: false,
                prefetch_hit: false,
                evicted,
            },
        ))
    }

    /// Prefetch: if the block is absent, run `fetch` and install it
    /// tagged as prefetched. Returns whether a fetch happened. A resident
    /// block is left untouched (a prefetch probe must not look like a
    /// demand reference to the replacement policy).
    pub fn prefetch_with(
        &self,
        source: u32,
        block_no: u64,
        fetch: impl FnOnce() -> Result<Vec<u8>, MspError>,
    ) -> Result<bool, MspError> {
        let key = (source, block_no);
        if self.inner.lock().map.contains_key(&key) {
            return Ok(false);
        }
        let data = Arc::new(fetch()?);
        Ok(self.install_prefetched(key, data))
    }

    /// Install bytes some other stage already read off the device (the
    /// analysis scan feeding its chunks forward). No-op if resident.
    pub fn insert_prefetched(&self, source: u32, block_no: u64, data: Vec<u8>) {
        self.install_prefetched((source, block_no), Arc::new(data));
    }

    fn install_prefetched(&self, key: (u32, u64), data: Arc<Vec<u8>>) -> bool {
        let mut inner = self.inner.lock();
        if inner.map.contains_key(&key) {
            return false;
        }
        let (slot, evicted) = self.allocate(&mut inner);
        if evicted {
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Self::install(self.policy, &mut inner, slot, key, data, true);
        self.stats.prefetched_blocks.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Mark a demand reference on a resident slot; returns (and clears)
    /// its prefetched tag.
    fn touch(inner: &mut PoolInner, slot: usize) -> bool {
        inner.tick += 1;
        let tick = inner.tick;
        let s = &mut inner.slots[slot];
        s.referenced = true;
        s.stamp = tick;
        std::mem::take(&mut s.prefetched)
    }

    fn install(
        policy: ReplacementPolicy,
        inner: &mut PoolInner,
        slot: usize,
        key: (u32, u64),
        data: Arc<Vec<u8>>,
        prefetched: bool,
    ) {
        inner.tick += 1;
        let tick = inner.tick;
        inner.slots[slot] = Slot {
            key: Some(key),
            data,
            // Clock grants new blocks one revolution of grace; SIEVE
            // inserts unvisited by definition.
            referenced: matches!(policy, ReplacementPolicy::Clock),
            stamp: tick,
            prefetched,
        };
        inner.map.insert(key, slot);
        inner.order.push(slot);
    }

    /// Take `slot` out of the insertion-order queue, keeping the SIEVE
    /// hand pointed at the same logical position.
    fn unlink(inner: &mut PoolInner, slot: usize) {
        if let Some(pos) = inner.order.iter().position(|&s| s == slot) {
            inner.order.remove(pos);
            if pos < inner.sieve_hand {
                inner.sieve_hand -= 1;
            }
        }
    }

    /// A slot to install into: a free one if any, else the policy's
    /// victim (whose old mapping is removed here). The bool reports
    /// whether an occupied block was displaced.
    fn allocate(&self, inner: &mut PoolInner) -> (usize, bool) {
        if let Some(slot) = inner.free.pop() {
            return (slot, false);
        }
        let victim = match self.policy {
            ReplacementPolicy::Clock => loop {
                let hand = inner.hand;
                inner.hand = (inner.hand + 1) % inner.slots.len();
                if inner.slots[hand].referenced {
                    inner.slots[hand].referenced = false;
                } else {
                    break hand;
                }
            },
            ReplacementPolicy::Lru => inner
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.key.is_some())
                .min_by_key(|(_, s)| s.stamp)
                .map(|(i, _)| i)
                .expect("free list empty implies an occupied slot"),
            ReplacementPolicy::Sieve => loop {
                if inner.sieve_hand >= inner.order.len() {
                    inner.sieve_hand = 0;
                }
                let slot = inner.order[inner.sieve_hand];
                if inner.slots[slot].referenced {
                    inner.slots[slot].referenced = false;
                    inner.sieve_hand += 1;
                } else {
                    break slot;
                }
            },
        };
        let key = inner.slots[victim].key.take().expect("victim is occupied");
        inner.map.remove(&key);
        Self::unlink(inner, victim);
        (victim, true)
    }
}

/// Handle letting the analysis scan's I/O stage push the chunks it reads
/// into the pool under one source's key space — recovery replay then
/// finds its blocks already resident instead of re-reading the region
/// the scan just paid for.
#[derive(Clone)]
pub struct ScanFeed {
    pool: Arc<BufferPool>,
    source: u32,
}

impl ScanFeed {
    pub fn new(pool: &Arc<BufferPool>, source: u32) -> ScanFeed {
        ScanFeed {
            pool: Arc::clone(pool),
            source,
        }
    }

    /// Offer one block-aligned chunk the scan already read.
    pub fn insert(&self, block_no: u64, data: Vec<u8>) {
        self.pool.insert_prefetched(self.source, block_no, data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fetch(byte: u8) -> impl FnOnce() -> Result<Vec<u8>, MspError> {
        move || Ok(vec![byte; 8])
    }

    fn resident(pool: &BufferPool, src: u32, blocks: &[u64]) -> Vec<bool> {
        blocks.iter().map(|&b| pool.contains(src, b)).collect()
    }

    #[test]
    fn demand_reads_hit_after_first_fetch() {
        let pool = BufferPool::new(4, ReplacementPolicy::Clock);
        let src = pool.register();
        let (data, out) = pool.get(src, 7, fetch(0xAA)).unwrap();
        assert!(!out.hit);
        assert_eq!(*data, vec![0xAA; 8]);
        let (_, out) = pool.get(src, 7, || unreachable!("resident")).unwrap();
        assert!(out.hit && !out.prefetch_hit);
        let s = pool.stats();
        assert_eq!((s.pool_hits, s.pool_misses), (1, 1));
    }

    #[test]
    fn sources_do_not_alias_blocks() {
        let pool = BufferPool::new(4, ReplacementPolicy::Clock);
        let (a, b) = (pool.register(), pool.register());
        pool.get(a, 0, fetch(1)).unwrap();
        let (data, out) = pool.get(b, 0, fetch(2)).unwrap();
        assert!(!out.hit, "same block number, different source");
        assert_eq!(*data, vec![2; 8]);
    }

    #[test]
    fn clock_grants_second_chance() {
        let pool = BufferPool::new(2, ReplacementPolicy::Clock);
        let src = pool.register();
        pool.get(src, 0, fetch(0)).unwrap();
        pool.get(src, 1, fetch(1)).unwrap();
        // Both referenced; the hand clears 0 then 1, wraps, evicts 0.
        pool.get(src, 2, fetch(2)).unwrap();
        assert_eq!(resident(&pool, src, &[0, 1, 2]), [false, true, true]);
        assert_eq!(pool.stats().pool_evictions, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let pool = BufferPool::new(3, ReplacementPolicy::Lru);
        let src = pool.register();
        for b in 0..3 {
            pool.get(src, b, fetch(b as u8)).unwrap();
        }
        // Touch 0: block 1 becomes the coldest.
        pool.get(src, 0, || unreachable!("resident")).unwrap();
        pool.get(src, 3, fetch(3)).unwrap();
        assert_eq!(
            resident(&pool, src, &[0, 1, 2, 3]),
            [true, false, true, true]
        );
    }

    #[test]
    fn sieve_spares_visited_blocks() {
        let pool = BufferPool::new(3, ReplacementPolicy::Sieve);
        let src = pool.register();
        for b in 0..3 {
            pool.get(src, b, fetch(b as u8)).unwrap();
        }
        // Visit 0; the hand (oldest → newest) clears 0, evicts 1.
        pool.get(src, 0, || unreachable!("resident")).unwrap();
        pool.get(src, 3, fetch(3)).unwrap();
        assert_eq!(
            resident(&pool, src, &[0, 1, 2, 3]),
            [true, false, true, true]
        );
        // Visit 2; the hand (parked just past 0's old slot) clears 2's
        // bit and reaches the still-unvisited newcomer 3 — SIEVE demotes
        // one-touch entries fast.
        pool.get(src, 2, || unreachable!("resident")).unwrap();
        pool.get(src, 4, fetch(4)).unwrap();
        assert_eq!(
            resident(&pool, src, &[0, 2, 3, 4]),
            [true, true, false, true]
        );
    }

    #[test]
    fn prefetched_blocks_count_when_claimed() {
        let pool = BufferPool::new(4, ReplacementPolicy::Clock);
        let src = pool.register();
        assert!(pool.prefetch_with(src, 5, fetch(5)).unwrap());
        assert!(!pool.prefetch_with(src, 5, || unreachable!()).unwrap());
        pool.insert_prefetched(src, 6, vec![6; 8]);
        let (_, out) = pool.get(src, 5, || unreachable!("prefetched")).unwrap();
        assert!(out.hit && out.prefetch_hit);
        // Claimed once: a second demand hit is an ordinary hit.
        let (_, out) = pool.get(src, 5, || unreachable!()).unwrap();
        assert!(out.hit && !out.prefetch_hit);
        let s = pool.stats();
        assert_eq!(s.pool_prefetched_blocks, 2);
        assert_eq!(s.pool_prefetch_hits, 1);
        assert_eq!(s.pool_misses, 0);
    }

    #[test]
    fn retire_returns_slots_without_evictions() {
        let pool = BufferPool::new(2, ReplacementPolicy::Sieve);
        let (a, b) = (pool.register(), pool.register());
        pool.get(a, 0, fetch(0)).unwrap();
        pool.get(a, 1, fetch(1)).unwrap();
        pool.retire(a);
        assert!(!pool.contains(a, 0) && !pool.contains(a, 1));
        // Freed slots serve the other source without any displacement.
        pool.get(b, 0, fetch(2)).unwrap();
        pool.get(b, 1, fetch(3)).unwrap();
        assert_eq!(pool.stats().pool_evictions, 0);
    }

    #[test]
    fn snapshot_since_and_merge() {
        let a = PoolStatsSnapshot {
            pool_hits: 10,
            pool_misses: 4,
            pool_evictions: 2,
            pool_prefetch_hits: 3,
            pool_prefetched_blocks: 5,
        };
        let b = PoolStatsSnapshot {
            pool_hits: 7,
            pool_misses: 1,
            pool_evictions: 0,
            pool_prefetch_hits: 2,
            pool_prefetched_blocks: 4,
        };
        assert_eq!(
            a.since(&b),
            PoolStatsSnapshot {
                pool_hits: 3,
                pool_misses: 3,
                pool_evictions: 2,
                pool_prefetch_hits: 1,
                pool_prefetched_blocks: 1,
            }
        );
        assert_eq!(
            a.merge(&b),
            PoolStatsSnapshot {
                pool_hits: 17,
                pool_misses: 5,
                pool_evictions: 2,
                pool_prefetch_hits: 5,
                pool_prefetched_blocks: 9,
            }
        );
    }

    #[test]
    fn fetch_errors_do_not_poison_the_pool() {
        let pool = BufferPool::new(2, ReplacementPolicy::Lru);
        let src = pool.register();
        let err = pool
            .get(src, 0, || {
                Err(MspError::Io(std::io::Error::other("device gone")))
            })
            .unwrap_err();
        assert!(matches!(err, MspError::Io(_)));
        // The failed fetch installed nothing; a retry fetches cleanly.
        let (_, out) = pool.get(src, 0, fetch(9)).unwrap();
        assert!(!out.hit);
        assert_eq!(pool.stats().pool_misses, 2);
    }
}
