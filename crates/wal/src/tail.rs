//! The reservation-based append pipeline (the scalable WAL tail).
//!
//! The legacy append path funnels every worker thread through one global
//! `Mutex<Buffer>`, copying the encoded frame while holding the lock, so
//! append throughput collapses as the thread pool grows. This module
//! decouples the three phases the way multicore logging papers prescribe
//! (Wu et al., *Fast Failure Recovery for Main-Memory DBMSs on
//! Multicores*; Yao et al., *Adaptive Logging*):
//!
//! 1. **LSN reservation** — a lock-free CAS bump on one atomic offset
//!    hands the appender a byte range; the range's start *is* the LSN.
//! 2. **Out-of-lock filling** — the frame is copied into a pre-sized
//!    staging segment owned by no lock; concurrent appenders write
//!    disjoint ranges of the same segment buffers.
//! 3. **Completion watermarks** — every segment counts the bytes copied
//!    into it; the flusher ships a prefix only when the counters prove it
//!    contains no holes, so a crash can only ever lose a *suffix*.
//!
//! # Staging geometry
//!
//! The log address space is cut into fixed [`SEGMENT_SIZE`] windows and
//! staged in a ring of [`SEGMENT_RING`] reusable buffers. Slot `k % RING`
//! stages segment `k`; the flusher re-stages a slot to `k + RING` once
//! segment `k` is entirely durable. An appender that runs ahead of the
//! ring waits for the flusher — bounding the volatile tail to
//! `SEGMENT_RING × SEGMENT_SIZE` bytes (the legacy path's tail `Vec` was
//! unbounded). The ring's buffers come from a process-wide recycling
//! slab (see `SLAB`) rather than being owned per log, so processes that
//! open many logs share one bounded pool of staging memory.
//!
//! # Frame placement rules
//!
//! * A frame that fits in the current segment's remainder is placed
//!   there.
//! * A frame that does not fit (but is at most one segment long) skips to
//!   the next segment boundary; the skipped *gap* is zero-filled, which
//!   the recovery scanner already treats as inter-record padding.
//! * A frame longer than one segment spans segments. While it is being
//!   copied its start offset is registered as a **span floor**: the
//!   durable point is never published inside a spanning frame, so the
//!   crash-suffix invariant ("the log loses only a suffix of whole
//!   frames") holds even for oversized records. Frames longer than
//!   `(SEGMENT_RING - 1) × SEGMENT_SIZE` cannot be staged and panic; the
//!   `serialized_append` compatibility path has no such limit.
//!
//! # Memory-safety argument for the `UnsafeCell` buffers
//!
//! Every byte of a staged segment is written by **at most one** thread:
//! the reservation counter hands out disjoint ranges, a gap is written
//! only by the appender that created it, and flush padding is accounted
//! by the flusher without touching the buffer. Readers (the flusher's
//! `collect`, and tail reads) only read ranges whose `filled` accounting
//! proves the writers are done, with the `Release`/`Acquire` pair on the
//! per-segment counter publishing the copied bytes. Slot reuse is guarded
//! by the staged-segment index: readers re-validate it after copying and
//! retry from the durable store if the slot moved on.

use std::cell::UnsafeCell;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex as StdMutex;
use std::time::Duration;

use crossbeam_channel::Sender;
use parking_lot::{Condvar, Mutex};

use crate::log::{DATA_START, SECTOR_SIZE};

/// Size of one staging segment. A multiple of [`SECTOR_SIZE`], so sector
/// boundaries never straddle segments and flush padding stays inside one
/// slot.
pub const SEGMENT_SIZE: usize = 1 << 20;

/// Number of staging slots; the volatile tail is bounded by
/// `SEGMENT_RING × SEGMENT_SIZE` bytes.
pub const SEGMENT_RING: usize = 8;

/// Largest frame the reservation pipeline can stage (see module docs).
pub const MAX_RESERVED_FRAME: usize = (SEGMENT_RING - 1) * SEGMENT_SIZE;

const SEG: u64 = SEGMENT_SIZE as u64;

/// Safety-net wait quantum: every blocking wait in this module is timed,
/// so a (theoretically) missed notification degrades to one quantum of
/// latency instead of a hang.
const WAIT_QUANTUM: Duration = Duration::from_millis(1);

/// Upper bound on pooled staging buffers (`SLAB_CAP × SEGMENT_SIZE`
/// bytes of standby memory process-wide); returns beyond it simply free.
const SLAB_CAP: usize = 4 * SEGMENT_RING;

/// Process-wide recycling pool of segment staging buffers. Every
/// [`ReservedTail`] draws its `SEGMENT_RING` buffers from this slab and
/// returns them on drop, so worlds that build many logs (the torture rig
/// re-opens five or more per run) stop paying `SEGMENT_RING × 1 MB` of
/// fresh zeroed pages per log. Recycled buffers keep their stale bytes:
/// that is safe because every readable range is either explicitly
/// written by an appender (frames), explicitly zero-filled (gaps), or
/// never read back from the buffer at all (flush padding goes straight
/// into the device write).
static SLAB: StdMutex<Vec<Box<[u8]>>> = StdMutex::new(Vec::new());

/// Buffers allocated fresh because the slab was empty (observability /
/// tests).
static SLAB_FRESH: AtomicU64 = AtomicU64::new(0);

fn slab_take() -> Box<[u8]> {
    if let Some(buf) = SLAB.lock().unwrap_or_else(|e| e.into_inner()).pop() {
        return buf;
    }
    SLAB_FRESH.fetch_add(1, Ordering::Relaxed);
    vec![0u8; SEGMENT_SIZE].into_boxed_slice()
}

fn slab_put(buf: Box<[u8]>) {
    if buf.len() != SEGMENT_SIZE {
        return; // placeholder from a mid-drop tail, not a staging buffer
    }
    let mut pool = SLAB.lock().unwrap_or_else(|e| e.into_inner());
    if pool.len() < SLAB_CAP {
        pool.push(buf);
    }
}

/// Fresh-allocation counter, for tests asserting reuse.
#[cfg(test)]
fn slab_fresh_allocs() -> u64 {
    SLAB_FRESH.load(Ordering::Relaxed)
}

/// One reusable staging buffer of the segment ring.
struct SegmentSlot {
    /// Index of the segment this slot currently stages. Advanced by the
    /// flusher only, in `SEGMENT_RING` strides, with `Release` ordering
    /// after the `filled` reset.
    seg: AtomicU64,
    /// Bytes copied into the staged segment's live range so far. The
    /// segment is hole-free up to offset `o` when `filled` equals the
    /// number of bytes reserved below `o` within it.
    filled: AtomicU64,
    buf: UnsafeCell<Box<[u8]>>,
}

// SAFETY: disjoint-range discipline documented in the module header —
// the reservation counter is the single allocator of writable ranges,
// and all cross-thread reads are ordered through `filled` / `seg`.
unsafe impl Sync for SegmentSlot {}

/// Outcome of a placement decision for one frame.
struct Placement {
    /// LSN of the frame (start of its range).
    lsn: u64,
    /// Zero-filled gap emitted before the frame (to reach a segment
    /// boundary), as `(start, len)`.
    gap: Option<(u64, u64)>,
    /// Whether the frame crosses a segment boundary (span-floor handling
    /// required while copying).
    spans: bool,
}

/// The scalable tail: reservation counter, staging ring, completion
/// accounting and the waiter plumbing shared with the flusher.
pub(crate) struct ReservedTail {
    /// First byte of the volatile address space at open; everything below
    /// was already durable on disk.
    open_base: u64,
    /// Next free log offset — the atomic the whole pipeline pivots on.
    reserved: AtomicU64,
    /// Exclusive end of the durable prefix. Published only at frame
    /// boundaries (never inside a spanning frame).
    durable: AtomicU64,
    /// Highest flush target handed to the flusher (monotone); lets
    /// `flush_to` skip redundant wakeups.
    requested: AtomicU64,
    /// Crash in progress: the flusher must not ship the tail.
    discard: AtomicBool,
    /// Starts of spanning frames still being copied; the durable point is
    /// clamped below the smallest of them.
    span_floor: Mutex<BTreeSet<u64>>,
    /// Coordination point for all blocking waits (durability, segment
    /// completion, slot staging). The data lives in atomics; the mutex
    /// only brackets waits and notifications.
    gate: Mutex<()>,
    cv: Condvar,
    /// Number of threads currently parked on `cv` — lets the hot append
    /// path skip the notify syscall when nobody is listening.
    waiters: AtomicU32,
    slots: Box<[SegmentSlot]>,
}

impl ReservedTail {
    pub(crate) fn new(open_base: u64) -> ReservedTail {
        let open_base = open_base.max(DATA_START);
        let base_seg = open_base / SEG;
        let slots: Vec<SegmentSlot> = (0..SEGMENT_RING)
            .map(|_| SegmentSlot {
                seg: AtomicU64::new(0),
                filled: AtomicU64::new(0),
                buf: UnsafeCell::new(slab_take()),
            })
            .collect();
        let tail = ReservedTail {
            open_base,
            reserved: AtomicU64::new(open_base),
            durable: AtomicU64::new(open_base),
            requested: AtomicU64::new(open_base),
            discard: AtomicBool::new(false),
            span_floor: Mutex::new(BTreeSet::new()),
            gate: Mutex::new(()),
            cv: Condvar::new(),
            waiters: AtomicU32::new(0),
            slots: slots.into_boxed_slice(),
        };
        for j in 0..SEGMENT_RING as u64 {
            let k = base_seg + j;
            tail.slot_for(k).seg.store(k, Ordering::Release);
        }
        tail
    }

    fn slot_for(&self, seg: u64) -> &SegmentSlot {
        &self.slots[(seg % SEGMENT_RING as u64) as usize]
    }

    /// Start of segment `k`'s live range: reservations below `open_base`
    /// never existed, so the first segment is only partially accounted.
    fn live_start(&self, seg: u64) -> u64 {
        (seg * SEG).max(self.open_base)
    }

    pub(crate) fn reserved(&self) -> u64 {
        self.reserved.load(Ordering::Acquire)
    }

    pub(crate) fn durable(&self) -> u64 {
        self.durable.load(Ordering::Acquire)
    }

    pub(crate) fn set_discard(&self) {
        self.discard.store(true, Ordering::SeqCst);
    }

    pub(crate) fn discarded(&self) -> bool {
        self.discard.load(Ordering::SeqCst)
    }

    /// Record `target` as requested; returns `true` when the flusher
    /// needs a fresh wakeup for it.
    pub(crate) fn note_requested(&self, target: u64) -> bool {
        self.requested.fetch_max(target, Ordering::AcqRel) < target
    }

    pub(crate) fn requested(&self) -> u64 {
        self.requested.load(Ordering::Acquire)
    }

    /// Wake every parked thread (durability waiters, slot waiters, the
    /// flusher's completion wait). Cheap when nobody is parked.
    pub(crate) fn notify(&self) {
        if self.waiters.load(Ordering::Relaxed) > 0 {
            self.notify_force();
        }
    }

    /// Unconditional wakeup — used on shutdown and after durable
    /// advances, where latency matters more than a syscall.
    pub(crate) fn notify_force(&self) {
        drop(self.gate.lock());
        self.cv.notify_all();
    }

    /// Park on the gate until notified or one safety quantum elapses.
    /// `check` is evaluated under the gate lock; returns immediately when
    /// it is already true.
    pub(crate) fn wait(&self, check: impl Fn() -> bool) -> bool {
        let mut g = self.gate.lock();
        if check() {
            return true;
        }
        self.waiters.fetch_add(1, Ordering::SeqCst);
        let _ = self.cv.wait_for(&mut g, WAIT_QUANTUM);
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        check()
    }

    /// Publish a new durable point under the gate (so durability waiters
    /// holding the gate cannot miss it), then notify.
    pub(crate) fn publish_durable(&self, end: u64) {
        {
            let _g = self.gate.lock();
            self.durable.fetch_max(end, Ordering::AcqRel);
        }
        self.cv.notify_all();
    }

    /// Reserve a range for a `frame_len`-byte frame, applying the
    /// placement rules (fit / gap-to-boundary / span).
    fn place(&self, frame_len: u64) -> Placement {
        assert!(
            frame_len as usize <= MAX_RESERVED_FRAME,
            "record frame of {frame_len} bytes exceeds the reservation \
             pipeline's staging window ({MAX_RESERVED_FRAME} bytes); \
             use the serialized_append compatibility path for such records"
        );
        let mut cur = self.reserved.load(Ordering::Acquire);
        loop {
            let rem = SEG - cur % SEG;
            let (lsn, gap, spans) = if frame_len <= rem {
                (cur, None, false)
            } else if frame_len <= SEG {
                // Skip to the next segment boundary; the gap is
                // zero-filled and scanned over as padding.
                (cur + rem, Some((cur, rem)), false)
            } else {
                (cur, None, true)
            };
            let end = lsn + frame_len;
            match self
                .reserved
                .compare_exchange(cur, end, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return Placement { lsn, gap, spans },
                Err(seen) => cur = seen,
            }
        }
    }

    /// Block until slot `seg` is staged (backpressure on the flusher).
    /// Returns `false` if the log stopped while waiting.
    fn wait_slot(&self, seg: u64, wakeup: &Sender<u64>, stopped: &AtomicBool) -> bool {
        let slot = self.slot_for(seg);
        if slot.seg.load(Ordering::Acquire) == seg {
            return true;
        }
        // The ring is full: staging `seg` requires everything below the
        // segment it would evict to be durable. Ask the flusher for it.
        let need = (seg + 1 - SEGMENT_RING as u64) * SEG;
        if self.note_requested(need) {
            let _ = wakeup.send(need);
        }
        loop {
            if slot.seg.load(Ordering::Acquire) == seg {
                return true;
            }
            if stopped.load(Ordering::SeqCst) {
                return false;
            }
            self.wait(|| slot.seg.load(Ordering::Acquire) == seg);
        }
    }

    /// Copy `src` (or zeros, for gaps) into the staging ring at `offset`,
    /// segment by segment, bumping each segment's completion counter.
    fn fill(
        &self,
        mut offset: u64,
        mut len: u64,
        mut src: Option<&[u8]>,
        wakeup: &Sender<u64>,
        stopped: &AtomicBool,
    ) -> bool {
        while len > 0 {
            let seg = offset / SEG;
            if !self.wait_slot(seg, wakeup, stopped) {
                return false;
            }
            let in_seg = (offset % SEG) as usize;
            let take = ((SEG - offset % SEG) as usize).min(len as usize);
            let slot = self.slot_for(seg);
            // SAFETY: the range [in_seg, in_seg + take) of this staged
            // segment was reserved exclusively for this thread (or is the
            // gap this thread created); see the module-level argument.
            unsafe {
                let dst = (*slot.buf.get()).as_mut_ptr().add(in_seg);
                match src {
                    Some(bytes) => {
                        std::ptr::copy_nonoverlapping(bytes.as_ptr(), dst, take);
                    }
                    None => std::ptr::write_bytes(dst, 0, take),
                }
            }
            slot.filled.fetch_add(take as u64, Ordering::Release);
            offset += take as u64;
            len -= take as u64;
            if let Some(bytes) = src {
                src = Some(&bytes[take..]);
            }
        }
        true
    }

    /// The whole append pipeline for one encoded frame: reserve, fill the
    /// gap (if any), copy the frame, publish completion. Returns the LSN.
    pub(crate) fn append(&self, framed: &[u8], wakeup: &Sender<u64>, stopped: &AtomicBool) -> u64 {
        let len = framed.len() as u64;
        let placed = self.place(len);
        if let Some((gap_start, gap_len)) = placed.gap {
            self.fill(gap_start, gap_len, None, wakeup, stopped);
        }
        if placed.spans {
            self.span_floor.lock().insert(placed.lsn);
        }
        let ok = self.fill(placed.lsn, len, Some(framed), wakeup, stopped);
        if placed.spans {
            self.span_floor.lock().remove(&placed.lsn);
        }
        if ok {
            self.notify();
        }
        placed.lsn
    }

    /// Account flusher-injected sector padding `[offset, offset + len)`
    /// as filled (the zeros are appended to the device write directly and
    /// the range is durable immediately after, so the stale buffer bytes
    /// are never read back).
    pub(crate) fn account_padding(&self, offset: u64, len: u64) {
        let mut off = offset;
        let mut remaining = len;
        while remaining > 0 {
            let seg = off / SEG;
            let take = (SEG - off % SEG).min(remaining);
            self.slot_for(seg).filled.fetch_add(take, Ordering::Release);
            off += take;
            remaining -= take;
        }
    }

    /// Maximal hole-free publishable prefix end in `[from, cap]`: walks
    /// segments while their completion counters account for every byte
    /// reserved in them, then clamps below any active spanning frame.
    ///
    /// The per-segment check compares `filled` against the bytes the
    /// reservation counter has allocated into the segment *right now*;
    /// equality proves every allocated range was copied (copies only ever
    /// target reserved ranges, so a pending writer keeps the counters
    /// apart). The check can be transiently false while appenders are
    /// mid-copy — the flusher just waits and retries.
    pub(crate) fn complete_prefix(&self, from: u64, cap: u64) -> u64 {
        let mut p = from;
        let mut seg = from / SEG;
        while p < cap {
            let seg_end = (seg + 1) * SEG;
            let slot = self.slot_for(seg);
            if slot.seg.load(Ordering::Acquire) != seg {
                break;
            }
            let reserved_now = self.reserved.load(Ordering::Acquire);
            let expected = reserved_now
                .min(seg_end)
                .saturating_sub(self.live_start(seg));
            if slot.filled.load(Ordering::Acquire) != expected {
                break;
            }
            p = reserved_now.min(seg_end).min(cap);
            if p < seg_end {
                break;
            }
            seg += 1;
        }
        // Never publish into a frame that is still being copied across
        // segments.
        if let Some(&floor) = self.span_floor.lock().first() {
            p = p.min(floor);
        }
        p.max(from)
    }

    /// Copy the (complete) range `[start, end)` out of the staging ring
    /// for a device write.
    pub(crate) fn collect(&self, start: u64, end: u64, out: &mut Vec<u8>) {
        out.reserve((end - start) as usize);
        let mut off = start;
        while off < end {
            let seg = off / SEG;
            let slot = self.slot_for(seg);
            debug_assert_eq!(
                slot.seg.load(Ordering::Acquire),
                seg,
                "collect over a retired segment"
            );
            let in_seg = (off % SEG) as usize;
            let take = (SEG - off % SEG).min(end - off) as usize;
            // SAFETY: [start, end) is a complete prefix — all writers of
            // these bytes published via `filled` (Acquire-loaded in
            // `complete_prefix`) and no writer ever rewrites a range.
            unsafe {
                let src = (*slot.buf.get()).as_ptr().add(in_seg);
                let old = out.len();
                out.set_len(old + take);
                std::ptr::copy_nonoverlapping(src, out.as_mut_ptr().add(old), take);
            }
            off += take as u64;
        }
    }

    /// Copy `out.len()` bytes at `offset` out of the staging ring,
    /// re-validating slot residency afterwards. Returns `false` when a
    /// touched slot was re-staged mid-copy (the data is durable now —
    /// read it from the device instead).
    pub(crate) fn try_copy_out(&self, offset: u64, out: &mut [u8]) -> bool {
        let mut off = offset;
        let mut done = 0usize;
        while done < out.len() {
            let seg = off / SEG;
            let slot = self.slot_for(seg);
            if slot.seg.load(Ordering::Acquire) != seg {
                return false;
            }
            let in_seg = (off % SEG) as usize;
            let take = ((SEG - off % SEG) as usize).min(out.len() - done);
            // SAFETY: the frame at `offset` finished copying before its
            // LSN escaped `append`, and writers never touch foreign
            // ranges; slot reuse is detected by the re-validation below.
            unsafe {
                let src = (*slot.buf.get()).as_ptr().add(in_seg);
                std::ptr::copy_nonoverlapping(src, out.as_mut_ptr().add(done), take);
            }
            if slot.seg.load(Ordering::Acquire) != seg {
                return false;
            }
            off += take as u64;
            done += take;
        }
        true
    }

    /// Re-stage every slot whose segment is entirely durable, then wake
    /// appenders blocked on the ring.
    pub(crate) fn retire_through(&self, durable: u64) {
        let mut advanced = false;
        for slot in self.slots.iter() {
            loop {
                let seg = slot.seg.load(Ordering::Acquire);
                if (seg + 1) * SEG > durable {
                    break;
                }
                slot.filled.store(0, Ordering::Relaxed);
                slot.seg.store(seg + SEGMENT_RING as u64, Ordering::Release);
                advanced = true;
            }
        }
        if advanced {
            drop(self.gate.lock());
            self.cv.notify_all();
        }
    }

    /// Sector-size helper shared with the flusher: distance from `off` to
    /// the next sector boundary (zero when aligned).
    pub(crate) fn pad_to_sector(off: u64) -> u64 {
        (SECTOR_SIZE as u64 - off % SECTOR_SIZE as u64) % SECTOR_SIZE as u64
    }

    /// CAS the reservation counter forward over flush padding. Succeeds
    /// only when no concurrent reservation raced in — otherwise the
    /// flush simply goes out unpadded (the partial last sector is
    /// rewritten by the next flush, as on a real log disk).
    pub(crate) fn claim_padding(&self, at: u64, pad: u64) -> bool {
        self.reserved
            .compare_exchange(at, at + pad, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }
}

impl Drop for ReservedTail {
    fn drop(&mut self) {
        // `&mut self` proves no appender/flusher/reader still borrows the
        // slots, so the staging buffers can go back to the shared slab.
        for slot in self.slots.iter_mut() {
            let buf = std::mem::replace(slot.buf.get_mut(), Box::new([]));
            slab_put(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_reuses_returned_buffers() {
        // Parallel tests share the global slab, so a single observation
        // can race a concurrent drain; a put immediately followed by a
        // take reuses a pooled buffer in at least one of many tries.
        slab_put(slab_take());
        let mut reused = false;
        for _ in 0..50 {
            let before = slab_fresh_allocs();
            let buf = slab_take();
            let fresh = slab_fresh_allocs() > before;
            slab_put(buf);
            if !fresh {
                reused = true;
                break;
            }
        }
        assert!(reused, "slab take after put never reused a buffer");
    }

    #[test]
    fn dropped_tail_feeds_the_next_one() {
        // Dropping a tail returns its ring to the slab; building the next
        // tail should then need fewer than SEGMENT_RING fresh
        // allocations. Tolerate concurrent tests stealing from the pool
        // by retrying.
        drop(ReservedTail::new(DATA_START));
        let mut recycled = false;
        for _ in 0..50 {
            let before = slab_fresh_allocs();
            let tail = ReservedTail::new(DATA_START);
            let fresh = slab_fresh_allocs() - before;
            drop(tail);
            if (fresh as usize) < SEGMENT_RING {
                recycled = true;
                break;
            }
        }
        assert!(recycled, "rebuilding a tail never drew from the slab");
    }

    #[test]
    fn oversized_returns_are_dropped() {
        slab_put(vec![0u8; 16].into_boxed_slice());
        // A wrong-sized buffer must never be handed out.
        let buf = slab_take();
        assert_eq!(buf.len(), SEGMENT_SIZE);
        slab_put(buf);
    }
}
