//! Shared read-only block cache over the immutable crash-time log.
//!
//! During MSP crash recovery the log below the recovered LSN is immutable:
//! recovery appends (RecoveryComplete, EOS markers, checkpoints) only ever
//! land *past* the analysis scan's end. That makes the replay window a
//! read-only region that every recovering session walks — sessions whose
//! position streams interleave in the same 64 KB blocks. Caching those
//! blocks once turns N overlapping sequential re-reads into one, and the
//! disk model is charged **per miss**, so overlapping replay windows no
//! longer double- or triple-bill the simulated disk.
//!
//! Eviction is clock (second-chance): a fixed pool of
//! `replay_cache_blocks` slots, a reference bit per slot, and a hand that
//! clears bits until it finds a cold slot. Blocks are handed out as
//! `Arc<Vec<u8>>` so a lookup clones the Arc and drops the bookkeeping
//! lock before any byte is copied; concurrent misses on the same block
//! may both read the device (both are counted — that is real I/O).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use msp_types::{Decode, Lsn, MspError};

use crate::crc::crc32;
use crate::disk::Disk;
use crate::log::{PhysicalLog, FRAME_HEADER, FRAME_MAGIC, MAX_RECORD, SCAN_CHUNK};
use crate::model::DiskModel;
use crate::record::LogRecord;

/// One cached block.
struct Slot {
    /// Block number (`offset / SCAN_CHUNK`), `None` while the slot is
    /// still empty.
    block: Option<u64>,
    data: Arc<Vec<u8>>,
    /// Clock reference bit: set on hit, cleared as the hand passes.
    referenced: bool,
}

struct CacheInner {
    map: HashMap<u64, usize>,
    slots: Vec<Slot>,
    hand: usize,
}

/// Fixed-size cache of 64 KB log blocks, shared by all replaying
/// sessions of one MSP. See the module docs for the immutability
/// argument; reads at or past [`limit`](ReplayCache::limit) (records
/// appended *during* recovery, e.g. EOS markers) bypass the cache and go
/// to the owning log, which can serve its own volatile tail.
pub struct ReplayCache {
    log: Arc<PhysicalLog>,
    disk: Arc<dyn Disk>,
    model: DiskModel,
    /// End of the immutable region: the log's durable end when the cache
    /// was created.
    limit: u64,
    inner: Mutex<CacheInner>,
}

impl ReplayCache {
    /// Build a cache of `blocks` 64 KB slots over `log`'s current durable
    /// prefix. `blocks` is clamped to at least 1.
    pub fn new(log: &Arc<PhysicalLog>, blocks: usize) -> ReplayCache {
        let blocks = blocks.max(1);
        let mut slots = Vec::with_capacity(blocks);
        for _ in 0..blocks {
            slots.push(Slot {
                block: None,
                data: Arc::new(Vec::new()),
                referenced: false,
            });
        }
        ReplayCache {
            log: Arc::clone(log),
            disk: log.disk(),
            model: log.model().clone(),
            limit: log.durable_lsn().0,
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                slots,
                hand: 0,
            }),
        }
    }

    /// First offset **not** covered by the cache; reads at or past it
    /// must go to the log itself.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Fetch the 64 KB block containing `offset`, from the pool or the
    /// device (one miss = one charged sequential read).
    fn block(&self, block_no: u64) -> Result<Arc<Vec<u8>>, MspError> {
        {
            let mut inner = self.inner.lock();
            if let Some(&slot) = inner.map.get(&block_no) {
                inner.slots[slot].referenced = true;
                self.log.stats_ref().on_replay_cache_hit();
                return Ok(Arc::clone(&inner.slots[slot].data));
            }
        }
        // Miss: do the device read (and pay for it) outside the lock so
        // other sessions keep hitting the cache meanwhile.
        self.log.stats_ref().on_replay_cache_miss();
        self.model.charge_read(128);
        let off = block_no * SCAN_CHUNK as u64;
        let mut data = vec![0u8; SCAN_CHUNK];
        let n = self.disk.read(off, &mut data).map_err(MspError::Io)?;
        data.truncate(n);
        let data = Arc::new(data);

        let mut inner = self.inner.lock();
        if let Some(&slot) = inner.map.get(&block_no) {
            // A concurrent miss installed it first; serve theirs.
            inner.slots[slot].referenced = true;
            return Ok(Arc::clone(&inner.slots[slot].data));
        }
        // Clock eviction: clear reference bits until a cold slot turns up
        // (bounded: after one full sweep every bit is clear).
        let victim = loop {
            let hand = inner.hand;
            inner.hand = (inner.hand + 1) % inner.slots.len();
            if inner.slots[hand].referenced {
                inner.slots[hand].referenced = false;
            } else {
                break hand;
            }
        };
        if let Some(old) = inner.slots[victim].block.take() {
            inner.map.remove(&old);
            self.log.stats_ref().on_replay_cache_eviction();
        }
        inner.slots[victim] = Slot {
            block: Some(block_no),
            data: Arc::clone(&data),
            referenced: true,
        };
        inner.map.insert(block_no, victim);
        Ok(data)
    }

    /// Copy bytes at absolute device offset `off` into `out`, assembling
    /// across block boundaries. Returns the bytes available (short at the
    /// cached region's end).
    fn read_at(&self, mut off: u64, out: &mut [u8]) -> Result<usize, MspError> {
        let mut copied = 0;
        while copied < out.len() {
            let block_no = off / SCAN_CHUNK as u64;
            let data = self.block(block_no)?;
            let at = (off - block_no * SCAN_CHUNK as u64) as usize;
            if at >= data.len() {
                break;
            }
            let take = (data.len() - at).min(out.len() - copied);
            out[copied..copied + take].copy_from_slice(&data[at..at + take]);
            copied += take;
            off += take as u64;
        }
        Ok(copied)
    }

    /// Fetch and validate the frame payload at `lsn` through the cache —
    /// the cached analogue of the log's device frame read.
    fn read_frame(&self, lsn: Lsn) -> Result<Vec<u8>, MspError> {
        let corrupt = |reason: &str| MspError::LogCorrupt {
            offset: lsn.0,
            reason: reason.into(),
        };
        let mut header = [0u8; FRAME_HEADER];
        if self.read_at(lsn.0, &mut header)? < FRAME_HEADER {
            return Err(corrupt("truncated frame header"));
        }
        if header[0] != FRAME_MAGIC {
            return Err(corrupt("bad frame magic"));
        }
        let len = u32::from_le_bytes(header[1..5].try_into().expect("slice")) as usize;
        let crc = u32::from_le_bytes(header[5..9].try_into().expect("slice"));
        if len as u32 > MAX_RECORD {
            return Err(corrupt("oversized frame"));
        }
        let mut payload = vec![0u8; len];
        if self.read_at(lsn.0 + FRAME_HEADER as u64, &mut payload)? < len {
            return Err(corrupt("truncated frame payload"));
        }
        if crc32(&payload) != crc {
            return Err(corrupt("crc mismatch"));
        }
        Ok(payload)
    }

    /// Read and decode the record at `lsn`, plus its framed size.
    /// Records at or past the immutable limit (appended during recovery)
    /// transparently fall back to the owning log.
    pub fn read_record_sized(&self, lsn: Lsn) -> Result<(LogRecord, u64), MspError> {
        if lsn.0 >= self.limit {
            return self.log.read_record_sized(lsn);
        }
        let payload = self.read_frame(lsn)?;
        let framed = (FRAME_HEADER + payload.len()) as u64;
        let rec = LogRecord::from_bytes(&payload).map_err(|e| MspError::LogCorrupt {
            offset: lsn.0,
            reason: e.to_string(),
        })?;
        Ok((rec, framed))
    }

    /// Read and decode the record at `lsn`.
    pub fn read_record(&self, lsn: Lsn) -> Result<LogRecord, MspError> {
        self.read_record_sized(lsn).map(|(rec, _)| rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use crate::log::FlushPolicy;
    use msp_types::{RequestSeq, SessionId};

    fn rec(session: u64, seq: u64, len: usize) -> LogRecord {
        LogRecord::RequestReceive {
            session: SessionId(session),
            seq: RequestSeq(seq),
            method: "m".into(),
            payload: vec![0x5C; len],
            sender_dv: None,
        }
    }

    fn logged(n: u64, len: usize) -> (Arc<PhysicalLog>, Vec<Lsn>) {
        let log = PhysicalLog::open(
            Arc::new(MemDisk::new()),
            DiskModel::zero(),
            FlushPolicy::immediate(),
        )
        .unwrap();
        let mut lsns = Vec::new();
        for i in 0..n {
            lsns.push(log.append(&rec(1, i, len)));
        }
        log.flush_all().unwrap();
        (log, lsns)
    }

    #[test]
    fn serves_records_and_counts_hits() {
        let (log, lsns) = logged(10, 100);
        let cache = ReplayCache::new(&log, 4);
        for (i, &lsn) in lsns.iter().enumerate() {
            assert_eq!(cache.read_record(lsn).unwrap(), rec(1, i as u64, 100));
        }
        // Re-read: everything fits in one block, so all hits.
        for &lsn in &lsns {
            let _ = cache.read_record(lsn).unwrap();
        }
        let s = log.stats();
        assert_eq!(s.replay_cache_misses, 1, "10 small records share a block");
        assert!(s.replay_cache_hits >= 19);
        log.close();
    }

    #[test]
    fn frames_spanning_blocks_read_back_intact() {
        // 40 KB payloads force frames across the 64 KB block boundary.
        let (log, lsns) = logged(6, 40 * 1024);
        let cache = ReplayCache::new(&log, 8);
        for (i, &lsn) in lsns.iter().enumerate() {
            assert_eq!(cache.read_record(lsn).unwrap(), rec(1, i as u64, 40 * 1024));
        }
        log.close();
    }

    #[test]
    fn clock_evicts_under_pressure() {
        // ~240 KB of records through a 1-block cache: every block fetch
        // after the first evicts.
        let (log, lsns) = logged(6, 40 * 1024);
        let cache = ReplayCache::new(&log, 1);
        for &lsn in &lsns {
            let _ = cache.read_record(lsn).unwrap();
        }
        let s = log.stats();
        assert!(s.replay_cache_evictions > 0, "1-block cache must evict");
        assert_eq!(s.replay_cache_misses, s.replay_cache_evictions + 1);
        log.close();
    }

    #[test]
    fn misses_charge_the_disk_model_per_block() {
        let (log, lsns) = logged(10, 100);
        let before = log.stats().scan_chunks;
        let cache = ReplayCache::new(&log, 4);
        for &lsn in &lsns {
            let _ = cache.read_record(lsn).unwrap();
        }
        // Cache misses charge the model directly (not via scan_chunks);
        // the scan counter must be untouched by cached replay.
        assert_eq!(log.stats().scan_chunks, before);
        log.close();
    }

    #[test]
    fn reads_past_limit_fall_back_to_the_log() {
        let (log, _) = logged(3, 100);
        let cache = ReplayCache::new(&log, 4);
        // Appended after the cache snapshot: still in the volatile tail.
        let late = log.append(&rec(2, 0, 100));
        assert!(late.0 >= cache.limit());
        assert_eq!(cache.read_record(late).unwrap(), rec(2, 0, 100));
        log.close();
    }

    #[test]
    fn concurrent_readers_converge() {
        let (log, lsns) = logged(32, 2048);
        let cache = Arc::new(ReplayCache::new(&log, 2));
        std::thread::scope(|s| {
            for t in 0..8 {
                let cache = Arc::clone(&cache);
                let lsns = lsns.clone();
                s.spawn(move || {
                    for (i, &lsn) in lsns.iter().enumerate() {
                        assert_eq!(
                            cache.read_record(lsn).unwrap(),
                            rec(1, i as u64, 2048),
                            "thread {t} record {i}"
                        );
                    }
                });
            }
        });
        let s = log.stats();
        assert!(s.replay_cache_hits > s.replay_cache_misses);
        log.close();
    }
}
