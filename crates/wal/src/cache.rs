//! Replay read view over the process-wide [`BufferPool`].
//!
//! During MSP crash recovery the log below the recovered LSN is immutable:
//! recovery appends (RecoveryComplete, EOS markers, checkpoints) only ever
//! land *past* the analysis scan's end. That makes the replay window a
//! read-only region that every recovering session walks — sessions whose
//! position streams interleave in the same 64 KB blocks. Caching those
//! blocks once turns N overlapping sequential re-reads into one, and the
//! disk model is charged **per miss**, so overlapping replay windows no
//! longer double- or triple-bill the simulated disk.
//!
//! PR 3 gave each recovery its own fixed clock pool; the slots now live
//! in a shared [`BufferPool`] (one per process when runtimes are
//! co-located) and a `ReplayCache` is one registered *source* in it: a
//! thin view binding a pool source id to one physical log. Eviction
//! policy is the pool's ([`ReplacementPolicy`]); blocks are handed out as
//! `Arc<Vec<u8>>` so a lookup clones the Arc and drops the bookkeeping
//! lock before any byte is copied; concurrent misses on the same block
//! may both read the device (both are counted — that is real I/O).
//!
//! Reads at or past [`limit`](ReplayCache::limit) (records appended
//! *during* recovery, e.g. EOS markers) go to the owning log, which can
//! serve its own volatile tail — and the decoded record is memoized, so a
//! hot tail record (a fresh EOS probed by every subsequent replay step)
//! costs one log read instead of one per access.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use msp_types::{Decode, Lsn, MspError};

use crate::crc::crc32;
use crate::disk::Disk;
use crate::log::{PhysicalLog, FRAME_HEADER, FRAME_MAGIC, MAX_RECORD, SCAN_CHUNK};
use crate::model::DiskModel;
use crate::pool::{BufferPool, ReplacementPolicy, ScanFeed};
use crate::record::LogRecord;

/// Replay view over one physical log: a registered source in a (possibly
/// shared) [`BufferPool`]. See the module docs.
pub struct ReplayCache {
    log: Arc<PhysicalLog>,
    disk: Arc<dyn Disk>,
    model: DiskModel,
    /// End of the immutable region: the log's durable end when the cache
    /// was created.
    limit: u64,
    pool: Arc<BufferPool>,
    source: u32,
    /// Decoded records read past `limit` (the volatile recovery tail):
    /// the log is append-only, so a record at an LSN never changes and
    /// one read serves every subsequent access.
    tail: Mutex<HashMap<u64, (LogRecord, u64)>>,
}

impl ReplayCache {
    /// Build a private cache of `blocks` 64 KB slots over `log`'s current
    /// durable prefix (clock replacement — the PR 3 behaviour).
    pub fn new(log: &Arc<PhysicalLog>, blocks: usize) -> ReplayCache {
        ReplayCache::with_pool(
            log,
            &Arc::new(BufferPool::new(blocks, ReplacementPolicy::Clock)),
        )
    }

    /// A view over `log` borrowing slots from a shared `pool`.
    pub fn with_pool(log: &Arc<PhysicalLog>, pool: &Arc<BufferPool>) -> ReplayCache {
        ReplayCache {
            log: Arc::clone(log),
            disk: log.disk(),
            model: log.model().clone(),
            limit: log.durable_lsn().0,
            pool: Arc::clone(pool),
            source: pool.register(),
            tail: Mutex::new(HashMap::new()),
        }
    }

    /// First offset **not** covered by the cache; reads at or past it
    /// must go to the log itself.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// The backing pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Feed handle for this view's source: the analysis scan pushes the
    /// chunks it reads here so replay finds them resident.
    pub fn feed(&self) -> ScanFeed {
        ScanFeed::new(&self.pool, self.source)
    }

    /// Pull the blocks containing `positions` into the pool ahead of a
    /// replaying worker (one charged sequential read per absent block;
    /// resident blocks cost nothing and are not promoted).
    pub fn prefetch_positions(&self, positions: &[Lsn]) -> Result<(), MspError> {
        let mut blocks: Vec<u64> = positions
            .iter()
            .filter(|l| l.0 < self.limit)
            .map(|l| l.0 / SCAN_CHUNK as u64)
            .collect();
        blocks.sort_unstable();
        blocks.dedup();
        for block_no in blocks {
            self.pool.prefetch_with(self.source, block_no, || {
                self.model.charge_read(128);
                let off = block_no * SCAN_CHUNK as u64;
                let mut data = vec![0u8; SCAN_CHUNK];
                let n = self.disk.read(off, &mut data).map_err(MspError::Io)?;
                data.truncate(n);
                Ok(data)
            })?;
        }
        Ok(())
    }

    /// Fetch the 64 KB block containing `offset`, from the pool or the
    /// device (one miss = one charged sequential read).
    fn block(&self, block_no: u64) -> Result<Arc<Vec<u8>>, MspError> {
        let (data, outcome) = self.pool.get(self.source, block_no, || {
            // Miss: the device read (and its bill) happens outside the
            // pool lock so other sessions keep hitting meanwhile.
            self.log.stats_ref().on_replay_cache_miss();
            self.model.charge_read(128);
            let off = block_no * SCAN_CHUNK as u64;
            let mut data = vec![0u8; SCAN_CHUNK];
            let n = self.disk.read(off, &mut data).map_err(MspError::Io)?;
            data.truncate(n);
            Ok(data)
        })?;
        if outcome.hit {
            self.log.stats_ref().on_replay_cache_hit();
        }
        if outcome.evicted {
            self.log.stats_ref().on_replay_cache_eviction();
        }
        Ok(data)
    }

    /// Copy bytes at absolute device offset `off` into `out`, assembling
    /// across block boundaries. Returns the bytes available (short at the
    /// cached region's end).
    fn read_at(&self, mut off: u64, out: &mut [u8]) -> Result<usize, MspError> {
        let mut copied = 0;
        while copied < out.len() {
            let block_no = off / SCAN_CHUNK as u64;
            let data = self.block(block_no)?;
            let at = (off - block_no * SCAN_CHUNK as u64) as usize;
            if at >= data.len() {
                break;
            }
            let take = (data.len() - at).min(out.len() - copied);
            out[copied..copied + take].copy_from_slice(&data[at..at + take]);
            copied += take;
            off += take as u64;
        }
        Ok(copied)
    }

    /// Fetch and validate the frame payload at `lsn` through the cache —
    /// the cached analogue of the log's device frame read.
    fn read_frame(&self, lsn: Lsn) -> Result<Vec<u8>, MspError> {
        let corrupt = |reason: &str| MspError::LogCorrupt {
            offset: lsn.0,
            reason: reason.into(),
        };
        let mut header = [0u8; FRAME_HEADER];
        if self.read_at(lsn.0, &mut header)? < FRAME_HEADER {
            return Err(corrupt("truncated frame header"));
        }
        if header[0] != FRAME_MAGIC {
            return Err(corrupt("bad frame magic"));
        }
        let len = u32::from_le_bytes(header[1..5].try_into().expect("slice")) as usize;
        let crc = u32::from_le_bytes(header[5..9].try_into().expect("slice"));
        if len as u32 > MAX_RECORD {
            return Err(corrupt("oversized frame"));
        }
        let mut payload = vec![0u8; len];
        if self.read_at(lsn.0 + FRAME_HEADER as u64, &mut payload)? < len {
            return Err(corrupt("truncated frame payload"));
        }
        if crc32(&payload) != crc {
            return Err(corrupt("crc mismatch"));
        }
        Ok(payload)
    }

    /// Read and decode the record at `lsn`, plus its framed size.
    /// Records at or past the immutable limit (appended during recovery)
    /// transparently fall back to the owning log, memoized per LSN.
    pub fn read_record_sized(&self, lsn: Lsn) -> Result<(LogRecord, u64), MspError> {
        if lsn.0 >= self.limit {
            if let Some(hit) = self.tail.lock().get(&lsn.0) {
                return Ok(hit.clone());
            }
            let out = self.log.read_record_sized(lsn)?;
            self.tail.lock().insert(lsn.0, out.clone());
            return Ok(out);
        }
        let payload = self.read_frame(lsn)?;
        let framed = (FRAME_HEADER + payload.len()) as u64;
        let rec = LogRecord::from_bytes(&payload).map_err(|e| MspError::LogCorrupt {
            offset: lsn.0,
            reason: e.to_string(),
        })?;
        Ok((rec, framed))
    }

    /// Read and decode the record at `lsn`.
    pub fn read_record(&self, lsn: Lsn) -> Result<LogRecord, MspError> {
        self.read_record_sized(lsn).map(|(rec, _)| rec)
    }
}

impl Drop for ReplayCache {
    fn drop(&mut self) {
        // Return this view's slots to the shared pool: a shard that
        // finishes recovery gives its memory to the shards still going.
        self.pool.retire(self.source);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use crate::log::FlushPolicy;
    use msp_types::{RequestSeq, SessionId};

    fn rec(session: u64, seq: u64, len: usize) -> LogRecord {
        LogRecord::RequestReceive {
            session: SessionId(session),
            seq: RequestSeq(seq),
            method: "m".into(),
            payload: vec![0x5C; len],
            sender_dv: None,
        }
    }

    fn logged(n: u64, len: usize) -> (Arc<PhysicalLog>, Vec<Lsn>) {
        let log = PhysicalLog::open(
            Arc::new(MemDisk::new()),
            DiskModel::zero(),
            FlushPolicy::immediate(),
        )
        .unwrap();
        let mut lsns = Vec::new();
        for i in 0..n {
            lsns.push(log.append(&rec(1, i, len)));
        }
        log.flush_all().unwrap();
        (log, lsns)
    }

    #[test]
    fn serves_records_and_counts_hits() {
        let (log, lsns) = logged(10, 100);
        let cache = ReplayCache::new(&log, 4);
        for (i, &lsn) in lsns.iter().enumerate() {
            assert_eq!(cache.read_record(lsn).unwrap(), rec(1, i as u64, 100));
        }
        // Re-read: everything fits in one block, so all hits.
        for &lsn in &lsns {
            let _ = cache.read_record(lsn).unwrap();
        }
        let s = log.stats();
        assert_eq!(s.replay_cache_misses, 1, "10 small records share a block");
        assert!(s.replay_cache_hits >= 19);
        log.close();
    }

    #[test]
    fn frames_spanning_blocks_read_back_intact() {
        // 40 KB payloads force frames across the 64 KB block boundary.
        let (log, lsns) = logged(6, 40 * 1024);
        let cache = ReplayCache::new(&log, 8);
        for (i, &lsn) in lsns.iter().enumerate() {
            assert_eq!(cache.read_record(lsn).unwrap(), rec(1, i as u64, 40 * 1024));
        }
        log.close();
    }

    #[test]
    fn clock_evicts_under_pressure() {
        // ~240 KB of records through a 1-block cache: every block fetch
        // after the first evicts.
        let (log, lsns) = logged(6, 40 * 1024);
        let cache = ReplayCache::new(&log, 1);
        for &lsn in &lsns {
            let _ = cache.read_record(lsn).unwrap();
        }
        let s = log.stats();
        assert!(s.replay_cache_evictions > 0, "1-block cache must evict");
        assert_eq!(s.replay_cache_misses, s.replay_cache_evictions + 1);
        log.close();
    }

    #[test]
    fn misses_charge_the_disk_model_per_block() {
        let (log, lsns) = logged(10, 100);
        let before = log.stats().scan_chunks;
        let cache = ReplayCache::new(&log, 4);
        for &lsn in &lsns {
            let _ = cache.read_record(lsn).unwrap();
        }
        // Cache misses charge the model directly (not via scan_chunks);
        // the scan counter must be untouched by cached replay.
        assert_eq!(log.stats().scan_chunks, before);
        log.close();
    }

    #[test]
    fn reads_past_limit_fall_back_to_the_log() {
        let (log, _) = logged(3, 100);
        let cache = ReplayCache::new(&log, 4);
        // Appended after the cache snapshot: still in the volatile tail.
        let late = log.append(&rec(2, 0, 100));
        assert!(late.0 >= cache.limit());
        assert_eq!(cache.read_record(late).unwrap(), rec(2, 0, 100));
        log.close();
    }

    #[test]
    fn tail_reads_are_memoized() {
        let (log, _) = logged(3, 100);
        let cache = ReplayCache::new(&log, 4);
        let late = log.append(&rec(2, 0, 100));
        let before = log.stats().record_reads;
        for _ in 0..5 {
            assert_eq!(cache.read_record(late).unwrap(), rec(2, 0, 100));
        }
        // One log read serves all five accesses of the hot tail record.
        assert_eq!(log.stats().record_reads, before + 1);
        log.close();
    }

    #[test]
    fn shared_pool_serves_two_logs_without_aliasing() {
        let (log_a, lsns_a) = logged(4, 100);
        let (log_b, lsns_b) = logged(4, 100);
        let pool = Arc::new(BufferPool::new(4, ReplacementPolicy::Lru));
        let a = ReplayCache::with_pool(&log_a, &pool);
        let b = ReplayCache::with_pool(&log_b, &pool);
        // Identical LSNs on both logs: the source id keys them apart.
        for (i, (&la, &lb)) in lsns_a.iter().zip(&lsns_b).enumerate() {
            assert_eq!(a.read_record(la).unwrap(), rec(1, i as u64, 100));
            assert_eq!(b.read_record(lb).unwrap(), rec(1, i as u64, 100));
        }
        assert_eq!(pool.stats().pool_misses, 2, "one block per log");
        // Dropping one view frees its slots but leaves the other's.
        drop(a);
        let before = pool.stats().pool_misses;
        let _ = b.read_record(lsns_b[0]).unwrap();
        assert_eq!(pool.stats().pool_misses, before);
        log_a.close();
        log_b.close();
    }

    #[test]
    fn prefetched_positions_serve_replay_without_demand_misses() {
        let (log, lsns) = logged(10, 100);
        let cache = ReplayCache::new(&log, 4);
        cache.prefetch_positions(&lsns).unwrap();
        for (i, &lsn) in lsns.iter().enumerate() {
            assert_eq!(cache.read_record(lsn).unwrap(), rec(1, i as u64, 100));
        }
        let s = log.stats();
        assert_eq!(s.replay_cache_misses, 0, "prefetch covered the window");
        let p = cache.pool().stats();
        assert_eq!(p.pool_prefetched_blocks, 1);
        assert_eq!(p.pool_prefetch_hits, 1);
        log.close();
    }

    #[test]
    fn scan_feed_warms_the_pool() {
        let (log, lsns) = logged(10, 100);
        let cache = ReplayCache::new(&log, 4);
        // Simulate the analysis scan handing over its first chunk.
        let mut chunk = vec![0u8; SCAN_CHUNK];
        let n = log.disk().read(0, &mut chunk).unwrap();
        chunk.truncate(n);
        cache.feed().insert(0, chunk);
        for &lsn in &lsns {
            let _ = cache.read_record(lsn).unwrap();
        }
        assert_eq!(log.stats().replay_cache_misses, 0);
        log.close();
    }

    #[test]
    fn concurrent_readers_converge() {
        let (log, lsns) = logged(32, 2048);
        let cache = Arc::new(ReplayCache::new(&log, 2));
        std::thread::scope(|s| {
            for t in 0..8 {
                let cache = Arc::clone(&cache);
                let lsns = lsns.clone();
                s.spawn(move || {
                    for (i, &lsn) in lsns.iter().enumerate() {
                        assert_eq!(
                            cache.read_record(lsn).unwrap(),
                            rec(1, i as u64, 2048),
                            "thread {t} record {i}"
                        );
                    }
                });
            }
        });
        let s = log.stats();
        assert!(s.replay_cache_hits > s.replay_cache_misses);
        log.close();
    }
}
