//! The log anchor (§3.4) and the reclaim-floor metadata.
//!
//! "Similar to ARIES, after an MSP checkpoint is taken, its LSN is
//! recorded in the log anchor, a block located at a specific location
//! inside the physical log such as the log header. After a crash, recovery
//! will look for the most recent MSP checkpoint's LSN inside the log
//! anchor."
//!
//! Sector 0 of a log device holds up to three independent 16-byte
//! `[magic u32][value u64][crc u32]` regions:
//!
//! ```text
//! bytes  0..16 : MSP checkpoint anchor ("MSPA") — the ARIES log anchor
//! bytes 16..32 : local reclaim floor   ("MSPF") — no record below this
//!                LSN survives on *this* device; every scan must start at
//!                or above it
//! bytes 32..48 : merged gsn floor      ("MSPG") — striped logs only: the
//!                global floor the per-stripe locals were derived from
//! ```
//!
//! Each region is updated by a read-modify-write of the whole sector so
//! the others survive, and each validates independently (a torn write
//! falls back to "absent"). Updates are single-sector in-place writes
//! charged one sector of flush cost.

use std::sync::Arc;

use msp_types::{Lsn, MspError};

use crate::crc::crc32;
use crate::disk::Disk;
use crate::log::SECTOR_SIZE;
use crate::model::DiskModel;

const ANCHOR_MAGIC: u32 = 0x4D53_5041; // "MSPA"
const FLOOR_MAGIC: u32 = 0x4D53_5046; // "MSPF"
const MERGED_FLOOR_MAGIC: u32 = 0x4D53_5047; // "MSPG"

/// Byte offset of the local reclaim-floor region inside sector 0.
const FLOOR_OFFSET: usize = 16;
/// Byte offset of the merged gsn-floor region inside sector 0.
const MERGED_FLOOR_OFFSET: usize = 32;

/// Read-modify-write one 16-byte region of sector 0, preserving the rest.
fn write_region(
    disk: &dyn Disk,
    model: &DiskModel,
    offset: usize,
    magic: u32,
    value: u64,
) -> Result<(), MspError> {
    debug_assert!(offset + 16 <= SECTOR_SIZE);
    let mut sector = vec![0u8; SECTOR_SIZE];
    // Short read on a fresh disk leaves the tail zeroed — exactly right.
    let _ = disk.read(0, &mut sector).map_err(MspError::Io)?;
    sector[offset..offset + 4].copy_from_slice(&magic.to_le_bytes());
    sector[offset + 4..offset + 12].copy_from_slice(&value.to_le_bytes());
    let crc = crc32(&sector[offset..offset + 12]);
    sector[offset + 12..offset + 16].copy_from_slice(&crc.to_le_bytes());
    model.charge_flush(1);
    disk.write(0, &sector).map_err(MspError::Io)
}

/// Read one 16-byte region of sector 0; `None` if absent or torn.
fn read_region(disk: &dyn Disk, offset: usize, magic: u32) -> Result<Option<u64>, MspError> {
    let mut region = [0u8; 16];
    let n = disk
        .read(offset as u64, &mut region)
        .map_err(MspError::Io)?;
    if n < 16 {
        return Ok(None);
    }
    if u32::from_le_bytes(region[0..4].try_into().expect("slice")) != magic {
        return Ok(None);
    }
    let crc = u32::from_le_bytes(region[12..16].try_into().expect("slice"));
    if crc32(&region[0..12]) != crc {
        // A torn write: fall back to "absent" — for the anchor that means
        // a slow full scan, for a floor it means the conservative
        // `DATA_START`; both are correct.
        return Ok(None);
    }
    Ok(Some(u64::from_le_bytes(
        region[4..12].try_into().expect("slice"),
    )))
}

/// Persist this device's local reclaim floor (bytes 16..32 of sector 0).
pub fn write_floor(disk: &dyn Disk, model: &DiskModel, floor: u64) -> Result<(), MspError> {
    write_region(disk, model, FLOOR_OFFSET, FLOOR_MAGIC, floor)
}

/// This device's persisted local reclaim floor, if any.
pub fn read_floor(disk: &dyn Disk) -> Result<Option<u64>, MspError> {
    read_region(disk, FLOOR_OFFSET, FLOOR_MAGIC)
}

/// Persist the merged gsn floor on a stripe device (bytes 32..48).
pub fn write_merged_floor(disk: &dyn Disk, model: &DiskModel, floor: u64) -> Result<(), MspError> {
    write_region(disk, model, MERGED_FLOOR_OFFSET, MERGED_FLOOR_MAGIC, floor)
}

/// The persisted merged gsn floor on a stripe device, if any.
pub fn read_merged_floor(disk: &dyn Disk) -> Result<Option<u64>, MspError> {
    read_region(disk, MERGED_FLOOR_OFFSET, MERGED_FLOOR_MAGIC)
}

/// Reader/writer of the anchor region.
pub struct LogAnchor {
    disk: Arc<dyn Disk>,
    model: DiskModel,
}

impl LogAnchor {
    pub fn new(disk: Arc<dyn Disk>, model: DiskModel) -> LogAnchor {
        LogAnchor { disk, model }
    }

    /// Record `lsn` as the most recent MSP checkpoint. Durable on return.
    /// Preserves the floor regions sharing the sector.
    pub fn write(&self, lsn: Lsn) -> Result<(), MspError> {
        write_region(self.disk.as_ref(), &self.model, 0, ANCHOR_MAGIC, lsn.0)
    }

    /// The most recent MSP checkpoint's LSN, or `None` if no checkpoint
    /// was ever anchored (fresh log) or the anchor region is torn.
    pub fn read(&self) -> Result<Option<Lsn>, MspError> {
        Ok(read_region(self.disk.as_ref(), 0, ANCHOR_MAGIC)?.map(Lsn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    #[test]
    fn fresh_disk_has_no_anchor() {
        let anchor = LogAnchor::new(Arc::new(MemDisk::new()), DiskModel::zero());
        assert_eq!(anchor.read().unwrap(), None);
    }

    #[test]
    fn write_then_read() {
        let anchor = LogAnchor::new(Arc::new(MemDisk::new()), DiskModel::zero());
        anchor.write(Lsn(4096)).unwrap();
        assert_eq!(anchor.read().unwrap(), Some(Lsn(4096)));
        // Overwrite with a newer checkpoint.
        anchor.write(Lsn(8192)).unwrap();
        assert_eq!(anchor.read().unwrap(), Some(Lsn(8192)));
    }

    #[test]
    fn corrupt_anchor_reads_as_none() {
        let disk = Arc::new(MemDisk::new());
        let anchor = LogAnchor::new(disk.clone(), DiskModel::zero());
        anchor.write(Lsn(4096)).unwrap();
        // Flip a byte of the stored LSN.
        disk.write(5, &[0xFF]).unwrap();
        assert_eq!(anchor.read().unwrap(), None);
    }

    #[test]
    fn anchor_and_floors_coexist_in_sector_zero() {
        let disk = MemDisk::new();
        let model = DiskModel::zero();
        let anchor = LogAnchor::new(Arc::new(disk.clone()), model.clone());
        anchor.write(Lsn(4096)).unwrap();
        write_floor(&disk, &model, 1536).unwrap();
        write_merged_floor(&disk, &model, 3000).unwrap();
        // Every region reads back; none clobbered another.
        assert_eq!(anchor.read().unwrap(), Some(Lsn(4096)));
        assert_eq!(read_floor(&disk).unwrap(), Some(1536));
        assert_eq!(read_merged_floor(&disk).unwrap(), Some(3000));
        // Re-anchoring preserves the floors and vice versa.
        anchor.write(Lsn(9000)).unwrap();
        assert_eq!(read_floor(&disk).unwrap(), Some(1536));
        write_floor(&disk, &model, 2048).unwrap();
        assert_eq!(anchor.read().unwrap(), Some(Lsn(9000)));
        assert_eq!(read_merged_floor(&disk).unwrap(), Some(3000));
    }

    #[test]
    fn fresh_disk_has_no_floor() {
        let disk = MemDisk::new();
        assert_eq!(read_floor(&disk).unwrap(), None);
        assert_eq!(read_merged_floor(&disk).unwrap(), None);
    }

    #[test]
    fn torn_floor_reads_as_none() {
        let disk = MemDisk::new();
        write_floor(&disk, &DiskModel::zero(), 1536).unwrap();
        disk.write(20, &[0xFF]).unwrap();
        assert_eq!(read_floor(&disk).unwrap(), None);
    }

    #[test]
    fn anchor_survives_alongside_log_records() {
        use crate::log::{FlushPolicy, PhysicalLog};
        use msp_types::{RequestSeq, SessionId};

        let disk = Arc::new(MemDisk::new());
        let log =
            PhysicalLog::open(disk.clone(), DiskModel::zero(), FlushPolicy::immediate()).unwrap();
        let rec = crate::record::LogRecord::RequestReceive {
            session: SessionId(1),
            seq: RequestSeq(0),
            method: "m".into(),
            payload: vec![],
            sender_dv: None,
        };
        let lsn = log.append(&rec);
        log.flush_to(lsn).unwrap();
        let anchor = LogAnchor::new(disk, DiskModel::zero());
        anchor.write(lsn).unwrap();
        assert_eq!(anchor.read().unwrap(), Some(lsn));
        // The record area is untouched by the anchor write.
        assert_eq!(log.read_record(lsn).unwrap(), rec);
        log.close();
    }
}
