//! The log anchor (§3.4).
//!
//! "Similar to ARIES, after an MSP checkpoint is taken, its LSN is
//! recorded in the log anchor, a block located at a specific location
//! inside the physical log such as the log header. After a crash, recovery
//! will look for the most recent MSP checkpoint's LSN inside the log
//! anchor."
//!
//! The anchor occupies sector 0 of the log device (`[magic][lsn][crc]`,
//! zero-padded). Its write is a single-sector in-place update and is
//! charged one sector of flush cost by the caller.

use std::sync::Arc;

use msp_types::{Lsn, MspError};

use crate::crc::crc32;
use crate::disk::Disk;
use crate::log::SECTOR_SIZE;
use crate::model::DiskModel;

const ANCHOR_MAGIC: u32 = 0x4D53_5041; // "MSPA"

/// Reader/writer of the anchor sector.
pub struct LogAnchor {
    disk: Arc<dyn Disk>,
    model: DiskModel,
}

impl LogAnchor {
    pub fn new(disk: Arc<dyn Disk>, model: DiskModel) -> LogAnchor {
        LogAnchor { disk, model }
    }

    /// Record `lsn` as the most recent MSP checkpoint. Durable on return.
    pub fn write(&self, lsn: Lsn) -> Result<(), MspError> {
        let mut sector = vec![0u8; SECTOR_SIZE];
        sector[0..4].copy_from_slice(&ANCHOR_MAGIC.to_le_bytes());
        sector[4..12].copy_from_slice(&lsn.0.to_le_bytes());
        let crc = crc32(&sector[0..12]);
        sector[12..16].copy_from_slice(&crc.to_le_bytes());
        self.model.charge_flush(1);
        self.disk.write(0, &sector).map_err(MspError::Io)
    }

    /// The most recent MSP checkpoint's LSN, or `None` if no checkpoint
    /// was ever anchored (fresh log) or the anchor sector is torn.
    pub fn read(&self) -> Result<Option<Lsn>, MspError> {
        let mut sector = [0u8; 16];
        let n = self.disk.read(0, &mut sector).map_err(MspError::Io)?;
        if n < 16 {
            return Ok(None);
        }
        let magic = u32::from_le_bytes(sector[0..4].try_into().expect("slice"));
        if magic != ANCHOR_MAGIC {
            return Ok(None);
        }
        let crc = u32::from_le_bytes(sector[12..16].try_into().expect("slice"));
        if crc32(&sector[0..12]) != crc {
            // A torn anchor write: fall back to "no anchor" — recovery
            // then scans from the log start, which is correct but slow.
            return Ok(None);
        }
        Ok(Some(Lsn(u64::from_le_bytes(
            sector[4..12].try_into().expect("slice"),
        ))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    #[test]
    fn fresh_disk_has_no_anchor() {
        let anchor = LogAnchor::new(Arc::new(MemDisk::new()), DiskModel::zero());
        assert_eq!(anchor.read().unwrap(), None);
    }

    #[test]
    fn write_then_read() {
        let anchor = LogAnchor::new(Arc::new(MemDisk::new()), DiskModel::zero());
        anchor.write(Lsn(4096)).unwrap();
        assert_eq!(anchor.read().unwrap(), Some(Lsn(4096)));
        // Overwrite with a newer checkpoint.
        anchor.write(Lsn(8192)).unwrap();
        assert_eq!(anchor.read().unwrap(), Some(Lsn(8192)));
    }

    #[test]
    fn corrupt_anchor_reads_as_none() {
        let disk = Arc::new(MemDisk::new());
        let anchor = LogAnchor::new(disk.clone(), DiskModel::zero());
        anchor.write(Lsn(4096)).unwrap();
        // Flip a byte of the stored LSN.
        disk.write(5, &[0xFF]).unwrap();
        assert_eq!(anchor.read().unwrap(), None);
    }

    #[test]
    fn anchor_survives_alongside_log_records() {
        use crate::log::{FlushPolicy, PhysicalLog};
        use msp_types::{RequestSeq, SessionId};

        let disk = Arc::new(MemDisk::new());
        let log =
            PhysicalLog::open(disk.clone(), DiskModel::zero(), FlushPolicy::immediate()).unwrap();
        let rec = crate::record::LogRecord::RequestReceive {
            session: SessionId(1),
            seq: RequestSeq(0),
            method: "m".into(),
            payload: vec![],
            sender_dv: None,
        };
        let lsn = log.append(&rec);
        log.flush_to(lsn).unwrap();
        let anchor = LogAnchor::new(disk, DiskModel::zero());
        anchor.write(lsn).unwrap();
        assert_eq!(anchor.read().unwrap(), Some(lsn));
        // The record area is untouched by the anchor write.
        assert_eq!(log.read_record(lsn).unwrap(), rec);
        log.close();
    }
}
