//! CRC-32 (IEEE 802.3 polynomial, reflected) for log-record framing.
//!
//! The physical log must detect a torn tail after a crash: the last flush
//! may have been interrupted. Every record carries a CRC over its payload;
//! the scanner stops at the first record whose CRC does not verify.
//!
//! Implemented locally (a 256-entry table) to stay within the sanctioned
//! dependency set.

/// Lazily built lookup table for the reflected IEEE polynomial 0xEDB88320.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    })
}

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flip() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }
}
