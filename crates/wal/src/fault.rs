//! Seed-driven crash-point injection.
//!
//! The torture rig (harness `torture` module) arms a [`FaultPlan`] with a
//! countdown at one of eight [`CrashPoint`]s threaded through the logging,
//! durability-gate, truncation, and recovery stack. When the countdown reaches zero the log **crashes
//! itself at the site** — [`crate::PhysicalLog::fault_point`] calls the
//! unclean shutdown path synchronously, so the volatile tail is discarded
//! at exactly the instrumented instant, before the surrounding operation
//! can complete. The process around the log stays briefly alive (workers
//! observe `MspError::Shutdown`, appends land in a dead tail and are
//! lost), which models the paper's crash semantics faithfully: optimistic
//! replies referencing the discarded LSNs become orphans that the
//! recovery broadcast must eliminate.
//!
//! A plan fires **at most once** across all its points; after firing it
//! is inert, so the restarted MSP can reuse the same plan object safely.
//! Firing is reported over an optional channel so an external controller
//! (the rig) can follow up with full process teardown and restart.
//!
//! Everything is driven by explicit countdowns — no wall-clock or global
//! randomness — so a schedule derived from a seed replays deterministically.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam_channel::Sender;
use parking_lot::Mutex;

/// The instrumented crash sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// In `append_sized`, before the frame reaches the volatile tail:
    /// the record's LSN is reserved but its bytes are lost.
    MidAppend,
    /// At `flush_to` entry: records are staged in the tail but the crash
    /// hits before any of them can become durable.
    PreFlush,
    /// In the checkpointers, after the pre-checkpoint distributed flush
    /// but before the checkpoint record itself is appended.
    CheckpointWrite,
    /// In the session-replay loop of a *prior* recovery — the
    /// crash-during-recovery case (§4.5 multi-crash).
    ReplayStep,
    /// In `outgoing_call`, after a pipelined send's durability gate has
    /// been issued and the envelope parked, but before the release stage
    /// can emit it: the parked send dies with the volatile tail. Fires on
    /// the *sender* of a cross-domain call (MSP1 in the Pessimistic
    /// configuration).
    SendGateIssue,
    /// At `serve_flush_request` entry, before the local `flush_to`: the
    /// remote participant of a peer's durability gate dies inside the
    /// gate's issue→settle window, so the peer's parked envelope must
    /// ride out a flush-leg retry against the restarted MSP. Fires on
    /// the *serving* side (MSP2 when MSP1 gates a client reply under
    /// LoOptimistic).
    FlushServe,
    /// In `truncate_below`, after the new reclaim floor is persisted in
    /// sector 0 but before any device space below it is reclaimed: the
    /// half-truncated state where recovery must honor the advanced floor
    /// while stale (unreclaimed) bytes still sit beneath it.
    TruncateStart,
    /// In `truncate_below`, after the device space below the floor has
    /// been reclaimed but before the caller can observe completion.
    TruncateComplete,
}

/// All points, for schedule generators.
pub const CRASH_POINTS: [CrashPoint; 8] = [
    CrashPoint::MidAppend,
    CrashPoint::PreFlush,
    CrashPoint::CheckpointWrite,
    CrashPoint::ReplayStep,
    CrashPoint::SendGateIssue,
    CrashPoint::FlushServe,
    CrashPoint::TruncateStart,
    CrashPoint::TruncateComplete,
];

impl CrashPoint {
    pub fn name(self) -> &'static str {
        match self {
            CrashPoint::MidAppend => "mid-append",
            CrashPoint::PreFlush => "pre-flush",
            CrashPoint::CheckpointWrite => "checkpoint-write",
            CrashPoint::ReplayStep => "replay-step",
            CrashPoint::SendGateIssue => "send-gate-issue",
            CrashPoint::FlushServe => "flush-serve",
            CrashPoint::TruncateStart => "truncate-start",
            CrashPoint::TruncateComplete => "truncate-complete",
        }
    }

    fn index(self) -> usize {
        match self {
            CrashPoint::MidAppend => 0,
            CrashPoint::PreFlush => 1,
            CrashPoint::CheckpointWrite => 2,
            CrashPoint::ReplayStep => 3,
            CrashPoint::SendGateIssue => 4,
            CrashPoint::FlushServe => 5,
            CrashPoint::TruncateStart => 6,
            CrashPoint::TruncateComplete => 7,
        }
    }
}

const DISARMED: u64 = u64::MAX;
const NOT_FIRED: usize = usize::MAX;

/// One armed crash: per-point hit countdowns plus a fire-once latch.
pub struct FaultPlan {
    /// Remaining hits before the point fires; [`DISARMED`] = never.
    counters: [AtomicU64; 8],
    /// Index of the point that fired, or [`NOT_FIRED`].
    fired: AtomicUsize,
    /// Where to report the fire (the rig's controller thread).
    notify: Mutex<Option<Sender<CrashPoint>>>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::new()
    }
}

impl FaultPlan {
    pub fn new() -> FaultPlan {
        FaultPlan {
            counters: [
                AtomicU64::new(DISARMED),
                AtomicU64::new(DISARMED),
                AtomicU64::new(DISARMED),
                AtomicU64::new(DISARMED),
                AtomicU64::new(DISARMED),
                AtomicU64::new(DISARMED),
                AtomicU64::new(DISARMED),
                AtomicU64::new(DISARMED),
            ],
            fired: AtomicUsize::new(NOT_FIRED),
            notify: Mutex::new(None),
        }
    }

    /// Convenience: a fresh plan already armed at `point` for its
    /// `nth_hit`-th traversal.
    pub fn armed(point: CrashPoint, nth_hit: u64) -> Arc<FaultPlan> {
        let plan = FaultPlan::new();
        plan.arm(point, nth_hit);
        Arc::new(plan)
    }

    /// Fire on the `nth_hit`-th traversal of `point` (1 = the next one).
    pub fn arm(&self, point: CrashPoint, nth_hit: u64) {
        self.counters[point.index()].store(nth_hit.max(1), Ordering::SeqCst);
    }

    /// Render every point inert (an unfired plan must be disarmed before
    /// a *clean* shutdown, which also walks the flush path).
    pub fn disarm_all(&self) {
        for c in &self.counters {
            c.store(DISARMED, Ordering::SeqCst);
        }
    }

    /// Register the channel that is told which point fired.
    pub fn set_notify(&self, tx: Sender<CrashPoint>) {
        *self.notify.lock() = Some(tx);
    }

    /// The point that fired, if any.
    pub fn fired(&self) -> Option<CrashPoint> {
        match self.fired.load(Ordering::Acquire) {
            NOT_FIRED => None,
            i => Some(CRASH_POINTS[i]),
        }
    }

    /// Count down `point`; `true` exactly once, for the single traversal
    /// that wins the fire latch.
    pub(crate) fn should_fire(&self, point: CrashPoint) -> bool {
        if self.fired.load(Ordering::Acquire) != NOT_FIRED {
            return false;
        }
        let c = &self.counters[point.index()];
        loop {
            let cur = c.load(Ordering::Acquire);
            if cur == DISARMED {
                return false;
            }
            if cur <= 1 {
                if c.compare_exchange(cur, DISARMED, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    // This traversal consumed the final hit; the latch
                    // arbitrates against other points racing to fire.
                    return self
                        .fired
                        .compare_exchange(
                            NOT_FIRED,
                            point.index(),
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok();
                }
            } else if c
                .compare_exchange(cur, cur - 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return false;
            }
        }
    }

    /// Report the fire to the controller (best effort — the receiver may
    /// already be gone during teardown).
    pub(crate) fn notify_fired(&self, point: CrashPoint) {
        if let Some(tx) = self.notify.lock().as_ref() {
            let _ = tx.send(point);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn countdown_fires_exactly_once() {
        let plan = FaultPlan::new();
        plan.arm(CrashPoint::MidAppend, 3);
        assert!(!plan.should_fire(CrashPoint::MidAppend));
        assert!(!plan.should_fire(CrashPoint::MidAppend));
        assert!(plan.should_fire(CrashPoint::MidAppend));
        assert_eq!(plan.fired(), Some(CrashPoint::MidAppend));
        // Inert after firing, for every point.
        assert!(!plan.should_fire(CrashPoint::MidAppend));
        plan.arm(CrashPoint::PreFlush, 1);
        assert!(!plan.should_fire(CrashPoint::PreFlush));
    }

    #[test]
    fn unarmed_points_never_fire() {
        let plan = FaultPlan::new();
        for p in CRASH_POINTS {
            assert!(!plan.should_fire(p));
        }
        assert_eq!(plan.fired(), None);
    }

    #[test]
    fn disarm_cancels_a_pending_countdown() {
        let plan = FaultPlan::new();
        plan.arm(CrashPoint::CheckpointWrite, 1);
        plan.disarm_all();
        assert!(!plan.should_fire(CrashPoint::CheckpointWrite));
    }

    #[test]
    fn concurrent_hits_fire_once() {
        let plan = Arc::new(FaultPlan::new());
        plan.arm(CrashPoint::PreFlush, 16);
        let fires: usize = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let p = Arc::clone(&plan);
                    s.spawn(move || {
                        (0..64)
                            .filter(|_| p.should_fire(CrashPoint::PreFlush))
                            .count()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("thread"))
                .sum()
        });
        assert_eq!(fires, 1);
    }
}
