//! Logging-overhead counters.
//!
//! The paper's §5.2 argues about *numbers of flushes* and *sectors wasted
//! per flush* ("on average, a half sector is wasted on every flush");
//! these counters let tests and benches verify exactly those claims on our
//! implementation.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative counters of a physical log. All methods are lock-free.
#[derive(Debug, Default)]
pub struct LogStats {
    appends: AtomicU64,
    appended_bytes: AtomicU64,
    flushes: AtomicU64,
    flushed_sectors: AtomicU64,
    padded_bytes: AtomicU64,
    record_reads: AtomicU64,
    scan_chunks: AtomicU64,
    readahead_chunks: AtomicU64,
    append_reservations: AtomicU64,
    group_commit_batches: AtomicU64,
    replay_cache_hits: AtomicU64,
    replay_cache_misses: AtomicU64,
    replay_cache_evictions: AtomicU64,
    prefetch_chunks: AtomicU64,
    flush_tickets_issued: AtomicU64,
    flush_tickets_completed: AtomicU64,
    stripe_appends: AtomicU64,
    stripe_flushes: AtomicU64,
    merged_watermark_lag_nanos: AtomicU64,
    log_truncations: AtomicU64,
    bytes_reclaimed: AtomicU64,
    reclaim_floor_lsn: AtomicU64,
}

/// A point-in-time copy of [`LogStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LogStatsSnapshot {
    /// Records appended to the in-memory tail.
    pub appends: u64,
    /// Framed bytes appended (headers included, padding excluded).
    pub appended_bytes: u64,
    /// Physical flushes performed (each is one device write).
    pub flushes: u64,
    /// Total sectors written by flushes (including padding).
    pub flushed_sectors: u64,
    /// Zero bytes written to round flushes up to sector boundaries.
    pub padded_bytes: u64,
    /// Random record reads served (orphan recovery, chain follows).
    pub record_reads: u64,
    /// 64 KB chunks consumed by sequential recovery scans.
    pub scan_chunks: u64,
    /// Device reads issued by the scanner's read-ahead buffer (one per
    /// 64 KB chunk instead of three per record).
    pub readahead_chunks: u64,
    /// LSN ranges handed out by the lock-free reservation pipeline
    /// (zero when running with `serialized_append`).
    pub append_reservations: u64,
    /// Flusher wakeups that absorbed at least one additional pending
    /// flush request into the same device write (group-commit /
    /// batch coalescing events).
    pub group_commit_batches: u64,
    /// Replay-cache block lookups served from memory.
    pub replay_cache_hits: u64,
    /// Replay-cache block lookups that went to the device (each one
    /// charged the disk model for a 64 KB sequential read).
    pub replay_cache_misses: u64,
    /// Cached blocks displaced by the clock-eviction hand.
    pub replay_cache_evictions: u64,
    /// 64 KB chunks streamed ahead of the analysis scan by the prefetch
    /// stage of the pipelined scanner.
    pub prefetch_chunks: u64,
    /// Flush tickets handed out by `flush_to_async` (every `flush_to`
    /// goes through a ticket too).
    pub flush_tickets_issued: u64,
    /// Flush tickets completed successfully by a durable advance. Tickets
    /// failed by a crash/shutdown are issued but never completed.
    pub flush_tickets_completed: u64,
    /// Records routed through a striped log's append path.
    pub stripe_appends: u64,
    /// Per-stripe flush legs issued by merged flush requests (one merged
    /// flush touching three stripes counts three).
    pub stripe_flushes: u64,
    /// Total nanoseconds between the *first* and *last* stripe leg of
    /// each merged flush settling — how long the merged durability
    /// watermark trailed the fastest stripe.
    pub merged_watermark_lag_nanos: u64,
    /// Truncations that advanced the reclaim floor (no-op calls that
    /// found the floor already at or past the target do not count).
    pub log_truncations: u64,
    /// Device bytes recycled below the reclaim floor, cumulative.
    pub bytes_reclaimed: u64,
    /// The persisted reclaim floor — a *gauge*, not a counter: `since`
    /// keeps the later snapshot's value and `merge` takes the max. On a
    /// striped log each stripe reports its local floor here and the
    /// aggregate view overrides the field with the merged gsn floor.
    pub reclaim_floor_lsn: u64,
}

impl LogStats {
    pub fn on_append(&self, framed_bytes: u64) {
        self.appends.fetch_add(1, Ordering::Relaxed);
        self.appended_bytes
            .fetch_add(framed_bytes, Ordering::Relaxed);
    }

    pub fn on_flush(&self, sectors: u64, padded: u64) {
        self.flushes.fetch_add(1, Ordering::Relaxed);
        self.flushed_sectors.fetch_add(sectors, Ordering::Relaxed);
        self.padded_bytes.fetch_add(padded, Ordering::Relaxed);
    }

    pub fn on_record_read(&self) {
        self.record_reads.fetch_add(1, Ordering::Relaxed);
    }

    pub fn on_scan_chunk(&self) {
        self.scan_chunks.fetch_add(1, Ordering::Relaxed);
    }

    pub fn on_readahead_chunk(&self) {
        self.readahead_chunks.fetch_add(1, Ordering::Relaxed);
    }

    pub fn on_reservation(&self) {
        self.append_reservations.fetch_add(1, Ordering::Relaxed);
    }

    pub fn on_group_commit_batch(&self) {
        self.group_commit_batches.fetch_add(1, Ordering::Relaxed);
    }

    pub fn on_replay_cache_hit(&self) {
        self.replay_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn on_replay_cache_miss(&self) {
        self.replay_cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub fn on_replay_cache_eviction(&self) {
        self.replay_cache_evictions.fetch_add(1, Ordering::Relaxed);
    }

    pub fn on_prefetch_chunk(&self) {
        self.prefetch_chunks.fetch_add(1, Ordering::Relaxed);
    }

    pub fn on_ticket_issued(&self) {
        self.flush_tickets_issued.fetch_add(1, Ordering::Relaxed);
    }

    pub fn on_ticket_completed(&self) {
        self.flush_tickets_completed.fetch_add(1, Ordering::Relaxed);
    }

    pub fn on_stripe_append(&self) {
        self.stripe_appends.fetch_add(1, Ordering::Relaxed);
    }

    pub fn on_stripe_flush(&self) {
        self.stripe_flushes.fetch_add(1, Ordering::Relaxed);
    }

    pub fn on_merged_watermark_lag(&self, nanos: u64) {
        self.merged_watermark_lag_nanos
            .fetch_add(nanos, Ordering::Relaxed);
    }

    pub fn on_truncation(&self, reclaimed: u64, floor: u64) {
        self.log_truncations.fetch_add(1, Ordering::Relaxed);
        self.bytes_reclaimed.fetch_add(reclaimed, Ordering::Relaxed);
        self.reclaim_floor_lsn.fetch_max(floor, Ordering::Relaxed);
    }

    /// Record the floor without counting a truncation (reopening a log
    /// whose floor was persisted by a prior incarnation).
    pub fn note_reclaim_floor(&self, floor: u64) {
        self.reclaim_floor_lsn.fetch_max(floor, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> LogStatsSnapshot {
        LogStatsSnapshot {
            appends: self.appends.load(Ordering::Relaxed),
            appended_bytes: self.appended_bytes.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            flushed_sectors: self.flushed_sectors.load(Ordering::Relaxed),
            padded_bytes: self.padded_bytes.load(Ordering::Relaxed),
            record_reads: self.record_reads.load(Ordering::Relaxed),
            scan_chunks: self.scan_chunks.load(Ordering::Relaxed),
            readahead_chunks: self.readahead_chunks.load(Ordering::Relaxed),
            append_reservations: self.append_reservations.load(Ordering::Relaxed),
            group_commit_batches: self.group_commit_batches.load(Ordering::Relaxed),
            replay_cache_hits: self.replay_cache_hits.load(Ordering::Relaxed),
            replay_cache_misses: self.replay_cache_misses.load(Ordering::Relaxed),
            replay_cache_evictions: self.replay_cache_evictions.load(Ordering::Relaxed),
            prefetch_chunks: self.prefetch_chunks.load(Ordering::Relaxed),
            flush_tickets_issued: self.flush_tickets_issued.load(Ordering::Relaxed),
            flush_tickets_completed: self.flush_tickets_completed.load(Ordering::Relaxed),
            stripe_appends: self.stripe_appends.load(Ordering::Relaxed),
            stripe_flushes: self.stripe_flushes.load(Ordering::Relaxed),
            merged_watermark_lag_nanos: self.merged_watermark_lag_nanos.load(Ordering::Relaxed),
            log_truncations: self.log_truncations.load(Ordering::Relaxed),
            bytes_reclaimed: self.bytes_reclaimed.load(Ordering::Relaxed),
            reclaim_floor_lsn: self.reclaim_floor_lsn.load(Ordering::Relaxed),
        }
    }
}

impl LogStatsSnapshot {
    /// Difference since an earlier snapshot.
    #[must_use]
    pub fn since(&self, earlier: &LogStatsSnapshot) -> LogStatsSnapshot {
        LogStatsSnapshot {
            appends: self.appends - earlier.appends,
            appended_bytes: self.appended_bytes - earlier.appended_bytes,
            flushes: self.flushes - earlier.flushes,
            flushed_sectors: self.flushed_sectors - earlier.flushed_sectors,
            padded_bytes: self.padded_bytes - earlier.padded_bytes,
            record_reads: self.record_reads - earlier.record_reads,
            scan_chunks: self.scan_chunks - earlier.scan_chunks,
            readahead_chunks: self.readahead_chunks - earlier.readahead_chunks,
            append_reservations: self.append_reservations - earlier.append_reservations,
            group_commit_batches: self.group_commit_batches - earlier.group_commit_batches,
            replay_cache_hits: self.replay_cache_hits - earlier.replay_cache_hits,
            replay_cache_misses: self.replay_cache_misses - earlier.replay_cache_misses,
            replay_cache_evictions: self.replay_cache_evictions - earlier.replay_cache_evictions,
            prefetch_chunks: self.prefetch_chunks - earlier.prefetch_chunks,
            flush_tickets_issued: self.flush_tickets_issued - earlier.flush_tickets_issued,
            flush_tickets_completed: self.flush_tickets_completed - earlier.flush_tickets_completed,
            stripe_appends: self.stripe_appends - earlier.stripe_appends,
            stripe_flushes: self.stripe_flushes - earlier.stripe_flushes,
            merged_watermark_lag_nanos: self.merged_watermark_lag_nanos
                - earlier.merged_watermark_lag_nanos,
            log_truncations: self.log_truncations - earlier.log_truncations,
            bytes_reclaimed: self.bytes_reclaimed - earlier.bytes_reclaimed,
            // A gauge: "how far is the floor now", not a delta.
            reclaim_floor_lsn: self.reclaim_floor_lsn,
        }
    }

    /// Field-wise sum — a striped log's aggregate view is the sum of its
    /// per-stripe snapshots plus the striping-level counters.
    #[must_use]
    pub fn merge(&self, other: &LogStatsSnapshot) -> LogStatsSnapshot {
        LogStatsSnapshot {
            appends: self.appends + other.appends,
            appended_bytes: self.appended_bytes + other.appended_bytes,
            flushes: self.flushes + other.flushes,
            flushed_sectors: self.flushed_sectors + other.flushed_sectors,
            padded_bytes: self.padded_bytes + other.padded_bytes,
            record_reads: self.record_reads + other.record_reads,
            scan_chunks: self.scan_chunks + other.scan_chunks,
            readahead_chunks: self.readahead_chunks + other.readahead_chunks,
            append_reservations: self.append_reservations + other.append_reservations,
            group_commit_batches: self.group_commit_batches + other.group_commit_batches,
            replay_cache_hits: self.replay_cache_hits + other.replay_cache_hits,
            replay_cache_misses: self.replay_cache_misses + other.replay_cache_misses,
            replay_cache_evictions: self.replay_cache_evictions + other.replay_cache_evictions,
            prefetch_chunks: self.prefetch_chunks + other.prefetch_chunks,
            flush_tickets_issued: self.flush_tickets_issued + other.flush_tickets_issued,
            flush_tickets_completed: self.flush_tickets_completed + other.flush_tickets_completed,
            stripe_appends: self.stripe_appends + other.stripe_appends,
            stripe_flushes: self.stripe_flushes + other.stripe_flushes,
            merged_watermark_lag_nanos: self.merged_watermark_lag_nanos
                + other.merged_watermark_lag_nanos,
            log_truncations: self.log_truncations + other.log_truncations,
            bytes_reclaimed: self.bytes_reclaimed + other.bytes_reclaimed,
            // A gauge: merging per-stripe snapshots keeps the furthest
            // floor (the striped aggregate then overrides it with the
            // merged gsn floor, which is the meaningful figure there).
            reclaim_floor_lsn: self.reclaim_floor_lsn.max(other.reclaim_floor_lsn),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = LogStats::default();
        s.on_append(100);
        s.on_append(50);
        s.on_flush(3, 200);
        s.on_record_read();
        s.on_scan_chunk();
        s.on_reservation();
        s.on_group_commit_batch();
        s.on_replay_cache_hit();
        s.on_replay_cache_hit();
        s.on_replay_cache_miss();
        s.on_replay_cache_eviction();
        s.on_prefetch_chunk();
        s.on_ticket_issued();
        s.on_ticket_issued();
        s.on_ticket_completed();
        s.on_stripe_append();
        s.on_stripe_flush();
        s.on_stripe_flush();
        s.on_merged_watermark_lag(750);
        s.on_truncation(4096, 5120);
        s.on_truncation(512, 6144);
        let snap = s.snapshot();
        assert_eq!(snap.appends, 2);
        assert_eq!(snap.appended_bytes, 150);
        assert_eq!(snap.flushes, 1);
        assert_eq!(snap.flushed_sectors, 3);
        assert_eq!(snap.padded_bytes, 200);
        assert_eq!(snap.record_reads, 1);
        assert_eq!(snap.scan_chunks, 1);
        assert_eq!(snap.append_reservations, 1);
        assert_eq!(snap.group_commit_batches, 1);
        assert_eq!(snap.replay_cache_hits, 2);
        assert_eq!(snap.replay_cache_misses, 1);
        assert_eq!(snap.replay_cache_evictions, 1);
        assert_eq!(snap.prefetch_chunks, 1);
        assert_eq!(snap.flush_tickets_issued, 2);
        assert_eq!(snap.flush_tickets_completed, 1);
        assert_eq!(snap.stripe_appends, 1);
        assert_eq!(snap.stripe_flushes, 2);
        assert_eq!(snap.merged_watermark_lag_nanos, 750);
        assert_eq!(snap.log_truncations, 2);
        assert_eq!(snap.bytes_reclaimed, 4608);
        assert_eq!(snap.reclaim_floor_lsn, 6144);
    }

    #[test]
    fn reclaim_floor_is_a_max_gauge() {
        let s = LogStats::default();
        s.on_truncation(100, 2048);
        // A stale floor report must never regress the gauge.
        s.note_reclaim_floor(1024);
        assert_eq!(s.snapshot().reclaim_floor_lsn, 2048);
        let a = s.snapshot();
        s.on_truncation(50, 4096);
        let b = s.snapshot();
        // `since` keeps the later gauge value, not a delta.
        assert_eq!(b.since(&a).reclaim_floor_lsn, 4096);
        assert_eq!(b.since(&a).log_truncations, 1);
        assert_eq!(b.since(&a).bytes_reclaimed, 50);
        // `merge` keeps the furthest floor.
        let t = LogStats::default();
        t.on_truncation(7, 512);
        let m = b.merge(&t.snapshot());
        assert_eq!(m.reclaim_floor_lsn, 4096);
        assert_eq!(m.log_truncations, 3);
        assert_eq!(m.bytes_reclaimed, 157);
    }

    #[test]
    fn merge_sums_fieldwise() {
        let s = LogStats::default();
        s.on_append(100);
        s.on_flush(3, 200);
        let a = s.snapshot();
        let t = LogStats::default();
        t.on_append(50);
        t.on_stripe_flush();
        let m = a.merge(&t.snapshot());
        assert_eq!(m.appends, 2);
        assert_eq!(m.appended_bytes, 150);
        assert_eq!(m.flushes, 1);
        assert_eq!(m.stripe_flushes, 1);
    }

    #[test]
    fn since_subtracts() {
        let s = LogStats::default();
        s.on_flush(2, 10);
        let a = s.snapshot();
        s.on_flush(3, 20);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.flushes, 1);
        assert_eq!(d.flushed_sectors, 3);
        assert_eq!(d.padded_bytes, 20);
    }
}
