//! Property tests for the KV store: arbitrary operation sequences applied
//! through crashes must match an in-memory model (linearizable single-node
//! history, durable prefix = everything committed).

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use msp_kv::{KvOptions, KvStore};
use msp_wal::{DiskModel, MemDisk};

#[derive(Debug, Clone)]
enum Op {
    Put(u8, Vec<u8>),
    Delete(u8),
    MultiPut(u8, u8),
    Restart,
    Compact,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..24))
            .prop_map(|(k, v)| Op::Put(k, v)),
        any::<u8>().prop_map(Op::Delete),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::MultiPut(a, b)),
        Just(Op::Restart),
        Just(Op::Compact),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The store over a crash-survivable disk equals the in-memory model
    /// after every operation, including across restarts and compactions.
    #[test]
    fn matches_model_across_restarts(ops in proptest::collection::vec(arb_op(), 1..40)) {
        let disk = MemDisk::new();
        let open = || {
            KvStore::open(
                Arc::new(disk.clone()),
                DiskModel::zero(),
                KvOptions { snapshot_every: 7, ..KvOptions::zero() },
            )
            .unwrap()
        };
        let mut kv = open();
        let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    kv.put(&[k], &v).unwrap();
                    model.insert(vec![k], v);
                }
                Op::Delete(k) => {
                    kv.delete(&[k]).unwrap();
                    model.remove(&vec![k]);
                }
                Op::MultiPut(a, b) => {
                    kv.write_txn(vec![
                        (vec![a], Some(vec![a])),
                        (vec![b], Some(vec![b])),
                    ])
                    .unwrap();
                    model.insert(vec![a], vec![a]);
                    model.insert(vec![b], vec![b]);
                }
                Op::Restart => {
                    drop(kv);
                    kv = open();
                }
                Op::Compact => kv.compact().unwrap(),
            }
            prop_assert_eq!(kv.len(), model.len());
        }
        // Final full comparison after one more restart.
        drop(kv);
        let kv = open();
        for (k, v) in &model {
            prop_assert_eq!(kv.read_txn(k), Some(v.clone()));
        }
        prop_assert_eq!(kv.len(), model.len());
    }
}
