//! The KV store's write-ahead log: one CRC-framed record per committed
//! write transaction, flushed at commit.
//!
//! Framing mirrors the MSP physical log (`magic, len, crc, payload`) but
//! the payload is a KV transaction rather than a recovery-protocol record.
//! Snapshot records allow compaction: recovery starts at the most recent
//! snapshot found by a full scan (KV logs in the experiments are small, so
//! the scan is cheap; a real system would anchor it).

use std::sync::Arc;

use msp_types::codec::{self, Decode, Encode};
use msp_types::{CodecError, MspError, MspResult};
use msp_wal::crc::crc32;
use msp_wal::{Disk, DiskModel};

const MAGIC: u8 = 0xB7;
const HEADER: usize = 9;

/// One durable unit in the KV WAL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvRecord {
    /// A committed write transaction: `(key, Some(value))` puts,
    /// `(key, None)` deletes, applied atomically.
    Txn {
        ops: Vec<(Vec<u8>, Option<Vec<u8>>)>,
    },
    /// A full snapshot of the store; earlier records are dead.
    Snapshot { entries: Vec<(Vec<u8>, Vec<u8>)> },
}

impl Encode for KvRecord {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            KvRecord::Txn { ops } => {
                codec::put_u8(buf, 1);
                codec::put_u32(buf, ops.len() as u32);
                for (k, v) in ops {
                    codec::put_bytes(buf, k);
                    v.encode(buf);
                }
            }
            KvRecord::Snapshot { entries } => {
                codec::put_u8(buf, 2);
                codec::put_u32(buf, entries.len() as u32);
                for (k, v) in entries {
                    codec::put_bytes(buf, k);
                    codec::put_bytes(buf, v);
                }
            }
        }
    }
}

impl Decode for KvRecord {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        match codec::get_u8(buf)? {
            1 => {
                let n = codec::get_u32(buf)? as usize;
                let mut ops = Vec::with_capacity(n.min(buf.len()));
                for _ in 0..n {
                    ops.push((codec::get_bytes(buf)?, Option::decode(buf)?));
                }
                Ok(KvRecord::Txn { ops })
            }
            2 => {
                let n = codec::get_u32(buf)? as usize;
                let mut entries = Vec::with_capacity(n.min(buf.len()));
                for _ in 0..n {
                    entries.push((codec::get_bytes(buf)?, codec::get_bytes(buf)?));
                }
                Ok(KvRecord::Snapshot { entries })
            }
            tag => Err(CodecError::InvalidTag {
                context: "KvRecord",
                tag,
            }),
        }
    }
}

/// Append-only WAL over a [`Disk`]; all methods take `&self` and are
/// internally unsynchronized — the store serializes commits.
pub struct KvWal {
    disk: Arc<dyn Disk>,
    model: DiskModel,
}

impl KvWal {
    pub fn new(disk: Arc<dyn Disk>, model: DiskModel) -> KvWal {
        KvWal { disk, model }
    }

    /// Append one record at `offset`, charge the flush cost, and return
    /// the offset after it. Durable on return (each commit is one flush,
    /// like an autocommit DBMS).
    pub fn append(&self, offset: u64, rec: &KvRecord) -> MspResult<u64> {
        let payload = rec.to_bytes();
        let mut framed = Vec::with_capacity(HEADER + payload.len());
        framed.push(MAGIC);
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc32(&payload).to_le_bytes());
        framed.extend_from_slice(&payload);
        self.model
            .charge_flush(DiskModel::sectors_for(framed.len() as u64));
        self.disk.write(offset, &framed).map_err(MspError::Io)?;
        Ok(offset + framed.len() as u64)
    }

    /// Scan all intact records from the start; returns them with the
    /// offset where the next append should go.
    pub fn scan(&self) -> MspResult<(Vec<KvRecord>, u64)> {
        let mut out = Vec::new();
        let mut offset = 0u64;
        let limit = self.disk.len();
        while offset < limit {
            let mut header = [0u8; HEADER];
            let n = self.disk.read(offset, &mut header).map_err(MspError::Io)?;
            if n < HEADER || header[0] != MAGIC {
                break; // torn tail or end
            }
            let len = u32::from_le_bytes(header[1..5].try_into().expect("slice")) as usize;
            let crc = u32::from_le_bytes(header[5..9].try_into().expect("slice"));
            let mut payload = vec![0u8; len];
            let n = self
                .disk
                .read(offset + HEADER as u64, &mut payload)
                .map_err(MspError::Io)?;
            if n < len || crc32(&payload) != crc {
                break;
            }
            match KvRecord::from_bytes(&payload) {
                Ok(rec) => out.push(rec),
                Err(_) => break,
            }
            offset += (HEADER + len) as u64;
        }
        Ok((out, offset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp_types::codec::roundtrip;
    use msp_wal::MemDisk;

    #[test]
    fn record_roundtrips() {
        let txn = KvRecord::Txn {
            ops: vec![(b"k".to_vec(), Some(b"v".to_vec())), (b"d".to_vec(), None)],
        };
        assert_eq!(roundtrip(&txn).unwrap(), txn);
        let snap = KvRecord::Snapshot {
            entries: vec![(b"a".to_vec(), b"1".to_vec())],
        };
        assert_eq!(roundtrip(&snap).unwrap(), snap);
    }

    #[test]
    fn append_then_scan() {
        let wal = KvWal::new(Arc::new(MemDisk::new()), DiskModel::zero());
        let r1 = KvRecord::Txn {
            ops: vec![(b"a".to_vec(), Some(b"1".to_vec()))],
        };
        let r2 = KvRecord::Txn {
            ops: vec![(b"a".to_vec(), None)],
        };
        let o1 = wal.append(0, &r1).unwrap();
        let o2 = wal.append(o1, &r2).unwrap();
        let (recs, end) = wal.scan().unwrap();
        assert_eq!(recs, vec![r1, r2]);
        assert_eq!(end, o2);
    }

    #[test]
    fn torn_tail_is_dropped() {
        let disk = MemDisk::new();
        let wal = KvWal::new(Arc::new(disk.clone()), DiskModel::zero());
        let r1 = KvRecord::Txn {
            ops: vec![(b"a".to_vec(), Some(b"1".to_vec()))],
        };
        let end = wal.append(0, &r1).unwrap();
        disk.write(end, &[MAGIC, 50, 0, 0, 0, 1, 1, 1, 1, 0xFF])
            .unwrap();
        let (recs, scan_end) = wal.scan().unwrap();
        assert_eq!(recs, vec![r1]);
        assert_eq!(scan_end, end);
    }
}
