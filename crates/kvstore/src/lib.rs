//! A write-ahead-logged transactional key-value store.
//!
//! This is the *database substrate* for the paper's `Psession` baseline
//! (§5.2): "Configuration Psession provides persistent sessions via the
//! web server storing session states inside a local DBMS. When a request
//! is processed, the session state is fetched from the database, and after
//! processing, the session state is written back." The baseline therefore
//! needs a durable store with transactions whose *costs* mirror a local
//! DBMS:
//!
//! * every transaction pays a fixed begin/execute/commit overhead
//!   (`txn_overhead`, calibrated so the Psession response times land near
//!   the paper's — see `DESIGN.md`), and
//! * every **write** transaction additionally pays a WAL flush through the
//!   same [`msp_wal::DiskModel`] the MSP logs use ("the number of flushes in
//!   Psession increases only by one [per extra call] (due to the write
//!   transaction)").
//!
//! The store itself is honest: committed writes go through a CRC-framed
//! WAL on a [`msp_wal::Disk`] and crash recovery replays it, so the baseline's
//! durability claims are real, not merely charged for.

pub mod store;
pub mod wal;

pub use store::{KvOptions, KvStats, KvStore};
