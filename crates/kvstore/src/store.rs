//! The transactional KV store over [`crate::wal::KvWal`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use msp_types::MspResult;
use msp_wal::model::sleep_exact;
use msp_wal::{Disk, DiskModel};

use crate::wal::{KvRecord, KvWal};

/// Tuning of the store's cost behaviour.
#[derive(Debug, Clone)]
pub struct KvOptions {
    /// Fixed cost charged per transaction (begin/execute/commit of a
    /// local DBMS — statement processing, not I/O). Calibrated in
    /// `DESIGN.md` against the paper's Psession response times.
    pub txn_overhead: Duration,
    /// Time scale applied to `txn_overhead` (the WAL flush is scaled by
    /// the disk model itself).
    pub time_scale: f64,
    /// Write a compacting snapshot after this many committed write
    /// transactions.
    pub snapshot_every: u64,
}

impl Default for KvOptions {
    fn default() -> KvOptions {
        KvOptions {
            txn_overhead: Duration::from_micros(6000),
            time_scale: 0.02,
            snapshot_every: 10_000,
        }
    }
}

impl KvOptions {
    /// Cost-free store for plain unit tests.
    pub fn zero() -> KvOptions {
        KvOptions {
            time_scale: 0.0,
            ..KvOptions::default()
        }
    }
}

/// Operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvStats {
    pub read_txns: u64,
    pub write_txns: u64,
    pub snapshots: u64,
}

/// A durable, transactional map `Vec<u8> → Vec<u8>`.
///
/// Concurrency model: reads take a shared lock on the map; write
/// transactions buffer their operations and serialize at commit (map
/// write-lock + WAL append). This matches the baseline's usage — per-
/// session keys with no cross-session write conflicts.
pub struct KvStore {
    map: RwLock<HashMap<Vec<u8>, Vec<u8>>>,
    wal: KvWal,
    /// Next WAL append offset; guarded by `commit_lock`.
    commit_lock: Mutex<u64>,
    opts: KvOptions,
    read_txns: AtomicU64,
    write_txns: AtomicU64,
    snapshots: AtomicU64,
}

impl KvStore {
    /// Open the store, replaying the WAL on `disk`.
    pub fn open(disk: Arc<dyn Disk>, model: DiskModel, opts: KvOptions) -> MspResult<KvStore> {
        let wal = KvWal::new(disk, model);
        let (records, end) = wal.scan()?;
        let mut map = HashMap::new();
        for rec in records {
            match rec {
                KvRecord::Snapshot { entries } => {
                    map = entries.into_iter().collect();
                }
                KvRecord::Txn { ops } => {
                    for (k, v) in ops {
                        match v {
                            Some(v) => {
                                map.insert(k, v);
                            }
                            None => {
                                map.remove(&k);
                            }
                        }
                    }
                }
            }
        }
        Ok(KvStore {
            map: RwLock::new(map),
            wal,
            commit_lock: Mutex::new(end),
            opts,
            read_txns: AtomicU64::new(0),
            write_txns: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
        })
    }

    fn charge_txn(&self) {
        if self.opts.time_scale > 0.0 {
            sleep_exact(self.opts.txn_overhead.mul_f64(self.opts.time_scale));
        }
    }

    /// A read-only transaction fetching one key. Charges the transaction
    /// overhead but no flush (read commits need no WAL force).
    pub fn read_txn(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.charge_txn();
        self.read_txns.fetch_add(1, Ordering::Relaxed);
        self.map.read().get(key).cloned()
    }

    /// A read-only transaction fetching several keys atomically.
    pub fn read_many_txn(&self, keys: &[&[u8]]) -> Vec<Option<Vec<u8>>> {
        self.charge_txn();
        self.read_txns.fetch_add(1, Ordering::Relaxed);
        let map = self.map.read();
        keys.iter().map(|k| map.get(*k).cloned()).collect()
    }

    /// A write transaction applying `ops` atomically (`None` deletes).
    /// Durable on return: one WAL flush, as in an autocommit DBMS.
    pub fn write_txn(&self, ops: Vec<(Vec<u8>, Option<Vec<u8>>)>) -> MspResult<()> {
        self.charge_txn();
        let n = self.write_txns.fetch_add(1, Ordering::Relaxed) + 1;
        {
            let mut offset = self.commit_lock.lock();
            let rec = KvRecord::Txn { ops: ops.clone() };
            *offset = self.wal.append(*offset, &rec)?;
            let mut map = self.map.write();
            for (k, v) in ops {
                match v {
                    Some(v) => {
                        map.insert(k, v);
                    }
                    None => {
                        map.remove(&k);
                    }
                }
            }
        }
        if n.is_multiple_of(self.opts.snapshot_every) {
            self.compact()?;
        }
        Ok(())
    }

    /// Convenience: durable single-key put.
    pub fn put(&self, key: &[u8], value: &[u8]) -> MspResult<()> {
        self.write_txn(vec![(key.to_vec(), Some(value.to_vec()))])
    }

    /// Convenience: durable single-key delete.
    pub fn delete(&self, key: &[u8]) -> MspResult<()> {
        self.write_txn(vec![(key.to_vec(), None)])
    }

    /// Write a snapshot record so recovery replays less log.
    pub fn compact(&self) -> MspResult<()> {
        let mut offset = self.commit_lock.lock();
        let entries: Vec<_> = {
            let map = self.map.read();
            map.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
        };
        *offset = self.wal.append(*offset, &KvRecord::Snapshot { entries })?;
        self.snapshots.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    pub fn stats(&self) -> KvStats {
        KvStats {
            read_txns: self.read_txns.load(Ordering::Relaxed),
            write_txns: self.write_txns.load(Ordering::Relaxed),
            snapshots: self.snapshots.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp_wal::MemDisk;

    fn open(disk: &MemDisk) -> KvStore {
        KvStore::open(Arc::new(disk.clone()), DiskModel::zero(), KvOptions::zero()).unwrap()
    }

    #[test]
    fn put_get_delete() {
        let disk = MemDisk::new();
        let kv = open(&disk);
        assert_eq!(kv.read_txn(b"k"), None);
        kv.put(b"k", b"v").unwrap();
        assert_eq!(kv.read_txn(b"k"), Some(b"v".to_vec()));
        kv.delete(b"k").unwrap();
        assert_eq!(kv.read_txn(b"k"), None);
        assert_eq!(kv.stats().write_txns, 2);
        assert_eq!(kv.stats().read_txns, 3);
    }

    #[test]
    fn committed_writes_survive_restart() {
        let disk = MemDisk::new();
        {
            let kv = open(&disk);
            kv.put(b"a", b"1").unwrap();
            kv.put(b"b", b"2").unwrap();
            kv.delete(b"a").unwrap();
        } // drop without any clean shutdown: commits are already durable
        let kv = open(&disk);
        assert_eq!(kv.read_txn(b"a"), None);
        assert_eq!(kv.read_txn(b"b"), Some(b"2".to_vec()));
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn multi_op_txn_is_atomic_across_restart() {
        let disk = MemDisk::new();
        {
            let kv = open(&disk);
            kv.write_txn(vec![
                (b"x".to_vec(), Some(b"1".to_vec())),
                (b"y".to_vec(), Some(b"2".to_vec())),
            ])
            .unwrap();
        }
        let kv = open(&disk);
        assert_eq!(
            kv.read_many_txn(&[b"x", b"y"]),
            vec![Some(b"1".to_vec()), Some(b"2".to_vec())]
        );
    }

    #[test]
    fn compaction_preserves_state() {
        let disk = MemDisk::new();
        {
            let kv = open(&disk);
            for i in 0..20u8 {
                kv.put(&[i], &[i, i]).unwrap();
            }
            kv.compact().unwrap();
            kv.put(b"late", b"z").unwrap();
        }
        let kv = open(&disk);
        assert_eq!(kv.len(), 21);
        assert_eq!(kv.read_txn(&[7]), Some(vec![7, 7]));
        assert_eq!(kv.read_txn(b"late"), Some(b"z".to_vec()));
    }

    #[test]
    fn automatic_snapshot_by_threshold() {
        let disk = MemDisk::new();
        let kv = KvStore::open(
            Arc::new(disk.clone()),
            DiskModel::zero(),
            KvOptions {
                snapshot_every: 5,
                ..KvOptions::zero()
            },
        )
        .unwrap();
        for i in 0..12u8 {
            kv.put(&[i], &[i]).unwrap();
        }
        assert_eq!(kv.stats().snapshots, 2);
        drop(kv);
        let kv = open(&disk);
        assert_eq!(kv.len(), 12);
    }

    #[test]
    fn concurrent_writers_do_not_lose_commits() {
        let disk = MemDisk::new();
        let kv = Arc::new(open(&disk));
        std::thread::scope(|s| {
            for t in 0..4u8 {
                let kv = Arc::clone(&kv);
                s.spawn(move || {
                    for i in 0..25u8 {
                        kv.put(&[t, i], &[t]).unwrap();
                    }
                });
            }
        });
        assert_eq!(kv.len(), 100);
        drop(kv);
        let kv = open(&disk);
        assert_eq!(kv.len(), 100, "all commits durable");
    }
}
