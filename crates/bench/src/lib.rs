//! Shared helpers for the Criterion benches that regenerate the paper's
//! tables and figures. The benches live in `benches/`, one file per
//! figure (see `DESIGN.md`'s experiment index); this crate only hosts
//! the common setup glue.

use msp_harness::{SystemConfig, World, WorldOptions};

/// The time scale used by all benches: a tenth of the paper's latencies,
/// the same default as the `repro` binary. Criterion measures the
/// *simulated* durations — ratios are what matters.
pub const BENCH_SCALE: f64 = 0.1;

/// Start a world for `config` at the bench scale.
pub fn bench_world(config: SystemConfig) -> World {
    World::start(bench_opts(config))
}

/// Bench options for `config` at the bench scale.
pub fn bench_opts(config: SystemConfig) -> WorldOptions {
    WorldOptions {
        time_scale: BENCH_SCALE,
        ..WorldOptions::new(config)
    }
}
