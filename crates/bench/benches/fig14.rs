//! E1/E2 — Figure 14: end-client response time for the five system
//! configurations, at m = 1 (the table) and m = 1..4 (the chart).
//!
//! Each Criterion sample drives a small batch of requests through a
//! pre-started world; the per-request time is the figure's response time
//! (at simulation scale — multiply by 10 for paper-equivalent ms).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use msp_bench::bench_world;
use msp_harness::workload::{request_payload, MSP1};
use msp_harness::SystemConfig;

fn bench_fig14_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_table_response_time");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for config in SystemConfig::ALL {
        let world = bench_world(config);
        let mut client = world.client(1);
        let payload = request_payload(1);
        // Session warm-up.
        let _ = world.run_requests(&mut client, 10, 1);
        group.bench_function(BenchmarkId::from_parameter(config.name()), |b| {
            b.iter_custom(|iters| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    client
                        .call(MSP1, "ServiceMethod1", &payload)
                        .expect("request");
                }
                t0.elapsed()
            })
        });
        world.shutdown();
    }
    group.finish();
}

fn bench_fig14_chart(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_chart_calls_per_request");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    // The chart's decisive comparison: LoOptimistic stays flat-ish while
    // Pessimistic grows by two flushes per extra call.
    for config in [
        SystemConfig::LoOptimistic,
        SystemConfig::Pessimistic,
        SystemConfig::StateServer,
    ] {
        let world = bench_world(config);
        let mut client = world.client(1);
        let _ = world.run_requests(&mut client, 10, 1);
        for m in 1..=4u8 {
            let payload = request_payload(m);
            group.bench_function(BenchmarkId::new(config.name(), m), |b| {
                b.iter_custom(|iters| {
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        client
                            .call(MSP1, "ServiceMethod1", &payload)
                            .expect("request");
                    }
                    t0.elapsed()
                })
            });
        }
        world.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_fig14_table, bench_fig14_chart);
criterion_main!(benches);
