//! E5/E6 — Figure 16: the cost of recovery itself.
//!
//! The table's "maximum response time" is a tail metric that Criterion
//! cannot report directly, so this bench measures its two ingredients:
//!
//! * `crash_recovery_cycle` — the full crash → analysis scan → broadcast
//!   → parallel replay cycle of MSP2, as a function of the checkpointing
//!   threshold (more log since the last checkpoint = longer replay; the
//!   source of the table's Crash-column spikes);
//! * `request_through_crash` — a request served while MSP2 crashes and
//!   recovers (the end-to-end worst case the paper reports).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use msp_bench::BENCH_SCALE;
use msp_harness::experiments::CRASH_CKPT_THRESHOLD;
use msp_harness::workload::{request_payload, MSP1};
use msp_harness::{SystemConfig, World, WorldOptions};

fn bench_crash_recovery_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig16_crash_recovery_cycle");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(300));
    for threshold in [16u64 << 10, 64 << 10, 256 << 10] {
        let opts = WorldOptions {
            session_ckpt_threshold: threshold,
            time_scale: BENCH_SCALE,
            ..WorldOptions::new(SystemConfig::LoOptimistic)
        };
        let world = World::start(opts);
        let mut client = world.client(1);
        // Build up some log so recovery has work to do.
        let _ = world.run_requests(&mut client, 60, 1);
        group.bench_function(
            BenchmarkId::from_parameter(format!("{}KB", threshold >> 10)),
            |b| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        // Generate fresh un-checkpointed work, then crash.
                        let _ = world.run_requests(&mut client, 10, 1);
                        let t0 = Instant::now();
                        world.msp2.crash_and_restart();
                        total += t0.elapsed();
                    }
                    total
                })
            },
        );
        world.shutdown();
    }
    group.finish();
}

fn bench_request_through_crash(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig16_request_through_crash");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(300));
    for config in [SystemConfig::LoOptimistic, SystemConfig::Pessimistic] {
        let opts = WorldOptions {
            session_ckpt_threshold: CRASH_CKPT_THRESHOLD,
            time_scale: BENCH_SCALE,
            ..WorldOptions::new(config)
        };
        let world = World::start(opts);
        let mut client = world.client(1);
        let payload = request_payload(1);
        let _ = world.run_requests(&mut client, 30, 1);
        group.bench_function(BenchmarkId::from_parameter(config.name()), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    // Crash MSP2 with un-flushed state, then time the next
                    // request — it rides through orphan detection and
                    // session recovery.
                    world.msp2.crash_and_restart();
                    let t0 = Instant::now();
                    client
                        .call(MSP1, "ServiceMethod1", &payload)
                        .expect("request");
                    total += t0.elapsed();
                    // A few normal requests to restore steady state.
                    let _ = world.run_requests(&mut client, 5, 1);
                }
                total
            })
        });
        world.shutdown();
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_crash_recovery_cycle,
    bench_request_through_crash
);
criterion_main!(benches);
