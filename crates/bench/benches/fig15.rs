//! E3/E4 — Figure 15: (a) throughput versus session checkpointing
//! threshold; (b) throughput versus crash rate for both logging methods.
//!
//! Throughput is the inverse of the measured batch time; Criterion's
//! per-iteration time here is *per request*, so lower = higher
//! throughput.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use msp_bench::{bench_opts, BENCH_SCALE};
use msp_harness::experiments::{CRASH_CKPT_THRESHOLD, CRASH_INTERVALS};
use msp_harness::workload::{request_payload, MSP1};
use msp_harness::{SystemConfig, World, WorldOptions};

fn bench_fig15a_thresholds(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15a_ckpt_threshold");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for threshold in [16u64 << 10, 64 << 10, 256 << 10, 1 << 20, u64::MAX] {
        let opts = WorldOptions {
            session_ckpt_threshold: threshold,
            checkpoints_enabled: threshold != u64::MAX,
            ..bench_opts(SystemConfig::LoOptimistic)
        };
        let world = World::start(opts);
        let mut client = world.client(1);
        let payload = request_payload(1);
        let _ = world.run_requests(&mut client, 10, 1);
        let label = if threshold == u64::MAX {
            "none".to_string()
        } else {
            format!("{}KB", threshold >> 10)
        };
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter_custom(|iters| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    client
                        .call(MSP1, "ServiceMethod1", &payload)
                        .expect("request");
                }
                t0.elapsed()
            })
        });
        world.shutdown();
    }
    group.finish();
}

fn bench_fig15b_crash_rates(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15b_crash_rate");
    // Crash cells have heavy tails; keep samples small but batches big
    // enough to include recoveries.
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500));
    for config in [SystemConfig::LoOptimistic, SystemConfig::Pessimistic] {
        for &crash_every in &CRASH_INTERVALS {
            let opts = WorldOptions {
                session_ckpt_threshold: CRASH_CKPT_THRESHOLD,
                crash_every,
                time_scale: BENCH_SCALE,
                ..WorldOptions::new(config)
            };
            let world = World::start(opts);
            let mut client = world.client(1);
            let payload = request_payload(1);
            let _ = world.run_requests(&mut client, 10, 1);
            let label = if crash_every == 0 {
                format!("{}/no-crash", config.name())
            } else {
                format!("{}/1-in-{}", config.name(), crash_every)
            };
            group.bench_function(BenchmarkId::from_parameter(label), |b| {
                b.iter_custom(|iters| {
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        client
                            .call(MSP1, "ServiceMethod1", &payload)
                            .expect("request");
                    }
                    t0.elapsed()
                })
            });
            world.shutdown();
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig15a_thresholds, bench_fig15b_crash_rates);
criterion_main!(benches);
