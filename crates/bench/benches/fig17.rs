//! E7 — Figure 17: throughput with multiple concurrent end clients,
//! per-request flushing vs the paper's 8 ms batch flushing (plus the
//! group-commit extension). Per-iteration time here is per *request
//! across all clients*, so lower = higher aggregate throughput.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use msp_bench::BENCH_SCALE;
use msp_harness::{FlushMode, SystemConfig, World, WorldOptions};

fn bench_fig17(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig17_multi_client_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500));
    let modes = [
        ("per-request", FlushMode::PerRequest),
        ("batched-8ms", FlushMode::Batched(Duration::from_millis(8))),
        ("group-commit", FlushMode::GroupCommit),
    ];
    for config in [SystemConfig::Pessimistic, SystemConfig::LoOptimistic] {
        for (mode_name, mode) in modes {
            for clients in [1u64, 4, 8] {
                let opts = WorldOptions {
                    flush_mode: mode,
                    time_scale: BENCH_SCALE,
                    ..WorldOptions::new(config)
                };
                let world = World::start(opts);
                // Warm-up all sessions.
                let _ = world.run_concurrent(clients, 5, 1);
                let label = format!("{}/{}/{}cl", config.name(), mode_name, clients);
                group.bench_function(BenchmarkId::from_parameter(label), |b| {
                    b.iter_custom(|iters| {
                        // Amortize thread start-up across a batch.
                        let per_client = iters.div_ceil(clients).max(5);
                        let t0 = Instant::now();
                        let series = world.run_concurrent(clients, per_client, 1);
                        // Normalize to the requested iteration count.
                        t0.elapsed().mul_f64(iters as f64 / series.len() as f64)
                    })
                });
                world.shutdown();
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig17);
criterion_main!(benches);
