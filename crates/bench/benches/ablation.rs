//! Ablations for the design choices `DESIGN.md` calls out.
//!
//! * `value_logging_read` / `value_logging_write` — the direct cost of
//!   value logging a 128 B shared variable (§3.3): what the paper trades
//!   for recovery independence. The comparison point `no_logging_read`
//!   shows the raw access cost without the infrastructure.
//! * `dv_merge` sizes — dependency-vector merge cost as the domain grows
//!   (why bounding DV propagation at the domain boundary matters, §3.1).
//! * `session_checkpoint` — the full checkpoint path (distributed flush +
//!   8 KB state capture) that fuzzy checkpointing keeps off the critical
//!   path of other sessions.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use msp_bench::bench_world;
use msp_harness::workload::{request_payload, MSP1};
use msp_harness::SystemConfig;
use msp_types::{DependencyVector, Epoch, Lsn, MspId, StateId};

fn bench_shared_variable_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_value_logging");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));
    // The full workload with logging...
    {
        let world = bench_world(SystemConfig::LoOptimistic);
        let mut client = world.client(1);
        let payload = request_payload(1);
        let _ = world.run_requests(&mut client, 10, 1);
        group.bench_function("request_with_value_logging", |b| {
            b.iter_custom(|iters| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    client
                        .call(MSP1, "ServiceMethod1", &payload)
                        .expect("request");
                }
                t0.elapsed()
            })
        });
        world.shutdown();
    }
    // ...and identical shared-state access with no logging at all.
    {
        let world = bench_world(SystemConfig::NoLog);
        let mut client = world.client(1);
        let payload = request_payload(1);
        let _ = world.run_requests(&mut client, 10, 1);
        group.bench_function("request_without_logging", |b| {
            b.iter_custom(|iters| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    client
                        .call(MSP1, "ServiceMethod1", &payload)
                        .expect("request");
                }
                t0.elapsed()
            })
        });
        world.shutdown();
    }
    group.finish();
}

fn bench_dv_merge_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dv_merge");
    for size in [2usize, 8, 32, 128] {
        let a = DependencyVector::from_entries(
            (0..size as u32).map(|i| (MspId(i), StateId::new(Epoch(0), Lsn(u64::from(i) * 10)))),
        );
        let b = DependencyVector::from_entries(
            (0..size as u32)
                .map(|i| (MspId(i), StateId::new(Epoch(0), Lsn(u64::from(i) * 10 + 5)))),
        );
        group.bench_function(BenchmarkId::from_parameter(size), |bch| {
            bch.iter(|| {
                let mut m = std::hint::black_box(a.clone());
                m.merge_from(std::hint::black_box(&b));
                m
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shared_variable_paths, bench_dv_merge_scaling);
criterion_main!(benches);
