//! Substrate microbenchmarks: raw costs of the building blocks beneath
//! the figures — log appends, record codec, position streams, the KV
//! store's transactions. All with the cost model disabled: these measure
//! the implementation, not the simulated device.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use msp_types::codec::{Decode, Encode};
use msp_types::{DependencyVector, Epoch, Lsn, MspId, RequestSeq, SessionId, StateId, VarId};
use msp_wal::{DiskModel, FlushPolicy, LogRecord, MemDisk, PhysicalLog, PositionStream};

fn sample_record() -> LogRecord {
    LogRecord::SharedRead {
        session: SessionId(7),
        var: VarId(1),
        value: vec![42u8; 128],
        var_dv: DependencyVector::from_entries([
            (MspId(1), StateId::new(Epoch(0), Lsn(4096))),
            (MspId(2), StateId::new(Epoch(1), Lsn(9999))),
        ]),
    }
}

fn bench_log_append(c: &mut Criterion) {
    let log = PhysicalLog::open(
        Arc::new(MemDisk::new()),
        DiskModel::zero(),
        FlushPolicy::immediate(),
    )
    .unwrap();
    let rec = sample_record();
    c.bench_function("micro_log_append_128B_read_record", |b| {
        b.iter(|| log.append(std::hint::black_box(&rec)))
    });
    log.close();
}

fn bench_log_flush_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_log_append_flush");
    for batch in [1usize, 16, 256] {
        let log = PhysicalLog::open(
            Arc::new(MemDisk::new()),
            DiskModel::zero(),
            FlushPolicy::immediate(),
        )
        .unwrap();
        let rec = sample_record();
        group.bench_function(BenchmarkId::from_parameter(batch), |b| {
            b.iter(|| {
                let mut last = Lsn(0);
                for _ in 0..batch {
                    last = log.append(&rec);
                }
                log.flush_to(last).unwrap();
            })
        });
        log.close();
    }
    group.finish();
}

fn bench_record_codec(c: &mut Criterion) {
    let rec = sample_record();
    let bytes = rec.to_bytes();
    c.bench_function("micro_record_encode", |b| {
        b.iter(|| std::hint::black_box(&rec).to_bytes())
    });
    c.bench_function("micro_record_decode", |b| {
        b.iter(|| LogRecord::from_bytes(std::hint::black_box(&bytes)).unwrap())
    });
}

fn bench_log_scan(c: &mut Criterion) {
    let disk = Arc::new(MemDisk::new());
    let log = PhysicalLog::open(disk.clone(), DiskModel::zero(), FlushPolicy::immediate()).unwrap();
    let rec = sample_record();
    for _ in 0..1_000 {
        log.append(&rec);
    }
    log.flush_all().unwrap();
    c.bench_function("micro_log_scan_1k_records", |b| {
        b.iter(|| {
            log.scan_from(Lsn(0))
                .inspect(|r| assert!(r.is_ok(), "intact"))
                .count()
        })
    });
    log.close();
}

fn bench_position_stream(c: &mut Criterion) {
    c.bench_function("micro_position_stream_1k_push_truncate", |b| {
        b.iter(|| {
            let mut s = PositionStream::new();
            for i in 0..1_000u64 {
                s.push(Lsn(i * 64));
            }
            s.truncate_from(Lsn(32_000));
            s
        })
    });
}

fn bench_kv_txn(c: &mut Criterion) {
    let kv = msp_kv::KvStore::open(
        Arc::new(MemDisk::new()),
        DiskModel::zero(),
        msp_kv::KvOptions::zero(),
    )
    .unwrap();
    let blob = vec![7u8; 8192];
    c.bench_function("micro_kv_write_txn_8KB", |b| {
        b.iter(|| kv.put(b"session", std::hint::black_box(&blob)).unwrap())
    });
    c.bench_function("micro_kv_read_txn_8KB", |b| {
        b.iter(|| kv.read_txn(std::hint::black_box(b"session")).unwrap())
    });
}

fn bench_seq_codec_types(c: &mut Criterion) {
    let dv = DependencyVector::from_entries(
        (0..8u32).map(|i| (MspId(i), StateId::new(Epoch(0), Lsn(u64::from(i))))),
    );
    c.bench_function("micro_dv_encode_decode_8", |b| {
        b.iter(|| {
            let bytes = std::hint::black_box(&dv).to_bytes();
            DependencyVector::from_bytes(&bytes).unwrap()
        })
    });
    let _ = RequestSeq::FIRST;
}

criterion_group!(
    benches,
    bench_log_append,
    bench_log_flush_cycle,
    bench_record_codec,
    bench_log_scan,
    bench_position_stream,
    bench_kv_txn,
    bench_seq_codec_types,
);
criterion_main!(benches);
