//! Latency / fault model of a network link.

use std::time::Duration;

/// Behaviour of a link (or of the whole network when used as default).
///
/// The paper measured a 3.596 ms round trip between MSPs and 3.9 ms
/// between the end client and MSP1 on 100 Mbps Ethernet; [`NetModel`]
/// defaults to the MSP↔MSP figure. One-way delay is `rtt/2 ± jitter`,
/// scaled by `time_scale` (same convention as the disk model).
#[derive(Debug, Clone)]
pub struct NetModel {
    /// Unscaled one-way latency.
    pub one_way: Duration,
    /// Uniform jitter added to each delivery, `[0, jitter)`. Jitter makes
    /// messages overtake one another — the out-of-order delivery the
    /// protocols must tolerate.
    pub jitter: Duration,
    /// Probability a message is silently dropped.
    pub drop_prob: f64,
    /// Probability a message is delivered twice.
    pub dup_prob: f64,
    /// Multiplier applied to all delays (0 = instantaneous delivery).
    pub time_scale: f64,
}

impl Default for NetModel {
    fn default() -> NetModel {
        NetModel {
            one_way: Duration::from_micros(1798), // 3.596 ms RTT / 2
            jitter: Duration::from_micros(100),
            drop_prob: 0.0,
            dup_prob: 0.0,
            time_scale: 0.02,
        }
    }
}

impl NetModel {
    /// Instantaneous, reliable delivery (plain unit tests).
    pub fn zero() -> NetModel {
        NetModel {
            time_scale: 0.0,
            ..NetModel::default()
        }
    }

    /// The paper's client↔MSP link (3.9 ms RTT).
    pub fn client_link() -> NetModel {
        NetModel {
            one_way: Duration::from_micros(1950),
            ..NetModel::default()
        }
    }

    #[must_use]
    pub fn with_scale(mut self, scale: f64) -> NetModel {
        self.time_scale = scale;
        self
    }

    #[must_use]
    pub fn with_faults(mut self, drop_prob: f64, dup_prob: f64) -> NetModel {
        self.drop_prob = drop_prob;
        self.dup_prob = dup_prob;
        self
    }

    /// Scaled one-way delay for a message, given a jitter sample in
    /// `[0, 1)`.
    pub fn delay(&self, jitter_sample: f64) -> Duration {
        if self.time_scale == 0.0 {
            return Duration::ZERO;
        }
        (self.one_way + self.jitter.mul_f64(jitter_sample)).mul_f64(self.time_scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_rtt() {
        let m = NetModel::default().with_scale(1.0);
        let rtt = m.delay(0.0) * 2;
        let us = rtt.as_micros();
        assert!(
            (3500..3700).contains(&us),
            "RTT = {us} µs, paper says 3596 µs"
        );
    }

    #[test]
    fn zero_model_is_instant() {
        assert_eq!(NetModel::zero().delay(0.9), Duration::ZERO);
    }

    #[test]
    fn jitter_widens_delay() {
        let m = NetModel::default().with_scale(1.0);
        assert!(m.delay(0.99) > m.delay(0.0));
    }

    #[test]
    fn scale_shrinks_delay() {
        let full = NetModel::default().with_scale(1.0).delay(0.0);
        let small = NetModel::default().with_scale(0.1).delay(0.0);
        assert!(small < full);
    }
}
