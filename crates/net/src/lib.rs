//! In-process simulated network for the MSP recovery stack.
//!
//! The paper's protocols assume only an *unreliable* transport: "messages
//! may arrive out of order, may be duplicated, or get lost" (§2.1), with
//! clients resending a request until its reply arrives. This crate
//! provides exactly that contract between in-process endpoints, plus the
//! fault injection and latency modelling the experiments need:
//!
//! * [`EndpointId`] — MSPs and end clients share one address space.
//! * [`NetModel`] — one-way latency (+jitter), drop and duplication
//!   probabilities, and the global time scale (shared convention with the
//!   disk model in `msp-wal`). The paper's measured round trips (3.596 ms
//!   MSP↔MSP, 3.9 ms client↔MSP) are the defaults.
//! * [`Network`] — the switch: registration, per-link overrides,
//!   partitions, and a postman thread that delivers messages after their
//!   simulated latency (jitter naturally reorders them).
//! * [`Endpoint`] — a registered party's handle: `send` + blocking
//!   `recv_timeout`.
//!
//! The message type is generic: the recovery protocols in `msp-core`
//! define their own envelope enum and instantiate `Network<Envelope>`.

pub mod endpoint;
pub mod model;
pub mod network;

pub use endpoint::EndpointId;
pub use model::NetModel;
pub use network::{Endpoint, NetStatsSnapshot, Network};
