//! Network addresses: MSPs and end-client processes.

use std::fmt;

use msp_types::MspId;

/// Address of a party on the simulated network.
///
/// End clients live outside every service domain (§1.3), but share the
/// same transport; the distinction between pessimistic and optimistic
/// logging is made by the *recovery* layer from domain membership, not by
/// the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EndpointId {
    /// A middleware server process.
    Msp(MspId),
    /// An end-client process.
    Client(u64),
}

impl EndpointId {
    /// The MSP id, if this endpoint is an MSP.
    pub fn as_msp(self) -> Option<MspId> {
        match self {
            EndpointId::Msp(m) => Some(m),
            EndpointId::Client(_) => None,
        }
    }

    pub fn is_client(self) -> bool {
        matches!(self, EndpointId::Client(_))
    }
}

impl fmt::Display for EndpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EndpointId::Msp(m) => write!(f, "{m}"),
            EndpointId::Client(c) => write!(f, "client{c}"),
        }
    }
}

impl From<MspId> for EndpointId {
    fn from(m: MspId) -> EndpointId {
        EndpointId::Msp(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let e: EndpointId = MspId(3).into();
        assert_eq!(e.as_msp(), Some(MspId(3)));
        assert!(!e.is_client());
        let c = EndpointId::Client(7);
        assert_eq!(c.as_msp(), None);
        assert!(c.is_client());
    }

    #[test]
    fn display() {
        assert_eq!(EndpointId::Msp(MspId(1)).to_string(), "msp1");
        assert_eq!(EndpointId::Client(2).to_string(), "client2");
    }
}
