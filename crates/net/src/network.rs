//! The simulated switch: registration, faulty links, delayed delivery.
//!
//! A single *postman* thread owns a deadline-ordered queue of in-flight
//! messages and moves each into its recipient's mailbox when its simulated
//! latency elapses. Drops and duplicates are decided at send time from a
//! seeded RNG so whole experiments are reproducible.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam_channel::{Receiver, RecvTimeoutError, Sender};
use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use msp_types::{MspError, MspResult};

use crate::endpoint::EndpointId;
use crate::model::NetModel;

/// An in-flight message waiting for its delivery deadline.
struct InFlight<M> {
    deliver_at: Instant,
    /// Tie-break so the heap is a stable FIFO for equal deadlines.
    seq: u64,
    to: EndpointId,
    msg: M,
}

impl<M> PartialEq for InFlight<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<M> Eq for InFlight<M> {}
impl<M> PartialOrd for InFlight<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for InFlight<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

/// Counters for assertions about fault injection.
#[derive(Debug, Default)]
struct NetStats {
    sent: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    dead_letter: AtomicU64,
}

/// Snapshot of [`Network`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStatsSnapshot {
    pub sent: u64,
    pub delivered: u64,
    pub dropped: u64,
    pub duplicated: u64,
    /// Messages addressed to unregistered (crashed) endpoints.
    pub dead_letter: u64,
}

struct Shared<M> {
    mailboxes: Mutex<HashMap<EndpointId, Sender<M>>>,
    queue: Mutex<BinaryHeap<Reverse<InFlight<M>>>>,
    queue_cv: Condvar,
    links: Mutex<HashMap<(EndpointId, EndpointId), NetModel>>,
    partitions: Mutex<HashMap<(EndpointId, EndpointId), bool>>,
    default_model: NetModel,
    rng: Mutex<StdRng>,
    seq: AtomicU64,
    stats: NetStats,
    stopped: AtomicBool,
}

/// The simulated network. Clone handles freely; all clones share state.
pub struct Network<M: Send + 'static> {
    shared: Arc<Shared<M>>,
    postman: Arc<Mutex<Option<std::thread::JoinHandle<()>>>>,
}

impl<M: Send + 'static> Clone for Network<M> {
    fn clone(&self) -> Self {
        Network {
            shared: Arc::clone(&self.shared),
            postman: Arc::clone(&self.postman),
        }
    }
}

impl<M: Send + Clone + 'static> Network<M> {
    /// Create a network whose links default to `default_model`, with a
    /// seeded RNG for reproducible fault injection.
    pub fn new(default_model: NetModel, seed: u64) -> Network<M> {
        let shared = Arc::new(Shared {
            mailboxes: Mutex::new(HashMap::new()),
            queue: Mutex::new(BinaryHeap::new()),
            queue_cv: Condvar::new(),
            links: Mutex::new(HashMap::new()),
            partitions: Mutex::new(HashMap::new()),
            default_model,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            seq: AtomicU64::new(0),
            stats: NetStats::default(),
            stopped: AtomicBool::new(false),
        });
        let worker = Arc::clone(&shared);
        let postman = std::thread::Builder::new()
            .name("net-postman".into())
            .spawn(move || postman_loop(worker))
            .expect("spawn postman");
        Network {
            shared,
            postman: Arc::new(Mutex::new(Some(postman))),
        }
    }

    /// Register (or re-register after a crash) an endpoint, returning its
    /// mailbox handle. Re-registration replaces the old mailbox; messages
    /// already queued for the old incarnation deliver into the new one —
    /// exactly the "stale duplicate arrives after restart" hazard the
    /// sequence-number machinery must absorb.
    pub fn register(&self, id: EndpointId) -> Endpoint<M> {
        let (tx, rx) = crossbeam_channel::unbounded();
        self.shared.mailboxes.lock().insert(id, tx);
        Endpoint {
            id,
            rx,
            net: self.clone(),
        }
    }

    /// Remove an endpoint: subsequent messages to it are dead-lettered
    /// (a crashed process hears nothing).
    pub fn unregister(&self, id: EndpointId) {
        self.shared.mailboxes.lock().remove(&id);
    }

    /// Override the model of the directed link `from → to`.
    pub fn set_link(&self, from: EndpointId, to: EndpointId, model: NetModel) {
        self.shared.links.lock().insert((from, to), model);
    }

    /// Cut or restore both directions between `a` and `b`.
    pub fn set_partitioned(&self, a: EndpointId, b: EndpointId, down: bool) {
        let mut p = self.shared.partitions.lock();
        p.insert((a, b), down);
        p.insert((b, a), down);
    }

    /// Send `msg` from `from` to `to`, subject to the link's faults and
    /// latency. Never blocks on the recipient.
    pub fn send(&self, from: EndpointId, to: EndpointId, msg: M) {
        let s = &self.shared;
        s.stats.sent.fetch_add(1, Ordering::Relaxed);
        if s.partitions
            .lock()
            .get(&(from, to))
            .copied()
            .unwrap_or(false)
        {
            s.stats.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let model = s
            .links
            .lock()
            .get(&(from, to))
            .cloned()
            .unwrap_or_else(|| s.default_model.clone());
        let (lost, duplicated, j1, j2) = {
            let mut rng = s.rng.lock();
            (
                model.drop_prob > 0.0 && rng.random_bool(model.drop_prob),
                model.dup_prob > 0.0 && rng.random_bool(model.dup_prob),
                rng.random::<f64>(),
                rng.random::<f64>(),
            )
        };
        if lost {
            s.stats.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.enqueue(to, msg.clone(), model.delay(j1));
        if duplicated {
            s.stats.duplicated.fetch_add(1, Ordering::Relaxed);
            self.enqueue(to, msg, model.delay(j2));
        }
    }

    fn enqueue(&self, to: EndpointId, msg: M, delay: Duration) {
        let s = &self.shared;
        let item = InFlight {
            deliver_at: Instant::now() + delay,
            seq: s.seq.fetch_add(1, Ordering::Relaxed),
            to,
            msg,
        };
        s.queue.lock().push(Reverse(item));
        s.queue_cv.notify_one();
    }

    /// Counter snapshot.
    pub fn stats(&self) -> NetStatsSnapshot {
        let s = &self.shared.stats;
        NetStatsSnapshot {
            sent: s.sent.load(Ordering::Relaxed),
            delivered: s.delivered.load(Ordering::Relaxed),
            dropped: s.dropped.load(Ordering::Relaxed),
            duplicated: s.duplicated.load(Ordering::Relaxed),
            dead_letter: s.dead_letter.load(Ordering::Relaxed),
        }
    }

    /// Stop the postman; pending messages are discarded. Used at the end
    /// of an experiment.
    pub fn shutdown(&self) {
        self.shared.stopped.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        if let Some(h) = self.postman.lock().take() {
            let _ = h.join();
        }
    }
}

fn postman_loop<M: Send>(shared: Arc<Shared<M>>) {
    loop {
        let due: Option<InFlight<M>> = {
            let mut q = shared.queue.lock();
            loop {
                if shared.stopped.load(Ordering::SeqCst) {
                    return;
                }
                match q.peek() {
                    None => {
                        shared.queue_cv.wait_for(&mut q, Duration::from_millis(25));
                        continue;
                    }
                    Some(Reverse(head)) => {
                        let now = Instant::now();
                        if head.deliver_at <= now {
                            break Some(q.pop().expect("peeked").0);
                        }
                        let wait = head.deliver_at - now;
                        shared
                            .queue_cv
                            .wait_for(&mut q, wait.min(Duration::from_millis(25)));
                        continue;
                    }
                }
            }
        };
        if let Some(item) = due {
            let tx = shared.mailboxes.lock().get(&item.to).cloned();
            match tx {
                Some(tx) if tx.send(item.msg).is_ok() => {
                    shared.stats.delivered.fetch_add(1, Ordering::Relaxed);
                }
                _ => {
                    shared.stats.dead_letter.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

/// A registered party's handle: send and blocking receive.
pub struct Endpoint<M: Send + 'static> {
    id: EndpointId,
    rx: Receiver<M>,
    net: Network<M>,
}

impl<M: Send + Clone + 'static> Endpoint<M> {
    pub fn id(&self) -> EndpointId {
        self.id
    }

    /// Send from this endpoint.
    pub fn send(&self, to: EndpointId, msg: M) {
        self.net.send(self.id, to, msg);
    }

    /// Blocking receive with timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> MspResult<M> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Ok(m),
            Err(RecvTimeoutError::Timeout) => Err(MspError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(MspError::Shutdown),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<M> {
        self.rx.try_recv().ok()
    }

    /// The underlying receiver (for `select!`-style integration in the
    /// MSP runtime's dispatcher).
    pub fn receiver(&self) -> &Receiver<M> {
        &self.rx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp_types::MspId;

    fn msp(n: u32) -> EndpointId {
        EndpointId::Msp(MspId(n))
    }

    #[test]
    fn basic_delivery() {
        let net: Network<u32> = Network::new(NetModel::zero(), 1);
        let a = net.register(msp(1));
        let b = net.register(msp(2));
        a.send(msp(2), 42);
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap(), 42);
        net.shutdown();
    }

    #[test]
    fn unregistered_recipient_dead_letters() {
        let net: Network<u32> = Network::new(NetModel::zero(), 1);
        let a = net.register(msp(1));
        a.send(msp(9), 7);
        // Wait for the postman to process it.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(net.stats().dead_letter, 1);
        net.shutdown();
    }

    #[test]
    fn drops_are_injected() {
        let net: Network<u32> = Network::new(NetModel::zero().with_faults(1.0, 0.0), 1);
        let a = net.register(msp(1));
        let b = net.register(msp(2));
        for i in 0..10 {
            a.send(msp(2), i);
        }
        assert!(b.recv_timeout(Duration::from_millis(50)).is_err());
        assert_eq!(net.stats().dropped, 10);
        net.shutdown();
    }

    #[test]
    fn duplicates_are_injected() {
        let net: Network<u32> = Network::new(NetModel::zero().with_faults(0.0, 1.0), 1);
        let a = net.register(msp(1));
        let b = net.register(msp(2));
        a.send(msp(2), 5);
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap(), 5);
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap(), 5);
        assert_eq!(net.stats().duplicated, 1);
        net.shutdown();
    }

    #[test]
    fn partition_blocks_both_directions() {
        let net: Network<u32> = Network::new(NetModel::zero(), 1);
        let a = net.register(msp(1));
        let b = net.register(msp(2));
        net.set_partitioned(msp(1), msp(2), true);
        a.send(msp(2), 1);
        b.send(msp(1), 2);
        assert!(a.recv_timeout(Duration::from_millis(50)).is_err());
        assert!(b.recv_timeout(Duration::from_millis(20)).is_err());
        net.set_partitioned(msp(1), msp(2), false);
        a.send(msp(2), 3);
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap(), 3);
        net.shutdown();
    }

    #[test]
    fn latency_is_applied() {
        let model = NetModel {
            one_way: Duration::from_millis(20),
            jitter: Duration::ZERO,
            drop_prob: 0.0,
            dup_prob: 0.0,
            time_scale: 1.0,
        };
        let net: Network<u32> = Network::new(model, 1);
        let a = net.register(msp(1));
        let b = net.register(msp(2));
        let t0 = Instant::now();
        a.send(msp(2), 9);
        b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(18));
        net.shutdown();
    }

    #[test]
    fn fifo_for_equal_deadlines() {
        let net: Network<u32> = Network::new(NetModel::zero(), 1);
        let a = net.register(msp(1));
        let b = net.register(msp(2));
        for i in 0..100 {
            a.send(msp(2), i);
        }
        for i in 0..100 {
            assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap(), i);
        }
        net.shutdown();
    }

    #[test]
    fn jitter_reorders_messages() {
        let model = NetModel {
            one_way: Duration::from_micros(100),
            jitter: Duration::from_millis(5),
            drop_prob: 0.0,
            dup_prob: 0.0,
            time_scale: 1.0,
        };
        let net: Network<u32> = Network::new(model, 7);
        let a = net.register(msp(1));
        let b = net.register(msp(2));
        for i in 0..50 {
            a.send(msp(2), i);
        }
        let mut got = Vec::new();
        for _ in 0..50 {
            got.push(b.recv_timeout(Duration::from_secs(2)).unwrap());
        }
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>(), "all messages arrive");
        assert_ne!(got, sorted, "jitter should reorder at least one pair");
        net.shutdown();
    }

    #[test]
    fn reregistration_replaces_mailbox() {
        let net: Network<u32> = Network::new(NetModel::zero(), 1);
        let a = net.register(msp(1));
        let _b1 = net.register(msp(2));
        net.unregister(msp(2));
        a.send(msp(2), 1); // dead-lettered
        std::thread::sleep(Duration::from_millis(30));
        let b2 = net.register(msp(2));
        a.send(msp(2), 2);
        assert_eq!(b2.recv_timeout(Duration::from_secs(1)).unwrap(), 2);
        net.shutdown();
    }

    #[test]
    fn per_link_override() {
        let net: Network<u32> = Network::new(NetModel::zero(), 1);
        let a = net.register(msp(1));
        let b = net.register(msp(2));
        net.set_link(msp(1), msp(2), NetModel::zero().with_faults(1.0, 0.0));
        a.send(msp(2), 1);
        assert!(b.recv_timeout(Duration::from_millis(40)).is_err());
        // Reverse direction unaffected.
        b.send(msp(1), 2);
        assert_eq!(a.recv_timeout(Duration::from_secs(1)).unwrap(), 2);
        net.shutdown();
    }
}
