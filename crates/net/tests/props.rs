//! Property tests for the simulated network: fault injection loses or
//! duplicates messages but never corrupts, reorders-without-delivering,
//! or invents them.

use std::time::Duration;

use proptest::prelude::*;

use msp_net::{EndpointId, NetModel, Network};
use msp_types::MspId;

fn msp(n: u32) -> EndpointId {
    EndpointId::Msp(MspId(n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// With duplication but no loss, every message sent is delivered at
    /// least once and nothing is invented.
    #[test]
    fn dup_only_network_delivers_everything(
        dup_prob in 0.0f64..0.9,
        count in 1u32..60,
        seed in 0u64..1_000,
    ) {
        let model = NetModel {
            one_way: Duration::from_micros(50),
            jitter: Duration::from_micros(200),
            drop_prob: 0.0,
            dup_prob,
            time_scale: 1.0,
        };
        let net: Network<u32> = Network::new(model, seed);
        let a = net.register(msp(1));
        let b = net.register(msp(2));
        for i in 0..count {
            a.send(msp(2), i);
        }
        let mut seen = vec![0u32; count as usize];
        let mut received = 0u64;
        while let Ok(v) = b.recv_timeout(Duration::from_millis(40)) {
            prop_assert!(v < count, "never invents messages");
            seen[v as usize] += 1;
            received += 1;
        }
        prop_assert!(seen.iter().all(|&c| c >= 1), "no silent loss: {seen:?}");
        let stats = net.stats();
        prop_assert_eq!(received, stats.delivered);
        prop_assert_eq!(stats.delivered, u64::from(count) + stats.duplicated);
        net.shutdown();
    }

    /// Dropped + delivered + in-flight always accounts for everything
    /// sent, under arbitrary fault rates.
    #[test]
    fn conservation_of_messages(
        drop_prob in 0.0f64..1.0,
        dup_prob in 0.0f64..1.0,
        count in 1u32..60,
        seed in 0u64..1_000,
    ) {
        let model = NetModel {
            one_way: Duration::ZERO,
            jitter: Duration::ZERO,
            drop_prob,
            dup_prob,
            time_scale: 0.0,
        };
        let net: Network<u32> = Network::new(model, seed);
        let a = net.register(msp(1));
        let b = net.register(msp(2));
        for i in 0..count {
            a.send(msp(2), i);
        }
        let mut received = 0u64;
        while b.recv_timeout(Duration::from_millis(25)).is_ok() {
            received += 1;
        }
        let stats = net.stats();
        prop_assert_eq!(stats.sent, u64::from(count));
        prop_assert_eq!(received, stats.delivered);
        prop_assert_eq!(
            stats.delivered + stats.dropped,
            u64::from(count) + stats.duplicated,
            "sent + duplicated = delivered + dropped"
        );
        net.shutdown();
    }

    /// The same seed reproduces the same fault pattern (experiments are
    /// deterministic modulo thread scheduling).
    #[test]
    fn seeded_faults_are_reproducible(
        drop_prob in 0.1f64..0.9,
        count in 1u32..40,
        seed in 0u64..1_000,
    ) {
        let run = || {
            let model = NetModel {
                one_way: Duration::ZERO,
                jitter: Duration::ZERO,
                drop_prob,
                dup_prob: 0.0,
                time_scale: 0.0,
            };
            let net: Network<u32> = Network::new(model, seed);
            let a = net.register(msp(1));
            let b = net.register(msp(2));
            let mut got = Vec::new();
            for i in 0..count {
                a.send(msp(2), i);
            }
            while let Ok(v) = b.recv_timeout(Duration::from_millis(25)) {
                got.push(v);
            }
            net.shutdown();
            got
        };
        prop_assert_eq!(run(), run());
    }
}
