//! End-to-end tests of the recovery runtime: normal execution, unreliable
//! transport, crash recovery, orphan recovery, and the baselines.

use std::sync::Arc;
use std::time::Duration;

use msp_core::client::ClientOptions;
use msp_core::config::LoggingConfig;
use msp_core::{
    ClusterConfig, Envelope, MspBuilder, MspClient, MspConfig, SessionStrategy, StateServer,
};
use msp_net::{EndpointId, NetModel, Network};
use msp_types::{DomainId, MspId};
use msp_wal::{DiskModel, MemDisk};

const MSP1: MspId = MspId(1);
const MSP2: MspId = MspId(2);

fn net() -> Network<Envelope> {
    Network::new(NetModel::zero(), 42)
}

fn lossy_net(seed: u64) -> Network<Envelope> {
    // Aggressive faults: 20% loss, 20% duplication, jittered delivery.
    let model = NetModel {
        one_way: Duration::from_micros(200),
        jitter: Duration::from_micros(400),
        drop_prob: 0.2,
        dup_prob: 0.2,
        time_scale: 1.0,
    };
    Network::new(model, seed)
}

fn cluster_same_domain() -> ClusterConfig {
    ClusterConfig::new()
        .with_msp(MSP1, DomainId(1))
        .with_msp(MSP2, DomainId(1))
}

fn cluster_split_domains() -> ClusterConfig {
    ClusterConfig::new()
        .with_msp(MSP1, DomainId(1))
        .with_msp(MSP2, DomainId(2))
}

fn fast_logging() -> LoggingConfig {
    LoggingConfig {
        session_ckpt_threshold: 1 << 20,
        shared_ckpt_writes: 64,
        msp_ckpt_interval: Duration::from_millis(50),
        force_ckpt_after: 8,
        checkpoints_enabled: true,
        checkpoint_interval_bytes: 0,
    }
}

fn cfg(id: MspId, domain: u32) -> MspConfig {
    MspConfig::new(id, DomainId(domain))
        .with_time_scale(0.0)
        .with_logging(fast_logging())
        .with_workers(4)
}

fn client(net: &Network<Envelope>, id: u64) -> MspClient {
    MspClient::new(
        net,
        id,
        ClientOptions {
            resend_timeout: Duration::from_millis(100),
            busy_backoff: Duration::from_millis(1),
            max_attempts: 10_000,
        },
    )
}

/// "counter": increments a session variable and returns its new value.
/// "read_sv" / "bump_sv": exercise a shared variable.
/// "relay": calls `counter` at MSP2 and combines results.
fn counter_msp(
    id: MspId,
    domain: u32,
    cluster: ClusterConfig,
    net: &Network<Envelope>,
    disk: Arc<MemDisk>,
    strategy: SessionStrategy,
) -> msp_core::MspHandle {
    MspBuilder::new(cfg(id, domain).with_strategy(strategy), cluster)
        .disk_model(DiskModel::zero())
        .shared_var("SV", 0u64.to_le_bytes().to_vec())
        .service("counter", |ctx, _payload| {
            let n = ctx
                .get_session("n")
                .map(|v| u64::from_le_bytes(v.try_into().unwrap()))
                .unwrap_or(0)
                + 1;
            ctx.set_session("n", n.to_le_bytes().to_vec());
            Ok(n.to_le_bytes().to_vec())
        })
        .service("bump_sv", |ctx, _payload| {
            let cur = u64::from_le_bytes(ctx.read_shared("SV")?.try_into().unwrap());
            ctx.write_shared("SV", (cur + 1).to_le_bytes().to_vec())?;
            Ok((cur + 1).to_le_bytes().to_vec())
        })
        .service("read_sv", |ctx, _payload| ctx.read_shared("SV"))
        .service("relay", |ctx, payload| {
            let theirs = ctx.call(MspId(2), "counter", payload)?;
            let mine = ctx
                .get_session("m")
                .map(|v| u64::from_le_bytes(v.try_into().unwrap()))
                .unwrap_or(0)
                + 1;
            ctx.set_session("m", mine.to_le_bytes().to_vec());
            let mut out = mine.to_le_bytes().to_vec();
            out.extend_from_slice(&theirs);
            Ok(out)
        })
        .service("fail", |_ctx, _payload| Err("deliberate".to_string()))
        .start(net, disk)
        .unwrap()
}

fn as_u64(v: &[u8]) -> u64 {
    u64::from_le_bytes(v[..8].try_into().unwrap())
}

#[test]
fn single_msp_exactly_once_counter() {
    let net = net();
    let disk = Arc::new(MemDisk::new());
    let msp = counter_msp(
        MSP1,
        1,
        cluster_same_domain(),
        &net,
        disk,
        SessionStrategy::LogBased,
    );
    let mut c = client(&net, 1);
    for i in 1..=20u64 {
        let r = c.call(MSP1, "counter", &[]).unwrap();
        assert_eq!(as_u64(&r), i);
    }
    assert_eq!(msp.stats().requests, 20);
    msp.shutdown();
    net.shutdown();
}

#[test]
fn application_errors_propagate() {
    let net = net();
    let disk = Arc::new(MemDisk::new());
    let msp = counter_msp(
        MSP1,
        1,
        cluster_same_domain(),
        &net,
        disk,
        SessionStrategy::LogBased,
    );
    let mut c = client(&net, 1);
    let err = c.call(MSP1, "fail", &[]).unwrap_err();
    assert!(err.to_string().contains("deliberate"));
    // The session keeps working afterwards.
    assert_eq!(as_u64(&c.call(MSP1, "counter", &[]).unwrap()), 1);
    msp.shutdown();
    net.shutdown();
}

#[test]
fn unknown_method_is_an_error() {
    let net = net();
    let disk = Arc::new(MemDisk::new());
    let msp = counter_msp(
        MSP1,
        1,
        cluster_same_domain(),
        &net,
        disk,
        SessionStrategy::LogBased,
    );
    let mut c = client(&net, 1);
    let err = c.call(MSP1, "nope", &[]).unwrap_err();
    assert!(err.to_string().contains("no such method"));
    msp.shutdown();
    net.shutdown();
}

#[test]
fn two_msps_relay_and_shared_state() {
    let net = net();
    let cluster = cluster_same_domain();
    let d1 = Arc::new(MemDisk::new());
    let d2 = Arc::new(MemDisk::new());
    let m1 = counter_msp(
        MSP1,
        1,
        cluster.clone(),
        &net,
        d1,
        SessionStrategy::LogBased,
    );
    let m2 = counter_msp(MSP2, 1, cluster, &net, d2, SessionStrategy::LogBased);
    let mut c = client(&net, 1);
    for i in 1..=10u64 {
        let r = c.call(MSP1, "relay", &[]).unwrap();
        assert_eq!(as_u64(&r[..8]), i, "MSP1's session counter");
        assert_eq!(
            as_u64(&r[8..]),
            i,
            "MSP2's session counter via outgoing session"
        );
    }
    // Shared variable on MSP1.
    for i in 1..=5u64 {
        assert_eq!(as_u64(&c.call(MSP1, "bump_sv", &[]).unwrap()), i);
    }
    assert_eq!(as_u64(&c.call(MSP1, "read_sv", &[]).unwrap()), 5);
    m1.shutdown();
    m2.shutdown();
    net.shutdown();
}

#[test]
fn exactly_once_over_lossy_network() {
    let net = lossy_net(7);
    let cluster = cluster_same_domain();
    let d1 = Arc::new(MemDisk::new());
    let d2 = Arc::new(MemDisk::new());
    let m1 = counter_msp(
        MSP1,
        1,
        cluster.clone(),
        &net,
        d1,
        SessionStrategy::LogBased,
    );
    let m2 = counter_msp(MSP2, 1, cluster, &net, d2, SessionStrategy::LogBased);
    let mut c = client(&net, 1);
    // Counters must advance exactly once per logical request despite
    // drops, duplicates and reordering.
    for i in 1..=30u64 {
        let r = c.call(MSP1, "relay", &[]).unwrap();
        assert_eq!(as_u64(&r[..8]), i);
        assert_eq!(as_u64(&r[8..]), i);
    }
    // Shared-variable increments are exactly-once too.
    for i in 1..=10u64 {
        assert_eq!(as_u64(&c.call(MSP1, "bump_sv", &[]).unwrap()), i);
    }
    m1.shutdown();
    m2.shutdown();
    net.shutdown();
}

#[test]
fn crash_recovery_restores_sessions_and_shared_state() {
    let net = net();
    let cluster = cluster_same_domain();
    let disk = Arc::new(MemDisk::new());
    let m1 = counter_msp(
        MSP1,
        1,
        cluster.clone(),
        &net,
        Arc::clone(&disk),
        SessionStrategy::LogBased,
    );
    let mut c = client(&net, 1);
    for i in 1..=10u64 {
        assert_eq!(as_u64(&c.call(MSP1, "counter", &[]).unwrap()), i);
    }
    for i in 1..=4u64 {
        assert_eq!(as_u64(&c.call(MSP1, "bump_sv", &[]).unwrap()), i);
    }
    m1.crash();

    // Restart over the same disk: session and shared state recover.
    let m1b = counter_msp(MSP1, 1, cluster, &net, disk, SessionStrategy::LogBased);
    assert_eq!(m1b.stats().crash_recoveries, 1);
    // The same client (same session) keeps counting where it left off.
    for i in 11..=15u64 {
        assert_eq!(as_u64(&c.call(MSP1, "counter", &[]).unwrap()), i);
    }
    assert_eq!(
        as_u64(&c.call(MSP1, "read_sv", &[]).unwrap()),
        4,
        "shared state rolled forward"
    );
    assert_eq!(as_u64(&c.call(MSP1, "bump_sv", &[]).unwrap()), 5);
    m1b.shutdown();
    net.shutdown();
}

#[test]
fn crash_mid_traffic_preserves_exactly_once() {
    // The client hammers the MSP while it crashes; after restart the
    // counter must continue without gaps or repeats from the client's
    // point of view.
    let net = net();
    let cluster = cluster_same_domain();
    let disk = Arc::new(MemDisk::new());
    let m1 = counter_msp(
        MSP1,
        1,
        cluster.clone(),
        &net,
        Arc::clone(&disk),
        SessionStrategy::LogBased,
    );
    let mut c = client(&net, 1);
    for i in 1..=5u64 {
        assert_eq!(as_u64(&c.call(MSP1, "counter", &[]).unwrap()), i);
    }
    m1.crash();
    // Fire a request while the MSP is down; it will be resent until the
    // restarted MSP answers.
    let handle = std::thread::spawn({
        let net = net.clone();
        move || {
            // A second client talking to the dead MSP must also converge.
            let mut c2 = client(&net, 2);
            c2.call(MSP1, "counter", &[]).map(|r| as_u64(&r))
        }
    });
    std::thread::sleep(Duration::from_millis(50));
    let m1b = counter_msp(MSP1, 1, cluster, &net, disk, SessionStrategy::LogBased);
    assert_eq!(as_u64(&c.call(MSP1, "counter", &[]).unwrap()), 6);
    assert_eq!(
        handle.join().unwrap().unwrap(),
        1,
        "fresh session starts at 1"
    );
    m1b.shutdown();
    net.shutdown();
}

#[test]
fn orphan_recovery_after_peer_crash() {
    // LoOptimistic: both MSPs in one domain. MSP2 crashes right after
    // replying, losing its buffered log records; MSP1's session becomes
    // an orphan and must roll back, re-executing against the recovered
    // MSP2 — exactly once from the client's point of view.
    let net = net();
    let cluster = cluster_same_domain();
    let d1 = Arc::new(MemDisk::new());
    let d2 = Arc::new(MemDisk::new());
    let m1 = counter_msp(
        MSP1,
        1,
        cluster.clone(),
        &net,
        Arc::clone(&d1),
        SessionStrategy::LogBased,
    );
    let m2 = counter_msp(
        MSP2,
        1,
        cluster.clone(),
        &net,
        Arc::clone(&d2),
        SessionStrategy::LogBased,
    );
    let mut c = client(&net, 1);
    for i in 1..=5u64 {
        let r = c.call(MSP1, "relay", &[]).unwrap();
        assert_eq!((as_u64(&r[..8]), as_u64(&r[8..])), (i, i));
    }
    // Kill MSP2 with its log tail unflushed (optimistic logging means the
    // records behind the replies MSP1 consumed may not be durable).
    m2.crash();
    let m2b = counter_msp(MSP2, 1, cluster, &net, d2, SessionStrategy::LogBased);
    // Continue: whatever was lost is re-executed; the end-to-end
    // sequence stays exactly-once.
    for i in 6..=10u64 {
        let r = c.call(MSP1, "relay", &[]).unwrap();
        assert_eq!(
            as_u64(&r[..8]),
            i,
            "MSP1 session counter survives peer crash"
        );
        assert_eq!(as_u64(&r[8..]), i, "MSP2 session counter is exactly-once");
    }
    m1.shutdown();
    m2b.shutdown();
    net.shutdown();
}

#[test]
fn pessimistic_cross_domain_configuration_works() {
    let net = net();
    let cluster = cluster_split_domains();
    let d1 = Arc::new(MemDisk::new());
    let d2 = Arc::new(MemDisk::new());
    let m1 = counter_msp(
        MSP1,
        1,
        cluster.clone(),
        &net,
        d1,
        SessionStrategy::LogBased,
    );
    let m2 = counter_msp(MSP2, 2, cluster, &net, d2, SessionStrategy::LogBased);
    let mut c = client(&net, 1);
    for i in 1..=10u64 {
        let r = c.call(MSP1, "relay", &[]).unwrap();
        assert_eq!((as_u64(&r[..8]), as_u64(&r[8..])), (i, i));
    }
    // Pessimistic logging means MSP1 flushed before sending request2 and
    // before each reply: at least 2 flushes per request plus MSP2's.
    let flushes = m1.log_stats().unwrap().flushes;
    assert!(
        flushes >= 20,
        "pessimistic logging must flush per message, got {flushes}"
    );
    m1.shutdown();
    m2.shutdown();
    net.shutdown();
}

#[test]
fn locally_optimistic_uses_fewer_flushes_than_pessimistic() {
    // The paper's headline: one (distributed, parallel) flush per end
    // client request instead of 2m+1 sequential ones.
    let run = |cluster: ClusterConfig, d1: Arc<MemDisk>, d2: Arc<MemDisk>| {
        let net = net();
        let dom2 = cluster.domain_of(MSP2).unwrap().0;
        let m1 = counter_msp(
            MSP1,
            1,
            cluster.clone(),
            &net,
            d1,
            SessionStrategy::LogBased,
        );
        let m2 = counter_msp(MSP2, dom2, cluster, &net, d2, SessionStrategy::LogBased);
        let mut c = client(&net, 1);
        for _ in 0..20 {
            c.call(MSP1, "relay", &[]).unwrap();
        }
        let total = m1.log_stats().unwrap().flushes + m2.log_stats().unwrap().flushes;
        m1.shutdown();
        m2.shutdown();
        net.shutdown();
        total
    };
    let optimistic = run(
        cluster_same_domain(),
        Arc::new(MemDisk::new()),
        Arc::new(MemDisk::new()),
    );
    let pessimistic = run(
        cluster_split_domains(),
        Arc::new(MemDisk::new()),
        Arc::new(MemDisk::new()),
    );
    assert!(
        optimistic < pessimistic,
        "locally optimistic ({optimistic} flushes) must beat pessimistic ({pessimistic})"
    );
}

#[test]
fn nolog_baseline_works_without_a_log() {
    let net = net();
    let disk = Arc::new(MemDisk::new());
    let msp = counter_msp(
        MSP1,
        1,
        cluster_same_domain(),
        &net,
        disk,
        SessionStrategy::NoLog,
    );
    let mut c = client(&net, 1);
    for i in 1..=10u64 {
        assert_eq!(as_u64(&c.call(MSP1, "counter", &[]).unwrap()), i);
    }
    assert!(msp.log_stats().is_none());
    msp.shutdown();
    net.shutdown();
}

#[test]
fn psession_baseline_round_trips_the_database() {
    let net = net();
    let db = Arc::new(
        msp_kv::KvStore::open(
            Arc::new(MemDisk::new()),
            DiskModel::zero(),
            msp_kv::KvOptions::zero(),
        )
        .unwrap(),
    );
    let disk = Arc::new(MemDisk::new());
    let msp = counter_msp(
        MSP1,
        1,
        cluster_same_domain(),
        &net,
        disk,
        SessionStrategy::Psession(Arc::clone(&db)),
    );
    let mut c = client(&net, 1);
    for i in 1..=10u64 {
        assert_eq!(as_u64(&c.call(MSP1, "counter", &[]).unwrap()), i);
    }
    let stats = db.stats();
    assert_eq!(stats.read_txns, 10, "a read transaction per request");
    assert_eq!(stats.write_txns, 10, "a write transaction per request");
    msp.shutdown();
    net.shutdown();
}

#[test]
fn state_server_baseline_stores_and_survives_worker_restart() {
    let net = net();
    let server_ep = EndpointId::Client(999);
    let server = StateServer::start(&net, server_ep);
    let disk = Arc::new(MemDisk::new());
    let msp = counter_msp(
        MSP1,
        1,
        cluster_same_domain(),
        &net,
        Arc::clone(&disk),
        SessionStrategy::StateServer(server_ep),
    );
    let mut c = client(&net, 1);
    for i in 1..=5u64 {
        assert_eq!(as_u64(&c.call(MSP1, "counter", &[]).unwrap()), i);
    }
    assert_eq!(server.len(), 1);
    // Restart the worker (not the state server): the session state comes
    // back from the state server.
    msp.shutdown();
    let msp2 = counter_msp(
        MSP1,
        1,
        cluster_same_domain(),
        &net,
        Arc::new(MemDisk::new()),
        SessionStrategy::StateServer(server_ep),
    );
    for i in 6..=8u64 {
        assert_eq!(as_u64(&c.call(MSP1, "counter", &[]).unwrap()), i);
    }
    msp2.shutdown();
    server.shutdown();
    net.shutdown();
}

#[test]
fn session_checkpoints_are_taken_and_bound_replay() {
    let net = net();
    let cluster = cluster_same_domain();
    let disk = Arc::new(MemDisk::new());
    let logging = LoggingConfig {
        session_ckpt_threshold: 400, // tiny: checkpoint every ~8 requests
        ..fast_logging()
    };
    let m1 = MspBuilder::new(cfg(MSP1, 1).with_logging(logging.clone()), cluster.clone())
        .disk_model(DiskModel::zero())
        .shared_var("SV", 0u64.to_le_bytes().to_vec())
        .service("counter", |ctx, _| {
            let n = ctx
                .get_session("n")
                .map(|v| u64::from_le_bytes(v.try_into().unwrap()))
                .unwrap_or(0)
                + 1;
            ctx.set_session("n", n.to_le_bytes().to_vec());
            Ok(n.to_le_bytes().to_vec())
        })
        .start(&net, Arc::clone(&disk) as Arc<dyn msp_wal::Disk>)
        .unwrap();
    let mut c = client(&net, 1);
    for i in 1..=60u64 {
        assert_eq!(as_u64(&c.call(MSP1, "counter", &[]).unwrap()), i);
    }
    let ckpts = m1.stats().session_checkpoints;
    assert!(
        ckpts >= 2,
        "expected several session checkpoints, got {ckpts}"
    );
    m1.crash();

    let m1b = MspBuilder::new(cfg(MSP1, 1).with_logging(logging), cluster)
        .disk_model(DiskModel::zero())
        .shared_var("SV", 0u64.to_le_bytes().to_vec())
        .service("counter", |ctx, _| {
            let n = ctx
                .get_session("n")
                .map(|v| u64::from_le_bytes(v.try_into().unwrap()))
                .unwrap_or(0)
                + 1;
            ctx.set_session("n", n.to_le_bytes().to_vec());
            Ok(n.to_le_bytes().to_vec())
        })
        .start(&net, disk)
        .unwrap();
    assert_eq!(as_u64(&c.call(MSP1, "counter", &[]).unwrap()), 61);
    // Replay was bounded by the checkpoint: far fewer requests replayed
    // than were ever executed.
    let replayed = m1b.stats().replayed_requests;
    assert!(
        replayed < 60,
        "checkpoint must bound replay, replayed {replayed}"
    );
    m1b.shutdown();
    net.shutdown();
}

#[test]
fn end_session_discards_state() {
    let net = net();
    let disk = Arc::new(MemDisk::new());
    let msp = counter_msp(
        MSP1,
        1,
        cluster_same_domain(),
        &net,
        disk,
        SessionStrategy::LogBased,
    );
    let mut c = client(&net, 1);
    assert_eq!(as_u64(&c.call(MSP1, "counter", &[]).unwrap()), 1);
    assert_eq!(msp.session_count(), 1);
    c.end_session(MSP1).unwrap();
    assert_eq!(msp.session_count(), 0);
    // A new session starts fresh.
    assert_eq!(as_u64(&c.call(MSP1, "counter", &[]).unwrap()), 1);
    msp.shutdown();
    net.shutdown();
}

#[test]
fn concurrent_clients_have_isolated_sessions() {
    let net = net();
    let disk = Arc::new(MemDisk::new());
    let msp = counter_msp(
        MSP1,
        1,
        cluster_same_domain(),
        &net,
        disk,
        SessionStrategy::LogBased,
    );
    let net2 = net.clone();
    let mut handles = Vec::new();
    for cid in 0..6u64 {
        let net = net2.clone();
        handles.push(std::thread::spawn(move || {
            let mut c = client(&net, cid);
            for i in 1..=15u64 {
                let r = c.call(MSP1, "counter", &[]).unwrap();
                assert_eq!(as_u64(&r), i, "client {cid} sees its own counter");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(msp.session_count(), 6);
    msp.shutdown();
    net.shutdown();
}
