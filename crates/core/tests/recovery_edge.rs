//! Edge cases of the recovery machinery: checkpoint-bounded scans, forced
//! checkpoints of idle sessions, shared-variable chain breaks, repeated
//! crashes, flush-request verdicts about old epochs.

use std::sync::Arc;
use std::time::Duration;

use msp_core::client::ClientOptions;
use msp_core::config::LoggingConfig;
use msp_core::{ClusterConfig, Envelope, MspBuilder, MspClient, MspConfig};
use msp_net::{NetModel, Network};
use msp_types::{DomainId, MspId};
use msp_wal::{DiskModel, MemDisk};

const M1: MspId = MspId(1);

fn cluster() -> ClusterConfig {
    ClusterConfig::new().with_msp(M1, DomainId(1))
}

fn logging(session_threshold: u64) -> LoggingConfig {
    LoggingConfig {
        session_ckpt_threshold: session_threshold,
        shared_ckpt_writes: 8,
        msp_ckpt_interval: Duration::from_millis(15),
        force_ckpt_after: 2,
        checkpoints_enabled: true,
        checkpoint_interval_bytes: 0,
    }
}

fn start(
    net: &Network<Envelope>,
    disk: Arc<MemDisk>,
    session_threshold: u64,
) -> msp_core::MspHandle {
    start_ckpt(net, disk, session_threshold, true)
}

fn start_ckpt(
    net: &Network<Envelope>,
    disk: Arc<MemDisk>,
    session_threshold: u64,
    checkpoints_enabled: bool,
) -> msp_core::MspHandle {
    let mut lg = logging(session_threshold);
    lg.checkpoints_enabled = checkpoints_enabled;
    MspBuilder::new(
        MspConfig::new(M1, DomainId(1))
            .with_time_scale(0.0)
            .with_logging(lg)
            .with_workers(3),
        cluster(),
    )
    .disk_model(DiskModel::zero())
    .shared_var("sv", 0u64.to_le_bytes().to_vec())
    .service("tick", |ctx, _| {
        let n = ctx
            .get_session("n")
            .map(|v| u64::from_le_bytes(v.try_into().unwrap()))
            .unwrap_or(0)
            + 1;
        ctx.set_session("n", n.to_le_bytes().to_vec());
        Ok(n.to_le_bytes().to_vec())
    })
    .service("bump", |ctx, _| {
        let v = u64::from_le_bytes(ctx.read_shared("sv")?[..8].try_into().unwrap()) + 1;
        ctx.write_shared("sv", v.to_le_bytes().to_vec())?;
        Ok(v.to_le_bytes().to_vec())
    })
    .start(net, disk)
    .unwrap()
}

fn call_u64(c: &mut MspClient, method: &str) -> u64 {
    u64::from_le_bytes(c.call(M1, method, &[]).unwrap()[..8].try_into().unwrap())
}

fn client(net: &Network<Envelope>) -> MspClient {
    MspClient::new(
        net,
        1,
        ClientOptions {
            resend_timeout: Duration::from_millis(80),
            busy_backoff: Duration::from_millis(1),
            max_attempts: 100_000,
        },
    )
}

#[test]
fn forced_checkpoints_advance_idle_sessions() {
    // An idle session must not pin the analysis-scan start forever: after
    // `force_ckpt_after` MSP checkpoints, it is checkpointed by force
    // (§3.4). The MSP checkpointer runs every 15ms here.
    let net: Network<Envelope> = Network::new(NetModel::zero(), 1);
    let disk = Arc::new(MemDisk::new());
    let msp = start(&net, Arc::clone(&disk), u64::MAX); // threshold never fires
    let mut c = client(&net);
    assert_eq!(call_u64(&mut c, "tick"), 1);
    // Go idle and let the checkpointer cycle a few times.
    std::thread::sleep(Duration::from_millis(200));
    let stats = msp.stats();
    assert!(
        stats.msp_checkpoints >= 3,
        "checkpointer ran: {}",
        stats.msp_checkpoints
    );
    assert!(
        stats.session_checkpoints >= 1,
        "idle session was force-checkpointed: {}",
        stats.session_checkpoints
    );
    msp.shutdown();
    net.shutdown();
}

#[test]
fn shared_variable_checkpoints_fire_by_write_count() {
    let net: Network<Envelope> = Network::new(NetModel::zero(), 1);
    let disk = Arc::new(MemDisk::new());
    let msp = start(&net, Arc::clone(&disk), u64::MAX);
    let mut c = client(&net);
    for i in 1..=20u64 {
        assert_eq!(call_u64(&mut c, "bump"), i);
    }
    assert!(
        msp.stats().shared_checkpoints >= 2,
        "8-write threshold over 20 writes: {}",
        msp.stats().shared_checkpoints
    );
    msp.crash();
    // Recovery rolls the variable forward to 20 regardless of chain breaks.
    let msp = start(&net, Arc::clone(&disk), u64::MAX);
    assert_eq!(call_u64(&mut c, "bump"), 21);
    msp.shutdown();
    net.shutdown();
}

#[test]
fn repeated_crashes_accumulate_epochs() {
    let net: Network<Envelope> = Network::new(NetModel::zero(), 1);
    let disk = Arc::new(MemDisk::new());
    let mut msp = start(&net, Arc::clone(&disk), 400);
    let mut c = client(&net);
    let mut expected = 0u64;
    for round in 1..=4u32 {
        for _ in 0..5 {
            expected += 1;
            assert_eq!(call_u64(&mut c, "tick"), expected);
        }
        msp.crash();
        msp = start(&net, Arc::clone(&disk), 400);
        assert_eq!(msp.epoch().0, round, "epoch increments per recovery");
    }
    assert_eq!(call_u64(&mut c, "tick"), 21);
    msp.shutdown();
    net.shutdown();
}

#[test]
fn clean_shutdown_then_restart_loses_nothing() {
    let net: Network<Envelope> = Network::new(NetModel::zero(), 1);
    let disk = Arc::new(MemDisk::new());
    let msp = start(&net, Arc::clone(&disk), u64::MAX);
    let mut c = client(&net);
    for i in 1..=7u64 {
        assert_eq!(call_u64(&mut c, "tick"), i);
    }
    msp.shutdown(); // flushes the tail
    let msp = start(&net, Arc::clone(&disk), u64::MAX);
    assert_eq!(
        call_u64(&mut c, "tick"),
        8,
        "clean shutdown preserved everything"
    );
    // A clean restart still counts as a crash recovery pass (the log
    // cannot tell), but nothing was replayed beyond the durable state.
    assert_eq!(msp.stats().crash_recoveries, 1);
    msp.shutdown();
    net.shutdown();
}

#[test]
fn checkpoint_bounds_the_analysis_scan() {
    // With frequent session checkpoints, the scan after a crash starts
    // near the end of the log; with none, it rereads everything. Compare
    // scan effort via the log's sequential-read counter.
    let run = |threshold: u64, enabled: bool| {
        let net: Network<Envelope> = Network::new(NetModel::zero(), 1);
        let disk = Arc::new(MemDisk::new());
        let msp = start_ckpt(&net, Arc::clone(&disk), threshold, enabled);
        let mut c = client(&net);
        for _ in 0..300 {
            call_u64(&mut c, "tick");
        }
        // Let the MSP checkpointer anchor the latest session checkpoints.
        std::thread::sleep(Duration::from_millis(60));
        msp.crash();
        let msp2 = start_ckpt(&net, Arc::clone(&disk), threshold, enabled);
        // Session replay runs asynchronously on the worker pool; a request
        // through the same session blocks until its recovery completes.
        assert_eq!(call_u64(&mut c, "tick"), 301);
        let replayed = msp2.stats().replayed_requests;
        msp2.shutdown();
        net.shutdown();
        replayed
    };
    let with_ckpt = run(2_000, true);
    let without_ckpt = run(u64::MAX, false);
    assert!(
        with_ckpt < without_ckpt,
        "checkpointing must bound replay: {with_ckpt} !< {without_ckpt}"
    );
    assert_eq!(without_ckpt, 300, "no checkpoint → full replay");
}

#[test]
fn sessions_recover_in_parallel_after_crash() {
    // Several sessions with un-checkpointed history; after the crash all
    // must be replayed (scheduled across the worker pool) and continue
    // exactly-once.
    let net: Network<Envelope> = Network::new(NetModel::zero(), 1);
    let disk = Arc::new(MemDisk::new());
    let msp = start(&net, Arc::clone(&disk), u64::MAX);
    let mut clients: Vec<MspClient> = (0..6)
        .map(|i| {
            MspClient::new(
                &net,
                i,
                ClientOptions {
                    resend_timeout: Duration::from_millis(80),
                    busy_backoff: Duration::from_millis(1),
                    max_attempts: 100_000,
                },
            )
        })
        .collect();
    for c in clients.iter_mut() {
        for i in 1..=10u64 {
            assert_eq!(call_u64(c, "tick"), i);
        }
    }
    msp.crash();
    let msp = start(&net, Arc::clone(&disk), u64::MAX);
    // All six sessions were rebuilt and replayed (requests block until
    // each session's async replay completes).
    assert_eq!(msp.session_count(), 6);
    for c in clients.iter_mut() {
        assert_eq!(call_u64(c, "tick"), 11);
    }
    assert_eq!(msp.stats().replayed_requests, 60);
    msp.shutdown();
    net.shutdown();
}
