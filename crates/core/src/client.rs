//! The end-client library (§2.1, §3.1).
//!
//! An end client lives outside every service domain. Its obligations
//! under the protocol are small and purely local:
//!
//! * keep, per session, the *next available request sequence number*;
//! * resend the same request until its reply is received (messages may be
//!   lost, duplicated or reordered);
//! * identify duplicate replies by `(session, seq)`;
//! * back off briefly when the server reports *Busy* (checkpointing or
//!   recovering) — the paper's clients sleep 100 ms and resend (§5.4).
//!
//! The client needs no log: exactly-once execution is the *server's*
//! guarantee, delivered by logging the request before processing and
//! replaying it after crashes, combined with this resend discipline.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use msp_net::{Endpoint, EndpointId, Network};
use msp_types::{MspError, MspId, MspResult, RequestSeq, SessionId};

use crate::envelope::{Envelope, ReplyStatus, RequestMsg};
use crate::runtime::{next_session_id, END_SESSION_METHOD};

/// Client-side tuning.
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// How long to wait for a reply before resending the request.
    pub resend_timeout: Duration,
    /// Back-off after a *Busy* reply (paper: 100 ms), already scaled.
    pub busy_backoff: Duration,
    /// Give up after this many resends of one request.
    pub max_attempts: u32,
}

impl Default for ClientOptions {
    fn default() -> ClientOptions {
        ClientOptions {
            resend_timeout: Duration::from_millis(400),
            busy_backoff: Duration::from_millis(2),
            max_attempts: 10_000,
        }
    }
}

struct ClientSession {
    id: SessionId,
    next_seq: RequestSeq,
}

/// An end-client process.
pub struct MspClient {
    endpoint: Endpoint<Envelope>,
    me: EndpointId,
    sessions: HashMap<MspId, ClientSession>,
    opts: ClientOptions,
}

impl MspClient {
    /// Register client number `client_id` on the network.
    pub fn new(net: &Network<Envelope>, client_id: u64, opts: ClientOptions) -> MspClient {
        let me = EndpointId::Client(client_id);
        MspClient {
            endpoint: net.register(me),
            me,
            sessions: HashMap::new(),
            opts,
        }
    }

    /// The session this client holds with `target`, if any.
    pub fn session_with(&self, target: MspId) -> Option<SessionId> {
        self.sessions.get(&target).map(|s| s.id)
    }

    /// Call `method` at `target` with exactly-once semantics; blocks until
    /// the reply arrives (resending as needed). A session with `target`
    /// is started implicitly on first use.
    pub fn call(&mut self, target: MspId, method: &str, payload: &[u8]) -> MspResult<Vec<u8>> {
        match self.call_status(target, method, payload)? {
            ReplyStatus::Ok(p) => Ok(p),
            ReplyStatus::Err(e) => Err(MspError::Application(e)),
            ReplyStatus::Busy => unreachable!("busy handled internally"),
        }
    }

    /// Forget the session with `target` without telling the MSP: the next
    /// call starts a fresh session while the old one stays live
    /// server-side (until the inactivity force-checkpoint reaps it).
    /// Open-loop harnesses use this to accumulate large live-session
    /// populations without one teardown round-trip per session.
    pub fn abandon_session(&mut self, target: MspId) {
        self.sessions.remove(&target);
    }

    /// End the session with `target` (§2.1: sessions are ended by a
    /// client request).
    pub fn end_session(&mut self, target: MspId) -> MspResult<()> {
        if self.sessions.contains_key(&target) {
            self.call_status(target, END_SESSION_METHOD, &[])?;
            self.sessions.remove(&target);
        }
        Ok(())
    }

    fn call_status(
        &mut self,
        target: MspId,
        method: &str,
        payload: &[u8],
    ) -> MspResult<ReplyStatus> {
        let session = self
            .sessions
            .entry(target)
            .or_insert_with(|| ClientSession {
                id: next_session_id(),
                next_seq: RequestSeq::FIRST,
            });
        let (sid, seq) = (session.id, session.next_seq);
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            if attempts > self.opts.max_attempts {
                return Err(MspError::Timeout);
            }
            self.endpoint.send(
                EndpointId::Msp(target),
                Envelope::Request(RequestMsg {
                    session: sid,
                    seq,
                    method: method.to_string(),
                    payload: payload.to_vec(),
                    reply_to: self.me,
                    sender_dv: None, // end clients are outside all domains
                    durable_hint: None,
                    recoveries: Vec::new(),
                }),
            );
            // Wait for the matching reply, discarding stale ones.
            let deadline = Instant::now() + self.opts.resend_timeout;
            loop {
                let now = Instant::now();
                if now >= deadline {
                    break; // resend
                }
                match self.endpoint.recv_timeout(deadline - now) {
                    Ok(Envelope::Reply(rep)) if rep.session == sid && rep.seq == seq => {
                        match rep.status {
                            ReplyStatus::Busy => {
                                // Server is checkpointing or recovering:
                                // sleep and resend (§5.4).
                                std::thread::sleep(self.opts.busy_backoff);
                                break;
                            }
                            status => {
                                self.sessions
                                    .get_mut(&target)
                                    .expect("session exists")
                                    .next_seq = seq.next();
                                return Ok(status);
                            }
                        }
                    }
                    Ok(_) => continue,               // stale duplicate reply
                    Err(MspError::Timeout) => break, // resend
                    Err(e) => return Err(e),
                }
            }
        }
    }
}
