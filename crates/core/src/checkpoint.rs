//! Checkpointing: sessions (§3.2), shared variables (§3.3), and the fuzzy
//! MSP checkpoint (§3.4).
//!
//! The three levels are deliberately independent:
//!
//! * a **session checkpoint** is taken between requests once the session
//!   has consumed enough log, preceded by a distributed flush so the
//!   checkpointed state can never become an orphan; it truncates the
//!   session's position stream;
//! * a **shared-variable checkpoint** is taken after enough writes; it
//!   breaks the backward write chain (Figure 9);
//! * the **MSP checkpoint** is fuzzy: it blocks nobody, records only the
//!   *positions* of the component checkpoints plus the recovered-state
//!   knowledge, and anchors itself in the log header. Its minimum LSN is
//!   where crash recovery's analysis scan starts.
//!
//! Inactive sessions and variables are force-checkpointed after a number
//! of MSP checkpoints so the scan start keeps advancing (§3.4).

use std::sync::atomic::Ordering;
use std::time::Duration;

use msp_types::{Lsn, MspError, MspResult, StateId};
use msp_wal::record::{MspCheckpointBody, SessionAnchor};
use msp_wal::{CrashPoint, LogRecord};

use crate::runtime::{MspInner, WorkItem};
use crate::session::{SessionCell, SessionState};
use crate::shared::SharedVar;

/// Fold the reclaim floor from the live dependency set: the minimum over
/// the anchored MSP checkpoint's scan start (`anchor_min_lsn`), every
/// session's earliest live position-stream entry, every shared variable's
/// write-chain head, and the oldest still-pending flush ticket or
/// durability gate — clamped to the durable end (volatile bytes are
/// never reclaimed). Every byte strictly below the returned LSN is dead:
/// no future recovery scan, replay read, orphan rollback or flush can
/// reference it.
///
/// `None` for `anchor_min_lsn` means no MSP checkpoint was ever anchored;
/// recovery would scan from the head of the log, so nothing may be
/// reclaimed (`Lsn(0)` — the log clamps it up to its data start).
pub fn fold_reclaim_floor(
    anchor_min_lsn: Option<Lsn>,
    session_anchors: &[Lsn],
    shared_anchors: &[Lsn],
    oldest_pending: Option<Lsn>,
    durable: Lsn,
) -> Lsn {
    let Some(mut floor) = anchor_min_lsn else {
        return Lsn(0);
    };
    for &lsn in session_anchors {
        floor = floor.min(lsn);
    }
    for &lsn in shared_anchors {
        floor = floor.min(lsn);
    }
    if let Some(lsn) = oldest_pending {
        floor = floor.min(lsn);
    }
    floor.min(durable)
}

impl MspInner {
    /// Take a session checkpoint (caller holds the session's state lock,
    /// which also "holds new requests until the checkpoint is completed").
    pub(crate) fn session_checkpoint(
        &self,
        cell: &SessionCell,
        st: &mut SessionState,
    ) -> MspResult<()> {
        // The distributed flush makes every dependency durable; if it
        // reveals the session to be an orphan, recover instead of
        // checkpointing.
        match self.distributed_flush(&st.dv) {
            Ok(()) => {}
            Err(e @ (MspError::OrphanDependency { .. } | MspError::Orphan { .. })) => {
                st.needs_recovery = true;
                self.send_work(WorkItem::RecoverSession(cell.id));
                return Err(e);
            }
            Err(e) => return Err(e),
        }
        let log = self.log();
        // Crash site: the pre-checkpoint flush succeeded but the kill
        // lands before the checkpoint record itself is written.
        if log.fault_point(CrashPoint::CheckpointWrite) {
            return Err(MspError::Shutdown);
        }
        let body = st.to_checkpoint_body();
        let lsn = log.append(&LogRecord::SessionCheckpoint {
            session: cell.id,
            body,
        });
        // The state as of checkpoint completion can never be an orphan:
        // reset the DV to the self-entry only; discard prior positions.
        st.dv.clear();
        st.dv.set(self.cfg.id, StateId::new(self.epoch(), lsn));
        st.state_number = lsn;
        st.last_ckpt = Some(lsn);
        st.log_consumed = 0;
        st.positions.truncate();
        cell.msp_ckpts_since_ckpt.store(0, Ordering::Release);
        cell.sync_anchor(st);
        self.stats
            .session_checkpoints
            .fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Checkpoint `var` if its write count crossed the threshold (§3.3);
    /// called by the writer right after a write, with the variable lock
    /// released in between (re-acquired inside).
    pub(crate) fn maybe_shared_checkpoint(&self, var: &SharedVar, _lsn: Lsn) -> MspResult<()> {
        if !self.cfg.logging.checkpoints_enabled {
            return Ok(());
        }
        let due = var.state.lock().writes_since_ckpt >= self.cfg.logging.shared_ckpt_writes;
        if due {
            self.shared_checkpoint(var)?;
        }
        Ok(())
    }

    /// Take a shared-variable checkpoint: distributed flush under the
    /// variable's DV, then log the value — which thereby can never become
    /// an orphan — and break the backward chain (Figure 9).
    pub(crate) fn shared_checkpoint(&self, var: &SharedVar) -> MspResult<()> {
        let mut st = var.state.lock();
        match self.distributed_flush(&st.dv) {
            Ok(()) => {}
            Err(MspError::OrphanDependency { .. }) => {
                // The current value is an orphan: roll it back instead
                // (§4.2); the rolled-back value can be checkpointed on the
                // next threshold crossing.
                let log = self.log();
                let knowledge = self.knowledge.read();
                let env = crate::shared::SharedEnv {
                    me: self.cfg.id,
                    epoch: self.epoch(),
                    log,
                    knowledge: &knowledge,
                    ops: self.shared.ops(),
                };
                crate::shared::rollback_if_orphan(&env, var, &mut st)?;
                return Ok(());
            }
            Err(e) => return Err(e),
        }
        let log = self.log();
        let lsn = log.append(&LogRecord::SharedCheckpoint {
            var: var.id,
            value: st.value.clone(),
        });
        st.last_ckpt = Some(lsn);
        st.chain_head = lsn;
        st.dv.clear();
        st.writes_since_ckpt = 0;
        st.ops_since_value = 0;
        var.msp_ckpts_since_ckpt.store(0, Ordering::Release);
        var.sync_anchor(&st);
        self.stats
            .shared_checkpoints
            .fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// The fuzzy MSP checkpoint (§3.4): collect the component anchors
    /// without blocking anyone, make sure the referenced records are
    /// durable, log the checkpoint, update the log anchor, and schedule
    /// forced checkpoints for laggards.
    pub(crate) fn msp_checkpoint(&self) -> MspResult<()> {
        let log = self.log();

        // Fuzzy collection: lock-free anchors only.
        let mut sessions = Vec::new();
        let mut min_lsn = Lsn(u64::MAX);
        let mut max_lsn = Lsn(0);
        let cells: Vec<_> = self.sessions.lock().values().cloned().collect();
        for cell in &cells {
            if let Some((lsn, is_checkpoint)) = cell.anchor() {
                sessions.push(SessionAnchor {
                    session: cell.id,
                    lsn,
                    is_checkpoint,
                });
                min_lsn = min_lsn.min(lsn);
                max_lsn = max_lsn.max(lsn);
            }
        }
        let mut shared = Vec::new();
        for var in self.shared.iter() {
            if let Some(lsn) = var.anchor() {
                shared.push((var.id, lsn));
                min_lsn = min_lsn.min(lsn);
                max_lsn = max_lsn.max(lsn);
            }
        }
        if min_lsn == Lsn(u64::MAX) {
            // Nothing to anchor: the scan would start at the current end.
            min_lsn = log.durable_lsn();
        }

        // The checkpoint may only reference durable records: flush up to
        // the newest anchor before writing it.
        if max_lsn > Lsn(0) {
            log.flush_to(max_lsn)?;
        }
        // Crash site: anchors are durable but the MSP checkpoint record
        // (and the log-anchor update) never happen.
        if log.fault_point(CrashPoint::CheckpointWrite) {
            return Err(MspError::Shutdown);
        }
        let body = MspCheckpointBody {
            epoch: self.epoch(),
            knowledge: self.knowledge.read().clone(),
            sessions,
            shared,
            min_lsn,
        };
        let lsn = log.append(&LogRecord::MspCheckpoint(body));
        log.flush_to(lsn)?;
        self.anchor
            .as_ref()
            .expect("LogBased runtime has an anchor")
            .write(lsn)?;
        self.stats.msp_checkpoints.fetch_add(1, Ordering::Relaxed);

        // Advance laggards so the scan start keeps moving (§3.4): force a
        // checkpoint for any session/variable that has gone too many MSP
        // checkpoints without one of its own.
        let force_after = self.cfg.logging.force_ckpt_after;
        for cell in &cells {
            let n = cell.msp_ckpts_since_ckpt.fetch_add(1, Ordering::AcqRel) + 1;
            if n >= force_after && cell.anchor().is_some() {
                self.send_work(WorkItem::ForceSessionCheckpoint(cell.id));
            }
        }
        for var in self.shared.iter() {
            let n = var.msp_ckpts_since_ckpt.fetch_add(1, Ordering::AcqRel) + 1;
            if n >= force_after && var.anchor().is_some() {
                let needs = var.state.lock().writes_since_ckpt > 0;
                if needs {
                    let _ = self.shared_checkpoint(var);
                }
            }
        }

        // Bounded-log operation: every checkpoint refreshes the reclaim
        // floor and gives the space below it back to the device. Failures
        // (e.g. an armed truncation crash point) surface to the caller;
        // the checkpoint itself is already durable and anchored.
        self.truncate_log()?;
        Ok(())
    }

    /// Recompute the reclaim floor from the live dependency set and
    /// truncate the log below it. Returns the resulting floor and the
    /// bytes reclaimed by this call (zero when the floor cannot advance).
    ///
    /// A no-op when checkpointing is disabled: that configuration's
    /// contract is a full-history log (tests and audits rely on every
    /// record surviving), and the only checkpoint that could anchor a
    /// floor is the unconditional end-of-recovery one.
    pub(crate) fn truncate_log(&self) -> MspResult<(Lsn, u64)> {
        let log = self.log();
        if !self.cfg.logging.checkpoints_enabled {
            return Ok((log.floor(), 0));
        }
        // The floor may never pass the anchored checkpoint's scan start:
        // crash recovery reads the anchor, then scans from the
        // checkpoint body's `min_lsn`.
        let anchor_min = match self
            .anchor
            .as_ref()
            .and_then(|a| a.read().ok().flatten())
            .map(|lsn| log.read_record(lsn))
        {
            Some(Ok(LogRecord::MspCheckpoint(body))) => Some(body.min_lsn),
            _ => None,
        };
        let session_anchors: Vec<Lsn> = self
            .sessions
            .lock()
            .values()
            .filter_map(|cell| cell.anchor().map(|(lsn, _)| lsn))
            .collect();
        let shared_anchors: Vec<Lsn> = self.shared.iter().filter_map(|var| var.anchor()).collect();
        // The oldest outstanding local durability work: un-settled flush
        // tickets inside the log, plus issued-but-unsettled durability
        // gates whose local leg still waits on an LSN.
        let mut oldest_pending = log.oldest_pending_flush();
        for (gate, _) in self.pending_flushes.lock().values() {
            if let Some(lsn) = gate.pending_local_target() {
                oldest_pending = Some(oldest_pending.map_or(lsn, |p| p.min(lsn)));
            }
        }
        let floor = fold_reclaim_floor(
            anchor_min,
            &session_anchors,
            &shared_anchors,
            oldest_pending,
            log.durable_lsn(),
        );
        let reclaimed = log.truncate_below(floor)?;
        Ok((log.floor(), reclaimed))
    }

    /// Periodic checkpointer thread body. Checkpoints fire on the timer
    /// *or* as soon as `checkpoint_interval_bytes` of log have been
    /// appended since the last checkpoint, whichever comes first — under
    /// sustained load the byte trigger bounds how much log can pile up
    /// between truncations.
    pub(crate) fn checkpointer_loop(self: std::sync::Arc<Self>) {
        let interval = self.cfg.logging.msp_ckpt_interval;
        let byte_interval = self.cfg.logging.checkpoint_interval_bytes;
        let mut last_end = self.log().end_lsn().0;
        while !self.stopped() {
            // Sleep in small slices so shutdown is prompt and log growth
            // is noticed early.
            let mut remaining = interval;
            let mut byte_due = false;
            while remaining > Duration::ZERO && !self.stopped() {
                let slice = remaining.min(Duration::from_millis(20));
                std::thread::sleep(slice);
                remaining = remaining.saturating_sub(slice);
                if byte_interval > 0
                    && self.log().end_lsn().0.saturating_sub(last_end) >= byte_interval
                {
                    byte_due = true;
                    break;
                }
            }
            if self.stopped() {
                return;
            }
            if byte_due {
                self.stats
                    .checkpoints_scheduled
                    .fetch_add(1, Ordering::Relaxed);
            }
            let _ = self.msp_checkpoint();
            last_end = self.log().end_lsn().0;
        }
    }
}
