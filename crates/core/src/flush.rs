//! Distributed log flushes (§3.1).
//!
//! Before a message crosses a pessimistic boundary — out of the service
//! domain or to an end client — every state the sender transitively
//! depends on must be durable. The sender walks its dependency vector:
//! its own entry becomes a local flush, every other entry becomes a
//! `FlushRequest` to that MSP. The separate local flushes run in parallel
//! (requests are sent before the local flush starts; replies are awaited
//! afterwards), matching the paper's "the separate local flushes required
//! by a distributed log flush can be done in parallel".
//!
//! A flush can *fail*: if a participant crashed and lost the requested
//! state, the requester is an orphan — it carries a dependency on a state
//! that no longer exists. The failure is surfaced as
//! [`MspError::OrphanDependency`] and the caller initiates session (or
//! shared-variable) orphan recovery.

use std::sync::atomic::Ordering;

use msp_net::EndpointId;
use msp_types::{DependencyVector, Epoch, Lsn, MspError, MspId, MspResult, StateId};

use crate::envelope::Envelope;
use crate::runtime::MspInner;

impl MspInner {
    /// Flush everything `dv` depends on, across the domain. Returns
    /// `Err(OrphanDependency)` when some depended-upon state is lost.
    pub(crate) fn distributed_flush(&self, dv: &DependencyVector) -> MspResult<()> {
        if !self.is_log_based() {
            return Ok(());
        }
        self.stats
            .distributed_flushes
            .fetch_add(1, Ordering::Relaxed);
        let me = self.cfg.id;
        let use_watermarks = self.cfg.durability_watermarks;
        let mut local: Option<Lsn> = None;
        let mut remote: Vec<(MspId, StateId)> = Vec::new();
        for (m, s) in dv.iter() {
            if m == me {
                local = Some(local.map_or(s.lsn, |l| l.max(s.lsn)));
            } else {
                // Fast path: already-known-lost dependencies fail without
                // a network round trip.
                if self.knowledge.read().is_orphan_dep(m, s) {
                    return Err(MspError::OrphanDependency { msp: m });
                }
                // Watermark elision: a dependency provably durable at the
                // peer (same epoch, strictly below its reported durable
                // end) needs no flush RPC — durability never un-happens.
                if use_watermarks && self.watermarks.lock().covers(m, s) {
                    self.stats.flush_rpcs_elided.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                remote.push((m, s));
            }
        }

        // Fire all remote requests first so they overlap with our local
        // flush (parallel flushes, §3.1 / §5.2).
        let mut waits = Vec::with_capacity(remote.len());
        for &(m, s) in &remote {
            waits.push((m, s, self.send_flush_request(m, s)));
        }
        if let Some(lsn) = local {
            // `durable` is the exclusive end of the durable prefix, so a
            // record starting at `lsn` is durable iff `durable > lsn`.
            if use_watermarks && self.log().durable_lsn() > lsn {
                self.stats.flushes_elided.fetch_add(1, Ordering::Relaxed);
            } else {
                self.log().flush_to(lsn)?;
            }
        }
        for (m, s, mut rx) in waits {
            let mut attempts = 0u32;
            loop {
                match rx.recv_timeout(self.cfg.rpc_timeout) {
                    Ok(true) => break,
                    Ok(false) => return Err(MspError::OrphanDependency { msp: m }),
                    Err(_) => {
                        if self.stopped() {
                            return Err(MspError::Shutdown);
                        }
                        // While the participant is down we cannot know
                        // whether our dependency survived; its recovery
                        // broadcast may settle the question first.
                        if self.knowledge.read().is_orphan_dep(m, s) {
                            return Err(MspError::OrphanDependency { msp: m });
                        }
                        attempts += 1;
                        if attempts > self.cfg.flush_retry_limit {
                            return Err(MspError::FlushFailed {
                                participant: m,
                                reason: "participant unreachable".into(),
                            });
                        }
                        rx = self.send_flush_request(m, s);
                    }
                }
            }
        }
        Ok(())
    }

    fn send_flush_request(
        &self,
        target: MspId,
        state: StateId,
    ) -> crossbeam_channel::Receiver<bool> {
        let req_id = self.next_req_id();
        let (tx, rx) = crossbeam_channel::bounded(1);
        self.pending_flushes.lock().insert(req_id, tx);
        self.send(
            EndpointId::Msp(target),
            Envelope::FlushRequest {
                from: self.me(),
                req_id,
                epoch: state.epoch,
                lsn: state.lsn,
            },
        );
        rx
    }

    /// Serve a peer's flush request: make our state `(epoch, lsn)`
    /// durable, or report it lost.
    pub(crate) fn serve_flush_request(&self, epoch: Epoch, lsn: Lsn) -> bool {
        self.stats
            .flush_requests_served
            .fetch_add(1, Ordering::Relaxed);
        if !self.is_log_based() {
            return false;
        }
        let current = self.epoch();
        if epoch == current {
            // The state is in our current incarnation's log: flush it.
            self.log().flush_to(lsn).is_ok()
        } else if epoch < current {
            // From a previous incarnation: it survived iff it is at or
            // below the recovered LSN of the first recovery after it —
            // our own recovery history answers that. Anything that
            // survived a recovery is durable by construction.
            self.own_state_survived(epoch, lsn)
        } else {
            // A dependency on our future: can only mean a stale message
            // from before several crashes of the *requester*; refuse.
            false
        }
    }

    /// Absorb a recovery broadcast (§3.1/§4): log it (and flush, so the
    /// knowledge survives our own crashes), record it, then sweep idle
    /// sessions for orphans — busy sessions check at their next
    /// interception point (§4.1).
    pub(crate) fn absorb_recovery_broadcast(&self, rec: msp_types::RecoveryRecord) {
        if rec.msp == self.cfg.id {
            return;
        }
        if let Some(log) = &self.log {
            let lsn = log.append(&msp_wal::LogRecord::RecoveryAnnouncement(rec));
            // Durable knowledge: recovery broadcasts are sent exactly once
            // (at the peer's recovery), so losing the record would leave
            // permanently undetectable orphans. Crashes are rare; one
            // flush per peer crash is cheap.
            let _ = log.flush_to(lsn);
        }
        self.knowledge.write().record(rec);
        // The peer crashed and recovered: every watermark learned from its
        // previous incarnation is void. The next flush involving it will
        // go over the wire and re-learn the (new-epoch) watermark.
        self.watermarks.lock().invalidate(rec.msp);
        let cells: Vec<_> = self.sessions.lock().values().cloned().collect();
        let me = self.cfg.id;
        for cell in cells {
            // Idle sessions can be checked right now; their recovery runs
            // on the worker pool. Busy sessions are intercepted later.
            let schedule = match cell.state.try_lock() {
                Some(mut st) if !st.ended && self.knowledge.read().is_orphan(&st.dv, me) => {
                    st.needs_recovery = true;
                    true
                }
                _ => false,
            };
            if schedule {
                let _ = self
                    .work_tx
                    .send(crate::runtime::WorkItem::RecoverSession(cell.id));
            }
        }
    }
}
