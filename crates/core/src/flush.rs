//! Distributed log flushes (§3.1) and the asynchronous durability gate.
//!
//! Before a message crosses a pessimistic boundary — out of the service
//! domain or to an end client — every state the sender transitively
//! depends on must be durable. The sender walks its dependency vector:
//! its own entry becomes a local flush, every other entry becomes a
//! `FlushRequest` to that MSP. The separate local flushes run in parallel
//! (requests are sent before the local flush starts; replies are awaited
//! afterwards), matching the paper's "the separate local flushes required
//! by a distributed log flush can be done in parallel".
//!
//! The paper only constrains the *message*: it must not leave before its
//! dependencies are durable. Nothing requires the *thread* to block. So
//! the flush is split into an **issue** phase
//! ([`MspInner::distributed_flush_issue`]) that fires every leg — the
//! local flush as a [`msp_wal::FlushTicket`], each remote dependency as a
//! `FlushRequest` RPC — and returns a [`DurabilityGate`], and a **settle**
//! phase that resolves once every leg has acknowledged. Callers that must
//! block (checkpoints, session end, recovery resends) use
//! [`MspInner::settle_gate`]; the runtime's reply-release stage instead
//! parks the outgoing envelope on the gate and frees the worker.
//!
//! A flush can *fail*: if a participant crashed and lost the requested
//! state, the requester is an orphan — it carries a dependency on a state
//! that no longer exists. The failure is surfaced as
//! [`MspError::OrphanDependency`] — at settle time, exactly as under the
//! old blocking call — and the caller initiates session (or
//! shared-variable) orphan recovery.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use crossbeam_channel::Sender;
use parking_lot::{Condvar, Mutex};

use msp_net::EndpointId;
use msp_types::{DependencyVector, Epoch, Lsn, MspError, MspId, MspResult, StateId};

use crate::envelope::Envelope;
use crate::runtime::{MspInner, ReleaseCmd};

/// One remote participant of a distributed flush.
struct RemoteLeg {
    msp: MspId,
    state: StateId,
    /// Request id of the most recent `FlushRequest` sent for this leg —
    /// the key under which the dispatcher finds us in `pending_flushes`.
    req_id: u64,
    last_sent: Instant,
    attempts: u32,
    done: bool,
}

struct GateState {
    legs: Vec<RemoteLeg>,
    remote_pending: usize,
    /// `true` while the local flush ticket is outstanding.
    local_pending: bool,
    failed: Option<MspError>,
}

impl GateState {
    fn settled(&self) -> bool {
        self.failed.is_some() || (self.remote_pending == 0 && !self.local_pending)
    }
}

/// The settle-side handle of a non-blocking distributed flush: resolves
/// once the local flush ticket and every remote `FlushRequest` have
/// acknowledged, or fails with the same error the blocking call would
/// have returned. Completion events arrive from the local flusher (via
/// the ticket waker) and from the dispatcher's `FlushReply` arm; each one
/// also nudges the owning MSP's reply-release stage.
pub(crate) struct DurabilityGate {
    state: Mutex<GateState>,
    cv: Condvar,
    /// The local log position the gate's local flush leg targets, if any.
    /// The reclaim floor folds this in: log bytes a still-pending gate
    /// waits on must never be truncated out from under it.
    local_lsn: Option<Lsn>,
    /// One nudge feed per runtime shard: the gate does not know which
    /// shard (if any) parked an envelope on it, so progress fans out to
    /// every release stage.
    nudge: Vec<Sender<ReleaseCmd>>,
}

/// Gate failures are produced locally from a closed set of variants;
/// reproduce them without requiring `MspError: Clone` (it holds
/// `io::Error`).
fn clone_gate_err(e: &MspError) -> MspError {
    match e {
        MspError::OrphanDependency { msp } => MspError::OrphanDependency { msp: *msp },
        MspError::FlushFailed {
            participant,
            reason,
        } => MspError::FlushFailed {
            participant: *participant,
            reason: reason.clone(),
        },
        MspError::Timeout => MspError::Timeout,
        _ => MspError::Shutdown,
    }
}

impl DurabilityGate {
    fn new(
        legs: Vec<RemoteLeg>,
        local_lsn: Option<Lsn>,
        nudge: Vec<Sender<ReleaseCmd>>,
    ) -> Arc<DurabilityGate> {
        let remote_pending = legs.len();
        Arc::new(DurabilityGate {
            state: Mutex::new(GateState {
                legs,
                remote_pending,
                local_pending: local_lsn.is_some(),
                failed: None,
            }),
            cv: Condvar::new(),
            local_lsn,
            nudge,
        })
    }

    /// The local LSN this gate still waits on, or `None` once settled
    /// (or when the gate never had a local leg).
    pub(crate) fn pending_local_target(&self) -> Option<Lsn> {
        let st = self.state.lock();
        if st.settled() {
            return None;
        }
        self.local_lsn
    }

    /// Non-blocking outcome check: `None` while legs are outstanding.
    pub(crate) fn poll(&self) -> Option<MspResult<()>> {
        let st = self.state.lock();
        if let Some(e) = &st.failed {
            return Some(Err(clone_gate_err(e)));
        }
        if st.settled() {
            return Some(Ok(()));
        }
        None
    }

    fn wake(&self) {
        self.cv.notify_all();
        for tx in &self.nudge {
            let _ = tx.send(ReleaseCmd::Nudge);
        }
    }

    /// A `FlushReply` arrived for remote leg `idx`. Duplicate and stale
    /// acknowledgements (an old request answered after a resend) are
    /// ignored via the `done` flag.
    pub(crate) fn remote_ack(&self, idx: usize, ok: bool) {
        let mut st = self.state.lock();
        if st.failed.is_some() {
            return;
        }
        let Some(leg) = st.legs.get_mut(idx) else {
            return;
        };
        if leg.done {
            return;
        }
        if ok {
            leg.done = true;
            st.remote_pending -= 1;
        } else {
            // The participant answered "lost": whoever depends on that
            // state is an orphan (§3.1).
            let msp = leg.msp;
            st.failed = Some(MspError::OrphanDependency { msp });
        }
        if st.settled() {
            drop(st);
            self.wake();
        }
    }

    /// The local flush ticket settled.
    fn local_settled(&self, ok: bool) {
        let mut st = self.state.lock();
        if st.failed.is_some() || !st.local_pending {
            return;
        }
        st.local_pending = false;
        if !ok {
            // Same class of failure as a blocking `flush_to` during
            // shutdown/crash: transient, no reply — the client resends.
            st.failed = Some(MspError::Shutdown);
        }
        if st.settled() {
            drop(st);
            self.wake();
        }
    }

    fn fail(&self, err: MspError) {
        let mut st = self.state.lock();
        if st.failed.is_some() {
            return;
        }
        st.failed = Some(err);
        drop(st);
        self.wake();
    }
}

impl MspInner {
    /// Flush everything `dv` depends on, across the domain — the blocking
    /// form: issue every leg, then settle in place. Returns
    /// `Err(OrphanDependency)` when some depended-upon state is lost.
    pub(crate) fn distributed_flush(&self, dv: &DependencyVector) -> MspResult<()> {
        match self.distributed_flush_issue(dv)? {
            None => Ok(()),
            Some(gate) => self.settle_gate(&gate),
        }
    }

    /// Issue phase: fire all remote `FlushRequest`s and the local flush
    /// ticket without blocking. Returns `Ok(None)` when nothing needs
    /// flushing (non-logging strategy, empty DV, or every leg elided by
    /// watermarks) and `Err(OrphanDependency)` when a dependency is
    /// already known lost — before anything is sent, exactly like the
    /// blocking path's pre-send DV walk.
    pub(crate) fn distributed_flush_issue(
        &self,
        dv: &DependencyVector,
    ) -> MspResult<Option<Arc<DurabilityGate>>> {
        if !self.is_log_based() {
            return Ok(None);
        }
        self.stats
            .distributed_flushes
            .fetch_add(1, Ordering::Relaxed);
        let me = self.cfg.id;
        let use_watermarks = self.cfg.durability_watermarks;
        let mut local: Option<Lsn> = None;
        let mut remote: Vec<(MspId, StateId)> = Vec::new();
        for (m, s) in dv.iter() {
            if m == me {
                local = Some(local.map_or(s.lsn, |l| l.max(s.lsn)));
            } else {
                // Fast path: already-known-lost dependencies fail without
                // a network round trip.
                if self.knowledge.read().is_orphan_dep(m, s) {
                    return Err(MspError::OrphanDependency { msp: m });
                }
                // Watermark elision: a dependency provably durable at the
                // peer (same epoch, strictly below its reported durable
                // end) needs no flush RPC — durability never un-happens.
                if use_watermarks && self.watermarks.lock().covers(m, s) {
                    self.stats.flush_rpcs_elided.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                remote.push((m, s));
            }
        }
        // Local elision happens at issue time too: `durable` is the
        // exclusive end of the durable prefix, so a record starting at
        // `lsn` is durable iff `durable > lsn`.
        let local_lsn = match local {
            Some(lsn) if use_watermarks && self.log().durable_lsn() > lsn => {
                self.stats.flushes_elided.fetch_add(1, Ordering::Relaxed);
                None
            }
            other => other,
        };
        if remote.is_empty() && local_lsn.is_none() {
            return Ok(None);
        }

        let now = Instant::now();
        let legs: Vec<RemoteLeg> = remote
            .iter()
            .map(|&(m, s)| RemoteLeg {
                msp: m,
                state: s,
                req_id: 0,
                last_sent: now,
                attempts: 0,
                done: false,
            })
            .collect();
        let gate = DurabilityGate::new(legs, local_lsn, self.nudge_senders());

        // Fire all remote requests first so they overlap with the local
        // flush (parallel flushes, §3.1 / §5.2).
        for (idx, &(m, s)) in remote.iter().enumerate() {
            self.send_flush_request(&gate, idx, m, s);
        }
        if let Some(lsn) = local_lsn {
            let ticket = self.log().flush_to_async(lsn);
            let g = Arc::clone(&gate);
            ticket.on_settle(move |ok| g.local_settled(ok));
        }
        Ok(Some(gate))
    }

    /// Settle phase, blocking form: wait on the gate, driving per-leg
    /// retries at the same cadence (and with the same stopped / orphan /
    /// retry-limit outcomes) as the old per-leg `recv_timeout` loop.
    pub(crate) fn settle_gate(&self, gate: &Arc<DurabilityGate>) -> MspResult<()> {
        loop {
            {
                let mut st = gate.state.lock();
                loop {
                    if let Some(e) = &st.failed {
                        return Err(clone_gate_err(e));
                    }
                    if st.settled() {
                        return Ok(());
                    }
                    if gate.cv.wait_for(&mut st, self.cfg.rpc_timeout).timed_out() {
                        break;
                    }
                }
            }
            self.drive_gate(gate);
        }
    }

    /// Retry driver shared by the blocking settle and the reply-release
    /// stage: fail the gate on shutdown or a newly learned lost
    /// dependency, resend overdue remote legs, give up past the retry
    /// limit. A no-op for gates that are settled or not yet overdue.
    pub(crate) fn drive_gate(&self, gate: &Arc<DurabilityGate>) {
        let mut resend: Vec<(usize, MspId, StateId)> = Vec::new();
        let mut stale: Vec<u64> = Vec::new();
        {
            let mut st = gate.state.lock();
            if st.settled() {
                return;
            }
            if self.stopped() {
                st.failed = Some(MspError::Shutdown);
                drop(st);
                gate.wake();
                return;
            }
            for i in 0..st.legs.len() {
                let leg = &st.legs[i];
                if leg.done || leg.last_sent.elapsed() < self.cfg.rpc_timeout {
                    continue;
                }
                let (m, s) = (leg.msp, leg.state);
                // While the participant is down we cannot know whether
                // our dependency survived; its recovery broadcast may
                // settle the question first.
                if self.knowledge.read().is_orphan_dep(m, s) {
                    st.failed = Some(MspError::OrphanDependency { msp: m });
                    break;
                }
                let leg = &mut st.legs[i];
                leg.attempts += 1;
                if leg.attempts > self.cfg.flush_retry_limit {
                    st.failed = Some(MspError::FlushFailed {
                        participant: m,
                        reason: "participant unreachable".into(),
                    });
                    break;
                }
                stale.push(leg.req_id);
                resend.push((i, m, s));
            }
            if st.failed.is_some() {
                drop(st);
                gate.wake();
                // Don't resend for a gate we just failed.
                resend.clear();
            }
        }
        {
            let mut pending = self.pending_flushes.lock();
            for id in stale {
                pending.remove(&id);
            }
        }
        for (idx, m, s) in resend {
            self.send_flush_request(gate, idx, m, s);
        }
    }

    /// Register leg `idx` under a fresh request id and send the
    /// `FlushRequest`. The registration happens before the send so the
    /// dispatcher can never race past an unrecorded ack.
    fn send_flush_request(
        &self,
        gate: &Arc<DurabilityGate>,
        idx: usize,
        target: MspId,
        state: StateId,
    ) {
        let req_id = self.next_req_id();
        {
            let mut st = gate.state.lock();
            if st.failed.is_some() {
                return;
            }
            let Some(leg) = st.legs.get_mut(idx) else {
                return;
            };
            if leg.done {
                return;
            }
            leg.req_id = req_id;
            leg.last_sent = Instant::now();
        }
        self.pending_flushes
            .lock()
            .insert(req_id, (Arc::clone(gate), idx));
        self.send(
            EndpointId::Msp(target),
            Envelope::FlushRequest {
                from: self.me(),
                req_id,
                epoch: state.epoch,
                lsn: state.lsn,
            },
        );
    }

    /// Fail every gate registered in `pending_flushes` (crash/stop path);
    /// parked envelopes — replies and outgoing sends — on those gates are
    /// then discarded by the release stage rather than ever leaving the
    /// process (a parked send's waiting worker observes the failure over
    /// its notify channel).
    pub(crate) fn fail_pending_gates(&self) {
        let drained: Vec<(Arc<DurabilityGate>, usize)> = self
            .pending_flushes
            .lock()
            .drain()
            .map(|(_, v)| v)
            .collect();
        for (gate, _) in drained {
            gate.fail(MspError::Shutdown);
        }
    }

    /// Serve a peer's flush request: make our state `(epoch, lsn)`
    /// durable, or report it lost.
    pub(crate) fn serve_flush_request(&self, epoch: Epoch, lsn: Lsn) -> bool {
        self.stats
            .flush_requests_served
            .fetch_add(1, Ordering::Relaxed);
        if !self.is_log_based() {
            return false;
        }
        // Torture-rig crash site: the serving participant dies inside a
        // peer's gate issue→settle window, so the peer's parked envelope
        // must ride out a flush-leg retry against our restart.
        if self.log().fault_point(msp_wal::CrashPoint::FlushServe) {
            return false;
        }
        let current = self.epoch();
        if epoch == current {
            // The state is in our current incarnation's log: flush it.
            self.log().flush_to(lsn).is_ok()
        } else if epoch < current {
            // From a previous incarnation: it survived iff it is at or
            // below the recovered LSN of the first recovery after it —
            // our own recovery history answers that. Anything that
            // survived a recovery is durable by construction.
            self.own_state_survived(epoch, lsn)
        } else {
            // A dependency on our future: can only mean a stale message
            // from before several crashes of the *requester*; refuse.
            false
        }
    }

    /// Absorb a recovery broadcast (§3.1/§4): log it (and flush, so the
    /// knowledge survives our own crashes), record it, then sweep idle
    /// sessions for orphans — busy sessions check at their next
    /// interception point (§4.1).
    pub(crate) fn absorb_recovery_broadcast(&self, rec: msp_types::RecoveryRecord) {
        if rec.msp == self.cfg.id {
            return;
        }
        if let Some(log) = &self.log {
            let lsn = log.append(&msp_wal::LogRecord::RecoveryAnnouncement(rec));
            // Durable knowledge: recovery broadcasts are sent exactly once
            // (at the peer's recovery), so losing the record would leave
            // permanently undetectable orphans. Crashes are rare; one
            // flush per peer crash is cheap.
            let _ = log.flush_to(lsn);
        }
        self.knowledge.write().record(rec);
        // The peer crashed and recovered: every watermark learned from its
        // previous incarnation is void. The next flush involving it will
        // go over the wire and re-learn the (new-epoch) watermark.
        self.watermarks.lock().invalidate(rec.msp);
        let cells: Vec<_> = self.sessions.lock().values().cloned().collect();
        let me = self.cfg.id;
        for cell in cells {
            // Idle sessions can be checked right now; their recovery runs
            // on the worker pool. Busy sessions are intercepted later.
            let schedule = match cell.state.try_lock() {
                Some(mut st) if !st.ended && self.knowledge.read().is_orphan(&st.dv, me) => {
                    st.needs_recovery = true;
                    true
                }
                _ => false,
            };
            if schedule {
                self.send_work(crate::runtime::WorkItem::RecoverSession(cell.id));
            }
        }
    }
}
