//! Client sessions: the paper's *recovery units* (§3.2).
//!
//! A session holds the client's private state (session variables), its
//! dependency vector, its request-sequencing state, and the bookkeeping
//! that drives checkpointing and recovery: the position stream, the log
//! consumption counter and the checkpoint anchor. Within a session, at
//! most one request is processed at a time (§2.1) — enforced by the
//! per-session mutex; requests over different sessions run concurrently on
//! the thread pool.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

use parking_lot::Mutex;

use msp_types::{DependencyVector, Epoch, Lsn, MspId, RequestSeq, SessionId, StateId};
use msp_wal::record::SessionCheckpointBody;
use msp_wal::PositionStream;

use crate::envelope::ReplyStatus;

/// An outgoing session this session has started at another MSP (§2.1,
/// Figure 3: `SEc` is the client of `SEs`). `next_seq` only advances
/// when the reply has been received and logged, so at most one request
/// per outgoing session is ever in flight — which is what lets the
/// release stage park a pipelined send behind its durability gate
/// without any per-target reordering risk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutgoingSession {
    pub id: SessionId,
    pub next_seq: RequestSeq,
}

/// The mutable state of one session, guarded by [`SessionCell::state`].
#[derive(Debug, Default)]
pub struct SessionState {
    /// Private session variables (name → value). Not logged: recovery
    /// re-executes service methods to reconstruct them (§3.2).
    pub vars: HashMap<String, Vec<u8>>,
    /// The session's dependency vector, including its self-entry.
    pub dv: DependencyVector,
    /// The session's state number: the LSN of its most recent log record.
    pub state_number: Lsn,
    /// Next expected request sequence number (§3.1).
    pub next_expected: RequestSeq,
    /// Buffered reply of the latest request, resent on duplicates (§3.1).
    pub buffered_reply: Option<(RequestSeq, ReplyStatus)>,
    /// Outgoing sessions, by target MSP.
    pub outgoing: BTreeMap<MspId, OutgoingSession>,
    /// Positions of this session's log records since its last checkpoint.
    pub positions: PositionStream,
    /// Log bytes this session has consumed since its last checkpoint —
    /// compared against the session checkpointing threshold.
    pub log_consumed: u64,
    /// LSN of the most recent session checkpoint, if any.
    pub last_ckpt: Option<Lsn>,
    /// LSN of the session's first log record (anchor when never
    /// checkpointed).
    pub first_lsn: Option<Lsn>,
    /// Set when a recovery broadcast marked this session a (potential)
    /// orphan while it was busy; the next interception point recovers it.
    pub needs_recovery: bool,
    /// The session observed its own end (SessionEnd logged).
    pub ended: bool,
}

impl SessionState {
    /// Update bookkeeping after this session appended a log record:
    /// state number, self dependency, position stream, byte counter.
    pub fn note_logged(&mut self, me: MspId, epoch: Epoch, lsn: Lsn, framed_bytes: u64) {
        self.state_number = lsn;
        self.dv.set(me, StateId::new(epoch, lsn));
        self.positions.push(lsn);
        self.log_consumed += framed_bytes;
        if self.first_lsn.is_none() {
            self.first_lsn = Some(lsn);
        }
    }

    /// Capture the checkpointable state (§3.2): session variables, the
    /// buffered reply, the next expected sequence number, and every
    /// outgoing session's next available sequence number. Control state is
    /// excluded by construction — checkpoints happen between requests.
    pub fn to_checkpoint_body(&self) -> SessionCheckpointBody {
        let mut vars: Vec<(String, Vec<u8>)> = self
            .vars
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        vars.sort_by(|a, b| a.0.cmp(&b.0));
        SessionCheckpointBody {
            vars,
            buffered_reply: match &self.buffered_reply {
                Some((seq, ReplyStatus::Ok(payload))) => Some((*seq, encode_reply_ok(payload))),
                Some((seq, ReplyStatus::Err(msg))) => Some((*seq, encode_reply_err(msg))),
                // Busy replies are transient infrastructure chatter, never
                // part of durable state.
                Some((_, ReplyStatus::Busy)) | None => None,
            },
            next_expected: self.next_expected,
            outgoing: self
                .outgoing
                .iter()
                .map(|(&m, o)| (m, o.id, o.next_seq))
                .collect(),
        }
    }

    /// Rebuild session state from a checkpoint body. The dependency
    /// vector restarts empty except for the self-entry at the checkpoint's
    /// LSN: the pre-checkpoint distributed flush made every prior
    /// dependency durable, so the checkpointed state can never be an
    /// orphan (§3.2).
    pub fn restore_from_checkpoint(
        body: &SessionCheckpointBody,
        me: MspId,
        epoch: Epoch,
        ckpt_lsn: Lsn,
    ) -> SessionState {
        let mut dv = DependencyVector::new();
        dv.set(me, StateId::new(epoch, ckpt_lsn));
        SessionState {
            vars: body.vars.iter().cloned().collect(),
            dv,
            state_number: ckpt_lsn,
            next_expected: body.next_expected,
            buffered_reply: body
                .buffered_reply
                .as_ref()
                .map(|(seq, bytes)| (*seq, decode_reply(bytes))),
            outgoing: body
                .outgoing
                .iter()
                .map(|&(m, id, next_seq)| (m, OutgoingSession { id, next_seq }))
                .collect(),
            positions: PositionStream::new(),
            log_consumed: 0,
            last_ckpt: Some(ckpt_lsn),
            first_lsn: Some(ckpt_lsn),
            needs_recovery: false,
            ended: false,
        }
    }

    /// A completely fresh session (first request ever, or replay of a
    /// session that was never checkpointed).
    pub fn fresh() -> SessionState {
        SessionState::default()
    }
}

/// Encoded reply status stored in checkpoint bodies and ReplyReceive
/// records: `[0][payload]` for Ok, `[1][utf8]` for Err.
pub fn encode_reply_ok(payload: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(1 + payload.len());
    v.push(0);
    v.extend_from_slice(payload);
    v
}

pub fn encode_reply_err(msg: &str) -> Vec<u8> {
    let mut v = Vec::with_capacity(1 + msg.len());
    v.push(1);
    v.extend_from_slice(msg.as_bytes());
    v
}

pub fn encode_reply(status: &ReplyStatus) -> Vec<u8> {
    match status {
        ReplyStatus::Ok(p) => encode_reply_ok(p),
        ReplyStatus::Err(m) => encode_reply_err(m),
        ReplyStatus::Busy => vec![2],
    }
}

pub fn decode_reply(bytes: &[u8]) -> ReplyStatus {
    match bytes.split_first() {
        Some((0, rest)) => ReplyStatus::Ok(rest.to_vec()),
        Some((1, rest)) => ReplyStatus::Err(String::from_utf8_lossy(rest).into_owned()),
        _ => ReplyStatus::Busy,
    }
}

/// A session's shared shell: the lock around its state plus the lock-free
/// fields the fuzzy MSP checkpoint reads without blocking anyone (§3.4).
pub struct SessionCell {
    pub id: SessionId,
    pub state: Mutex<SessionState>,
    /// Checkpoint anchor for the fuzzy MSP checkpoint: the LSN replay
    /// would start from. `u64::MAX` = no records yet.
    anchor_lsn: AtomicU64,
    anchor_is_ckpt: AtomicBool,
    /// MSP checkpoints taken since this session's last checkpoint — drives
    /// forced checkpoints of inactive sessions (§3.4).
    pub msp_ckpts_since_ckpt: AtomicU32,
}

impl SessionCell {
    pub fn new(id: SessionId, state: SessionState) -> SessionCell {
        let cell = SessionCell {
            id,
            state: Mutex::new(SessionState::default()),
            anchor_lsn: AtomicU64::new(u64::MAX),
            anchor_is_ckpt: AtomicBool::new(false),
            msp_ckpts_since_ckpt: AtomicU32::new(0),
        };
        cell.sync_anchor(&state);
        *cell.state.lock() = state;
        cell
    }

    /// Refresh the fuzzy-readable anchor from the (locked) state.
    pub fn sync_anchor(&self, state: &SessionState) {
        match (state.last_ckpt, state.first_lsn) {
            (Some(c), _) => {
                self.anchor_lsn.store(c.0, Ordering::Release);
                self.anchor_is_ckpt.store(true, Ordering::Release);
            }
            (None, Some(f)) => {
                self.anchor_lsn.store(f.0, Ordering::Release);
                self.anchor_is_ckpt.store(false, Ordering::Release);
            }
            (None, None) => {
                self.anchor_lsn.store(u64::MAX, Ordering::Release);
            }
        }
    }

    /// `(anchor, is_checkpoint)` without taking the state lock.
    pub fn anchor(&self) -> Option<(Lsn, bool)> {
        let v = self.anchor_lsn.load(Ordering::Acquire);
        if v == u64::MAX {
            None
        } else {
            Some((Lsn(v), self.anchor_is_ckpt.load(Ordering::Acquire)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn note_logged_updates_everything() {
        let mut s = SessionState::fresh();
        s.note_logged(MspId(1), Epoch(0), Lsn(512), 60);
        assert_eq!(s.state_number, Lsn(512));
        assert_eq!(s.first_lsn, Some(Lsn(512)));
        assert_eq!(s.dv.get(MspId(1)), Some(StateId::new(Epoch(0), Lsn(512))));
        assert_eq!(s.positions.len(), 1);
        assert_eq!(s.log_consumed, 60);

        s.note_logged(MspId(1), Epoch(0), Lsn(600), 40);
        assert_eq!(s.first_lsn, Some(Lsn(512)), "first LSN is sticky");
        assert_eq!(s.log_consumed, 100);
    }

    #[test]
    fn checkpoint_roundtrip_restores_state() {
        let mut s = SessionState::fresh();
        s.vars.insert("cart".into(), vec![1, 2, 3]);
        s.next_expected = RequestSeq(7);
        s.buffered_reply = Some((RequestSeq(6), ReplyStatus::Ok(vec![9])));
        s.outgoing.insert(
            MspId(2),
            OutgoingSession {
                id: SessionId(42),
                next_seq: RequestSeq(3),
            },
        );
        s.dv.bump(MspId(5), StateId::new(Epoch(0), Lsn(999)));

        let body = s.to_checkpoint_body();
        let r = SessionState::restore_from_checkpoint(&body, MspId(1), Epoch(0), Lsn(4096));
        assert_eq!(r.vars.get("cart"), Some(&vec![1, 2, 3]));
        assert_eq!(r.next_expected, RequestSeq(7));
        assert_eq!(
            r.buffered_reply,
            Some((RequestSeq(6), ReplyStatus::Ok(vec![9])))
        );
        assert_eq!(
            r.outgoing.get(&MspId(2)),
            Some(&OutgoingSession {
                id: SessionId(42),
                next_seq: RequestSeq(3)
            })
        );
        // The pre-checkpoint flush stabilized old dependencies: only the
        // self entry survives.
        assert_eq!(r.dv.get(MspId(5)), None);
        assert_eq!(r.dv.get(MspId(1)), Some(StateId::new(Epoch(0), Lsn(4096))));
        assert_eq!(r.state_number, Lsn(4096));
        assert_eq!(r.last_ckpt, Some(Lsn(4096)));
    }

    #[test]
    fn busy_replies_are_not_checkpointed() {
        let mut s = SessionState::fresh();
        s.buffered_reply = Some((RequestSeq(1), ReplyStatus::Busy));
        assert_eq!(s.to_checkpoint_body().buffered_reply, None);
    }

    #[test]
    fn err_replies_survive_checkpoint() {
        let mut s = SessionState::fresh();
        s.buffered_reply = Some((RequestSeq(1), ReplyStatus::Err("boom".into())));
        let body = s.to_checkpoint_body();
        let r = SessionState::restore_from_checkpoint(&body, MspId(1), Epoch(0), Lsn(512));
        assert_eq!(
            r.buffered_reply,
            Some((RequestSeq(1), ReplyStatus::Err("boom".into())))
        );
    }

    #[test]
    fn reply_codec_roundtrips() {
        for status in [
            ReplyStatus::Ok(vec![1, 2, 3]),
            ReplyStatus::Ok(vec![]),
            ReplyStatus::Err("nope".into()),
        ] {
            assert_eq!(decode_reply(&encode_reply(&status)), status);
        }
    }

    #[test]
    fn cell_anchor_tracks_state() {
        let cell = SessionCell::new(SessionId(1), SessionState::fresh());
        assert_eq!(cell.anchor(), None);
        {
            let mut st = cell.state.lock();
            st.note_logged(MspId(1), Epoch(0), Lsn(512), 10);
            cell.sync_anchor(&st);
        }
        assert_eq!(cell.anchor(), Some((Lsn(512), false)));
        {
            let mut st = cell.state.lock();
            st.last_ckpt = Some(Lsn(1024));
            cell.sync_anchor(&st);
        }
        assert_eq!(cell.anchor(), Some((Lsn(1024), true)));
    }
}
