//! The MSP runtime: thread pool, request queue, dispatch, and the normal
//! execution path of §3.
//!
//! One MSP runtime instance ([`MspInner`] behind an [`MspHandle`]) is one
//! middleware server process. Threads:
//!
//! * **dispatcher** — drains the network endpoint and routes envelopes:
//!   requests to the worker queue, replies/flush-acks to their waiting
//!   callers, infrastructure traffic to the infra threads;
//! * **workers** (the paper's thread pool, §2.1) — process requests,
//!   run session orphan recovery and forced checkpoints. The pool is
//!   oversubscribed in threads but bounded by run tokens, so a worker
//!   waiting out a pipelined durability gate or RPC reply hands its
//!   capacity to a sibling thread instead of idling;
//! * **infra** — serve distributed-log-flush requests and recovery
//!   broadcasts; kept separate from the workers so that flush service
//!   can never deadlock behind requests that are themselves waiting for
//!   remote flushes;
//! * **release** — the pending-release stage of the asynchronous
//!   durability pipeline: *envelopes* (client replies and cross-domain
//!   outgoing sends alike) whose distributed flush was issued but not
//!   yet settled are parked here (the envelope waits, not the worker)
//!   and leave in per-session order once their gate settles;
//! * **checkpointer** — takes the periodic fuzzy MSP checkpoint (§3.4).
//!
//! A *crash* tears all of this down, discarding every volatile structure
//! (the un-flushed log tail included); re-`start`ing over the same disk
//! runs MSP crash recovery (§4.3) before going live.

use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam_channel::{Receiver, Sender};
use parking_lot::{Mutex, RwLock};

use msp_kv::KvStore;
use msp_net::{Endpoint, EndpointId, Network};
use msp_types::codec;
use msp_types::{
    DependencyVector, Epoch, Lsn, MspError, MspId, MspResult, RecoveryKnowledge, RequestSeq,
    SessionId, StateId,
};
use msp_wal::{
    CrashPoint, Disk, DiskModel, FaultPlan, FlushPolicy, LogAnchor, LogRecord, PhysicalLog,
    StripedLog, Wal, WalReplayCache,
};

use crate::config::{ClusterConfig, MspConfig, SessionStrategy};
use crate::envelope::{DurableHint, Envelope, ReplyMsg, ReplyStatus, RequestMsg};
use crate::service::{take_fatal, ServiceContext, ServiceFn};
use crate::session::{OutgoingSession, SessionCell, SessionState};
use crate::shared::SharedRegistry;
use crate::watermark::WatermarkTable;

/// Globally unique session-id source (clients and outgoing sessions share
/// the id space; the simulation runs in one process).
static SESSION_IDS: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh, globally unique session id.
pub fn next_session_id() -> SessionId {
    SessionId(SESSION_IDS.fetch_add(1, Ordering::Relaxed))
}

/// Reserved method name ending a session (§2.1: sessions are started and
/// ended by client requests).
pub const END_SESSION_METHOD: &str = "__end_session";

thread_local! {
    /// Whether this thread currently holds a run token of its MSP's
    /// worker pool. Only token holders hand capacity back while waiting
    /// out a pipelined gate or reply — infra, release, and recovery
    /// threads reaching the same waits just wait.
    static HOLDS_RUN_TOKEN: Cell<bool> = const { Cell::new(false) };
    /// Which runtime shard's token pool this worker thread belongs to.
    /// Set once at worker spawn; other threads keep the 0 default and
    /// never hold run tokens, so they never consult it.
    static SHARD_INDEX: Cell<usize> = const { Cell::new(0) };
}
/// Worker threads spawned per configured worker. Concurrency is bounded
/// by run tokens (== `cfg.workers`); the spare threads exist so that a
/// token released by a parked worker always has an idle thread to land
/// on, even when every other token holder parks too.
const WORKER_OVERSUBSCRIPTION: usize = 4;
/// Poll interval of token and notify waits, bounded so `stopped` is
/// observed promptly.
const PARK_POLL: Duration = Duration::from_millis(20);

/// Counting semaphore bounding how many worker threads *run* at once: a
/// bounded channel preloaded with one unit per configured worker. The
/// pool spawns [`WORKER_OVERSUBSCRIPTION`]× more threads than tokens; a
/// worker that parks on a pipelined durability gate or RPC reply hands
/// its token back so a sibling thread runs a *fresh* request start to
/// finish, and re-acquires it on wake. No request ever executes inside
/// another's wait, so per-request latency stays its own — unlike
/// synchronous work stealing, whose nested frames serialize the stack.
pub(crate) struct RunTokens {
    tx: Sender<()>,
    rx: Receiver<()>,
    /// Workers whose wait just ended and who are re-acquiring. Fresh-item
    /// acquisition defers to them: a resuming request is mid-latency, a
    /// queued one has not started its clock — so priority here bounds
    /// per-request tail latency instead of letting starts starve resumes.
    resume_waiters: AtomicU64,
}

impl RunTokens {
    fn new(n: usize) -> RunTokens {
        let n = n.max(1);
        let (tx, rx) = crossbeam_channel::bounded(n);
        for _ in 0..n {
            tx.send(()).expect("preload bounded(n)");
        }
        RunTokens {
            tx,
            rx,
            resume_waiters: AtomicU64::new(0),
        }
    }

    /// Priority acquisition for a worker resuming from a pipelined wait:
    /// block until a token is free, polling `stopped`; false = stopping.
    fn acquire_resume(&self, stopped: &AtomicBool) -> bool {
        self.resume_waiters.fetch_add(1, Ordering::SeqCst);
        let got = loop {
            match self.rx.recv_timeout(PARK_POLL) {
                Ok(()) => break true,
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => {
                    if stopped.load(Ordering::Relaxed) {
                        break false;
                    }
                }
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => break false,
            }
        };
        self.resume_waiters.fetch_sub(1, Ordering::SeqCst);
        got
    }

    /// Acquisition for a fresh work item: yields to resuming workers —
    /// a token grabbed while one waits is handed straight back. Deferral
    /// cannot deadlock (resumers never depend on local fresh items) and
    /// cannot starve (`resume_waiters` drains to zero between waves).
    fn acquire_fresh(&self, stopped: &AtomicBool) -> bool {
        loop {
            if stopped.load(Ordering::Relaxed) {
                return false;
            }
            if self.resume_waiters.load(Ordering::SeqCst) > 0 {
                std::thread::sleep(Duration::from_micros(200));
                continue;
            }
            match self.rx.recv_timeout(Duration::from_millis(1)) {
                Ok(()) => {
                    if self.resume_waiters.load(Ordering::SeqCst) > 0 {
                        let _ = self.tx.try_send(());
                        std::thread::sleep(Duration::from_micros(200));
                        continue;
                    }
                    return true;
                }
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => return false,
            }
        }
    }

    /// Return a token. Every release pairs with an acquire and the
    /// channel is bounded at the preload count, so this cannot overflow.
    fn release(&self) {
        let _ = self.tx.try_send(());
    }
}

/// Work consumed by the worker pool.
pub(crate) enum WorkItem {
    Request(RequestMsg),
    RecoverSession(SessionId),
    ForceSessionCheckpoint(SessionId),
    /// A parked reply's durability gate failed: run the same
    /// orphan-recovery / transient-drop logic a failed blocking flush
    /// would have run inline.
    GateFailed {
        session: SessionId,
        seq: RequestSeq,
        reply_to: EndpointId,
        err: MspError,
    },
}

impl WorkItem {
    /// The session a work item belongs to — the shard-routing key. Every
    /// variant carries one, so a session's items always land on the same
    /// shard's queue (per-session ordering needs no cross-shard locks).
    fn session(&self) -> SessionId {
        match self {
            WorkItem::Request(req) => req.session,
            WorkItem::RecoverSession(id) | WorkItem::ForceSessionCheckpoint(id) => *id,
            WorkItem::GateFailed { session, .. } => *session,
        }
    }
}

/// An envelope held back by the pending-release stage until its
/// durability gate settles. For a reply, the session's state (buffered
/// reply, next expected sequence number) was already committed by the
/// worker; for an outgoing send, the worker is in `outgoing_call` with
/// its run token handed back to the pool until `notify` fires. Either
/// way no pool *capacity* waits here — only the envelope.
pub(crate) struct ParkedEnvelope {
    pub(crate) gate: Arc<crate::flush::DurabilityGate>,
    /// Ordering key: the *local* session the envelope belongs to — the
    /// inbound session for a reply, the parent session for an outgoing
    /// send. Entries of one session leave in park order.
    pub(crate) session: SessionId,
    pub(crate) kind: ParkedKind,
}

/// What a parked envelope releases into once its gate settles.
pub(crate) enum ParkedKind {
    /// A client-facing reply; a failed gate becomes [`WorkItem::GateFailed`]
    /// (no worker is waiting for it).
    Reply {
        seq: RequestSeq,
        reply_to: EndpointId,
        status: ReplyStatus,
    },
    /// A cross-domain outgoing request; the issuing worker observes the
    /// outcome over `notify`, so a failed gate flows back through
    /// `outgoing_call`'s error path into the existing orphan recovery.
    Send {
        to: EndpointId,
        env: Envelope,
        notify: Sender<MspResult<()>>,
    },
}

/// Commands consumed by the release thread.
pub(crate) enum ReleaseCmd {
    /// Park an envelope until its gate settles.
    Park(ParkedEnvelope),
    /// A gate made progress — rescan the parked list now instead of
    /// waiting for the next tick.
    Nudge,
}

/// Per-session FIFO of the release stage: entry `i` may only leave once
/// no earlier parked entry of the same session remains. Shared with the
/// release-order property tests.
pub(crate) fn fifo_blocked<T>(entries: &[T], i: usize, session: impl Fn(&T) -> SessionId) -> bool {
    entries[..i]
        .iter()
        .any(|e| session(e) == session(&entries[i]))
}

/// Infrastructure traffic handled off the worker pool.
pub(crate) enum InfraItem {
    Flush {
        from: EndpointId,
        req_id: u64,
        epoch: Epoch,
        lsn: Lsn,
    },
    Recovery(msp_types::RecoveryRecord),
}

/// Operation counters of a runtime.
#[derive(Debug, Default)]
pub struct RuntimeStats {
    pub requests: AtomicU64,
    pub replayed_requests: AtomicU64,
    pub busy_replies: AtomicU64,
    pub duplicate_requests: AtomicU64,
    pub orphan_msgs_dropped: AtomicU64,
    pub orphan_recoveries: AtomicU64,
    pub session_checkpoints: AtomicU64,
    pub shared_checkpoints: AtomicU64,
    pub msp_checkpoints: AtomicU64,
    /// MSP checkpoints triggered by the byte-driven scheduler (log growth
    /// since the last anchor crossed `checkpoint_interval_bytes`) rather
    /// than the periodic timer.
    pub checkpoints_scheduled: AtomicU64,
    pub crash_recoveries: AtomicU64,
    pub distributed_flushes: AtomicU64,
    pub flush_requests_served: AtomicU64,
    /// Durability gates currently parked in the pending-release stage
    /// (a gauge: incremented at park, decremented at release/failure).
    pub gates_pending: AtomicU64,
    /// Replies released asynchronously by the pending-release stage after
    /// their gate settled (vs sent inline on the blocking path).
    pub async_reply_releases: AtomicU64,
    /// Outgoing-send gates currently parked in the release stage (a
    /// gauge, like `gates_pending` but for the send path).
    pub send_gates_pending: AtomicU64,
    /// Outgoing sends emitted by the release stage after their gate
    /// settled (vs flushed inline on the blocking-send path).
    pub async_send_releases: AtomicU64,
    /// Total nanoseconds workers spent inside `outgoing_call` — the
    /// per-hop wait of a call chain (durability gate + RPC round trip),
    /// accumulated on both durability modes so benches can compare the
    /// per-hop breakdown. Divide by requests × m for the mean hop.
    pub chain_hop_wait_nanos: AtomicU64,
    /// Times a worker handed its run token back to the pool while one of
    /// its pipelined sends waited out a durability gate or its reply (a
    /// sibling thread ran fresh requests on the freed capacity).
    pub worker_parks: AtomicU64,
    /// Local log flushes skipped because the durable LSN already covered
    /// the dependency.
    pub flushes_elided: AtomicU64,
    /// Remote flush RPCs skipped thanks to the durability-watermark table.
    pub flush_rpcs_elided: AtomicU64,
    /// Wall-clock nanoseconds of the last crash recovery's analysis scan.
    pub recovery_analysis_nanos: AtomicU64,
    /// Wall-clock nanoseconds of the post-recovery MSP checkpoint.
    pub recovery_checkpoint_nanos: AtomicU64,
    /// Wall-clock nanoseconds of the parallel (or serial) session-replay
    /// phase — its makespan, not the per-session sum. Zero until the
    /// replay pool finishes.
    pub recovery_replay_nanos: AtomicU64,
    /// Sessions replayed by the dedicated recovery pool.
    pub recovery_pool_sessions: AtomicU64,
}

/// Snapshot of [`RuntimeStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStatsSnapshot {
    pub requests: u64,
    pub replayed_requests: u64,
    pub busy_replies: u64,
    pub duplicate_requests: u64,
    pub orphan_msgs_dropped: u64,
    pub orphan_recoveries: u64,
    pub session_checkpoints: u64,
    pub shared_checkpoints: u64,
    pub msp_checkpoints: u64,
    pub checkpoints_scheduled: u64,
    pub crash_recoveries: u64,
    pub distributed_flushes: u64,
    pub flush_requests_served: u64,
    pub gates_pending: u64,
    pub async_reply_releases: u64,
    pub send_gates_pending: u64,
    pub async_send_releases: u64,
    pub chain_hop_wait_nanos: u64,
    pub worker_parks: u64,
    pub flushes_elided: u64,
    pub flush_rpcs_elided: u64,
    pub recovery_analysis_nanos: u64,
    pub recovery_checkpoint_nanos: u64,
    pub recovery_replay_nanos: u64,
    pub recovery_pool_sessions: u64,
}

impl RuntimeStats {
    pub fn snapshot(&self) -> RuntimeStatsSnapshot {
        RuntimeStatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            replayed_requests: self.replayed_requests.load(Ordering::Relaxed),
            busy_replies: self.busy_replies.load(Ordering::Relaxed),
            duplicate_requests: self.duplicate_requests.load(Ordering::Relaxed),
            orphan_msgs_dropped: self.orphan_msgs_dropped.load(Ordering::Relaxed),
            orphan_recoveries: self.orphan_recoveries.load(Ordering::Relaxed),
            session_checkpoints: self.session_checkpoints.load(Ordering::Relaxed),
            shared_checkpoints: self.shared_checkpoints.load(Ordering::Relaxed),
            msp_checkpoints: self.msp_checkpoints.load(Ordering::Relaxed),
            checkpoints_scheduled: self.checkpoints_scheduled.load(Ordering::Relaxed),
            crash_recoveries: self.crash_recoveries.load(Ordering::Relaxed),
            distributed_flushes: self.distributed_flushes.load(Ordering::Relaxed),
            flush_requests_served: self.flush_requests_served.load(Ordering::Relaxed),
            gates_pending: self.gates_pending.load(Ordering::Relaxed),
            async_reply_releases: self.async_reply_releases.load(Ordering::Relaxed),
            send_gates_pending: self.send_gates_pending.load(Ordering::Relaxed),
            async_send_releases: self.async_send_releases.load(Ordering::Relaxed),
            chain_hop_wait_nanos: self.chain_hop_wait_nanos.load(Ordering::Relaxed),
            worker_parks: self.worker_parks.load(Ordering::Relaxed),
            flushes_elided: self.flushes_elided.load(Ordering::Relaxed),
            flush_rpcs_elided: self.flush_rpcs_elided.load(Ordering::Relaxed),
            recovery_analysis_nanos: self.recovery_analysis_nanos.load(Ordering::Relaxed),
            recovery_checkpoint_nanos: self.recovery_checkpoint_nanos.load(Ordering::Relaxed),
            recovery_replay_nanos: self.recovery_replay_nanos.load(Ordering::Relaxed),
            recovery_pool_sessions: self.recovery_pool_sessions.load(Ordering::Relaxed),
        }
    }
}

/// Per-shard operation counters (the per-shard breakdown next to the
/// process-wide [`RuntimeStats`]).
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Requests executed by this shard's worker pool.
    pub requests: AtomicU64,
    /// Envelopes (replies and sends) emitted by this shard's
    /// pending-release stage after their gate settled.
    pub releases: AtomicU64,
    /// Times a worker of this shard handed its run token back during a
    /// pipelined wait.
    pub worker_parks: AtomicU64,
}

/// Snapshot of [`ShardStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStatsSnapshot {
    pub requests: u64,
    pub releases: u64,
    pub worker_parks: u64,
}

impl ShardStats {
    fn snapshot(&self) -> ShardStatsSnapshot {
        ShardStatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            releases: self.releases.load(Ordering::Relaxed),
            worker_parks: self.worker_parks.load(Ordering::Relaxed),
        }
    }
}

/// One runtime shard: an independent worker pool (queue + run tokens)
/// and pending-release stage. Sessions are assigned to shards by a
/// consistent hash of their id, so one session's requests, parked
/// envelopes and recovery items all serialize through one shard while
/// different sessions spread across all of them. State that is genuinely
/// global — the sessions map, shared variables, recovery knowledge, the
/// log itself — stays on [`MspInner`].
pub(crate) struct ShardRt {
    pub(crate) work_tx: Sender<WorkItem>,
    /// Run-token semaphore of this shard's worker pool (see
    /// [`RunTokens`]): the oversubscribed worker threads acquire a token
    /// to run an item, and pipelined waits hand the token back so the
    /// pool loses no capacity to a wait.
    pub(crate) run_tokens: RunTokens,
    /// Feed of this shard's pending-release stage. Always present; the
    /// release thread only runs under `LogBased` (the only strategy that
    /// creates gates).
    pub(crate) release_tx: Sender<ReleaseCmd>,
    pub(crate) stats: ShardStats,
}

/// Consistent shard route: Fibonacci multiply-shift over the session id
/// (same family as the WAL's stripe router, so neither inherits the
/// other's collisions on sequential ids).
fn shard_route(id: u64, n: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    (id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % n
}

/// Everything shared between an MSP's threads.
pub struct MspInner {
    pub(crate) cfg: MspConfig,
    pub(crate) cluster: ClusterConfig,
    pub(crate) net: Network<Envelope>,
    /// Present only under the `LogBased` strategy. Single-log or striped
    /// behind the [`Wal`] facade.
    pub(crate) log: Option<Wal>,
    pub(crate) anchor: Option<LogAnchor>,
    pub(crate) epoch: AtomicU32,
    pub(crate) knowledge: RwLock<RecoveryKnowledge>,
    /// Per-peer durable watermarks (flush-RPC elision). Volatile: rebuilt
    /// empty on every start.
    pub(crate) watermarks: Mutex<WatermarkTable>,
    pub(crate) sessions: Mutex<HashMap<SessionId, Arc<SessionCell>>>,
    /// Tombstones of ended sessions. A stale duplicate of an old request
    /// can be dequeued *after* the session's `__end_session` was
    /// processed (workers race on the queue); without a tombstone,
    /// create-on-first-use would resurrect the session with a fresh
    /// `next_expected` and re-execute the duplicate — a lost-update-free
    /// but exactly-once-violating double execution. Seeded from
    /// `SessionEnd` records during crash recovery; lock order is
    /// `sessions` → `ended_sessions` everywhere.
    pub(crate) ended_sessions: Mutex<HashSet<SessionId>>,
    pub(crate) shared: SharedRegistry,
    pub(crate) services: HashMap<String, ServiceFn>,
    /// The runtime shards (at least one): per-shard worker queue, run
    /// tokens and release stage. Sessions hash onto them via
    /// [`MspInner::shard_of`].
    pub(crate) shards: Vec<ShardRt>,
    pub(crate) infra_tx: Sender<InfraItem>,
    pub(crate) pending_replies: Mutex<HashMap<(SessionId, RequestSeq), Sender<ReplyMsg>>>,
    /// Outstanding flush RPCs: request id → (gate, remote-leg index).
    pub(crate) pending_flushes: Mutex<HashMap<u64, (Arc<crate::flush::DurabilityGate>, usize)>>,
    pub(crate) pending_state: Mutex<HashMap<u64, Sender<Option<Vec<u8>>>>>,
    pub(crate) req_ids: AtomicU64,
    pub(crate) stopped: AtomicBool,
    pub(crate) stats: RuntimeStats,
    /// Shared read-only block cache over the crash-time log; present only
    /// between crash recovery's analysis scan and the end of parallel
    /// replay. Inline recoveries triggered by early-arriving requests use
    /// it too.
    pub(crate) replay_cache: Mutex<Option<Arc<WalReplayCache>>>,
    /// `false` while crashed sessions are still awaiting replay; set by
    /// the recovery pool when the replay phase completes.
    pub(crate) recovery_done: AtomicBool,
    /// Buffer-pool counters accumulated from replay pools already
    /// retired (the live pool's counters are read directly); together
    /// they give the process-lifetime pool totals.
    pub(crate) retired_pool_stats: Mutex<msp_wal::PoolStatsSnapshot>,
}

impl MspInner {
    pub(crate) fn me(&self) -> EndpointId {
        EndpointId::Msp(self.cfg.id)
    }

    pub(crate) fn epoch(&self) -> Epoch {
        Epoch(self.epoch.load(Ordering::Acquire))
    }

    pub(crate) fn stopped(&self) -> bool {
        self.stopped.load(Ordering::Acquire)
    }

    pub(crate) fn send(&self, to: EndpointId, env: Envelope) {
        self.net.send(self.me(), to, env);
    }

    pub(crate) fn next_req_id(&self) -> u64 {
        self.req_ids.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn is_log_based(&self) -> bool {
        self.log.is_some()
    }

    /// Our own durable watermark, for piggybacking on intra-domain
    /// messages and flush acknowledgements. `None` when watermarks are
    /// disabled or there is no log.
    pub(crate) fn own_durable_hint(&self) -> Option<DurableHint> {
        if !self.cfg.durability_watermarks {
            return None;
        }
        let log = self.log.as_ref()?;
        Some(DurableHint {
            msp: self.cfg.id,
            epoch: self.epoch(),
            durable: log.durable_lsn(),
        })
    }

    /// Our recovery knowledge, for gossiping on intra-domain traffic
    /// (see [`crate::envelope::RequestMsg::recoveries`]). Empty when
    /// nothing in the domain has ever crashed — the common case.
    pub(crate) fn own_recovery_gossip(&self) -> Vec<msp_types::RecoveryRecord> {
        if !self.is_log_based() {
            return Vec::new();
        }
        self.knowledge.read().iter().collect()
    }

    /// Absorb gossiped recovery records. Runs on the dispatcher, BEFORE
    /// the carrying message is delivered — a worker that then merges the
    /// message's DV is guaranteed to already know about any recovery the
    /// sender knew about, so a new-epoch entry can never mask an orphaned
    /// old-epoch one. The full absorb (log + flush + session sweep) runs
    /// at most once per peer crash; afterwards `covers` filters the
    /// gossip with a read lock.
    pub(crate) fn absorb_recovery_gossip(&self, recs: &[msp_types::RecoveryRecord]) {
        if recs.is_empty() || !self.is_log_based() {
            return;
        }
        for rec in recs {
            if rec.msp == self.cfg.id || self.knowledge.read().covers(rec) {
                continue;
            }
            self.absorb_recovery_broadcast(*rec);
        }
    }

    /// Feed a peer's durable hint into the watermark table. Hints from an
    /// epoch older than the peer's current known incarnation are stale
    /// in-flight messages and are dropped — they must never resurrect a
    /// watermark that a recovery broadcast invalidated.
    pub(crate) fn absorb_durable_hint(&self, hint: &DurableHint) {
        if !self.cfg.durability_watermarks || !self.is_log_based() || hint.msp == self.cfg.id {
            return;
        }
        if let Some(current) = self.knowledge.read().current_epoch(hint.msp) {
            if hint.epoch < current {
                return;
            }
        }
        self.watermarks
            .lock()
            .note(hint.msp, hint.epoch, hint.durable);
    }

    /// The log, for paths that only run under `LogBased`.
    pub(crate) fn log(&self) -> &Wal {
        self.log
            .as_ref()
            .expect("operation requires the LogBased strategy")
    }

    /// The runtime shard owning `session`.
    pub(crate) fn shard_of(&self, session: SessionId) -> usize {
        shard_route(session.0, self.shards.len())
    }

    /// Route a work item to its session's shard.
    pub(crate) fn send_work(&self, item: WorkItem) {
        let shard = self.shard_of(item.session());
        let _ = self.shards[shard].work_tx.send(item);
    }

    /// Park an envelope in its session's release stage. `false` means the
    /// stage is gone (stopping) and the envelope was not parked.
    pub(crate) fn park_envelope(&self, parked: ParkedEnvelope) -> bool {
        let shard = self.shard_of(parked.session);
        self.shards[shard]
            .release_tx
            .send(ReleaseCmd::Park(parked))
            .is_ok()
    }

    /// One nudge sender per shard, for gates: a gate does not know which
    /// shard parked on it (the blocking settle path parks nothing), so
    /// progress nudges fan out to every release stage. Nudges are rare
    /// (per gate-leg settlement, not per request) and an idle stage
    /// absorbs one in a `try_recv`.
    pub(crate) fn nudge_senders(&self) -> Vec<Sender<ReleaseCmd>> {
        self.shards.iter().map(|s| s.release_tx.clone()).collect()
    }

    /// Look up or create the session cell for an incoming session id.
    /// `None` means the session already ended (tombstoned) — the request
    /// is stale traffic and must not resurrect it.
    pub(crate) fn get_or_create_session(&self, id: SessionId) -> Option<Arc<SessionCell>> {
        let mut sessions = self.sessions.lock();
        if self.ended_sessions.lock().contains(&id) {
            return None;
        }
        Some(Arc::clone(sessions.entry(id).or_insert_with(|| {
            Arc::new(SessionCell::new(id, SessionState::fresh()))
        })))
    }

    /// Tombstone `id` and drop its cell, atomically w.r.t.
    /// [`Self::get_or_create_session`] (both under the `sessions` lock).
    pub(crate) fn tombstone_session(&self, id: SessionId) {
        let mut sessions = self.sessions.lock();
        self.ended_sessions.lock().insert(id);
        sessions.remove(&id);
    }

    pub(crate) fn session(&self, id: SessionId) -> Option<Arc<SessionCell>> {
        self.sessions.lock().get(&id).cloned()
    }

    // ------------------------------------------------------------------
    // Request processing (normal execution, §3)
    // ------------------------------------------------------------------

    pub(crate) fn handle_request(self: &Arc<Self>, req: RequestMsg) {
        let Some(cell) = self.get_or_create_session(req.session) else {
            // The session ended. An END_SESSION resend (lost ack) is
            // re-acknowledged — ending is idempotent and the SessionEnd
            // is already logged; anything else is a stale duplicate of a
            // request whose reply the client already consumed, dropped
            // before it can resurrect the session and re-execute.
            if req.method == END_SESSION_METHOD {
                // The first end's acknowledgement is gated on durability,
                // and the resend may overtake that still-parked gate — so
                // this re-ack must not leak an earlier acknowledgement.
                // The ended cell (and its DV) are gone, but the log is
                // prefix-flushed: flushing to the current end covers the
                // session's records exactly as the first ack's gate did.
                if self.is_log_based() {
                    let log = self.log();
                    if log.flush_to(log.end_lsn()).is_err() {
                        return; // no ack — the client's resend retries
                    }
                }
                self.send(
                    req.reply_to,
                    Envelope::Reply(ReplyMsg {
                        session: req.session,
                        seq: req.seq,
                        status: ReplyStatus::Ok(Vec::new()),
                        sender_dv: None,
                        durable_hint: None,
                        recoveries: self.own_recovery_gossip(),
                    }),
                );
            }
            return;
        };
        // At most one request at a time per session (§2.1); a failed
        // try-lock means the session is busy processing, checkpointing or
        // recovering — tell the client to back off and resend (§5.4).
        let Some(mut st) = cell.state.try_lock() else {
            self.send_busy(&req);
            return;
        };
        if st.ended {
            return;
        }
        match &self.cfg.strategy {
            SessionStrategy::LogBased => self.handle_request_logbased(&cell, &mut st, req),
            SessionStrategy::NoLog => self.handle_request_plain(&mut st, req, None, None),
            SessionStrategy::Psession(db) => {
                self.handle_request_plain(&mut st, req, Some(Arc::clone(db)), None)
            }
            SessionStrategy::StateServer(server) => {
                self.handle_request_plain(&mut st, req, None, Some(*server))
            }
        }
    }

    fn send_busy(&self, req: &RequestMsg) {
        self.stats.busy_replies.fetch_add(1, Ordering::Relaxed);
        self.send(
            req.reply_to,
            Envelope::Reply(ReplyMsg {
                session: req.session,
                seq: req.seq,
                status: ReplyStatus::Busy,
                sender_dv: None,
                durable_hint: None,
                recoveries: self.own_recovery_gossip(),
            }),
        );
    }

    /// Duplicate / out-of-order filtering (§3.1). Returns `true` when the
    /// request was absorbed here (caller stops).
    fn dedup(&self, st: &mut SessionState, req: &RequestMsg) -> bool {
        if req.seq == st.next_expected {
            return false;
        }
        self.stats
            .duplicate_requests
            .fetch_add(1, Ordering::Relaxed);
        if req.seq.next() == st.next_expected {
            // The latest already-processed request: resend its buffered
            // reply (it may have been lost on the network).
            if let Some((seq, status)) = st.buffered_reply.clone() {
                debug_assert_eq!(seq, req.seq);
                let _ = self.send_reply(st, req.reply_to, req.session, seq, status);
            }
        }
        // Older duplicates and (impossible under the client protocol)
        // future sequence numbers are dropped silently.
        true
    }

    fn handle_request_logbased(
        self: &Arc<Self>,
        cell: &SessionCell,
        st: &mut SessionState,
        req: RequestMsg,
    ) {
        // Interception point: has this session become an orphan?
        if (st.needs_recovery || self.knowledge.read().is_orphan(&st.dv, self.cfg.id))
            && self.recover_session_locked(cell, st).is_err()
        {
            return;
        }
        // END_SESSION bypasses the duplicate filter: processing
        // tombstones the session *before* the acknowledgement can reach
        // the client, so a resend (lost reply) is re-acknowledged off
        // the tombstone in `handle_request`; a first end reaching this
        // point just ends the session — its seq needs no dedup check
        // (ending is idempotent either way).
        if req.method == END_SESSION_METHOD {
            self.end_session_locked(st, &req);
            return;
        }
        if self.dedup(st, &req) {
            return;
        }
        // Figure 7, "after receive": if the message itself is an orphan,
        // discard it — the sender will roll back and resend.
        if let Some(dv) = &req.sender_dv {
            if self.knowledge.read().is_orphan(dv, self.cfg.id) {
                self.stats
                    .orphan_msgs_dropped
                    .fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        let Some(svc) = self.services.get(&req.method).cloned() else {
            let status = ReplyStatus::Err(format!("no such method: {}", req.method));
            let _ = self.send_reply(st, req.reply_to, req.session, req.seq, status.clone());
            st.buffered_reply = Some((req.seq, status));
            st.next_expected = req.seq.next();
            return;
        };

        // Log the request receive with the attached DV, merge it, advance
        // the session's state number (Figure 7).
        let log = self.log();
        let record = LogRecord::RequestReceive {
            session: req.session,
            seq: req.seq,
            method: req.method.clone(),
            payload: req.payload.clone(),
            sender_dv: req.sender_dv.clone(),
        };
        let (lsn, framed) = log.append_sized(&record);
        if let Some(dv) = &req.sender_dv {
            st.dv.merge_from(dv);
        }
        st.note_logged(self.cfg.id, self.epoch(), lsn, framed);
        // Publish the fuzzy checkpoint anchor *before* executing: the MSP
        // checkpoint reads it without the state lock, and a session whose
        // first request is still in flight would otherwise be absent from
        // the checkpoint — its records below `min_lsn`, unreachable by the
        // recovery scan, and the request re-executed (not deduplicated) on
        // the client's resend. Deep pipelined chains keep requests in
        // flight long enough to make that window routine.
        cell.sync_anchor(st);

        // Execute the method.
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let mut ctx = ServiceContext::live(self, req.session, st);
        let result = svc(&mut ctx, &req.payload);
        let fatal = ctx.fatal.take();
        match take_fatal(result, fatal) {
            Ok(result) => {
                let status = match result {
                    Ok(p) => ReplyStatus::Ok(p),
                    Err(e) => ReplyStatus::Err(e),
                };
                match self.dispatch_reply(st, &req, status) {
                    Ok(()) => {}
                    Err(e) => {
                        self.after_infra_failure(cell, st, &req, e);
                        return;
                    }
                }
            }
            Err(e) => {
                self.after_infra_failure(cell, st, &req, e);
                return;
            }
        }

        // Session checkpoint by log-consumption threshold (§3.2).
        if self.cfg.logging.checkpoints_enabled
            && st.log_consumed >= self.cfg.logging.session_ckpt_threshold
        {
            let _ = self.session_checkpoint(cell, st);
        }
        cell.sync_anchor(st);
    }

    /// An infrastructure error interrupted request processing. If the
    /// session turned out to be an orphan, recover it — the replay
    /// re-executes the interrupted request and completes it live, leaving
    /// its reply buffered; we then push that reply to the waiting client.
    /// Transient failures (flush timeout, shutdown) produce no reply: the
    /// client's resend retries the request.
    fn after_infra_failure(
        self: &Arc<Self>,
        cell: &SessionCell,
        st: &mut SessionState,
        req: &RequestMsg,
        err: MspError,
    ) {
        match err {
            MspError::OrphanDependency { .. } | MspError::Orphan { .. }
                if self.recover_session_locked(cell, st).is_ok() =>
            {
                if let Some((seq, status)) = st.buffered_reply.clone() {
                    if seq == req.seq {
                        let _ = self.send_reply(st, req.reply_to, req.session, seq, status);
                    }
                }
            }
            _ => { /* transient: client resend drives the retry */ }
        }
    }

    fn end_session_locked(&self, st: &mut SessionState, req: &RequestMsg) {
        let log = self.log();
        let record = LogRecord::SessionEnd {
            session: req.session,
        };
        let (lsn, framed) = log.append_sized(&record);
        st.note_logged(self.cfg.id, self.epoch(), lsn, framed);
        let status = ReplyStatus::Ok(Vec::new());
        st.buffered_reply = Some((req.seq, status.clone()));
        st.next_expected = req.seq.next();
        st.ended = true;
        st.positions.truncate();
        // Tombstone + drop before the reply can reach the client: once
        // the client observes the acknowledgement, the session must be
        // gone, and the tombstone keeps stale duplicates still in the
        // work queue from resurrecting it. A failed reply is harmless —
        // the client's resend is re-acknowledged off the tombstone.
        self.tombstone_session(req.session);
        let _ = self.send_reply(st, req.reply_to, req.session, req.seq, status);
    }

    /// Baseline request path (NoLog / Psession / StateServer): no logging,
    /// no dependency tracking; session state optionally round-trips
    /// through the database or the state server.
    fn handle_request_plain(
        self: &Arc<Self>,
        st: &mut SessionState,
        req: RequestMsg,
        db: Option<Arc<KvStore>>,
        state_server: Option<EndpointId>,
    ) {
        let key = session_key(req.session);
        // Load the externally stored session state *before* duplicate
        // filtering: the sequence-tracking state is part of the session
        // state, so a restarted worker resumes the numbering rather than
        // restarting it.
        //
        // Psession fetches in a read transaction on every request (§5.2);
        // StateServer fetches only when the local copy is cold.
        if let Some(db) = &db {
            if let Some(blob) = db.read_txn(&key) {
                apply_session_blob(st, &blob);
            }
        }
        if let Some(server) = state_server {
            if st.vars.is_empty() && st.next_expected == RequestSeq::FIRST {
                if let Ok(Some(blob)) = self.state_rpc(server, key.clone(), None) {
                    apply_session_blob(st, &blob);
                }
            }
        }

        // As on the log-based path: END_SESSION bypasses the duplicate
        // filter — ending is idempotent, and a resend after a lost
        // acknowledgement is re-acknowledged off the tombstone in
        // `handle_request` before ever reaching a cell.
        if req.method == END_SESSION_METHOD {
            let status = ReplyStatus::Ok(Vec::new());
            let _ = self.send_reply(st, req.reply_to, req.session, req.seq, status.clone());
            st.buffered_reply = Some((req.seq, status));
            st.next_expected = req.seq.next();
            st.ended = true;
            if let Some(db) = &db {
                let _ = db.write_txn(vec![(key, None)]);
            }
            self.tombstone_session(req.session);
            return;
        }
        if self.dedup(st, &req) {
            return;
        }
        let Some(svc) = self.services.get(&req.method).cloned() else {
            let status = ReplyStatus::Err(format!("no such method: {}", req.method));
            let _ = self.send_reply(st, req.reply_to, req.session, req.seq, status.clone());
            st.buffered_reply = Some((req.seq, status));
            st.next_expected = req.seq.next();
            return;
        };

        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let mut ctx = ServiceContext::live(self, req.session, st);
        let result = svc(&mut ctx, &req.payload);
        let status = match result {
            Ok(p) => ReplyStatus::Ok(p),
            Err(e) => ReplyStatus::Err(e),
        };
        st.buffered_reply = Some((req.seq, status.clone()));
        st.next_expected = req.seq.next();

        // Write the session state back ("after processing, the session
        // state is written back to the database"), then reply.
        if let Some(db) = &db {
            let _ = db.write_txn(vec![(key.clone(), Some(encode_session_blob(st)))]);
        }
        if let Some(server) = state_server {
            let _ = self.state_rpc(server, key, Some(encode_session_blob(st)));
        }
        let _ = self.send_reply(st, req.reply_to, req.session, req.seq, status);
    }

    /// Blocking RPC to the state server: `value = None` fetches, `Some`
    /// stores.
    fn state_rpc(
        &self,
        server: EndpointId,
        key: Vec<u8>,
        value: Option<Vec<u8>>,
    ) -> MspResult<Option<Vec<u8>>> {
        let mut attempts = 0u32;
        loop {
            let req_id = self.next_req_id();
            let (tx, rx) = crossbeam_channel::bounded(1);
            self.pending_state.lock().insert(req_id, tx);
            let env = match &value {
                None => Envelope::StateGet {
                    from: self.me(),
                    req_id,
                    key: key.clone(),
                },
                Some(v) => Envelope::StatePut {
                    from: self.me(),
                    req_id,
                    key: key.clone(),
                    value: v.clone(),
                },
            };
            self.send(server, env);
            match rx.recv_timeout(self.cfg.rpc_timeout) {
                Ok(v) => return Ok(v),
                Err(_) => {
                    self.pending_state.lock().remove(&req_id);
                    if self.stopped() {
                        return Err(MspError::Shutdown);
                    }
                    attempts += 1;
                    if attempts > 50 {
                        return Err(MspError::Timeout);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Reply path and outgoing calls
    // ------------------------------------------------------------------

    /// Send a reply, applying the locally-optimistic rules: attach the
    /// session DV when the destination is an MSP of our own domain;
    /// otherwise perform the pessimistic distributed log flush first
    /// (Figure 7, "before send").
    pub(crate) fn send_reply(
        &self,
        st: &mut SessionState,
        reply_to: EndpointId,
        session: SessionId,
        seq: RequestSeq,
        status: ReplyStatus,
    ) -> MspResult<()> {
        let (sender_dv, durable_hint, recoveries) = if self.is_log_based() {
            let intra = reply_to
                .as_msp()
                .is_some_and(|m| self.cluster.same_domain(self.cfg.id, m));
            if intra {
                (
                    Some(st.dv.clone()),
                    self.own_durable_hint(),
                    self.own_recovery_gossip(),
                )
            } else {
                self.distributed_flush(&st.dv)?;
                (None, None, Vec::new())
            }
        } else {
            (None, None, Vec::new())
        };
        self.send(
            reply_to,
            Envelope::Reply(ReplyMsg {
                session,
                seq,
                status,
                sender_dv,
                durable_hint,
                recoveries,
            }),
        );
        Ok(())
    }

    /// Deliver the reply of a just-executed request, choosing between the
    /// blocking path and the asynchronous durability pipeline.
    ///
    /// Intra-domain replies never flush and always go out inline. A reply
    /// crossing a pessimistic boundary blocks on `distributed_flush` when
    /// `blocking_durability` is set (the measured baseline); otherwise the
    /// flush is only *issued* and the envelope is parked on its gate in
    /// the pending-release stage — the worker is free as soon as this
    /// returns. In both cases the session's sequencing state is committed
    /// before the reply can reach the client, so a duplicate resend finds
    /// the buffered reply (and the blocking dedup path is the safety net
    /// if the parked envelope is lost with a crash).
    pub(crate) fn dispatch_reply(
        &self,
        st: &mut SessionState,
        req: &RequestMsg,
        status: ReplyStatus,
    ) -> MspResult<()> {
        let intra = req
            .reply_to
            .as_msp()
            .is_some_and(|m| self.cluster.same_domain(self.cfg.id, m));
        if intra || self.cfg.blocking_durability || !self.is_log_based() {
            self.send_reply(st, req.reply_to, req.session, req.seq, status.clone())?;
            st.buffered_reply = Some((req.seq, status));
            st.next_expected = req.seq.next();
            return Ok(());
        }
        // Pessimistic boundary, pipeline enabled: issue the flush, commit
        // the session's sequencing state, park the envelope.
        let gate = self.distributed_flush_issue(&st.dv)?;
        st.buffered_reply = Some((req.seq, status.clone()));
        st.next_expected = req.seq.next();
        match gate {
            None => {
                // Every dependency already durable: nothing to wait for.
                self.send(
                    req.reply_to,
                    Envelope::Reply(ReplyMsg {
                        session: req.session,
                        seq: req.seq,
                        status,
                        sender_dv: None,
                        durable_hint: None,
                        recoveries: Vec::new(),
                    }),
                );
            }
            Some(gate) => {
                self.stats.gates_pending.fetch_add(1, Ordering::Relaxed);
                let parked = ParkedEnvelope {
                    gate,
                    session: req.session,
                    kind: ParkedKind::Reply {
                        seq: req.seq,
                        reply_to: req.reply_to,
                        status,
                    },
                };
                if !self.park_envelope(parked) {
                    // Release stage gone (stopping): the reply is dropped,
                    // the client's resend retries through the dedup path.
                    self.stats.gates_pending.fetch_sub(1, Ordering::Relaxed);
                }
            }
        }
        Ok(())
    }

    /// A live outgoing call from `session` to `target` (§2.1, Figure 3).
    /// Thin wrapper around [`Self::outgoing_call_inner`] accumulating the
    /// per-hop wait counter — the wall time a chained request spends in
    /// one hop (durability gate + RPC round trip), on every path.
    pub(crate) fn outgoing_call(
        &self,
        st: &mut SessionState,
        session_id: SessionId,
        target: MspId,
        method: &str,
        payload: &[u8],
    ) -> MspResult<Vec<u8>> {
        let t0 = std::time::Instant::now();
        let result = self.outgoing_call_inner(st, session_id, target, method, payload);
        self.stats
            .chain_hop_wait_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        result
    }

    /// Resend-until-reply over the session's outgoing session, with
    /// optimistic DV attachment inside the domain and a pessimistic flush
    /// before sending across domains. The pessimistic flush blocks the
    /// worker only under `sends_block()`; otherwise the envelope is
    /// parked behind its durability gate in the release stage and the
    /// worker hands its run token back to the pool until the gate
    /// settles — the pipelined-send path that keeps deep call chains off
    /// the flush critical path.
    fn outgoing_call_inner(
        &self,
        st: &mut SessionState,
        session_id: SessionId,
        target: MspId,
        method: &str,
        payload: &[u8],
    ) -> MspResult<Vec<u8>> {
        let intra = self.is_log_based() && self.cluster.same_domain(self.cfg.id, target);
        let (out_id, seq) = match st.outgoing.get(&target) {
            Some(out) => (out.id, out.next_seq),
            None => {
                // First call to this target: allocate the outgoing
                // session. The allocation is nondeterministic, so log it
                // into the session's replay stream — a later replay that
                // reaches this point must reuse the same id and sequence
                // numbering, or its resent calls would open a second
                // session at the target and re-execute instead of being
                // deduplicated (a replay that went live *before* this
                // record re-allocates, but then this record and every
                // effect that could depend on it are lost and orphaned
                // together).
                let id = next_session_id();
                if self.is_log_based() {
                    let (lsn, framed) = self.log().append_sized(&LogRecord::OutgoingBind {
                        session: session_id,
                        target,
                        outgoing: id,
                    });
                    st.note_logged(self.cfg.id, self.epoch(), lsn, framed);
                }
                st.outgoing.insert(
                    target,
                    OutgoingSession {
                        id,
                        next_seq: RequestSeq::FIRST,
                    },
                );
                (id, RequestSeq::FIRST)
            }
        };
        let pessimistic = self.is_log_based() && !intra;
        let pipelined = pessimistic && !self.cfg.sends_block();
        if pessimistic && !pipelined {
            // Pessimistic boundary, blocking baseline: nothing we depend
            // on may be lost once this message leaves the domain.
            self.distributed_flush(&st.dv)?;
        }
        let mut attempts = 0u32;
        // On the pipelined path the *first* send goes through the release
        // stage (gate-parked); timeout resends go out directly — the gate
        // settled before the wait began, so the DV is already durable.
        let mut park_first = pipelined;
        loop {
            if self.stopped() {
                return Err(MspError::Shutdown);
            }
            let (tx, rx) = crossbeam_channel::bounded(1);
            // Register the waiter before the envelope can leave: a
            // released send may be answered before this worker gets back
            // from its gate wait.
            self.pending_replies.lock().insert((out_id, seq), tx);
            if park_first {
                park_first = false;
                let env = Envelope::Request(RequestMsg {
                    session: out_id,
                    seq,
                    method: method.to_string(),
                    payload: payload.to_vec(),
                    reply_to: self.me(),
                    // Cross-domain: never optimistic attachments.
                    sender_dv: None,
                    durable_hint: None,
                    recoveries: Vec::new(),
                });
                if let Err(e) = self.pipelined_send(&st.dv, session_id, target, env) {
                    self.pending_replies.lock().remove(&(out_id, seq));
                    return Err(e);
                }
            } else {
                self.send(
                    EndpointId::Msp(target),
                    Envelope::Request(RequestMsg {
                        session: out_id,
                        seq,
                        method: method.to_string(),
                        payload: payload.to_vec(),
                        reply_to: self.me(),
                        sender_dv: intra.then(|| st.dv.clone()),
                        durable_hint: if intra { self.own_durable_hint() } else { None },
                        recoveries: if intra {
                            self.own_recovery_gossip()
                        } else {
                            Vec::new()
                        },
                    }),
                );
            }
            let got = if pipelined {
                self.recv_reply_parking(&rx)
            } else {
                rx.recv_timeout(self.cfg.rpc_timeout).map_err(|_| ())
            };
            let rep = match got {
                Ok(rep) => rep,
                Err(()) => {
                    self.pending_replies.lock().remove(&(out_id, seq));
                    // Interception point on the resend path too: if the
                    // target crashed and lost our dependency, it now
                    // treats our sequence number as from the future and
                    // drops the resends silently — no reply will ever run
                    // the post-receive orphan check, so check here or spin
                    // until the retry limit with the session lock held.
                    if self.knowledge.read().is_orphan(&st.dv, self.cfg.id) {
                        return Err(MspError::Orphan {
                            session: session_id,
                        });
                    }
                    attempts += 1;
                    if attempts > self.cfg.rpc_retry_limit {
                        return Err(MspError::Timeout);
                    }
                    continue;
                }
            };
            match rep.status {
                ReplyStatus::Busy => {
                    std::thread::sleep(self.cfg.scaled_busy_backoff());
                    continue;
                }
                status => {
                    // Interception point (§4.1): receiving a reply checks
                    // both the message and the session. The session check
                    // must happen BEFORE the merge — merging a newer-epoch
                    // entry would otherwise mask an orphaned dependency
                    // forever (found by the DV property tests).
                    {
                        let knowledge = self.knowledge.read();
                        if knowledge.is_orphan(&st.dv, self.cfg.id) {
                            return Err(MspError::Orphan {
                                session: session_id,
                            });
                        }
                        // Figure 7, "after receive": orphan replies are
                        // discarded; the resend will fetch a clean one.
                        if let Some(dv) = &rep.sender_dv {
                            if knowledge.is_orphan(dv, self.cfg.id) {
                                self.stats
                                    .orphan_msgs_dropped
                                    .fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                        }
                    }
                    if self.is_log_based() {
                        let log = self.log();
                        let record = LogRecord::ReplyReceive {
                            session: session_id,
                            outgoing: out_id,
                            seq,
                            payload: crate::session::encode_reply(&status),
                            sender_dv: rep.sender_dv.clone(),
                        };
                        let (lsn, framed) = log.append_sized(&record);
                        if let Some(dv) = &rep.sender_dv {
                            st.dv.merge_from(dv);
                        }
                        st.note_logged(self.cfg.id, self.epoch(), lsn, framed);
                    }
                    st.outgoing
                        .get_mut(&target)
                        .expect("inserted above")
                        .next_seq = seq.next();
                    return match status {
                        ReplyStatus::Ok(p) => Ok(p),
                        ReplyStatus::Err(e) => Err(MspError::Application(e)),
                        ReplyStatus::Busy => unreachable!("handled above"),
                    };
                }
            }
        }
    }

    /// Pipelined cross-domain send: issue the durability gate, park the
    /// envelope in the release stage, and wait the gate out with the run
    /// token handed back to the pool — the pool never loses capacity to
    /// durability. Returns once the release stage has emitted the
    /// envelope (or after an inline send, when every dependency was
    /// already durable); from then on the session's DV is durable, so
    /// timeout resends may skip the gate. A failed gate surfaces here as
    /// the error a blocking `distributed_flush` would have returned,
    /// feeding the same orphan recovery.
    fn pipelined_send(
        &self,
        dv: &DependencyVector,
        session_id: SessionId,
        target: MspId,
        env: Envelope,
    ) -> MspResult<()> {
        let to = EndpointId::Msp(target);
        let Some(gate) = self.distributed_flush_issue(dv)? else {
            // Every dependency already durable: no gate, no window.
            if self.log().fault_point(CrashPoint::SendGateIssue) {
                return Err(MspError::Shutdown);
            }
            self.send(to, env);
            return Ok(());
        };
        let (ntx, nrx) = crossbeam_channel::bounded(1);
        self.stats
            .send_gates_pending
            .fetch_add(1, Ordering::Relaxed);
        let parked = ParkedEnvelope {
            gate,
            session: session_id,
            kind: ParkedKind::Send {
                to,
                env,
                notify: ntx,
            },
        };
        if !self.park_envelope(parked) {
            // Release stage gone — only happens while stopping.
            self.stats
                .send_gates_pending
                .fetch_sub(1, Ordering::Relaxed);
            return Err(MspError::Shutdown);
        }
        // The crash window the torture rig aims at: the send is logged
        // and parked but not yet released.
        if self.log().fault_point(CrashPoint::SendGateIssue) {
            return Err(MspError::Shutdown);
        }
        // The worker is now pure wait: hand the run token to a sibling
        // thread (which runs fresh requests start-to-finish on the freed
        // capacity) and block on the notify channel. The release stage
        // always settles it — release, gate failure, and shutdown drain
        // all notify, so this cannot hang.
        let parked = self.park_run_token();
        let outcome = loop {
            match nrx.recv_timeout(PARK_POLL) {
                Ok(outcome) => break outcome,
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => {
                    if self.stopped() {
                        break Err(MspError::Shutdown);
                    }
                }
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                    break Err(MspError::Shutdown)
                }
            }
        };
        if parked && !self.unpark_run_token() {
            return Err(MspError::Shutdown);
        }
        outcome
    }

    /// Phase-2 wait of a pipelined outgoing call: wait on the reply
    /// channel under the per-attempt `rpc_timeout` deadline with the run
    /// token handed back to the pool. `Err(())` means timed out (or
    /// stopping) — the caller runs the ordinary resend path.
    fn recv_reply_parking(&self, rx: &Receiver<ReplyMsg>) -> Result<ReplyMsg, ()> {
        let deadline = std::time::Instant::now() + self.cfg.rpc_timeout;
        let parked = self.park_run_token();
        let got = loop {
            let now = std::time::Instant::now();
            if self.stopped() || now >= deadline {
                break Err(());
            }
            match rx.recv_timeout((deadline - now).min(PARK_POLL)) {
                Ok(rep) => break Ok(rep),
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => break Err(()),
            }
        };
        if parked && !self.unpark_run_token() {
            return Err(());
        }
        got
    }

    /// Hand this worker's run token back to the pool for the duration of
    /// a pipelined wait. Only pool threads hold tokens — on any other
    /// thread (infra, release, recovery pool) this is a no-op. Returns
    /// whether a token was released and must be re-acquired.
    fn park_run_token(&self) -> bool {
        if !HOLDS_RUN_TOKEN.with(|t| t.get()) {
            return false;
        }
        HOLDS_RUN_TOKEN.with(|t| t.set(false));
        let shard = SHARD_INDEX.with(|s| s.get());
        self.shards[shard].run_tokens.release();
        self.stats.worker_parks.fetch_add(1, Ordering::Relaxed);
        self.shards[shard]
            .stats
            .worker_parks
            .fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Re-acquire after [`Self::park_run_token`]; false = stopping.
    fn unpark_run_token(&self) -> bool {
        let shard = SHARD_INDEX.with(|s| s.get());
        if self.shards[shard].run_tokens.acquire_resume(&self.stopped) {
            HOLDS_RUN_TOKEN.with(|t| t.set(true));
            true
        } else {
            false
        }
    }

    // ------------------------------------------------------------------
    // Thread bodies
    // ------------------------------------------------------------------

    fn dispatcher_loop(self: Arc<Self>, endpoint: Endpoint<Envelope>) {
        while !self.stopped() {
            let env = match endpoint.recv_timeout(Duration::from_millis(20)) {
                Ok(env) => env,
                Err(MspError::Timeout) => continue,
                Err(_) => break,
            };
            match env {
                Envelope::Request(req) => {
                    // Gossip before hints before delivery: the recovery
                    // records void stale watermarks and must win.
                    self.absorb_recovery_gossip(&req.recoveries);
                    if let Some(hint) = &req.durable_hint {
                        self.absorb_durable_hint(hint);
                    }
                    self.send_work(WorkItem::Request(req));
                }
                Envelope::Reply(rep) => {
                    self.absorb_recovery_gossip(&rep.recoveries);
                    if let Some(hint) = &rep.durable_hint {
                        self.absorb_durable_hint(hint);
                    }
                    let waiter = self.pending_replies.lock().remove(&(rep.session, rep.seq));
                    if let Some(tx) = waiter {
                        let _ = tx.send(rep);
                    }
                }
                Envelope::FlushRequest {
                    from,
                    req_id,
                    epoch,
                    lsn,
                } => {
                    let _ = self.infra_tx.send(InfraItem::Flush {
                        from,
                        req_id,
                        epoch,
                        lsn,
                    });
                }
                Envelope::FlushReply {
                    req_id,
                    ok,
                    durable,
                } => {
                    if let Some(hint) = &durable {
                        self.absorb_durable_hint(hint);
                    }
                    let waiter = self.pending_flushes.lock().remove(&req_id);
                    if let Some((gate, leg)) = waiter {
                        gate.remote_ack(leg, ok);
                    }
                }
                Envelope::Recovery(rec) => {
                    let _ = self.infra_tx.send(InfraItem::Recovery(rec));
                }
                Envelope::StateResp { req_id, value } => {
                    let waiter = self.pending_state.lock().remove(&req_id);
                    if let Some(tx) = waiter {
                        let _ = tx.send(value);
                    }
                }
                // MSPs are not state servers.
                Envelope::StateGet { .. } | Envelope::StatePut { .. } => {}
            }
        }
    }

    fn worker_loop(self: Arc<Self>, shard: usize, work_rx: Receiver<WorkItem>) {
        SHARD_INDEX.with(|s| s.set(shard));
        while !self.stopped() {
            let item = match work_rx.recv_timeout(Duration::from_millis(20)) {
                Ok(item) => item,
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => continue,
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => break,
            };
            // Capacity gate: the pool is oversubscribed in threads but
            // bounded in run tokens, so a parked sibling's token always
            // has an idle thread to land on without ever running more
            // than the shard's token count at once.
            if !self.shards[shard].run_tokens.acquire_fresh(&self.stopped) {
                break;
            }
            HOLDS_RUN_TOKEN.with(|t| t.set(true));
            match item {
                WorkItem::Request(req) => {
                    self.shards[shard]
                        .stats
                        .requests
                        .fetch_add(1, Ordering::Relaxed);
                    self.handle_request(req)
                }
                WorkItem::RecoverSession(id) => {
                    if let Some(cell) = self.session(id) {
                        let mut st = cell.state.lock();
                        if !st.ended
                            && (st.needs_recovery
                                || self.knowledge.read().is_orphan(&st.dv, self.cfg.id))
                        {
                            let _ = self.recover_session_locked(&cell, &mut st);
                        }
                    }
                }
                WorkItem::ForceSessionCheckpoint(id) => {
                    if let Some(cell) = self.session(id) {
                        let mut st = cell.state.lock();
                        if !st.ended && st.first_lsn.is_some() {
                            let _ = self.session_checkpoint(&cell, &mut st);
                            cell.sync_anchor(&st);
                        }
                    }
                }
                WorkItem::GateFailed {
                    session,
                    seq,
                    reply_to,
                    err,
                } => self.handle_gate_failure(session, seq, reply_to, err),
            }
            // A wait that lost the re-acquire race to shutdown returns
            // without the token — only release what we still hold.
            if HOLDS_RUN_TOKEN.with(|t| t.replace(false)) {
                self.shards[shard].run_tokens.release();
            }
        }
    }

    /// A parked reply's gate failed. Mirror [`MspInner::after_infra_failure`]:
    /// an orphan-class failure recovers the session and resends the
    /// buffered reply (replay reconstructs it); transient failures produce
    /// no reply — the client's resend drives the retry via the dedup path,
    /// whose `send_reply` blocks until durability or orphan verdict.
    fn handle_gate_failure(
        self: &Arc<Self>,
        session: SessionId,
        seq: RequestSeq,
        reply_to: EndpointId,
        err: MspError,
    ) {
        let Some(cell) = self.session(session) else {
            return;
        };
        let mut st = cell.state.lock();
        if st.ended {
            return;
        }
        match err {
            MspError::OrphanDependency { .. } | MspError::Orphan { .. }
                if self.recover_session_locked(&cell, &mut st).is_ok() =>
            {
                if let Some((bseq, status)) = st.buffered_reply.clone() {
                    if bseq == seq {
                        let _ = self.send_reply(&mut st, reply_to, session, bseq, status);
                    }
                }
                cell.sync_anchor(&st);
            }
            _ => { /* transient: client resend drives the retry */ }
        }
    }

    /// Dedicated crash-recovery replay pool (Figure 12): drain `sessions`
    /// (already ordered longest-window-first, or by id under
    /// `serial_recovery`) across `recovery_threads` threads, then publish
    /// the replay makespan and drop the shared block cache. Runs apart
    /// from the live worker pool so replay never starves sessions arriving
    /// mid-recovery.
    fn recovery_pool(self: Arc<Self>, sessions: Vec<(SessionId, u64)>) {
        let t0 = std::time::Instant::now();
        let threads = if self.cfg.serial_recovery {
            1
        } else {
            self.cfg.recovery_threads.max(1)
        }
        .min(sessions.len().max(1));
        let cache = self.replay_cache.lock().clone();
        let prefetch_order: Vec<SessionId> = if self.cfg.recovery_prefetch && cache.is_some() {
            sessions.iter().map(|&(sid, _)| sid).collect()
        } else {
            Vec::new()
        };
        let (tx, rx) = crossbeam_channel::unbounded::<SessionId>();
        for (sid, _) in sessions {
            let _ = tx.send(sid);
        }
        drop(tx);
        std::thread::scope(|scope| {
            // Prefetcher: walk the same longest-first schedule ahead of
            // the workers, pulling each pending session's replay window
            // into the buffer pool so the replaying thread finds its
            // blocks resident. Charges the disk model on its own thread —
            // genuine I/O overlap in simulated time. Sessions a worker
            // already holds (state lock taken) are skipped: prefetching
            // behind the replay cursor is wasted I/O.
            if let (false, Some(cache)) = (prefetch_order.is_empty(), cache.clone()) {
                let me = &self;
                scope.spawn(move || {
                    for sid in prefetch_order {
                        if me.stopped() {
                            break;
                        }
                        let Some(cell) = me.session(sid) else {
                            continue;
                        };
                        let positions: Vec<msp_types::Lsn> = match cell.state.try_lock() {
                            Some(st) if st.needs_recovery && !st.ended => {
                                st.positions.iter().collect()
                            }
                            _ => continue,
                        };
                        if cache.prefetch_positions(&positions).is_err() {
                            break;
                        }
                    }
                });
            }
            for _ in 0..threads {
                let rx = rx.clone();
                let me = &self;
                scope.spawn(move || {
                    while let Ok(sid) = rx.recv() {
                        if me.stopped() {
                            break;
                        }
                        let Some(cell) = me.session(sid) else {
                            continue;
                        };
                        let mut st = cell.state.lock();
                        // A request that arrived before this pool got here
                        // may have recovered the session inline already.
                        if !st.ended
                            && st.needs_recovery
                            && me.recover_session_locked(&cell, &mut st).is_ok()
                        {
                            me.stats
                                .recovery_pool_sessions
                                .fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        self.stats
            .recovery_replay_nanos
            .store(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        // The immutable crash-time window has been consumed; bank the
        // pool's counters and release it so live orphan recoveries read
        // the log directly.
        if let Some(cache) = self.replay_cache.lock().take() {
            let mut retired = self.retired_pool_stats.lock();
            *retired = retired.merge(&cache.pool().stats());
        }
        self.recovery_done.store(true, Ordering::Release);
    }

    fn infra_loop(self: Arc<Self>, infra_rx: Receiver<InfraItem>) {
        while !self.stopped() {
            let item = match infra_rx.recv_timeout(Duration::from_millis(20)) {
                Ok(item) => item,
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => continue,
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => break,
            };
            match item {
                InfraItem::Flush {
                    from,
                    req_id,
                    epoch,
                    lsn,
                } => {
                    let ok = self.serve_flush_request(epoch, lsn);
                    // A successful ack carries our durable watermark so the
                    // requester can skip redundant flushes of this (and any
                    // lower) dependency from now on.
                    let durable = if ok { self.own_durable_hint() } else { None };
                    self.send(
                        from,
                        Envelope::FlushReply {
                            req_id,
                            ok,
                            durable,
                        },
                    );
                }
                InfraItem::Recovery(rec) => self.absorb_recovery_broadcast(rec),
            }
        }
    }

    /// The pending-release stage (asynchronous durability pipeline),
    /// unified over every envelope kind. Parked envelopes — client
    /// replies and outgoing sends alike — leave in arrival order per
    /// session, and only once their gate settles successfully. Failed
    /// reply gates are converted into [`WorkItem::GateFailed`] so the
    /// orphan path runs on the worker pool (where it can take session
    /// locks without stalling releases); failed send gates report over
    /// the parked send's notify channel to the worker already waiting in
    /// `outgoing_call`, whose error path runs the same recovery. On
    /// shutdown every still-parked envelope is discarded — an unsettled
    /// envelope must never leave the process.
    fn release_loop(self: Arc<Self>, shard: usize, release_rx: Receiver<ReleaseCmd>) {
        let mut parked: Vec<ParkedEnvelope> = Vec::new();
        while !self.stopped() {
            match release_rx.recv_timeout(Duration::from_millis(20)) {
                Ok(ReleaseCmd::Park(p)) => parked.push(p),
                Ok(ReleaseCmd::Nudge) => {}
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => break,
            }
            while let Ok(cmd) = release_rx.try_recv() {
                if let ReleaseCmd::Park(p) = cmd {
                    parked.push(p);
                }
            }
            // Overdue-leg retries: the blocking settle path drives its own
            // gate; parked gates are driven from here.
            for p in &parked {
                self.drive_gate(&p.gate);
            }
            let mut i = 0;
            while i < parked.len() {
                // Session order: an entry may only leave once every
                // earlier parked entry of the same session has left.
                if fifo_blocked(&parked, i, |p| p.session) {
                    i += 1;
                    continue;
                }
                match parked[i].gate.poll() {
                    None => i += 1,
                    Some(Ok(())) => {
                        let p = parked.remove(i);
                        match p.kind {
                            ParkedKind::Reply {
                                seq,
                                reply_to,
                                status,
                            } => {
                                self.send(
                                    reply_to,
                                    Envelope::Reply(ReplyMsg {
                                        session: p.session,
                                        seq,
                                        status,
                                        sender_dv: None,
                                        durable_hint: None,
                                        recoveries: Vec::new(),
                                    }),
                                );
                                self.stats
                                    .async_reply_releases
                                    .fetch_add(1, Ordering::Relaxed);
                                self.stats.gates_pending.fetch_sub(1, Ordering::Relaxed);
                                self.shards[shard]
                                    .stats
                                    .releases
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                            ParkedKind::Send { to, env, notify } => {
                                self.send(to, env);
                                self.stats
                                    .async_send_releases
                                    .fetch_add(1, Ordering::Relaxed);
                                self.shards[shard]
                                    .stats
                                    .releases
                                    .fetch_add(1, Ordering::Relaxed);
                                self.stats
                                    .send_gates_pending
                                    .fetch_sub(1, Ordering::Relaxed);
                                let _ = notify.send(Ok(()));
                            }
                        }
                    }
                    Some(Err(err)) => {
                        let p = parked.remove(i);
                        match p.kind {
                            ParkedKind::Reply {
                                seq,
                                reply_to,
                                status: _,
                            } => {
                                self.stats.gates_pending.fetch_sub(1, Ordering::Relaxed);
                                self.send_work(WorkItem::GateFailed {
                                    session: p.session,
                                    seq,
                                    reply_to,
                                    err,
                                });
                            }
                            ParkedKind::Send { notify, .. } => {
                                self.stats
                                    .send_gates_pending
                                    .fetch_sub(1, Ordering::Relaxed);
                                let _ = notify.send(Err(err));
                            }
                        }
                    }
                }
            }
        }
        for p in parked.drain(..) {
            match p.kind {
                ParkedKind::Reply { .. } => {
                    self.stats.gates_pending.fetch_sub(1, Ordering::Relaxed);
                }
                ParkedKind::Send { notify, .. } => {
                    self.stats
                        .send_gates_pending
                        .fetch_sub(1, Ordering::Relaxed);
                    let _ = notify.send(Err(MspError::Shutdown));
                }
            }
        }
    }
}

/// Key under which a session's variables live in the Psession database /
/// state server.
fn session_key(session: SessionId) -> Vec<u8> {
    let mut k = b"sess:".to_vec();
    k.extend_from_slice(&session.0.to_le_bytes());
    k
}

/// Serialize session variables for the Psession / StateServer baselines.
pub(crate) fn encode_vars(vars: &HashMap<String, Vec<u8>>) -> Vec<u8> {
    let mut entries: Vec<(&String, &Vec<u8>)> = vars.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    let mut buf = Vec::new();
    codec::put_u32(&mut buf, entries.len() as u32);
    for (k, v) in entries {
        codec::put_str(&mut buf, k);
        codec::put_bytes(&mut buf, v);
    }
    buf
}

#[cfg(test)]
pub(crate) fn decode_vars(mut bytes: &[u8]) -> HashMap<String, Vec<u8>> {
    decode_vars_cursor(&mut bytes)
}

fn decode_vars_cursor(buf: &mut &[u8]) -> HashMap<String, Vec<u8>> {
    let Ok(n) = codec::get_u32(buf) else {
        return HashMap::new();
    };
    let mut map = HashMap::with_capacity(n as usize);
    for _ in 0..n {
        let (Ok(k), Ok(v)) = (codec::get_str(buf), codec::get_bytes(buf)) else {
            return map;
        };
        map.insert(k, v);
    }
    map
}

/// Serialize the whole externally stored session state of the Psession /
/// StateServer baselines: variables plus the request-sequencing state
/// (without which a restarted worker would mistake the client's next
/// request for a duplicate — or vice versa).
pub(crate) fn encode_session_blob(st: &SessionState) -> Vec<u8> {
    let mut buf = encode_vars(&st.vars);
    codec::put_u64(&mut buf, st.next_expected.0);
    match &st.buffered_reply {
        Some((seq, status)) => {
            codec::put_u8(&mut buf, 1);
            codec::put_u64(&mut buf, seq.0);
            codec::put_bytes(&mut buf, &crate::session::encode_reply(status));
        }
        None => codec::put_u8(&mut buf, 0),
    }
    buf
}

/// Inverse of [`encode_session_blob`]; tolerates truncated blobs by
/// leaving the sequencing state untouched.
pub(crate) fn apply_session_blob(st: &mut SessionState, mut bytes: &[u8]) {
    let buf = &mut bytes;
    st.vars = decode_vars_cursor(buf);
    if let Ok(next) = codec::get_u64(buf) {
        st.next_expected = RequestSeq(next);
    }
    if let Ok(1) = codec::get_u8(buf) {
        if let (Ok(seq), Ok(reply)) = (codec::get_u64(buf), codec::get_bytes(buf)) {
            st.buffered_reply = Some((RequestSeq(seq), crate::session::decode_reply(&reply)));
        }
    }
}

// ----------------------------------------------------------------------
// Builder and handle
// ----------------------------------------------------------------------

/// Configures and launches an MSP.
pub struct MspBuilder {
    cfg: MspConfig,
    cluster: ClusterConfig,
    services: HashMap<String, ServiceFn>,
    shared: SharedRegistry,
    disk_model: DiskModel,
    flush_policy: FlushPolicy,
    fault_plan: Option<Arc<FaultPlan>>,
}

impl MspBuilder {
    pub fn new(cfg: MspConfig, cluster: ClusterConfig) -> MspBuilder {
        MspBuilder {
            cfg,
            cluster,
            services: HashMap::new(),
            shared: SharedRegistry::new(),
            disk_model: DiskModel::default(),
            flush_policy: FlushPolicy::immediate(),
            fault_plan: None,
        }
    }

    /// Register a service method. Must be deterministic — see
    /// [`crate::service`].
    #[must_use]
    pub fn service<F>(mut self, name: &str, f: F) -> MspBuilder
    where
        F: Fn(&mut ServiceContext<'_>, &[u8]) -> Result<Vec<u8>, String> + Send + Sync + 'static,
    {
        self.services.insert(name.to_string(), Arc::new(f));
        self
    }

    /// Register a shared variable with its initial value. Registration
    /// order fixes the variable's id, so it must be stable across
    /// restarts (same contract as service registration).
    #[must_use]
    pub fn shared_var(mut self, name: &str, initial: Vec<u8>) -> MspBuilder {
        self.shared.register(name, initial);
        self
    }

    /// Register a shared operation `(current value, args) -> new value`
    /// for [`ServiceContext::apply_shared`]. Must be deterministic —
    /// recovery re-applies it to reconstruct op-logged values — and
    /// registration order fixes its id (same stability contract as
    /// variables and service methods).
    #[must_use]
    pub fn shared_op<F>(mut self, name: &str, f: F) -> MspBuilder
    where
        F: Fn(&[u8], &[u8]) -> Vec<u8> + Send + Sync + 'static,
    {
        self.shared.register_op(name, f);
        self
    }

    #[must_use]
    pub fn disk_model(mut self, model: DiskModel) -> MspBuilder {
        self.disk_model = model;
        self
    }

    #[must_use]
    pub fn flush_policy(mut self, policy: FlushPolicy) -> MspBuilder {
        self.flush_policy = policy;
        self
    }

    /// Install a crash-point plan on the log at open time (torture rig).
    /// Armed points can then fire during the *startup* crash recovery —
    /// the crash-during-recovery schedules — in which case `start`
    /// returns `Err(MspError::Shutdown)` and the caller restarts again.
    #[must_use]
    pub fn fault_plan(mut self, plan: Arc<FaultPlan>) -> MspBuilder {
        self.fault_plan = Some(plan);
        self
    }

    /// Launch the MSP. If `disk` already contains a log, MSP crash
    /// recovery (§4.3) runs first: analysis scan, shared-state roll
    /// forward, recovery broadcast, then parallel session replay on the
    /// worker pool while new requests are already being accepted.
    pub fn start(self, net: &Network<Envelope>, disk: Arc<dyn Disk>) -> MspResult<MspHandle> {
        self.start_with_disks(net, vec![disk])
    }

    /// Like [`Self::start`], over an explicit disk set: one disk for the
    /// legacy single log (`log_stripes == 0`), exactly `log_stripes`
    /// disks for the striped backend. The log anchor lives on the first
    /// disk either way, so a striped deployment can be re-opened only as
    /// the same striped deployment.
    pub fn start_with_disks(
        self,
        net: &Network<Envelope>,
        disks: Vec<Arc<dyn Disk>>,
    ) -> MspResult<MspHandle> {
        if self.cfg.workers == 0 {
            return Err(MspError::Config("worker pool must be non-empty".into()));
        }
        if disks.is_empty() {
            return Err(MspError::Config("at least one disk required".into()));
        }
        let log_based = matches!(self.cfg.strategy, SessionStrategy::LogBased);
        let (log, anchor) = if log_based {
            let expected = self.cfg.log_stripes.max(1);
            if disks.len() != expected {
                return Err(MspError::Config(format!(
                    "log_stripes={} needs {} disk(s), got {}",
                    self.cfg.log_stripes,
                    expected,
                    disks.len()
                )));
            }
            // Fold the MspConfig logging knobs into the flush policy;
            // knobs set directly on the policy win.
            let mut policy = self.flush_policy;
            policy.serialized_append |= self.cfg.serialized_append;
            if policy.group_commit_window.is_none() {
                policy = policy.with_group_commit_window(self.cfg.group_commit_window);
            }
            let anchor = LogAnchor::new(Arc::clone(&disks[0]), self.disk_model.clone());
            let log = if self.cfg.log_stripes == 0 {
                Wal::Single(PhysicalLog::open(
                    Arc::clone(&disks[0]),
                    self.disk_model.clone(),
                    policy,
                )?)
            } else {
                Wal::Striped(StripedLog::open(disks, self.disk_model.clone(), policy)?)
            };
            if let Some(plan) = &self.fault_plan {
                log.install_fault_plan(Arc::clone(plan));
            }
            (Some(log), Some(anchor))
        } else {
            (None, None)
        };

        // Per-shard channels: sessions hash onto a shard, whose worker
        // pool holds `workers / shards` run tokens (at least one).
        let shard_count = self.cfg.runtime_shards.max(1);
        let tokens_per_shard = (self.cfg.workers / shard_count).max(1);
        let mut shards = Vec::with_capacity(shard_count);
        let mut work_rxs = Vec::with_capacity(shard_count);
        let mut release_rxs = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let (work_tx, work_rx) = crossbeam_channel::unbounded();
            let (release_tx, release_rx) = crossbeam_channel::unbounded();
            shards.push(ShardRt {
                work_tx,
                run_tokens: RunTokens::new(tokens_per_shard),
                release_tx,
                stats: ShardStats::default(),
            });
            work_rxs.push(work_rx);
            release_rxs.push(release_rx);
        }
        let (infra_tx, infra_rx) = crossbeam_channel::unbounded();
        let inner = Arc::new(MspInner {
            cfg: self.cfg,
            cluster: self.cluster,
            net: net.clone(),
            log,
            anchor,
            epoch: AtomicU32::new(0),
            knowledge: RwLock::new(RecoveryKnowledge::new()),
            watermarks: Mutex::new(WatermarkTable::new()),
            sessions: Mutex::new(HashMap::new()),
            ended_sessions: Mutex::new(HashSet::new()),
            shared: self.shared,
            services: self.services,
            shards,
            infra_tx,
            pending_replies: Mutex::new(HashMap::new()),
            pending_flushes: Mutex::new(HashMap::new()),
            pending_state: Mutex::new(HashMap::new()),
            req_ids: AtomicU64::new(1),
            stopped: AtomicBool::new(false),
            stats: RuntimeStats::default(),
            replay_cache: Mutex::new(None),
            recovery_done: AtomicBool::new(true),
            retired_pool_stats: Mutex::new(msp_wal::PoolStatsSnapshot::default()),
        });

        // Crash recovery before going live (no-op on a fresh disk).
        let recovery_outcome = if log_based {
            Some(inner.crash_recover()?)
        } else {
            None
        };

        // Register on the network and spawn the threads.
        let endpoint = net.register(inner.me());
        let mut threads = Vec::new();
        {
            let d = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("{}-dispatch", inner.cfg.id))
                    .spawn(move || d.dispatcher_loop(endpoint))
                    .map_err(MspError::Io)?,
            );
        }
        // Oversubscribed pools: each shard's thread count exceeds its
        // run-token count so a parked worker's released capacity always
        // has a thread to land on.
        for (shard, work_rx) in work_rxs.into_iter().enumerate() {
            for w in 0..tokens_per_shard * WORKER_OVERSUBSCRIPTION {
                let i = Arc::clone(&inner);
                let rx = work_rx.clone();
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("{}-s{shard}-worker{w}", inner.cfg.id))
                        .spawn(move || i.worker_loop(shard, rx))
                        .map_err(MspError::Io)?,
                );
            }
        }
        for n in 0..2 {
            let i = Arc::clone(&inner);
            let rx = infra_rx.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("{}-infra{n}", inner.cfg.id))
                    .spawn(move || i.infra_loop(rx))
                    .map_err(MspError::Io)?,
            );
        }
        if log_based {
            for (shard, release_rx) in release_rxs.into_iter().enumerate() {
                let i = Arc::clone(&inner);
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("{}-s{shard}-release", inner.cfg.id))
                        .spawn(move || i.release_loop(shard, release_rx))
                        .map_err(MspError::Io)?,
                );
            }
        }
        if log_based && inner.cfg.logging.checkpoints_enabled {
            let i = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("{}-ckpt", inner.cfg.id))
                    .spawn(move || i.checkpointer_loop())
                    .map_err(MspError::Io)?,
            );
        }

        // Post-recovery protocol: broadcast the recovered state number in
        // the domain, take a fresh MSP checkpoint, then replay sessions on
        // the dedicated recovery pool (Figure 12) — new sessions are
        // accepted concurrently on the untouched worker pool.
        if let Some(mut outcome) = recovery_outcome {
            if let Some(rec) = outcome.announce {
                for peer in inner.cluster.domain_members(inner.cfg.domain, inner.cfg.id) {
                    inner.send(EndpointId::Msp(peer), Envelope::Recovery(rec));
                }
                // Overlapped recovery starts the replay pool *before* the
                // post-recovery MSP checkpoint (whose distributed flush,
                // anchor write and truncation are pure wall-clock from the
                // sessions' point of view); the checkpoint is fuzzy by
                // design and routinely runs concurrently with live
                // traffic, so running it under replay changes nothing it
                // must tolerate. The serial baseline keeps the strict
                // scan → checkpoint → replay order.
                let overlapped = inner.cfg.overlapped_recovery && !inner.cfg.serial_recovery;
                let mut spawn_pool =
                    |threads: &mut Vec<std::thread::JoinHandle<()>>| -> MspResult<()> {
                        if outcome.sessions_to_replay.is_empty() {
                            return Ok(());
                        }
                        inner.recovery_done.store(false, Ordering::Release);
                        let pool = Arc::clone(&inner);
                        let sessions = std::mem::take(&mut outcome.sessions_to_replay);
                        threads.push(
                            std::thread::Builder::new()
                                .name(format!("{}-recovery", inner.cfg.id))
                                .spawn(move || pool.recovery_pool(sessions))
                                .map_err(MspError::Io)?,
                        );
                        Ok(())
                    };
                if overlapped {
                    spawn_pool(&mut threads)?;
                }
                let t_ckpt = std::time::Instant::now();
                let _ = inner.msp_checkpoint();
                inner
                    .stats
                    .recovery_checkpoint_nanos
                    .store(t_ckpt.elapsed().as_nanos() as u64, Ordering::Relaxed);
                if !overlapped {
                    spawn_pool(&mut threads)?;
                }
            }
        }

        Ok(MspHandle {
            inner,
            threads: Mutex::new(threads),
        })
    }
}

/// External handle to a running MSP.
pub struct MspHandle {
    inner: Arc<MspInner>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl MspHandle {
    pub fn id(&self) -> MspId {
        self.inner.cfg.id
    }

    /// Operation counters.
    pub fn stats(&self) -> RuntimeStatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Physical-log counters (LogBased only; summed across stripes when
    /// the log is striped).
    pub fn log_stats(&self) -> Option<msp_wal::stats::LogStatsSnapshot> {
        self.inner.log.as_ref().map(|l| l.stats())
    }

    /// Per-stripe log-counter breakdown (LogBased only; a single log
    /// reports one "stripe").
    pub fn stripe_stats(&self) -> Option<Vec<msp_wal::stats::LogStatsSnapshot>> {
        self.inner.log.as_ref().map(|l| l.stripe_stats())
    }

    /// Process-lifetime replay buffer-pool counters: retired pools'
    /// banked totals plus the live pool's, if a recovery is in flight.
    pub fn pool_stats(&self) -> msp_wal::PoolStatsSnapshot {
        let retired = *self.inner.retired_pool_stats.lock();
        match self.inner.replay_cache.lock().as_ref() {
            Some(cache) => retired.merge(&cache.pool().stats()),
            None => retired,
        }
    }

    /// Per-shard runtime-counter breakdown, in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStatsSnapshot> {
        self.inner
            .shards
            .iter()
            .map(|s| s.stats.snapshot())
            .collect()
    }

    /// The MSP's current epoch.
    pub fn epoch(&self) -> Epoch {
        self.inner.epoch()
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.inner.sessions.lock().len()
    }

    /// Simulate a crash: every volatile structure is dropped, the
    /// un-flushed log tail is lost, the endpoint goes dark. The disk
    /// survives; a new `MspBuilder::start` over it runs crash recovery.
    pub fn crash(&self) {
        self.inner.stopped.store(true, Ordering::SeqCst);
        self.inner.net.unregister(self.inner.me());
        if let Some(log) = &self.inner.log {
            log.crash();
        }
        // Unblock settlers: local tickets were failed by the log teardown;
        // remote legs will never be answered.
        self.inner.fail_pending_gates();
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
    }

    /// Clean shutdown: flush the log, stop the threads.
    pub fn shutdown(&self) {
        self.inner.stopped.store(true, Ordering::SeqCst);
        self.inner.net.unregister(self.inner.me());
        if let Some(log) = &self.inner.log {
            log.close();
        }
        self.inner.fail_pending_gates();
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
    }

    /// `true` once crash-recovery session replay has finished (trivially
    /// `true` when no recovery ran). The MSP accepts new work while this
    /// is still `false`; benches poll it to measure MTTR.
    pub fn recovery_complete(&self) -> bool {
        self.inner.recovery_done.load(Ordering::Acquire)
    }

    /// Deterministic byte dump of every live session's externally
    /// observable state (variables, request sequencing, buffered reply),
    /// sorted by session id — the equivalence-test surface for comparing
    /// serial and parallel recovery outcomes.
    pub fn dump_sessions(&self) -> Vec<(SessionId, Vec<u8>)> {
        let cells: Vec<Arc<SessionCell>> = self.inner.sessions.lock().values().cloned().collect();
        let mut out: Vec<(SessionId, Vec<u8>)> = cells
            .iter()
            .map(|c| (c.id, encode_session_blob(&c.state.lock())))
            .collect();
        out.sort_by_key(|&(id, _)| id);
        out
    }

    /// Deterministic dump of every shared variable's value, in
    /// registration (id) order.
    pub fn dump_shared(&self) -> Vec<Vec<u8>> {
        self.inner
            .shared
            .iter()
            .map(|v| v.state.lock().value.clone())
            .collect()
    }

    /// Test/diagnostic access to a session's dependency vector.
    pub fn session_dv(&self, id: SessionId) -> Option<DependencyVector> {
        self.inner.session(id).map(|c| c.state.lock().dv.clone())
    }

    /// Test/diagnostic access to the runtime internals (crate-public
    /// surface used by the harness for fault injection).
    pub fn knowledge(&self) -> RecoveryKnowledge {
        self.inner.knowledge.read().clone()
    }

    /// Test/diagnostic access to the durable watermark held for `peer`.
    pub fn watermark_of(&self, peer: MspId) -> Option<(Epoch, Lsn)> {
        self.inner.watermarks.lock().get(peer)
    }

    /// Arm a crash-point plan on the *live* log (torture rig); no-op on
    /// the non-logging baselines, which have no log to crash.
    pub fn install_fault_plan(&self, plan: Arc<FaultPlan>) {
        if let Some(log) = &self.inner.log {
            log.install_fault_plan(plan);
        }
    }

    /// Take an MSP checkpoint right now (test/benchmark hook); also
    /// truncates the log behind the refreshed reclaim floor, like every
    /// checkpoint does. No-op error on non-logging strategies.
    pub fn force_msp_checkpoint(&self) -> msp_types::MspResult<()> {
        if !self.inner.is_log_based() {
            return Err(MspError::Config("no log to checkpoint".into()));
        }
        self.inner.msp_checkpoint()
    }

    /// Recompute the reclaim floor from the live dependency set and
    /// truncate the log below it. Returns the resulting floor and the
    /// bytes reclaimed by this call.
    pub fn truncate_log(&self) -> msp_types::MspResult<(Lsn, u64)> {
        if !self.inner.is_log_based() {
            return Err(MspError::Config("no log to truncate".into()));
        }
        self.inner.truncate_log()
    }

    /// The log's current reclaim floor (LogBased only): no record below
    /// it survives on disk.
    pub fn reclaim_floor(&self) -> Option<Lsn> {
        self.inner.log.as_ref().map(|l| l.floor())
    }
}

impl MspInner {
    /// Record a dependency-lost verdict helper used by flush handling.
    pub(crate) fn own_state_survived(&self, epoch: Epoch, lsn: Lsn) -> bool {
        !self
            .knowledge
            .read()
            .is_orphan_dep(self.cfg.id, StateId::new(epoch, lsn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_ids_are_unique_and_monotone() {
        let a = next_session_id();
        let b = next_session_id();
        assert!(b > a);
    }

    #[test]
    fn vars_codec_roundtrip() {
        let mut m = HashMap::new();
        m.insert("a".to_string(), vec![1, 2]);
        m.insert("b".to_string(), vec![]);
        assert_eq!(decode_vars(&encode_vars(&m)), m);
        assert_eq!(decode_vars(&encode_vars(&HashMap::new())), HashMap::new());
        // Corrupt input degrades to empty, never panics.
        assert_eq!(decode_vars(&[1, 2, 3]), HashMap::new());
    }

    #[test]
    fn session_keys_are_distinct() {
        assert_ne!(session_key(SessionId(1)), session_key(SessionId(2)));
    }

    /// Pure simulator of the release stage's scan over `fifo_blocked`:
    /// entries park in order, gates settle in an arbitrary order, and a
    /// scan pass releases every settled, unblocked entry until a
    /// fixpoint. Returns the release order (as park indices).
    fn simulate_release(sessions: &[u64], settle_order: &[usize]) -> Vec<usize> {
        let mut parked: Vec<(usize, u64)> = sessions.iter().copied().enumerate().collect();
        let mut settled = vec![false; sessions.len()];
        let mut released = Vec::new();
        for &s in settle_order {
            settled[s] = true;
            loop {
                let mut progressed = false;
                let mut i = 0;
                while i < parked.len() {
                    if fifo_blocked(&parked, i, |e| SessionId(e.1)) || !settled[parked[i].0] {
                        i += 1;
                        continue;
                    }
                    released.push(parked.remove(i).0);
                    progressed = true;
                }
                if !progressed {
                    break;
                }
            }
        }
        released
    }

    /// The cross-path ordering hole the PR-6 audit looked for: a reply
    /// whose gate settles early must not overtake a causally-earlier
    /// parked send of the same session.
    #[test]
    fn reply_never_overtakes_an_earlier_send_of_its_session() {
        // Entry 0 = the send, entry 1 = the reply; the reply's gate
        // settles first.
        let released = simulate_release(&[7, 7], &[1, 0]);
        assert_eq!(released, vec![0, 1], "per-session FIFO holds");
        // An unrelated session is never blocked by either.
        let released = simulate_release(&[7, 7, 9], &[2, 1, 0]);
        assert_eq!(released, vec![2, 0, 1]);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig {
            cases: 64, ..Default::default()
        })]

        /// Over arbitrary park orders and settle orders: every entry is
        /// eventually released (no cross-session blocking), and within
        /// each session the release order equals the park order.
        #[test]
        fn release_order_is_per_session_fifo_and_complete(
            sessions in proptest::collection::vec(0u64..4, 1..24),
            prios in proptest::collection::vec(0u64..1000, 24..25),
        ) {
            let n = sessions.len();
            let mut settle_order: Vec<usize> = (0..n).collect();
            settle_order.sort_by_key(|&i| (prios[i], i));
            let released = simulate_release(&sessions, &settle_order);
            proptest::prop_assert_eq!(released.len(), n, "every entry releases");
            for s in 0..4u64 {
                let order: Vec<usize> = released
                    .iter()
                    .copied()
                    .filter(|&i| sessions[i] == s)
                    .collect();
                proptest::prop_assert!(
                    order.windows(2).all(|w| w[0] < w[1]),
                    "session {} released out of park order: {:?}", s, order
                );
            }
        }
    }
}
