//! The service-method programming surface.
//!
//! A service method is a deterministic function
//! `Fn(&mut ServiceContext, &[u8]) -> Result<Vec<u8>, String>` registered
//! under a name. The context exposes exactly the paper's three kinds of
//! interaction (§2.2):
//!
//! * **session variables** — private per-client state, never logged
//!   (recovery re-executes methods to reconstruct it);
//! * **shared variables** — value-logged, lock-per-access;
//! * **outgoing calls** — synchronous RPCs to other MSPs over the
//!   session's outgoing sessions.
//!
//! The *same* context runs normal execution and recovery replay. In
//! replay mode the nondeterministic inputs come from the log (§4.1):
//! reads return logged values, calls return logged replies, writes are
//! skipped. When replay hits the boundary — an orphan record or the end
//! of the logged history — the context switches itself to live execution
//! and the method keeps running, now with real effects. Service code
//! cannot tell the difference, which is what makes the infrastructure
//! transparent.
//!
//! **Determinism contract**: a method's behaviour must be a pure function
//! of its session state, its payload, and the values the context hands it.
//! No wall-clock reads, no thread-local randomness, no ambient I/O —
//! violations surface as `LogCorrupt` replay-mismatch errors at recovery
//! time rather than silent divergence.

use std::sync::Arc;

use msp_types::{Lsn, MspError, MspId, MspResult, SessionId};
use msp_wal::LogRecord;

use crate::envelope::ReplyStatus;
use crate::replay::{replay_mismatch, Consume, ReplayCursor};
use crate::runtime::MspInner;
use crate::session::{decode_reply, OutgoingSession, SessionState};

/// A registered service method.
pub type ServiceFn =
    Arc<dyn Fn(&mut ServiceContext<'_>, &[u8]) -> Result<Vec<u8>, String> + Send + Sync>;

/// Error string propagated through application code when the
/// infrastructure must abort the method (session discovered to be an
/// orphan mid-execution). Worker code detects it via
/// `ServiceContext::fatal` and runs orphan recovery; the string exists
/// only because application closures return `Result<_, String>`.
pub const FATAL_MARKER: &str = "__msp_infra_fatal__";

/// What a service method sees while it runs.
pub struct ServiceContext<'a> {
    pub(crate) inner: &'a MspInner,
    pub(crate) session_id: SessionId,
    pub(crate) state: &'a mut SessionState,
    /// `Some` while replaying; the cursor flips itself live at the replay
    /// boundary.
    pub(crate) cursor: Option<&'a mut ReplayCursor>,
    /// Set when the infrastructure aborted the method (e.g. the session
    /// became an orphan mid-execution); the worker inspects this after
    /// the method returns.
    pub(crate) fatal: Option<MspError>,
}

impl<'a> ServiceContext<'a> {
    pub(crate) fn live(
        inner: &'a MspInner,
        session_id: SessionId,
        state: &'a mut SessionState,
    ) -> ServiceContext<'a> {
        ServiceContext {
            inner,
            session_id,
            state,
            cursor: None,
            fatal: None,
        }
    }

    pub(crate) fn replaying(
        inner: &'a MspInner,
        session_id: SessionId,
        state: &'a mut SessionState,
        cursor: &'a mut ReplayCursor,
    ) -> ServiceContext<'a> {
        ServiceContext {
            inner,
            session_id,
            state,
            cursor: Some(cursor),
            fatal: None,
        }
    }

    /// The session this request runs on.
    pub fn session_id(&self) -> SessionId {
        self.session_id
    }

    /// The MSP executing this method.
    pub fn msp_id(&self) -> MspId {
        self.inner.cfg.id
    }

    /// Whether this execution is (still) recovery replay. Exposed for
    /// tests and diagnostics; service logic must NOT branch on it.
    pub fn is_replaying(&self) -> bool {
        self.cursor.as_ref().is_some_and(|c| !c.went_live)
    }

    /// Read a session variable (private state; not logged).
    pub fn get_session(&self, name: &str) -> Option<Vec<u8>> {
        self.state.vars.get(name).cloned()
    }

    /// Write a session variable (private state; not logged — recovery
    /// reconstructs it by re-execution).
    pub fn set_session(&mut self, name: &str, value: Vec<u8>) {
        self.state.vars.insert(name.to_string(), value);
    }

    fn mark_fatal(&mut self, e: MspError) -> String {
        self.fatal = Some(e);
        FATAL_MARKER.to_string()
    }

    /// Read a shared variable (Figure 8, read column).
    pub fn read_shared(&mut self, name: &str) -> Result<Vec<u8>, String> {
        let var_id = self
            .inner
            .shared
            .resolve(name)
            .ok_or_else(|| format!("no such shared variable: {name}"))?;

        // Replay path: take the value from the SharedRead record.
        if self.is_replaying() {
            let log = self.inner.log.as_ref().expect("replay requires a log");
            let knowledge = self.inner.knowledge.read();
            let cursor = self.cursor.as_mut().expect("is_replaying checked");
            match cursor
                .consume(log, &knowledge, self.inner.cfg.id, self.session_id)
                .map_err(|e| e.to_string())?
            {
                Consume::Record {
                    lsn,
                    record,
                    framed,
                } => match record {
                    LogRecord::SharedRead {
                        var, value, var_dv, ..
                    } if var == var_id => {
                        self.state.dv.merge_from(&var_dv);
                        self.state
                            .note_logged(self.inner.cfg.id, self.inner.epoch(), lsn, framed);
                        return Ok(value);
                    }
                    other => return Err(replay_mismatch(lsn, "SharedRead", &other).to_string()),
                },
                Consume::WentLive => { /* fall through to the live read */ }
            }
        }

        let var = self.inner.shared.get(var_id).expect("resolved id");
        if let Some(log) = &self.inner.log {
            let me = self.inner.cfg.id;
            let epoch = self.inner.epoch();
            let knowledge = self.inner.knowledge.read();
            // Interception point (§4.1): accessing a shared variable
            // re-checks the session — and must do so before the read
            // merges the variable's DV, which could otherwise mask an
            // orphaned entry with a newer-epoch one.
            if knowledge.is_orphan(&self.state.dv, me) {
                drop(knowledge);
                return Err(self.mark_fatal(MspError::Orphan {
                    session: self.session_id,
                }));
            }
            let env = crate::shared::SharedEnv {
                me,
                epoch,
                log,
                knowledge: &knowledge,
                ops: self.inner.shared.ops(),
            };
            crate::shared::read_shared(&env, var, self.session_id, self.state)
                .map_err(|e| self.mark_fatal(e))
        } else {
            // Baselines: plain in-memory access.
            Ok(var.state.lock().value.clone())
        }
    }

    /// Write a shared variable (Figure 8, write column). During replay
    /// the `SharedWrite` record is *consumed* from the session's stream —
    /// the variable itself still rolls forward from its own records, so
    /// the consume applies nothing; it confirms the write survived the
    /// crash. If the stream ends at the write (on a striped log the
    /// record lives on the *variable's* stripe and can be the first lost
    /// gsn while the session's own records survive), replay goes live
    /// here and the write re-executes, re-appending a fresh record — the
    /// effect the replayed method's reply promises is made real instead
    /// of silently dropped.
    pub fn write_shared(&mut self, name: &str, value: Vec<u8>) -> Result<(), String> {
        let var_id = self
            .inner
            .shared
            .resolve(name)
            .ok_or_else(|| format!("no such shared variable: {name}"))?;
        if self.is_replaying() {
            let log = self.inner.log.as_ref().expect("replay requires a log");
            let knowledge = self.inner.knowledge.read();
            let cursor = self.cursor.as_mut().expect("is_replaying checked");
            match cursor
                .consume(log, &knowledge, self.inner.cfg.id, self.session_id)
                .map_err(|e| e.to_string())?
            {
                Consume::Record {
                    lsn,
                    record,
                    framed,
                } => match record {
                    LogRecord::SharedWrite {
                        var, value: logged, ..
                    } if var == var_id => {
                        if logged != value {
                            return Err(MspError::LogCorrupt {
                                offset: lsn.0,
                                reason: "replay determinism violation: \
                                         re-executed write differs from the logged value"
                                    .into(),
                            }
                            .to_string());
                        }
                        drop(knowledge);
                        self.state
                            .note_logged(self.inner.cfg.id, self.inner.epoch(), lsn, framed);
                        return Ok(());
                    }
                    other => return Err(replay_mismatch(lsn, "SharedWrite", &other).to_string()),
                },
                Consume::WentLive => { /* lost write: fall through and re-execute */ }
            }
        }
        self.live_write(var_id, value)
    }

    /// The live write path, shared by normal execution and the
    /// lost-write replay boundary (`write_shared` / `update_shared`).
    fn live_write(&mut self, var_id: msp_types::VarId, value: Vec<u8>) -> Result<(), String> {
        let var = self.inner.shared.get(var_id).expect("resolved id");
        if let Some(log) = &self.inner.log {
            let write_lsn = {
                let me = self.inner.cfg.id;
                let epoch = self.inner.epoch();
                let knowledge = self.inner.knowledge.read();
                // Interception point (§4.1): an orphaned writer must not
                // push its doomed dependencies into the variable.
                if knowledge.is_orphan(&self.state.dv, me) {
                    drop(knowledge);
                    return Err(self.mark_fatal(MspError::Orphan {
                        session: self.session_id,
                    }));
                }
                let env = crate::shared::SharedEnv {
                    me,
                    epoch,
                    log,
                    knowledge: &knowledge,
                    ops: self.inner.shared.ops(),
                };
                // The session's stream membership and self-entry for the
                // write (reply-durability cover on the variable's stripe)
                // happen inside: see `shared::write_shared`.
                crate::shared::write_shared(&env, var, self.session_id, self.state, value)
                    .map_err(|e| self.mark_fatal(e))?
            };
            // Shared-variable checkpointing by write-count threshold (§3.3).
            self.inner
                .maybe_shared_checkpoint(var, write_lsn)
                .map_err(|e| self.mark_fatal(e))?;
            Ok(())
        } else {
            var.state.lock().value = value;
            Ok(())
        }
    }

    /// Atomic read-modify-write of a shared variable (the read and write
    /// columns of Figure 8 under a single hold of the variable's lock).
    ///
    /// `f` maps the current value to `(new_value, result)`; the variable
    /// takes `new_value` and `result` is returned to the caller. Unlike a
    /// split `read_shared` + `write_shared` pair, no other session can
    /// interleave between the read and the write, so counter-style
    /// updates are lost-update safe. The logged record stream is the same
    /// `SharedRead`/`SharedWrite` pair the split calls produce.
    ///
    /// During replay, `f` is applied to the value from the `SharedRead`
    /// record and the paired `SharedWrite` is then consumed from the
    /// stream (applying nothing — the variable is its own recovery unit
    /// and rolls forward from its own records) — so `f` must be a pure
    /// function of the value for re-execution to be deterministic.
    ///
    /// A crash can cut the log *between* the pair: the read survived the
    /// frontier but the write was never appended (or died with a stripe
    /// tail — on a striped log the two records live on different
    /// stripes). The logged read is then **stale**: the variable keeps
    /// serving other sessions after recovery, so by the time this
    /// session replays, the rolled-forward value may have moved past
    /// what the read saw. The update therefore re-executes *live* —
    /// re-read under the variable lock, re-apply `f` — rather than
    /// blindly writing the value derived from the stale read (which
    /// would roll the variable back over every interleaved update).
    /// The consumed stale read stays in the session's stream, followed
    /// by the fresh pair the re-execution appends; replay accepts such
    /// runs of reads and applies `f` to the last one, the only read
    /// that ever fed a write.
    pub fn update_shared<T>(
        &mut self,
        name: &str,
        f: impl FnOnce(&[u8]) -> (Vec<u8>, T),
    ) -> Result<T, String> {
        let var_id = self
            .inner
            .shared
            .resolve(name)
            .ok_or_else(|| format!("no such shared variable: {name}"))?;
        // `f` runs exactly once, on whichever path ends the update: the
        // slot lets it cross from the replay loop to the live fallback.
        let mut f = Some(f);

        // Replay path: consume the run of SharedReads (stale ones from
        // interrupted attempts, then the one that fed the write), apply
        // `f` to the last, and consume the paired SharedWrite. A stream
        // ending before the write means the effect never became durable
        // — fall through and re-execute the whole update live.
        if self.is_replaying() {
            let me = self.inner.cfg.id;
            let mut last_read: Option<Vec<u8>> = None;
            loop {
                let consumed = {
                    let log = self.inner.log.as_ref().expect("replay requires a log");
                    let knowledge = self.inner.knowledge.read();
                    let cursor = self.cursor.as_mut().expect("is_replaying checked");
                    cursor
                        .consume(log, &knowledge, me, self.session_id)
                        .map_err(|e| e.to_string())?
                };
                match consumed {
                    Consume::Record {
                        lsn,
                        record,
                        framed,
                    } => match record {
                        LogRecord::SharedRead {
                            var, value, var_dv, ..
                        } if var == var_id => {
                            self.state.dv.merge_from(&var_dv);
                            self.state.note_logged(me, self.inner.epoch(), lsn, framed);
                            last_read = Some(value);
                        }
                        LogRecord::SharedWrite {
                            var, value: logged, ..
                        } if var == var_id && last_read.is_some() => {
                            let value = last_read.take().expect("guarded");
                            let (new, out) = (f.take().expect("closure unconsumed"))(&value);
                            if logged != new {
                                return Err(MspError::LogCorrupt {
                                    offset: lsn.0,
                                    reason: "replay determinism violation: \
                                             re-executed update differs from \
                                             the logged write"
                                        .into(),
                                }
                                .to_string());
                            }
                            self.state.note_logged(me, self.inner.epoch(), lsn, framed);
                            return Ok(out);
                        }
                        other => {
                            let want = if last_read.is_some() {
                                "SharedRead|SharedWrite"
                            } else {
                                "SharedRead"
                            };
                            return Err(replay_mismatch(lsn, want, &other).to_string());
                        }
                    },
                    // End of stream before the write: nothing of this
                    // update survived, or only stale reads did. Either
                    // way the durable world never saw the effect — redo
                    // it live against the current value.
                    Consume::WentLive => break,
                }
            }
        }

        let f = f.take().expect("closure unconsumed");
        let var = self.inner.shared.get(var_id).expect("resolved id");
        if let Some(log) = &self.inner.log {
            let mut result = None;
            let write_lsn = {
                let me = self.inner.cfg.id;
                let epoch = self.inner.epoch();
                let knowledge = self.inner.knowledge.read();
                // Interception point (§4.1), before the read merges the
                // variable's DV — see read_shared. The write half needs no
                // second check: the rolled-back variable DV is clean, so
                // merging it cannot newly orphan the session.
                if knowledge.is_orphan(&self.state.dv, me) {
                    drop(knowledge);
                    return Err(self.mark_fatal(MspError::Orphan {
                        session: self.session_id,
                    }));
                }
                let env = crate::shared::SharedEnv {
                    me,
                    epoch,
                    log,
                    knowledge: &knowledge,
                    ops: self.inner.shared.ops(),
                };
                // Stream membership and the self-entry covering the write
                // happen inside (see `shared::write_shared`).
                let (_, lsn) =
                    crate::shared::update_shared(&env, var, self.session_id, self.state, |old| {
                        let (new, t) = f(old);
                        result = Some(t);
                        new
                    })
                    .map_err(|e| self.mark_fatal(e))?;
                lsn
            };
            self.inner
                .maybe_shared_checkpoint(var, write_lsn)
                .map_err(|e| self.mark_fatal(e))?;
            Ok(result.expect("update closure ran"))
        } else {
            // Baselines: plain in-memory access, still under one lock hold.
            let mut st = var.state.lock();
            let (new, t) = f(&st.value);
            st.value = new;
            Ok(t)
        }
    }

    /// Blind read-modify-write of a shared variable through a registered
    /// shared operation (`MspBuilder::shared_op`). The caller never sees
    /// the value — which is what lets the runtime choose the log
    /// representation: under `adaptive_logging` a compact `SharedOp`
    /// record (op id + args), otherwise the value-logged
    /// `SharedRead`/`SharedWrite` pair `update_shared` would produce.
    ///
    /// During replay both shapes are accepted from the session's stream —
    /// the adaptive tracker may decide differently across incarnations,
    /// so a record logged in one mode can precede re-execution in the
    /// other. A `SharedOp` is consumed with an args-determinism check (the
    /// variable itself rolls forward from its own records); a read/write
    /// pair replays exactly like `update_shared`, including the
    /// stale-read runs an interrupted attempt leaves behind. A stream
    /// ending before any of those means the effect never became durable —
    /// the update re-executes live.
    pub fn apply_shared(&mut self, name: &str, op: &str, args: &[u8]) -> Result<(), String> {
        let var_id = self
            .inner
            .shared
            .resolve(name)
            .ok_or_else(|| format!("no such shared variable: {name}"))?;
        let op_id = self
            .inner
            .shared
            .resolve_op(op)
            .ok_or_else(|| format!("no such shared op: {op}"))?;

        if self.is_replaying() {
            let me = self.inner.cfg.id;
            let mut last_read: Option<Vec<u8>> = None;
            loop {
                let consumed = {
                    let log = self.inner.log.as_ref().expect("replay requires a log");
                    let knowledge = self.inner.knowledge.read();
                    let cursor = self.cursor.as_mut().expect("is_replaying checked");
                    cursor
                        .consume(log, &knowledge, me, self.session_id)
                        .map_err(|e| e.to_string())?
                };
                match consumed {
                    Consume::Record {
                        lsn,
                        record,
                        framed,
                    } => match record {
                        LogRecord::SharedOp {
                            var,
                            op: logged_op,
                            args: logged_args,
                            writer_dv,
                            ..
                        } if var == var_id => {
                            // Stale reads from an interrupted value-mode
                            // attempt may precede the op — discard them.
                            if logged_op != op_id || logged_args != args {
                                return Err(MspError::LogCorrupt {
                                    offset: lsn.0,
                                    reason: "replay determinism violation: \
                                             re-executed op differs from the logged SharedOp"
                                        .into(),
                                }
                                .to_string());
                            }
                            // The logged DV is the session's merged with
                            // the variable's at op time (see
                            // `shared::op_locked`); merging it reproduces
                            // the live execution's session DV exactly.
                            self.state.dv.merge_from(&writer_dv);
                            self.state.note_logged(me, self.inner.epoch(), lsn, framed);
                            return Ok(());
                        }
                        LogRecord::SharedRead {
                            var, value, var_dv, ..
                        } if var == var_id => {
                            self.state.dv.merge_from(&var_dv);
                            self.state.note_logged(me, self.inner.epoch(), lsn, framed);
                            last_read = Some(value);
                        }
                        LogRecord::SharedWrite {
                            var, value: logged, ..
                        } if var == var_id && last_read.is_some() => {
                            let old = last_read.take().expect("guarded");
                            let f = self.inner.shared.op_fn(op_id).expect("resolved op");
                            if logged != f(&old, args) {
                                return Err(MspError::LogCorrupt {
                                    offset: lsn.0,
                                    reason: "replay determinism violation: \
                                             re-executed op differs from the logged write"
                                        .into(),
                                }
                                .to_string());
                            }
                            self.state.note_logged(me, self.inner.epoch(), lsn, framed);
                            return Ok(());
                        }
                        other => {
                            let want = if last_read.is_some() {
                                "SharedOp|SharedRead|SharedWrite"
                            } else {
                                "SharedOp|SharedRead"
                            };
                            return Err(replay_mismatch(lsn, want, &other).to_string());
                        }
                    },
                    // Nothing of this update survived: redo it live.
                    Consume::WentLive => break,
                }
            }
        }

        let var = self.inner.shared.get(var_id).expect("resolved id");
        if let Some(log) = &self.inner.log {
            let write_lsn = {
                let me = self.inner.cfg.id;
                let epoch = self.inner.epoch();
                let knowledge = self.inner.knowledge.read();
                // Interception point (§4.1), before the op merges the
                // variable's DV — see read_shared.
                if knowledge.is_orphan(&self.state.dv, me) {
                    drop(knowledge);
                    return Err(self.mark_fatal(MspError::Orphan {
                        session: self.session_id,
                    }));
                }
                let env = crate::shared::SharedEnv {
                    me,
                    epoch,
                    log,
                    knowledge: &knowledge,
                    ops: self.inner.shared.ops(),
                };
                let (_, lsn) = crate::shared::apply_shared(
                    &env,
                    var,
                    self.session_id,
                    self.state,
                    op_id,
                    args,
                    self.inner.cfg.adaptive_logging,
                )
                .map_err(|e| self.mark_fatal(e))?;
                lsn
            };
            self.inner
                .maybe_shared_checkpoint(var, write_lsn)
                .map_err(|e| self.mark_fatal(e))?;
            Ok(())
        } else {
            // Baselines: plain in-memory application.
            let f = self.inner.shared.op_fn(op_id).expect("resolved op").clone();
            let mut st = var.state.lock();
            st.value = f(&st.value, args);
            Ok(())
        }
    }

    /// Call a service method at another MSP over this session's outgoing
    /// session to that MSP (synchronous RPC). A live cross-domain call
    /// performs the pessimistic pre-send flush; unless the MSP runs with
    /// `sends_block()`, that flush is only *issued* — the envelope parks
    /// in the release stage and the worker hands its run token back to
    /// the pool until the gate settles, so chained calls (m ≥ 2)
    /// pipeline across the pool instead of serializing on flush waits.
    pub fn call(&mut self, target: MspId, method: &str, payload: &[u8]) -> Result<Vec<u8>, String> {
        // Replay path: the reply comes from the ReplyReceive record;
        // requests are not re-sent (§4.1). A first call to a target is
        // preceded in the stream by its OutgoingBind record — restore the
        // binding and keep consuming.
        while self.is_replaying() {
            let log = self.inner.log.as_ref().expect("replay requires a log");
            let consumed = {
                let knowledge = self.inner.knowledge.read();
                let cursor = self.cursor.as_mut().expect("is_replaying checked");
                cursor
                    .consume(log, &knowledge, self.inner.cfg.id, self.session_id)
                    .map_err(|e| e.to_string())?
            };
            match consumed {
                Consume::Record {
                    lsn,
                    record,
                    framed,
                } => match record {
                    LogRecord::OutgoingBind {
                        target: bind_target,
                        outgoing,
                        ..
                    } => {
                        self.state.outgoing.insert(
                            bind_target,
                            OutgoingSession {
                                id: outgoing,
                                next_seq: msp_types::RequestSeq::FIRST,
                            },
                        );
                        self.state
                            .note_logged(self.inner.cfg.id, self.inner.epoch(), lsn, framed);
                        continue;
                    }
                    LogRecord::ReplyReceive {
                        outgoing,
                        seq,
                        payload,
                        sender_dv,
                        ..
                    } => {
                        // Rebind the outgoing session exactly as normal
                        // execution would have left it.
                        self.state.outgoing.insert(
                            target,
                            OutgoingSession {
                                id: outgoing,
                                next_seq: seq.next(),
                            },
                        );
                        if let Some(dv) = &sender_dv {
                            self.state.dv.merge_from(dv);
                        }
                        self.state
                            .note_logged(self.inner.cfg.id, self.inner.epoch(), lsn, framed);
                        return match decode_reply(&payload) {
                            ReplyStatus::Ok(p) => Ok(p),
                            ReplyStatus::Err(e) => Err(e),
                            ReplyStatus::Busy => {
                                Err("corrupt log: buffered Busy reply".to_string())
                            }
                        };
                    }
                    other => return Err(replay_mismatch(lsn, "ReplyReceive", &other).to_string()),
                },
                Consume::WentLive => {
                    // If replay terminated *at* the reply we were waiting
                    // for (it was an orphan), restore the outgoing-session
                    // binding from the orphan record so the live resend
                    // reuses the same session and sequence number —
                    // otherwise the target would execute the request a
                    // second time under a fresh session.
                    if let Some(orphan_lsn) = self.orphan_boundary() {
                        if let Ok(LogRecord::ReplyReceive { outgoing, seq, .. }) =
                            log.read_record(orphan_lsn)
                        {
                            self.state.outgoing.insert(
                                target,
                                OutgoingSession {
                                    id: outgoing,
                                    next_seq: seq,
                                },
                            );
                        }
                    }
                    break; // fall through to the live call
                }
            }
        }

        self.inner
            .outgoing_call(self.state, self.session_id, target, method, payload)
            .map_err(|e| match e {
                MspError::Application(msg) => msg,
                other => self.mark_fatal(other),
            })
    }

    fn orphan_boundary(&self) -> Option<Lsn> {
        self.cursor.as_ref().and_then(|c| c.orphan_hit)
    }
}

/// Extract an infrastructure-fatal error from a method result, if the
/// marker string came back (used by the worker after running a method).
pub fn take_fatal(
    result: Result<Vec<u8>, String>,
    fatal: Option<MspError>,
) -> MspResult<Result<Vec<u8>, String>> {
    match (result, fatal) {
        (Err(msg), Some(e)) if msg == FATAL_MARKER => Err(e),
        // The method swallowed or rewrapped the marker but an
        // infrastructure error occurred: the infra error wins — the
        // request must not produce a normal reply from a broken run.
        (_, Some(e)) => Err(e),
        (r, None) => Ok(r),
    }
}
