//! The wire protocol between clients, MSPs and state servers.
//!
//! Request/reply carry the sequence numbers of §3.1 and, when the sender's
//! session lives in the same service domain as the receiver, the sender's
//! dependency vector (Figure 7). The remaining variants implement the
//! recovery plumbing: distributed log flushes and recovery broadcasts.

use msp_net::EndpointId;
use msp_types::{DependencyVector, Epoch, Lsn, MspId, RecoveryRecord, RequestSeq, SessionId};

/// Piggybacked durability evidence: "`msp`'s log is durable up to
/// (exclusive) `durable` in `epoch`". Carried on flush acknowledgements
/// and on intra-domain request/reply traffic; the receiver feeds it into
/// its [`crate::watermark::WatermarkTable`] so later distributed flushes
/// can skip provably redundant flush RPCs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableHint {
    pub msp: MspId,
    pub epoch: Epoch,
    /// Exclusive end of the sender's durable log prefix.
    pub durable: Lsn,
}

/// Outcome carried by a reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplyStatus {
    /// The method executed; here is its result.
    Ok(Vec<u8>),
    /// The server is checkpointing this session or recovering it; the
    /// client should back off briefly and resend (§5.4: "it sleeps for
    /// 100ms and resends the request").
    Busy,
    /// The service method failed deterministically.
    Err(String),
}

/// A request over a session.
#[derive(Debug, Clone)]
pub struct RequestMsg {
    pub session: SessionId,
    pub seq: RequestSeq,
    pub method: String,
    pub payload: Vec<u8>,
    /// Where the reply goes (the client endpoint, or the calling MSP).
    pub reply_to: EndpointId,
    /// Present iff the sender is a session of an MSP in the same service
    /// domain (optimistic logging); absent on pessimistically logged
    /// paths (end clients, cross-domain).
    pub sender_dv: Option<DependencyVector>,
    /// Sender's durable watermark, piggybacked on intra-domain traffic.
    pub durable_hint: Option<DurableHint>,
    /// The sender's recovery knowledge, piggybacked on intra-domain
    /// traffic (empty elsewhere). The one-shot recovery broadcast can be
    /// lost or outrun by post-recovery traffic; a receiver that merged a
    /// new-epoch DV entry before learning of the recovery would mask the
    /// orphaned old-epoch entry forever. Gossiping the knowledge on every
    /// message closes that window: the message that could launder an
    /// orphan carries the evidence needed to detect it.
    pub recoveries: Vec<RecoveryRecord>,
}

/// The reply to a [`RequestMsg`], matched by `(session, seq)`.
#[derive(Debug, Clone)]
pub struct ReplyMsg {
    pub session: SessionId,
    pub seq: RequestSeq,
    pub status: ReplyStatus,
    /// Sender's session DV when the reply stays inside the service domain.
    pub sender_dv: Option<DependencyVector>,
    /// Sender's durable watermark, piggybacked on intra-domain traffic.
    pub durable_hint: Option<DurableHint>,
    /// Sender's recovery knowledge — see [`RequestMsg::recoveries`].
    pub recoveries: Vec<RecoveryRecord>,
}

/// Everything that can travel over the simulated network.
#[derive(Debug, Clone)]
pub enum Envelope {
    Request(RequestMsg),
    Reply(ReplyMsg),
    /// Part of a distributed log flush (§3.1): "flush your log so the
    /// state `(epoch, lsn)` of yours that I depend on is durable".
    FlushRequest {
        from: EndpointId,
        req_id: u64,
        epoch: Epoch,
        lsn: Lsn,
    },
    /// Answer to a flush request; `ok = false` means the requested state
    /// was lost in a crash — the requester is an orphan. Successful
    /// replies carry the responder's durable watermark so the requester
    /// can elide future flushes of already-durable dependencies.
    FlushReply {
        req_id: u64,
        ok: bool,
        durable: Option<DurableHint>,
    },
    /// Recovery broadcast within the service domain: the sender recovered.
    Recovery(RecoveryRecord),
    /// StateServer baseline: fetch a session-state blob.
    StateGet {
        from: EndpointId,
        req_id: u64,
        key: Vec<u8>,
    },
    /// StateServer baseline: store a session-state blob.
    StatePut {
        from: EndpointId,
        req_id: u64,
        key: Vec<u8>,
        value: Vec<u8>,
    },
    /// StateServer baseline: response to either of the above.
    StateResp {
        req_id: u64,
        value: Option<Vec<u8>>,
    },
}

impl Envelope {
    /// Diagnostic name.
    pub fn kind(&self) -> &'static str {
        match self {
            Envelope::Request(_) => "Request",
            Envelope::Reply(_) => "Reply",
            Envelope::FlushRequest { .. } => "FlushRequest",
            Envelope::FlushReply { .. } => "FlushReply",
            Envelope::Recovery(_) => "Recovery",
            Envelope::StateGet { .. } => "StateGet",
            Envelope::StatePut { .. } => "StatePut",
            Envelope::StateResp { .. } => "StateResp",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp_types::MspId;

    #[test]
    fn kind_names() {
        let req = Envelope::Request(RequestMsg {
            session: SessionId(1),
            seq: RequestSeq(0),
            method: "m".into(),
            payload: vec![],
            reply_to: EndpointId::Client(1),
            sender_dv: None,
            durable_hint: None,
            recoveries: vec![],
        });
        assert_eq!(req.kind(), "Request");
        let fl = Envelope::FlushRequest {
            from: EndpointId::Msp(MspId(1)),
            req_id: 1,
            epoch: Epoch(0),
            lsn: Lsn(10),
        };
        assert_eq!(fl.kind(), "FlushRequest");
    }
}
