//! Shared in-memory state with value logging (§3.3).
//!
//! A shared variable is a *passive recovery unit*: it has its own
//! dependency vector and state number, is locked per access (no lock
//! table, no deadlocks — locks span only the access), and is logged by
//! **value**:
//!
//! * a read logs the value and the variable's DV, so a recovering reader
//!   session gets the value from the log without involving any other
//!   session;
//! * a write logs the new value, the writer's DV and the LSN of the
//!   previous write — a backward chain (Figure 9) that lets *any* thread
//!   roll an orphaned variable back to its most recent non-orphan value,
//!   avoiding both rollback cascades into writers and the thread-pool
//!   deadlock the paper shows for access-order logging.
//!
//! Dependency tracking is the paper's refined, asymmetric rule: reads
//! merge variable→session only; writes *replace* the variable's DV with
//! the writer's (the overwritten value's dependencies die with it).
//!
//! # Adaptive operation logging
//!
//! Value logging pays for its independence in log bytes: a
//! read-modify-write of a large value logs the value twice (read +
//! write). For *blind* RMWs — updates through a registered deterministic
//! operation whose caller never sees the value — [`apply_shared`] can log
//! a compact [`LogRecord::SharedOp`] (operation id + arguments) instead.
//! Recovery reconstructs the value by walking the backward chain to the
//! nearest value-bearing record and re-applying the ops forward.
//!
//! The diet is adaptive per variable: op logging is used only while the
//! op chain since the last value-bearing record is short (bounded
//! reconstruction cost, [`OP_CHAIN_LIMIT`]) and cross-session contention
//! is low ([`CONTENTION_SWITCHES`]); otherwise the access falls back to
//! the value-logged read/write pair, which also resets the chain.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use msp_types::{
    DependencyVector, Epoch, Lsn, MspError, MspId, MspResult, RecoveryKnowledge, SessionId, VarId,
};
use msp_wal::{LogRecord, Wal};

use crate::session::SessionState;

/// Mutable state of one shared variable.
#[derive(Debug)]
pub struct SharedVarState {
    pub value: Vec<u8>,
    /// The variable's dependency vector: the writer session's DV as of the
    /// last write (or empty after a checkpoint / at the initial value).
    pub dv: DependencyVector,
    /// Head of the backward write chain: LSN of the most recent write or
    /// checkpoint record, `Lsn::NULL` if the variable has never been
    /// written (its value is the registered initial).
    pub chain_head: Lsn,
    /// LSN of the variable's most recent checkpoint record.
    pub last_ckpt: Option<Lsn>,
    /// LSN of the variable's first write ever (anchor before the first
    /// checkpoint).
    pub first_write: Option<Lsn>,
    /// Writes since the last checkpoint — drives checkpointing (§3.3).
    pub writes_since_ckpt: u64,
    /// Consecutive `SharedOp` records since the last value-bearing chain
    /// record (write or checkpoint) — bounds reconstruction cost.
    pub ops_since_value: u64,
    /// The session that performed the most recent adaptive access —
    /// feeds the contention tracker.
    pub last_writer: Option<SessionId>,
    /// Saturating cross-session switch counter: bumped when consecutive
    /// adaptive accesses come from different sessions, decayed otherwise.
    /// High values mean the variable is contended and op chains would
    /// entangle many sessions' recovery — force value logging.
    pub recent_switches: u32,
}

impl SharedVarState {
    fn initial() -> SharedVarState {
        SharedVarState {
            value: Vec::new(),
            dv: DependencyVector::new(),
            chain_head: Lsn::NULL,
            last_ckpt: None,
            first_write: None,
            writes_since_ckpt: 0,
            ops_since_value: 0,
            last_writer: None,
            recent_switches: 0,
        }
    }
}

/// One shared variable: its lock and its fuzzy-checkpoint anchor.
pub struct SharedVar {
    pub id: VarId,
    pub name: String,
    pub initial: Vec<u8>,
    /// The paper holds read/write locks only for the duration of the
    /// access; accesses here are short (value copy + log append), so a
    /// mutex provides the same external behaviour with less machinery.
    pub state: Mutex<SharedVarState>,
    /// Fuzzy anchor: last checkpoint LSN, else first write LSN
    /// (`u64::MAX` = no records — the initial value needs no log).
    anchor_lsn: AtomicU64,
    /// MSP checkpoints since this variable's last checkpoint (§3.4).
    pub msp_ckpts_since_ckpt: AtomicU32,
}

impl SharedVar {
    fn new(id: VarId, name: String, initial: Vec<u8>) -> SharedVar {
        let mut st = SharedVarState::initial();
        st.value = initial.clone();
        SharedVar {
            id,
            name,
            initial,
            state: Mutex::new(st),
            anchor_lsn: AtomicU64::new(u64::MAX),
            msp_ckpts_since_ckpt: AtomicU32::new(0),
        }
    }

    /// Refresh the fuzzy anchor from the locked state.
    pub fn sync_anchor(&self, st: &SharedVarState) {
        let v = st.last_ckpt.or(st.first_write).map_or(u64::MAX, |l| l.0);
        self.anchor_lsn.store(v, Ordering::Release);
    }

    /// The anchor, lock-free.
    pub fn anchor(&self) -> Option<Lsn> {
        let v = self.anchor_lsn.load(Ordering::Acquire);
        (v != u64::MAX).then_some(Lsn(v))
    }
}

/// A registered shared operation: `(current value, args) -> new value`.
/// Must be deterministic — recovery re-applies it to reconstruct values
/// from `SharedOp` records.
pub type SharedOpFn = Arc<dyn Fn(&[u8], &[u8]) -> Vec<u8> + Send + Sync>;

/// The fixed set of shared variables of an MSP, built at startup.
#[derive(Default)]
pub struct SharedRegistry {
    vars: Vec<SharedVar>,
    by_name: HashMap<String, VarId>,
    ops: Vec<(String, SharedOpFn)>,
    ops_by_name: HashMap<String, u32>,
}

impl SharedRegistry {
    pub fn new() -> SharedRegistry {
        SharedRegistry::default()
    }

    /// Register a variable with its initial value; ids are dense and
    /// assigned in registration order (stable across restarts as long as
    /// the program registers the same variables — same contract as the
    /// service-method registry).
    pub fn register(&mut self, name: &str, initial: Vec<u8>) -> VarId {
        debug_assert!(
            !self.by_name.contains_key(name),
            "duplicate shared variable {name}"
        );
        let id = VarId(self.vars.len() as u32);
        self.vars
            .push(SharedVar::new(id, name.to_string(), initial));
        self.by_name.insert(name.to_string(), id);
        id
    }

    pub fn resolve(&self, name: &str) -> Option<VarId> {
        self.by_name.get(name).copied()
    }

    pub fn get(&self, id: VarId) -> Option<&SharedVar> {
        self.vars.get(id.0 as usize)
    }

    pub fn iter(&self) -> impl Iterator<Item = &SharedVar> {
        self.vars.iter()
    }

    pub fn len(&self) -> usize {
        self.vars.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Register a shared operation; ids are dense and assigned in
    /// registration order (stable across restarts under the same
    /// registration program — same contract as variables and service
    /// methods, and required for `SharedOp` records to replay).
    pub fn register_op(
        &mut self,
        name: &str,
        f: impl Fn(&[u8], &[u8]) -> Vec<u8> + Send + Sync + 'static,
    ) -> u32 {
        debug_assert!(
            !self.ops_by_name.contains_key(name),
            "duplicate shared op {name}"
        );
        let id = self.ops.len() as u32;
        self.ops.push((name.to_string(), Arc::new(f)));
        self.ops_by_name.insert(name.to_string(), id);
        id
    }

    pub fn resolve_op(&self, name: &str) -> Option<u32> {
        self.ops_by_name.get(name).copied()
    }

    pub fn op_fn(&self, id: u32) -> Option<&SharedOpFn> {
        self.ops.get(id as usize).map(|(_, f)| f)
    }

    /// The full op table, for threading into a [`SharedEnv`].
    pub fn ops(&self) -> &[(String, SharedOpFn)] {
        &self.ops
    }
}

/// What a shared-variable access needs from the runtime.
pub struct SharedEnv<'a> {
    pub me: MspId,
    pub epoch: Epoch,
    pub log: &'a Wal,
    pub knowledge: &'a RecoveryKnowledge,
    /// The registered shared operations ([`SharedRegistry::ops`]) —
    /// rollback needs the table to re-apply op chains.
    pub ops: &'a [(String, SharedOpFn)],
}

/// Figure 8, left column: read `var` on behalf of `session`.
///
/// 1. If the variable's value is an orphan, roll it back to the most
///    recent non-orphan value (undo along the backward chain).
/// 2. Log the value and the variable's DV (value logging of the read).
/// 3. Merge the variable's DV into the reader's; the reader's state
///    number becomes the new record's LSN.
pub fn read_shared(
    env: &SharedEnv<'_>,
    var: &SharedVar,
    session_id: SessionId,
    session: &mut SessionState,
) -> MspResult<Vec<u8>> {
    let mut st = var.state.lock();
    rollback_if_orphan(env, var, &mut st)?;
    Ok(read_locked(env, var, &mut st, session_id, session))
}

/// The read column's logging steps, with the variable lock already held.
fn read_locked(
    env: &SharedEnv<'_>,
    var: &SharedVar,
    st: &mut SharedVarState,
    session_id: SessionId,
    session: &mut SessionState,
) -> Vec<u8> {
    let record = LogRecord::SharedRead {
        session: session_id,
        var: var.id,
        value: st.value.clone(),
        var_dv: st.dv.clone(),
    };
    // `append_sized` reports the framed size directly; an `end_lsn`
    // delta would be racy under concurrent (striped) appends.
    let (lsn, framed) = env.log.append_sized(&record);
    session.dv.merge_from(&st.dv);
    session.note_logged(env.me, env.epoch, lsn, framed);
    st.value.clone()
}

/// Figure 8, right column: write `value` into `var` on behalf of
/// `session`.
///
/// Logs the writer's DV, the new value and the back-pointer; *replaces*
/// the variable's DV with the writer's; advances the variable's state
/// number. The overwritten value is never orphan-checked — it is about
/// to die anyway.
///
/// The write also joins the writing *session's* replay stream and
/// self-dependency. The paper keeps writes out of the session's stream
/// (the variable recovers separately), which is sound only when the
/// session's records and the write share one totally-ordered log tail.
/// On a striped log the write lands on the variable's stripe, which the
/// session's own records may never touch, so two failure modes open up:
/// the pre-reply flush can skip that stripe (an acknowledged write dies
/// with its volatile tail), and replay can find the read durable but
/// the write lost (a manufactured ack for an effect that never became
/// durable). Making the write a session-stream record closes both: the
/// session's self-entry covers the write's LSN for every durability
/// cover, and the replay write-half consumes the record — hitting
/// end-of-stream there identifies a lost write and re-executes it live.
pub fn write_shared(
    env: &SharedEnv<'_>,
    var: &SharedVar,
    session_id: SessionId,
    session: &mut SessionState,
    value: Vec<u8>,
) -> MspResult<Lsn> {
    let mut st = var.state.lock();
    Ok(write_locked(env, var, &mut st, session_id, session, value))
}

/// The write column's logging steps, with the variable lock already held.
fn write_locked(
    env: &SharedEnv<'_>,
    var: &SharedVar,
    st: &mut SharedVarState,
    session_id: SessionId,
    session: &mut SessionState,
    value: Vec<u8>,
) -> Lsn {
    let record = LogRecord::SharedWrite {
        session: session_id,
        var: var.id,
        value: value.clone(),
        writer_dv: session.dv.clone(),
        prev_write: st.chain_head,
    };
    let (lsn, framed) = env.log.append_sized(&record);
    st.value = value;
    st.dv = session.dv.clone();
    st.chain_head = lsn;
    if st.first_write.is_none() {
        st.first_write = Some(lsn);
        var.sync_anchor(st);
    }
    st.writes_since_ckpt += 1;
    // A value-bearing record resets the op-chain length: rollback and
    // reconstruction stop here.
    st.ops_since_value = 0;
    // The session's half of the write: stream membership + self-entry
    // (see `write_shared`). Ordered after the record is built so the
    // logged writer_dv does not include the write itself.
    session.note_logged(env.me, env.epoch, lsn, framed);
    lsn
}

/// Atomic read-modify-write: the read and write columns of Figure 8
/// executed under a *single* hold of the variable lock, so no other
/// session can interleave between the read and the dependent write (the
/// split `read_shared` + `write_shared` pair loses updates under that
/// interleaving). Logs the same `SharedRead`/`SharedWrite` record pair
/// the split calls would, so the session's replay stream and the
/// variable's backward chain are shaped identically.
///
/// `f` maps the current value to the value to write. Returns the value
/// read (pre-`f`) and the write's LSN.
pub fn update_shared(
    env: &SharedEnv<'_>,
    var: &SharedVar,
    session_id: SessionId,
    session: &mut SessionState,
    f: impl FnOnce(&[u8]) -> Vec<u8>,
) -> MspResult<(Vec<u8>, Lsn)> {
    let mut st = var.state.lock();
    rollback_if_orphan(env, var, &mut st)?;
    let old = read_locked(env, var, &mut st, session_id, session);
    let new = f(&old);
    let lsn = write_locked(env, var, &mut st, session_id, session, new);
    Ok((old, lsn))
}

/// Longest op chain allowed since the last value-bearing record before
/// the adaptive diet forces a value-logged access (bounds the chain walk
/// rollback and reconstruction must perform).
pub const OP_CHAIN_LIMIT: u64 = 32;

/// Switch-counter threshold at which a variable counts as contended and
/// the diet forces value logging (a clean value decouples the sessions'
/// recovery; long op chains under contention entangle them).
pub const CONTENTION_SWITCHES: u32 = 4;

/// Blind read-modify-write through a registered operation, with an
/// adaptive choice of log representation.
///
/// The operation both reads and writes the variable, under one hold of
/// its lock. When `adaptive` is set and the per-variable tracker allows
/// it, the access logs a single compact [`LogRecord::SharedOp`] (op id +
/// args) instead of the value-logged `SharedRead`/`SharedWrite` pair;
/// otherwise it takes exactly the [`update_shared`] path. Returns
/// `(op_mode, lsn)` — whether the compact record was used, and the LSN
/// of the chain record written.
///
/// The caller never sees the value, which is what makes the compact form
/// sound: replay needs no value reconstruction to re-execute the method,
/// only the variable's own recovery does (and it walks the chain).
pub fn apply_shared(
    env: &SharedEnv<'_>,
    var: &SharedVar,
    session_id: SessionId,
    session: &mut SessionState,
    op: u32,
    args: &[u8],
    adaptive: bool,
) -> MspResult<(bool, Lsn)> {
    let op_fn = env
        .ops
        .get(op as usize)
        .map(|(_, f)| f.clone())
        .ok_or_else(|| MspError::Application(format!("unregistered shared op {op}")))?;
    let mut st = var.state.lock();
    rollback_if_orphan(env, var, &mut st)?;

    // Contention tracker: consecutive accesses from different sessions
    // bump the switch counter, same-session runs decay it.
    let switched = st.last_writer.is_some_and(|w| w != session_id);
    if switched {
        st.recent_switches = (st.recent_switches + 1).min(2 * CONTENTION_SWITCHES);
    } else {
        st.recent_switches = st.recent_switches.saturating_sub(1);
    }
    st.last_writer = Some(session_id);

    let use_op =
        adaptive && st.ops_since_value < OP_CHAIN_LIMIT && st.recent_switches < CONTENTION_SWITCHES;
    if use_op {
        let lsn = op_locked(env, var, &mut st, session_id, session, op, &op_fn, args);
        Ok((true, lsn))
    } else {
        let old = read_locked(env, var, &mut st, session_id, session);
        let new = op_fn(&old, args);
        let lsn = write_locked(env, var, &mut st, session_id, session, new);
        Ok((false, lsn))
    }
}

/// The op-logged access, with the variable lock already held.
///
/// DV discipline: the op *reads* the variable, so the variable's DV is
/// merged into the session **first**; the record then logs the merged
/// session DV (pre-self-entry) as `writer_dv` and the variable takes it.
/// Every `SharedOp`'s DV is therefore a superset of its chain
/// predecessor's — so a *clean* `SharedOp` proves its whole ancestry
/// clean, and reconstruction below it never meets an orphan.
#[allow(clippy::too_many_arguments)]
fn op_locked(
    env: &SharedEnv<'_>,
    var: &SharedVar,
    st: &mut SharedVarState,
    session_id: SessionId,
    session: &mut SessionState,
    op: u32,
    op_fn: &SharedOpFn,
    args: &[u8],
) -> Lsn {
    session.dv.merge_from(&st.dv);
    let record = LogRecord::SharedOp {
        session: session_id,
        var: var.id,
        op,
        args: args.to_vec(),
        writer_dv: session.dv.clone(),
        prev_write: st.chain_head,
    };
    let (lsn, framed) = env.log.append_sized(&record);
    st.value = op_fn(&st.value, args);
    st.dv = session.dv.clone();
    st.chain_head = lsn;
    if st.first_write.is_none() {
        st.first_write = Some(lsn);
        var.sync_anchor(st);
    }
    st.writes_since_ckpt += 1;
    st.ops_since_value += 1;
    // Stream membership + self-entry, as for writes (the op is a session
    // record too: its loss must surface as end-of-stream at replay).
    session.note_logged(env.me, env.epoch, lsn, framed);
    lsn
}

/// Undo recovery of a shared variable (§4.2): follow the backward chain
/// from the chain head until a non-orphan value — a checkpointed value, a
/// write whose logged DV is clean, or (chain exhausted) the registered
/// initial value.
pub fn rollback_if_orphan(
    env: &SharedEnv<'_>,
    var: &SharedVar,
    st: &mut SharedVarState,
) -> MspResult<()> {
    if !env.knowledge.is_orphan(&st.dv, env.me) {
        return Ok(());
    }
    let mut cursor = st.chain_head;
    loop {
        if cursor.is_null() {
            // Never-written (or fully unwound): the initial value, which
            // depends on nothing.
            st.value = var.initial.clone();
            st.dv.clear();
            st.chain_head = Lsn::NULL;
            st.ops_since_value = 0;
            return Ok(());
        }
        match env.log.read_record(cursor)? {
            LogRecord::SharedCheckpoint { var: v, value } => {
                debug_assert_eq!(v, var.id);
                // Checkpointed values are flushed under their DV first and
                // can never be orphans (§3.3).
                st.value = value;
                st.dv.clear();
                st.chain_head = cursor;
                st.ops_since_value = 0;
                return Ok(());
            }
            LogRecord::SharedWrite {
                var: v,
                value,
                writer_dv,
                prev_write,
                ..
            } => {
                debug_assert_eq!(v, var.id);
                if env.knowledge.is_orphan(&writer_dv, env.me) {
                    cursor = prev_write;
                    continue;
                }
                st.value = value;
                st.dv = writer_dv;
                st.chain_head = cursor;
                st.ops_since_value = 0;
                return Ok(());
            }
            LogRecord::SharedOp {
                var: v,
                writer_dv,
                prev_write,
                ..
            } => {
                debug_assert_eq!(v, var.id);
                if env.knowledge.is_orphan(&writer_dv, env.me) {
                    cursor = prev_write;
                    continue;
                }
                // A clean SharedOp guarantees a clean ancestry (its DV is
                // a superset of every predecessor's — see `op_locked`), so
                // the value can be rebuilt by walking down to the nearest
                // value bearer and re-applying the ops forward.
                let (value, chain_len) = op_chain_value(env, var, cursor)?;
                st.value = value;
                st.dv = writer_dv;
                st.chain_head = cursor;
                st.ops_since_value = chain_len;
                return Ok(());
            }
            other => {
                return Err(MspError::LogCorrupt {
                    offset: cursor.0,
                    reason: format!(
                        "shared-variable chain for {} hit a {} record",
                        var.name,
                        other.kind()
                    ),
                });
            }
        }
    }
}

/// Reconstruct the value as of the `SharedOp` record at `head`: walk the
/// backward chain collecting ops until a value-bearing record (write,
/// checkpoint, or the chain end = registered initial), then re-apply the
/// ops oldest-first. Returns the value and the op-chain length.
fn op_chain_value(env: &SharedEnv<'_>, var: &SharedVar, head: Lsn) -> MspResult<(Vec<u8>, u64)> {
    let mut ops: Vec<(u32, Vec<u8>)> = Vec::new();
    let mut cursor = head;
    let mut value = loop {
        if cursor.is_null() {
            break var.initial.clone();
        }
        match env.log.read_record(cursor)? {
            LogRecord::SharedOp {
                op,
                args,
                prev_write,
                ..
            } => {
                ops.push((op, args));
                cursor = prev_write;
            }
            LogRecord::SharedWrite { value, .. } => break value,
            LogRecord::SharedCheckpoint { value, .. } => break value,
            other => {
                return Err(MspError::LogCorrupt {
                    offset: cursor.0,
                    reason: format!(
                        "shared-variable chain for {} hit a {} record",
                        var.name,
                        other.kind()
                    ),
                });
            }
        }
    };
    let chain_len = ops.len() as u64;
    for (op, args) in ops.into_iter().rev() {
        let Some((_, f)) = env.ops.get(op as usize) else {
            return Err(MspError::LogCorrupt {
                offset: head.0,
                reason: format!(
                    "shared-variable chain for {} uses unregistered op {op}",
                    var.name
                ),
            });
        };
        value = f(&value, &args);
    }
    Ok((value, chain_len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp_types::{RecoveryRecord, StateId};
    use msp_wal::{DiskModel, FlushPolicy, MemDisk, PhysicalLog};
    use std::sync::Arc;

    fn test_log() -> Arc<Wal> {
        Arc::new(Wal::Single(
            PhysicalLog::open(
                Arc::new(MemDisk::new()),
                DiskModel::zero(),
                FlushPolicy::immediate(),
            )
            .unwrap(),
        ))
    }

    fn env<'a>(log: &'a Wal, knowledge: &'a RecoveryKnowledge) -> SharedEnv<'a> {
        SharedEnv {
            me: MspId(1),
            epoch: Epoch(0),
            log,
            knowledge,
            ops: &[],
        }
    }

    fn env_with_ops<'a>(
        log: &'a Wal,
        knowledge: &'a RecoveryKnowledge,
        reg: &'a SharedRegistry,
    ) -> SharedEnv<'a> {
        SharedEnv {
            me: MspId(1),
            epoch: Epoch(0),
            log,
            knowledge,
            ops: reg.ops(),
        }
    }

    /// Registry with one variable holding a little-endian u64 counter and
    /// an `add` op summing the args into it.
    fn counter_registry() -> (SharedRegistry, VarId, u32) {
        let mut reg = SharedRegistry::new();
        let id = reg.register("CTR", 0u64.to_le_bytes().to_vec());
        let add = reg.register_op("add", |old, args| {
            let o = u64::from_le_bytes(old.try_into().unwrap());
            let a = u64::from_le_bytes(args.try_into().unwrap());
            (o + a).to_le_bytes().to_vec()
        });
        (reg, id, add)
    }

    fn session_with_dv(entries: &[(u32, u32, u64)]) -> SessionState {
        let mut s = SessionState::fresh();
        for &(m, e, l) in entries {
            s.dv.bump(MspId(m), StateId::new(Epoch(e), Lsn(l)));
        }
        s
    }

    #[test]
    fn read_merges_variable_dv_into_session() {
        let log = test_log();
        let k = RecoveryKnowledge::new();
        let mut reg = SharedRegistry::new();
        let id = reg.register("SV0", vec![0; 4]);
        let var = reg.get(id).unwrap();

        // Writer session with a dependency on msp2 writes.
        let mut writer = session_with_dv(&[(2, 0, 77)]);
        write_shared(&env(&log, &k), var, SessionId(1), &mut writer, vec![9; 4]).unwrap();

        let mut reader = SessionState::fresh();
        let v = read_shared(&env(&log, &k), var, SessionId(2), &mut reader).unwrap();
        assert_eq!(v, vec![9; 4]);
        // The variable's dependency (on msp2) flowed to the reader...
        assert_eq!(
            reader.dv.get(MspId(2)),
            Some(StateId::new(Epoch(0), Lsn(77)))
        );
        // ...and the reader's state number advanced to the read record.
        assert!(reader.state_number > Lsn::ZERO);
        assert_eq!(reader.positions.len(), 1, "reads are session records");
        log.close();
    }

    #[test]
    fn write_replaces_variable_dv_and_joins_writer_stream() {
        let log = test_log();
        let k = RecoveryKnowledge::new();
        let mut reg = SharedRegistry::new();
        let id = reg.register("SV0", vec![]);
        let var = reg.get(id).unwrap();

        let mut w1 = session_with_dv(&[(2, 0, 10)]);
        write_shared(&env(&log, &k), var, SessionId(1), &mut w1, vec![1]).unwrap();
        {
            let st = var.state.lock();
            assert_eq!(st.dv.get(MspId(2)), Some(StateId::new(Epoch(0), Lsn(10))));
        }
        // The *variable's* DV took the writer's as of before the write —
        // the logged writer_dv must not include the write itself.
        // Second writer has a *different* dependency: replacement, not merge.
        let mut w2 = session_with_dv(&[(3, 0, 20)]);
        write_shared(&env(&log, &k), var, SessionId(2), &mut w2, vec![2]).unwrap();
        {
            let st = var.state.lock();
            assert_eq!(
                st.dv.get(MspId(2)),
                None,
                "old dependency died with old value"
            );
            assert_eq!(st.dv.get(MspId(3)), Some(StateId::new(Epoch(0), Lsn(20))));
            assert_eq!(st.writes_since_ckpt, 2);
            // The writer's own stream and self-dependency cover the write
            // (reply-durability + replay write-half; see write_shared).
            assert_eq!(w2.positions.len(), 1, "writes enter the session stream");
            assert_eq!(
                w2.dv.get(MspId(1)).map(|s| s.lsn),
                Some(st.chain_head),
                "writer self-entry covers the write record"
            );
        }
        log.close();
    }

    #[test]
    fn orphan_variable_rolls_back_along_chain() {
        let log = test_log();
        let mut k = RecoveryKnowledge::new();
        let mut reg = SharedRegistry::new();
        let id = reg.register("SV0", b"init".to_vec());
        let var = reg.get(id).unwrap();

        // Clean write by a session depending on msp2@(0,10).
        let mut clean = session_with_dv(&[(2, 0, 10)]);
        write_shared(
            &env(&log, &k),
            var,
            SessionId(1),
            &mut clean,
            b"good".to_vec(),
        )
        .unwrap();
        // Doomed write depending on msp2@(0,100).
        let mut doomed = session_with_dv(&[(2, 0, 100)]);
        write_shared(
            &env(&log, &k),
            var,
            SessionId(2),
            &mut doomed,
            b"bad".to_vec(),
        )
        .unwrap();

        // msp2 recovers having only reached LSN 50: the second write is
        // an orphan, the first is not.
        k.record(RecoveryRecord {
            msp: MspId(2),
            new_epoch: Epoch(1),
            recovered_lsn: Lsn(50),
        });

        let mut reader = SessionState::fresh();
        let v = read_shared(&env(&log, &k), var, SessionId(3), &mut reader).unwrap();
        assert_eq!(
            v,
            b"good".to_vec(),
            "rolled back to most recent non-orphan value"
        );
        assert_eq!(
            reader.dv.get(MspId(2)),
            Some(StateId::new(Epoch(0), Lsn(10)))
        );
        log.close();
    }

    #[test]
    fn rollback_past_everything_restores_initial() {
        let log = test_log();
        let mut k = RecoveryKnowledge::new();
        let mut reg = SharedRegistry::new();
        let id = reg.register("SV0", b"init".to_vec());
        let var = reg.get(id).unwrap();

        let mut doomed = session_with_dv(&[(2, 0, 100)]);
        write_shared(
            &env(&log, &k),
            var,
            SessionId(1),
            &mut doomed,
            b"bad".to_vec(),
        )
        .unwrap();
        k.record(RecoveryRecord {
            msp: MspId(2),
            new_epoch: Epoch(1),
            recovered_lsn: Lsn(50),
        });

        let mut reader = SessionState::fresh();
        let v = read_shared(&env(&log, &k), var, SessionId(2), &mut reader).unwrap();
        assert_eq!(v, b"init".to_vec());
        assert!(
            reader.dv.get(MspId(2)).is_none(),
            "initial value has no dependencies"
        );
        log.close();
    }

    #[test]
    fn rollback_stops_at_checkpoint_record() {
        let log = test_log();
        let mut k = RecoveryKnowledge::new();
        let mut reg = SharedRegistry::new();
        let id = reg.register("SV0", b"init".to_vec());
        let var = reg.get(id).unwrap();

        // Simulate a checkpoint: value "ck" logged, chain broken.
        let ckpt_lsn = log.append(&LogRecord::SharedCheckpoint {
            var: id,
            value: b"ck".to_vec(),
        });
        {
            let mut st = var.state.lock();
            st.value = b"ck".to_vec();
            st.dv.clear();
            st.chain_head = ckpt_lsn;
            st.last_ckpt = Some(ckpt_lsn);
        }
        let mut doomed = session_with_dv(&[(2, 0, 100)]);
        write_shared(
            &env(&log, &k),
            var,
            SessionId(1),
            &mut doomed,
            b"bad".to_vec(),
        )
        .unwrap();
        k.record(RecoveryRecord {
            msp: MspId(2),
            new_epoch: Epoch(1),
            recovered_lsn: Lsn(50),
        });

        let mut reader = SessionState::fresh();
        let v = read_shared(&env(&log, &k), var, SessionId(2), &mut reader).unwrap();
        assert_eq!(v, b"ck".to_vec(), "chain walk terminates at the checkpoint");
        log.close();
    }

    #[test]
    fn op_logging_matches_value_logging_result() {
        let (reg, id, add) = counter_registry();
        let var = reg.get(id).unwrap();
        let k = RecoveryKnowledge::new();
        let log = test_log();
        let e = env_with_ops(&log, &k, &reg);

        let mut s = SessionState::fresh();
        let mut total = 0u64;
        for (i, adaptive) in [(3u64, true), (4, false), (5, true)] {
            let (op_mode, _) = apply_shared(
                &e,
                var,
                SessionId(1),
                &mut s,
                add,
                &i.to_le_bytes(),
                adaptive,
            )
            .unwrap();
            assert_eq!(op_mode, adaptive, "diet follows the adaptive flag here");
            total += i;
        }
        let st = var.state.lock();
        assert_eq!(st.value, total.to_le_bytes().to_vec());
        // The value-logged middle access reset the chain; the last op
        // re-grew it to 1.
        assert_eq!(st.ops_since_value, 1);
        assert_eq!(st.writes_since_ckpt, 3);
        drop(st);
        log.close();
    }

    #[test]
    fn op_chain_limit_forces_value_record() {
        let (reg, id, add) = counter_registry();
        let var = reg.get(id).unwrap();
        let k = RecoveryKnowledge::new();
        let log = test_log();
        let e = env_with_ops(&log, &k, &reg);

        let mut s = SessionState::fresh();
        let one = 1u64.to_le_bytes();
        for i in 0..OP_CHAIN_LIMIT + 1 {
            let (op_mode, _) =
                apply_shared(&e, var, SessionId(1), &mut s, add, &one, true).unwrap();
            assert_eq!(
                op_mode,
                i < OP_CHAIN_LIMIT,
                "access {i} past the chain limit must log by value"
            );
        }
        let st = var.state.lock();
        assert_eq!(st.value, (OP_CHAIN_LIMIT + 1).to_le_bytes().to_vec());
        assert_eq!(st.ops_since_value, 0, "value record reset the chain");
        drop(st);
        log.close();
    }

    #[test]
    fn contention_forces_value_records() {
        let (reg, id, add) = counter_registry();
        let var = reg.get(id).unwrap();
        let k = RecoveryKnowledge::new();
        let log = test_log();
        let e = env_with_ops(&log, &k, &reg);

        // Ping-pong between two sessions: once the switch counter crosses
        // the threshold, the diet must pin value logging.
        let one = 1u64.to_le_bytes();
        let mut s1 = SessionState::fresh();
        let mut s2 = SessionState::fresh();
        let mut modes = Vec::new();
        for i in 0..10 {
            let (sid, s) = if i % 2 == 0 {
                (SessionId(1), &mut s1)
            } else {
                (SessionId(2), &mut s2)
            };
            let (op_mode, _) = apply_shared(&e, var, sid, s, add, &one, true).unwrap();
            modes.push(op_mode);
        }
        assert!(modes[..3].iter().all(|&m| m), "cold tracker allows ops");
        assert!(
            modes[CONTENTION_SWITCHES as usize..].iter().all(|&m| !m),
            "contended variable pins value logging: {modes:?}"
        );
        assert_eq!(var.state.lock().value, 10u64.to_le_bytes().to_vec());
        log.close();
    }

    #[test]
    fn orphan_op_chain_rolls_back_and_reconstructs() {
        let (reg, id, add) = counter_registry();
        let var = reg.get(id).unwrap();
        let mut k = RecoveryKnowledge::new();
        let log = test_log();

        // Two clean ops (+1, +2) by a session depending on msp2@(0,10),
        // then a doomed op (+100) depending on msp2@(0,100).
        {
            let e = env_with_ops(&log, &k, &reg);
            let mut clean = session_with_dv(&[(2, 0, 10)]);
            for a in [1u64, 2] {
                apply_shared(
                    &e,
                    var,
                    SessionId(1),
                    &mut clean,
                    add,
                    &a.to_le_bytes(),
                    true,
                )
                .unwrap();
            }
            let mut doomed = session_with_dv(&[(2, 0, 100)]);
            apply_shared(
                &e,
                var,
                SessionId(2),
                &mut doomed,
                add,
                &100u64.to_le_bytes(),
                true,
            )
            .unwrap();
        }
        assert_eq!(var.state.lock().value, 103u64.to_le_bytes().to_vec());

        k.record(RecoveryRecord {
            msp: MspId(2),
            new_epoch: Epoch(1),
            recovered_lsn: Lsn(50),
        });
        let e = env_with_ops(&log, &k, &reg);
        let mut reader = SessionState::fresh();
        let v = read_shared(&e, var, SessionId(3), &mut reader).unwrap();
        assert_eq!(
            v,
            3u64.to_le_bytes().to_vec(),
            "rolled back past the orphan op and rebuilt 0+1+2 from the chain"
        );
        assert_eq!(var.state.lock().ops_since_value, 2);
        log.close();
    }

    #[test]
    fn registry_resolution() {
        let mut reg = SharedRegistry::new();
        let a = reg.register("SV0", vec![]);
        let b = reg.register("SV1", vec![]);
        assert_ne!(a, b);
        assert_eq!(reg.resolve("SV0"), Some(a));
        assert_eq!(reg.resolve("SV9"), None);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get(b).unwrap().name, "SV1");
    }

    #[test]
    fn own_msp_recovery_records_orphan_lost_self_deps() {
        // After our own recovery, knowledge holds our own recovery
        // record. A variable whose DV references a *lost* state of our
        // previous incarnation (LSN beyond what the recovery salvaged)
        // is an echoed orphan and must roll back — the owner is not
        // exempt from the check.
        let log = test_log();
        let mut k = RecoveryKnowledge::new();
        let mut reg = SharedRegistry::new();
        let id = reg.register("SV0", b"init".to_vec());
        let var = reg.get(id).unwrap();

        let mut writer = session_with_dv(&[(1, 0, 1_000_000)]); // self-dep, huge LSN
        write_shared(
            &env(&log, &k),
            var,
            SessionId(1),
            &mut writer,
            b"v".to_vec(),
        )
        .unwrap();

        // A self recovery record that *covers* the dependency leaves the
        // value intact…
        k.record(RecoveryRecord {
            msp: MspId(1),
            new_epoch: Epoch(1),
            recovered_lsn: Lsn(2_000_000),
        });
        let mut reader = SessionState::fresh();
        let v = read_shared(&env(&log, &k), var, SessionId(2), &mut reader).unwrap();
        assert_eq!(v, b"v".to_vec(), "covered self-dep survives");

        // …but one that says the state was lost rolls the variable back
        // to its last non-orphan value (here: the initial value).
        k.record(RecoveryRecord {
            msp: MspId(1),
            new_epoch: Epoch(2),
            recovered_lsn: Lsn(0),
        });
        let mut reader = SessionState::fresh();
        let v = read_shared(&env(&log, &k), var, SessionId(3), &mut reader).unwrap();
        assert_eq!(v, b"init".to_vec(), "lost self-dep is rolled back");
        log.close();
    }
}
