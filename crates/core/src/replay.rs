//! The replay cursor: logged-request replay with orphan/EOS handling
//! (§4.1, §4.3).
//!
//! Session recovery walks the session's position stream and *re-executes*
//! the logged requests. Re-execution consumes the session's log records as
//! the service method asks for them:
//!
//! * reading a shared variable takes the value from the `SharedRead`
//!   record;
//! * an outgoing call takes the reply from the `ReplyReceive` record
//!   (requests are not re-sent);
//! * writing a shared variable consumes its `SharedWrite` record as
//!   confirmation the write survived — the variable's value recovers
//!   separately, so nothing is applied. A write the crash cut off (on a
//!   striped log it lives on the *variable's* stripe and can die alone)
//!   surfaces as cursor exhaustion and re-executes live.
//!
//! When the cursor reaches a record whose logged dependency vector is an
//! **orphan** under current knowledge, replay must stop there. Two cases
//! (§4.3):
//!
//! * **EOS found** — a previous orphan recovery already skipped this
//!   region and left an end-of-skip record pointing back at the orphan.
//!   The cursor jumps past the EOS and keeps replaying: the records after
//!   it are that recovery's live continuation.
//! * **EOS not found** — this is a fresh orphan. The cursor writes an EOS
//!   record, flags itself live, and the in-progress method simply
//!   *continues executing normally* from that exact point — resending the
//!   pending request or re-reading the shared variable live. This
//!   mid-method switch from replay to live execution is what terminates
//!   the orphan state while preserving exactly-once semantics.
//!
//! Cursor exhaustion (records lost in a crash, or the crash hit
//! mid-request) also switches to live execution, with no EOS needed.

use std::collections::HashMap;
use std::sync::Arc;

use msp_types::{Lsn, MspError, MspId, MspResult, RecoveryKnowledge, SessionId};
use msp_wal::{LogRecord, Wal, WalReplayCache};

/// What [`ReplayCursor::consume`] produced.
#[derive(Debug)]
pub enum Consume {
    /// A live (non-orphan) record to feed into re-execution.
    Record {
        lsn: Lsn,
        record: LogRecord,
        framed: u64,
    },
    /// The cursor switched to live execution (orphan found with no EOS,
    /// or stream exhausted). Check [`ReplayCursor::orphan_hit`] for why.
    WentLive,
}

/// Cursor over a session's position stream during recovery.
pub struct ReplayCursor {
    positions: Vec<Lsn>,
    idx: usize,
    /// Shared read-only block cache over the immutable crash-time log;
    /// when present, all replay reads below its limit are served from it
    /// instead of per-frame device reads.
    cache: Option<Arc<WalReplayCache>>,
    /// `orphan_lsn → ascending stream indices of EOS records closing it`,
    /// built in one pass over the stream on the first orphan hit so each
    /// position-stream record is decoded at most once per recovery
    /// (the naive forward search re-read the suffix on every orphan).
    eos_index: Option<HashMap<u64, Vec<usize>>>,
    /// Replay has ended; execution continues live.
    pub went_live: bool,
    /// The orphan record that terminated replay, if any (drives EOS
    /// bookkeeping and diagnostics).
    pub orphan_hit: Option<Lsn>,
    /// Count of EOS ranges skipped (diagnostics / tests).
    pub eos_ranges_skipped: u32,
}

impl ReplayCursor {
    pub fn new(positions: Vec<Lsn>) -> ReplayCursor {
        ReplayCursor {
            positions,
            idx: 0,
            cache: None,
            eos_index: None,
            went_live: false,
            orphan_hit: None,
            eos_ranges_skipped: 0,
        }
    }

    /// Serve replay reads through `cache` (crash recovery); `None` keeps
    /// direct log reads (live orphan recovery, serial baseline).
    #[must_use]
    pub fn with_cache(mut self, cache: Option<Arc<WalReplayCache>>) -> ReplayCursor {
        self.cache = cache;
        self
    }

    /// One record read, via the block cache when attached. The cache
    /// forwards reads past its immutable limit back to the log, which
    /// can also serve its own volatile tail.
    fn read_sized(&self, log: &Wal, lsn: Lsn) -> MspResult<(LogRecord, u64)> {
        match &self.cache {
            Some(c) => c.read_record_sized(lsn),
            None => log.read_record_sized(lsn),
        }
    }

    /// Records not yet consumed.
    pub fn remaining(&self) -> usize {
        self.positions.len().saturating_sub(self.idx)
    }

    /// Produce the next live record, transparently resolving orphan
    /// boundaries. `session` is the recovering session (EOS records are
    /// written on its behalf).
    pub fn consume(
        &mut self,
        log: &Wal,
        knowledge: &RecoveryKnowledge,
        me: MspId,
        session: SessionId,
    ) -> MspResult<Consume> {
        loop {
            if self.went_live {
                return Ok(Consume::WentLive);
            }
            let Some(&lsn) = self.positions.get(self.idx) else {
                // Stream exhausted: switch to live execution. No EOS is
                // written — nothing was skipped.
                self.went_live = true;
                return Ok(Consume::WentLive);
            };
            let (record, framed) = self.read_sized(log, lsn)?;

            // EOS records reached directly are markers from earlier
            // recoveries whose orphan record should have redirected us;
            // with durable recovery announcements this cannot happen, but
            // skipping is always safe (the range it closes lies behind us).
            if matches!(record, LogRecord::Eos { .. }) {
                debug_assert!(false, "EOS reached without its orphan record");
                self.idx += 1;
                continue;
            }

            // Orphan check on the record's logged dependency vector.
            let orphan = match &record {
                LogRecord::RequestReceive {
                    sender_dv: Some(dv),
                    ..
                }
                | LogRecord::ReplyReceive {
                    sender_dv: Some(dv),
                    ..
                } => knowledge.is_orphan(dv, me),
                LogRecord::SharedRead { var_dv, .. } => knowledge.is_orphan(var_dv, me),
                // An op's logged DV includes the variable's (merged read
                // dependency) — an orphaned entry there dooms the op.
                LogRecord::SharedOp { writer_dv, .. } => knowledge.is_orphan(writer_dv, me),
                _ => false,
            };
            if !orphan {
                self.idx += 1;
                return Ok(Consume::Record {
                    lsn,
                    record,
                    framed,
                });
            }

            // Orphan record O found: look forward for an EOS closing it.
            match self.find_eos(log, lsn)? {
                Some(eos_idx) => {
                    // Previous recovery already skipped [O ..= EOS]; the
                    // records after the EOS are its live continuation.
                    self.idx = eos_idx + 1;
                    self.eos_ranges_skipped += 1;
                    continue;
                }
                None => {
                    // Fresh orphan: write the EOS, flag live. The EOS is
                    // not flushed immediately (§4.1) and is deliberately
                    // NOT added to the rebuilt position stream — skipped
                    // records must stay invisible to later recoveries.
                    log.append(&LogRecord::Eos {
                        session,
                        orphan_lsn: lsn,
                    });
                    self.orphan_hit = Some(lsn);
                    self.went_live = true;
                    return Ok(Consume::WentLive);
                }
            }
        }
    }

    /// Index (within `positions`) of the EOS record pointing back at
    /// `orphan_lsn`, ahead of the current position. Served from
    /// [`Self::eos_index`], built lazily with a single decode pass.
    fn find_eos(&mut self, log: &Wal, orphan_lsn: Lsn) -> MspResult<Option<usize>> {
        if self.eos_index.is_none() {
            let mut index: HashMap<u64, Vec<usize>> = HashMap::new();
            for (j, &pos) in self.positions.iter().enumerate() {
                if let (LogRecord::Eos { orphan_lsn: o, .. }, _) = self.read_sized(log, pos)? {
                    index.entry(o.0).or_default().push(j);
                }
            }
            self.eos_index = Some(index);
        }
        Ok(self
            .eos_index
            .as_ref()
            .expect("index built above")
            .get(&orphan_lsn.0)
            .and_then(|idxs| idxs.iter().copied().find(|&j| j > self.idx)))
    }
}

/// Convenience for error construction on replay determinism violations.
pub fn replay_mismatch(lsn: Lsn, expected: &str, got: &LogRecord) -> MspError {
    MspError::LogCorrupt {
        offset: lsn.0,
        reason: format!(
            "replay determinism violation: expected {expected}, log has {}",
            got.kind()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp_types::{DependencyVector, Epoch, RecoveryRecord, RequestSeq, StateId};
    use msp_wal::{DiskModel, FlushPolicy, MemDisk};
    use std::sync::Arc;

    fn test_log() -> Arc<Wal> {
        Arc::new(Wal::Single(
            msp_wal::PhysicalLog::open(
                Arc::new(MemDisk::new()),
                DiskModel::zero(),
                FlushPolicy::immediate(),
            )
            .unwrap(),
        ))
    }

    fn dv(m: u32, l: u64) -> DependencyVector {
        DependencyVector::from_entries([(MspId(m), StateId::new(Epoch(0), Lsn(l)))])
    }

    fn req(seq: u64, sender_dv: Option<DependencyVector>) -> LogRecord {
        LogRecord::RequestReceive {
            session: SessionId(1),
            seq: RequestSeq(seq),
            method: "m".into(),
            payload: vec![],
            sender_dv,
        }
    }

    #[test]
    fn consumes_clean_records_in_order() {
        let log = test_log();
        let l1 = log.append(&req(0, None));
        let l2 = log.append(&req(1, Some(dv(2, 10))));
        let k = RecoveryKnowledge::new();
        let mut cur = ReplayCursor::new(vec![l1, l2]);
        match cur.consume(&log, &k, MspId(1), SessionId(1)).unwrap() {
            Consume::Record { lsn, .. } => assert_eq!(lsn, l1),
            other => panic!("{other:?}"),
        }
        match cur.consume(&log, &k, MspId(1), SessionId(1)).unwrap() {
            Consume::Record { lsn, .. } => assert_eq!(lsn, l2),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            cur.consume(&log, &k, MspId(1), SessionId(1)).unwrap(),
            Consume::WentLive
        ));
        assert!(cur.went_live);
        assert_eq!(cur.orphan_hit, None, "exhaustion is not an orphan");
        log.close();
    }

    #[test]
    fn fresh_orphan_writes_eos_and_goes_live() {
        let log = test_log();
        let l1 = log.append(&req(0, None));
        let l2 = log.append(&req(1, Some(dv(2, 100)))); // will be orphan
        let l3 = log.append(&req(2, None)); // after the orphan: dead
        let mut k = RecoveryKnowledge::new();
        k.record(RecoveryRecord {
            msp: MspId(2),
            new_epoch: Epoch(1),
            recovered_lsn: Lsn(50),
        });
        let mut cur = ReplayCursor::new(vec![l1, l2, l3]);
        assert!(matches!(
            cur.consume(&log, &k, MspId(1), SessionId(1)).unwrap(),
            Consume::Record { lsn, .. } if lsn == l1
        ));
        assert!(matches!(
            cur.consume(&log, &k, MspId(1), SessionId(1)).unwrap(),
            Consume::WentLive
        ));
        assert_eq!(cur.orphan_hit, Some(l2));
        // The EOS record exists in the log and points at the orphan.
        let end = log.end_lsn();
        let mut found = false;
        let mut probe = l3;
        while probe < end {
            let (rec, framed) = log.read_record_sized(probe).unwrap();
            if let LogRecord::Eos { orphan_lsn, .. } = rec {
                assert_eq!(orphan_lsn, l2);
                found = true;
            }
            probe = Lsn(probe.0 + framed);
        }
        assert!(found, "EOS record written");
        log.close();
    }

    #[test]
    fn eos_found_jumps_over_skip_range_and_continues() {
        let log = test_log();
        let l1 = log.append(&req(0, None));
        let orphan = log.append(&req(1, Some(dv(2, 100))));
        let dead = log.append(&req(2, None));
        let eos = log.append(&LogRecord::Eos {
            session: SessionId(1),
            orphan_lsn: orphan,
        });
        let live = log.append(&req(3, None)); // live continuation
        let mut k = RecoveryKnowledge::new();
        k.record(RecoveryRecord {
            msp: MspId(2),
            new_epoch: Epoch(1),
            recovered_lsn: Lsn(50),
        });
        // A crash-rebuilt stream contains everything, including EOS.
        let mut cur = ReplayCursor::new(vec![l1, orphan, dead, eos, live]);
        assert!(matches!(
            cur.consume(&log, &k, MspId(1), SessionId(1)).unwrap(),
            Consume::Record { lsn, .. } if lsn == l1
        ));
        // Next consumption hits the orphan, finds the EOS, jumps, and
        // yields the live record.
        assert!(matches!(
            cur.consume(&log, &k, MspId(1), SessionId(1)).unwrap(),
            Consume::Record { lsn, .. } if lsn == live
        ));
        assert_eq!(cur.eos_ranges_skipped, 1);
        assert!(!cur.went_live);
        log.close();
    }

    #[test]
    fn embedded_eos_pairs_skip_the_outer_range() {
        // Figure 11, "embedded": orphan2 < orphan1 < EOS1 < EOS2.
        // Replaying hits orphan2 first and must skip everything through
        // EOS2, including the inner pair.
        let log = test_log();
        let orphan2 = log.append(&req(0, Some(dv(3, 100))));
        let orphan1 = log.append(&req(1, Some(dv(2, 100))));
        let _eos1 = log.append(&LogRecord::Eos {
            session: SessionId(1),
            orphan_lsn: orphan1,
        });
        let eos2 = log.append(&LogRecord::Eos {
            session: SessionId(1),
            orphan_lsn: orphan2,
        });
        let live = log.append(&req(2, None));
        let mut k = RecoveryKnowledge::new();
        k.record(RecoveryRecord {
            msp: MspId(2),
            new_epoch: Epoch(1),
            recovered_lsn: Lsn(50),
        });
        k.record(RecoveryRecord {
            msp: MspId(3),
            new_epoch: Epoch(1),
            recovered_lsn: Lsn(50),
        });
        let mut cur = ReplayCursor::new(vec![orphan2, orphan1, _eos1, eos2, live]);
        assert!(matches!(
            cur.consume(&log, &k, MspId(1), SessionId(1)).unwrap(),
            Consume::Record { lsn, .. } if lsn == live
        ));
        log.close();
    }

    #[test]
    fn disjoint_eos_pairs_skip_both_ranges() {
        // Figure 11, "disjointed": orphan1 < EOS1 < orphan2 < EOS2.
        let log = test_log();
        let orphan1 = log.append(&req(0, Some(dv(2, 100))));
        let eos1 = log.append(&LogRecord::Eos {
            session: SessionId(1),
            orphan_lsn: orphan1,
        });
        let mid = log.append(&req(1, None));
        let orphan2 = log.append(&req(2, Some(dv(3, 100))));
        let eos2 = log.append(&LogRecord::Eos {
            session: SessionId(1),
            orphan_lsn: orphan2,
        });
        let live = log.append(&req(3, None));
        let mut k = RecoveryKnowledge::new();
        k.record(RecoveryRecord {
            msp: MspId(2),
            new_epoch: Epoch(1),
            recovered_lsn: Lsn(50),
        });
        k.record(RecoveryRecord {
            msp: MspId(3),
            new_epoch: Epoch(1),
            recovered_lsn: Lsn(50),
        });
        let mut cur = ReplayCursor::new(vec![orphan1, eos1, mid, orphan2, eos2, live]);
        let got: Vec<Lsn> =
            std::iter::from_fn(
                || match cur.consume(&log, &k, MspId(1), SessionId(1)).unwrap() {
                    Consume::Record { lsn, .. } => Some(lsn),
                    Consume::WentLive => None,
                },
            )
            .collect();
        assert_eq!(got, vec![mid, live]);
        assert_eq!(cur.eos_ranges_skipped, 2);
        log.close();
    }

    #[test]
    fn eos_lookup_decodes_each_position_at_most_once() {
        // Two disjoint orphan/EOS pairs: the naive forward search decoded
        // the stream suffix once per orphan; the index pays one pass.
        let log = test_log();
        let orphan1 = log.append(&req(0, Some(dv(2, 100))));
        let eos1 = log.append(&LogRecord::Eos {
            session: SessionId(1),
            orphan_lsn: orphan1,
        });
        let orphan2 = log.append(&req(1, Some(dv(3, 100))));
        let eos2 = log.append(&LogRecord::Eos {
            session: SessionId(1),
            orphan_lsn: orphan2,
        });
        let live = log.append(&req(2, None));
        let mut k = RecoveryKnowledge::new();
        k.record(RecoveryRecord {
            msp: MspId(2),
            new_epoch: Epoch(1),
            recovered_lsn: Lsn(50),
        });
        k.record(RecoveryRecord {
            msp: MspId(3),
            new_epoch: Epoch(1),
            recovered_lsn: Lsn(50),
        });
        let positions = vec![orphan1, eos1, orphan2, eos2, live];
        let n = positions.len() as u64;
        let before = log.stats().record_reads;
        let mut cur = ReplayCursor::new(positions);
        while let Consume::Record { .. } = cur.consume(&log, &k, MspId(1), SessionId(1)).unwrap() {}
        let reads = log.stats().record_reads - before;
        assert_eq!(cur.eos_ranges_skipped, 2);
        // One decode per consumed record plus one indexing pass: strictly
        // at most two decodes per stream position, independent of how
        // many orphan ranges the stream contains.
        assert!(
            reads <= 2 * n,
            "expected at most {} record reads, observed {reads}",
            2 * n
        );
        log.close();
    }

    #[test]
    fn remaining_counts_down() {
        let log = test_log();
        let l1 = log.append(&req(0, None));
        let k = RecoveryKnowledge::new();
        let mut cur = ReplayCursor::new(vec![l1]);
        assert_eq!(cur.remaining(), 1);
        let _ = cur.consume(&log, &k, MspId(1), SessionId(1)).unwrap();
        assert_eq!(cur.remaining(), 0);
        log.close();
    }
}
