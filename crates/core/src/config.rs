//! Configuration of MSPs, service domains and the recovery experiments'
//! five system configurations (§5.2).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use msp_kv::KvStore;
use msp_net::EndpointId;
use msp_types::{DomainId, MspId};
use msp_wal::ReplacementPolicy;

/// Static description of the cluster: which MSP belongs to which service
/// domain (§1.3: domains are disjoint; end clients are outside all of
/// them). Shared read-only by every process.
#[derive(Debug, Clone, Default)]
pub struct ClusterConfig {
    domains: HashMap<MspId, DomainId>,
}

impl ClusterConfig {
    pub fn new() -> ClusterConfig {
        ClusterConfig::default()
    }

    /// Assign `msp` to `domain`.
    #[must_use]
    pub fn with_msp(mut self, msp: MspId, domain: DomainId) -> ClusterConfig {
        self.domains.insert(msp, domain);
        self
    }

    /// The domain of `msp`, if registered.
    pub fn domain_of(&self, msp: MspId) -> Option<DomainId> {
        self.domains.get(&msp).copied()
    }

    /// Whether two MSPs share a service domain — the condition for
    /// optimistic logging between them.
    pub fn same_domain(&self, a: MspId, b: MspId) -> bool {
        match (self.domain_of(a), self.domain_of(b)) {
            (Some(da), Some(db)) => da == db,
            _ => false,
        }
    }

    /// All MSPs in `domain` other than `except` — the recovery-broadcast
    /// recipients.
    pub fn domain_members(&self, domain: DomainId, except: MspId) -> Vec<MspId> {
        let mut v: Vec<MspId> = self
            .domains
            .iter()
            .filter(|&(&m, &d)| d == domain && m != except)
            .map(|(&m, _)| m)
            .collect();
        v.sort_unstable();
        v
    }
}

/// How session state is made recoverable — the five configurations of the
/// paper's evaluation collapse onto this plus domain assignment:
///
/// * `LoOptimistic` = `LogBased` + both MSPs in one domain
/// * `Pessimistic`  = `LogBased` + each MSP in its own domain
/// * `NoLog`, `Psession`, `StateServer` as named.
#[derive(Clone)]
pub enum SessionStrategy {
    /// The paper's contribution: log-based recovery with locally
    /// optimistic logging, value logging, fuzzy checkpoints.
    LogBased,
    /// No recovery infrastructure at all.
    NoLog,
    /// Persistent sessions via a local DBMS: fetch the session state in a
    /// read transaction before each request and write it back in a write
    /// transaction after (§5.2, configuration *Psession*).
    Psession(Arc<KvStore>),
    /// Session state lives in-memory at a remote state server; fetched and
    /// stored per request, not durable (§5.2, configuration *StateServer*).
    StateServer(EndpointId),
}

impl std::fmt::Debug for SessionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionStrategy::LogBased => write!(f, "LogBased"),
            SessionStrategy::NoLog => write!(f, "NoLog"),
            SessionStrategy::Psession(_) => write!(f, "Psession"),
            SessionStrategy::StateServer(e) => write!(f, "StateServer({e})"),
        }
    }
}

/// Knobs of the logging / checkpointing machinery.
#[derive(Debug, Clone)]
pub struct LoggingConfig {
    /// Take a session checkpoint once the session has consumed this much
    /// log since its previous checkpoint (paper default: 1 MB).
    pub session_ckpt_threshold: u64,
    /// Take a shared-variable checkpoint after this many writes since its
    /// previous checkpoint (§3.3).
    pub shared_ckpt_writes: u64,
    /// Interval between fuzzy MSP checkpoints.
    pub msp_ckpt_interval: Duration,
    /// Force a session / shared-variable checkpoint if this many MSP
    /// checkpoints have passed since its last one (§3.4).
    pub force_ckpt_after: u32,
    /// Disable all checkpointing (the *NoCp* rows of Figure 16).
    pub checkpoints_enabled: bool,
    /// Take an MSP checkpoint (and truncate the log behind the reclaim
    /// floor) as soon as this many log bytes have been appended since the
    /// last anchored checkpoint, without waiting out `msp_ckpt_interval`.
    /// Bounds the on-disk footprint under sustained load. `0` disables
    /// byte-driven scheduling (timer only).
    pub checkpoint_interval_bytes: u64,
}

impl Default for LoggingConfig {
    fn default() -> LoggingConfig {
        LoggingConfig {
            session_ckpt_threshold: 1 << 20,
            shared_ckpt_writes: 256,
            msp_ckpt_interval: Duration::from_millis(250),
            force_ckpt_after: 8,
            checkpoints_enabled: true,
            checkpoint_interval_bytes: 8 << 20,
        }
    }
}

/// Full configuration of one MSP.
#[derive(Debug, Clone)]
pub struct MspConfig {
    pub id: MspId,
    pub domain: DomainId,
    pub strategy: SessionStrategy,
    pub logging: LoggingConfig,
    /// Worker threads in the request-processing pool.
    pub workers: usize,
    /// Timeout before an outgoing call resends its request.
    pub rpc_timeout: Duration,
    /// How long a requester keeps retrying a distributed-flush participant
    /// before giving up (it normally stops earlier: either the participant
    /// answers or its recovery broadcast marks the requester orphan).
    pub flush_retry_limit: u32,
    /// How many resends an outgoing call makes before reporting
    /// [`msp_types::MspError::Timeout`]. The default is effectively
    /// "retry forever" (the client protocol owns liveness); tests and
    /// experiments that want fast failure lower it.
    pub rpc_retry_limit: u32,
    /// Track peers' durable watermarks and elide distributed-flush work
    /// for dependencies already known durable (§3.1 fast path). Purely an
    /// optimisation: turning it off restores one flush RPC per remote
    /// dependency per boundary crossing.
    pub durability_watermarks: bool,
    /// Park the worker thread on every pessimistic-boundary flush instead
    /// of parking the reply envelope in the pending-release stage — the
    /// pre-pipeline behaviour, kept as the measured baseline. Off by
    /// default: replies are released asynchronously once their durability
    /// gate settles.
    pub blocking_durability: bool,
    /// Park the worker thread on the pre-send distributed flush of every
    /// cross-domain *outgoing call* instead of parking the request
    /// envelope in the release stage — the pre-PR-6 behaviour, kept as
    /// the measured baseline for the chained-call benchmark. Off by
    /// default: sends are released asynchronously once their gate
    /// settles, and the waiting worker hands its run token to a sibling
    /// thread meanwhile.
    /// Implied by `blocking_durability` (the fully blocking baseline).
    pub blocking_send_durability: bool,
    /// Hold the log flusher briefly after it wakes so commits arriving
    /// while the previous flush was in flight join the same device write
    /// (group-commit coalescing window). `None` flushes immediately.
    pub group_commit_window: Option<Duration>,
    /// Run the WAL on the legacy single-mutex append path instead of the
    /// reservation-based pipeline. Compatibility/baseline knob.
    pub serialized_append: bool,
    /// Threads in the dedicated crash-recovery replay pool (Figure 12's
    /// parallel session replay). Separate from `workers` so replay never
    /// starves new sessions arriving mid-recovery.
    pub recovery_threads: usize,
    /// 64 KB blocks in the shared read-only replay cache over the
    /// immutable crash-time log. All concurrently replaying sessions hit
    /// this pool instead of issuing per-frame device reads.
    pub replay_cache_blocks: usize,
    /// Replay crashed sessions one at a time on a single thread with
    /// per-session whole-window read charging — the measured baseline the
    /// parallel engine is compared against.
    pub serial_recovery: bool,
    /// Replacement policy of the process-wide replay buffer pool
    /// (clock / LRU / SIEVE).
    pub replacement_policy: ReplacementPolicy,
    /// Overlap crash recovery's phases: warm the replay pool from the
    /// analysis scan's own chunk stream and start the parallel replay
    /// pool before the post-recovery MSP checkpoint, instead of strictly
    /// sequencing scan → checkpoint → replay. Off restores the serial
    /// phase order (the measured baseline).
    pub overlapped_recovery: bool,
    /// Run a prefetcher over the longest-first replay schedule that pulls
    /// each session's replay window into the buffer pool ahead of its
    /// recovery worker.
    pub recovery_prefetch: bool,
    /// Let blind read-modify-writes through registered shared operations
    /// log compact `SharedOp` records (op id + args) instead of the
    /// value-logged read/write pair, while per-variable chain length and
    /// contention stay low. Off logs everything by value (the paper's
    /// baseline discipline).
    pub adaptive_logging: bool,
    /// Stripe the WAL across this many disks, each with its own
    /// reservation tail and flusher; an LSN becomes durable only when
    /// every stripe holding a record at or below it has flushed (the
    /// merged durability watermark). `0` keeps the legacy single-log
    /// path; `>= 1` runs the striped backend over exactly that many
    /// disks (handed to [`crate::runtime::MspBuilder::start_with_disks`]).
    pub log_stripes: usize,
    /// Shard the runtime — worker pool, run tokens, pending-release
    /// stage — into this many independent instances, sessions assigned
    /// by consistent hash. Per-session ordering is untouched (a session
    /// lives on one shard); cross-shard state (sessions map, shared
    /// variables, knowledge) stays global.
    pub runtime_shards: usize,
    /// Back-off before resending when the server answered *Busy*
    /// (checkpointing / recovering). Paper: 100 ms, scaled.
    pub busy_backoff: Duration,
    /// Time scale for protocol-level sleeps (busy backoff, rpc timeout);
    /// matches the disk/net models' scale convention.
    pub time_scale: f64,
}

impl MspConfig {
    /// A log-based MSP with paper-like defaults at simulation scale.
    pub fn new(id: MspId, domain: DomainId) -> MspConfig {
        MspConfig {
            id,
            domain,
            strategy: SessionStrategy::LogBased,
            logging: LoggingConfig::default(),
            workers: 8,
            rpc_timeout: Duration::from_millis(400),
            flush_retry_limit: 200,
            rpc_retry_limit: 10_000,
            durability_watermarks: true,
            blocking_durability: false,
            blocking_send_durability: false,
            group_commit_window: None,
            serialized_append: false,
            recovery_threads: 4,
            replay_cache_blocks: 64,
            serial_recovery: false,
            replacement_policy: ReplacementPolicy::Clock,
            overlapped_recovery: true,
            recovery_prefetch: true,
            adaptive_logging: false,
            log_stripes: 0,
            runtime_shards: 1,
            busy_backoff: Duration::from_millis(100),
            time_scale: 0.02,
        }
    }

    #[must_use]
    pub fn with_strategy(mut self, strategy: SessionStrategy) -> MspConfig {
        self.strategy = strategy;
        self
    }

    #[must_use]
    pub fn with_logging(mut self, logging: LoggingConfig) -> MspConfig {
        self.logging = logging;
        self
    }

    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> MspConfig {
        self.workers = workers;
        self
    }

    #[must_use]
    pub fn with_time_scale(mut self, scale: f64) -> MspConfig {
        self.time_scale = scale;
        self
    }

    #[must_use]
    pub fn with_rpc_retry_limit(mut self, limit: u32) -> MspConfig {
        self.rpc_retry_limit = limit;
        self
    }

    #[must_use]
    pub fn with_durability_watermarks(mut self, enabled: bool) -> MspConfig {
        self.durability_watermarks = enabled;
        self
    }

    #[must_use]
    pub fn with_blocking_durability(mut self, blocking: bool) -> MspConfig {
        self.blocking_durability = blocking;
        self
    }

    #[must_use]
    pub fn with_blocking_send_durability(mut self, blocking: bool) -> MspConfig {
        self.blocking_send_durability = blocking;
        self
    }

    #[must_use]
    pub fn with_group_commit_window(mut self, window: Option<Duration>) -> MspConfig {
        self.group_commit_window = window;
        self
    }

    #[must_use]
    pub fn with_serialized_append(mut self, serialized: bool) -> MspConfig {
        self.serialized_append = serialized;
        self
    }

    #[must_use]
    pub fn with_recovery_threads(mut self, threads: usize) -> MspConfig {
        self.recovery_threads = threads;
        self
    }

    #[must_use]
    pub fn with_replay_cache_blocks(mut self, blocks: usize) -> MspConfig {
        self.replay_cache_blocks = blocks;
        self
    }

    #[must_use]
    pub fn with_log_stripes(mut self, stripes: usize) -> MspConfig {
        self.log_stripes = stripes;
        self
    }

    #[must_use]
    pub fn with_runtime_shards(mut self, shards: usize) -> MspConfig {
        self.runtime_shards = shards;
        self
    }

    #[must_use]
    pub fn with_serial_recovery(mut self, serial: bool) -> MspConfig {
        self.serial_recovery = serial;
        self
    }

    #[must_use]
    pub fn with_replacement_policy(mut self, policy: ReplacementPolicy) -> MspConfig {
        self.replacement_policy = policy;
        self
    }

    #[must_use]
    pub fn with_overlapped_recovery(mut self, overlapped: bool) -> MspConfig {
        self.overlapped_recovery = overlapped;
        self
    }

    #[must_use]
    pub fn with_recovery_prefetch(mut self, prefetch: bool) -> MspConfig {
        self.recovery_prefetch = prefetch;
        self
    }

    #[must_use]
    pub fn with_adaptive_logging(mut self, adaptive: bool) -> MspConfig {
        self.adaptive_logging = adaptive;
        self
    }

    /// Whether cross-domain outgoing sends block the worker on their
    /// durability gate. True on the fully blocking baseline too — a
    /// worker that parks on replies has nothing to gain from pipelined
    /// sends, and keeping the baseline pure keeps the benchmark honest.
    pub fn sends_block(&self) -> bool {
        self.blocking_durability || self.blocking_send_durability
    }

    /// The busy backoff after scaling.
    pub fn scaled_busy_backoff(&self) -> Duration {
        if self.time_scale <= 0.0 {
            Duration::from_micros(200)
        } else {
            self.busy_backoff.mul_f64(self.time_scale)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_domain_queries() {
        let c = ClusterConfig::new()
            .with_msp(MspId(1), DomainId(1))
            .with_msp(MspId(2), DomainId(1))
            .with_msp(MspId(3), DomainId(2));
        assert!(c.same_domain(MspId(1), MspId(2)));
        assert!(!c.same_domain(MspId(1), MspId(3)));
        assert!(
            !c.same_domain(MspId(1), MspId(9)),
            "unknown MSPs share nothing"
        );
        assert_eq!(c.domain_members(DomainId(1), MspId(1)), vec![MspId(2)]);
        assert_eq!(c.domain_of(MspId(3)), Some(DomainId(2)));
    }

    #[test]
    fn scaled_busy_backoff_has_floor() {
        let cfg = MspConfig::new(MspId(1), DomainId(1)).with_time_scale(0.0);
        assert!(cfg.scaled_busy_backoff() > Duration::ZERO);
        let cfg = MspConfig::new(MspId(1), DomainId(1)).with_time_scale(0.02);
        assert_eq!(cfg.scaled_busy_backoff(), Duration::from_millis(2));
    }

    #[test]
    fn knob_builders() {
        let cfg = MspConfig::new(MspId(1), DomainId(1))
            .with_rpc_retry_limit(3)
            .with_durability_watermarks(false)
            .with_blocking_durability(true)
            .with_blocking_send_durability(true)
            .with_group_commit_window(Some(Duration::from_micros(500)))
            .with_serialized_append(true)
            .with_recovery_threads(8)
            .with_replay_cache_blocks(16)
            .with_serial_recovery(true)
            .with_log_stripes(4)
            .with_runtime_shards(2)
            .with_replacement_policy(ReplacementPolicy::Sieve)
            .with_overlapped_recovery(false)
            .with_recovery_prefetch(false)
            .with_adaptive_logging(true);
        assert_eq!(cfg.rpc_retry_limit, 3);
        assert!(!cfg.durability_watermarks);
        assert!(cfg.blocking_durability);
        assert!(cfg.blocking_send_durability);
        assert!(cfg.sends_block());
        assert_eq!(cfg.group_commit_window, Some(Duration::from_micros(500)));
        assert!(cfg.serialized_append);
        assert_eq!(cfg.recovery_threads, 8);
        assert_eq!(cfg.replay_cache_blocks, 16);
        assert!(cfg.serial_recovery);
        assert_eq!(cfg.log_stripes, 4);
        assert_eq!(cfg.runtime_shards, 2);
        assert_eq!(cfg.replacement_policy, ReplacementPolicy::Sieve);
        assert!(!cfg.overlapped_recovery);
        assert!(!cfg.recovery_prefetch);
        assert!(cfg.adaptive_logging);
        let cfg = MspConfig::new(MspId(1), DomainId(1));
        assert_eq!(cfg.rpc_retry_limit, 10_000);
        assert!(cfg.durability_watermarks);
        assert!(!cfg.blocking_durability, "pipeline is the default");
        assert!(!cfg.blocking_send_durability, "for sends too");
        assert!(!cfg.sends_block());
        assert!(
            MspConfig::new(MspId(1), DomainId(1))
                .with_blocking_durability(true)
                .sends_block(),
            "the fully blocking baseline blocks sends as well"
        );
        assert_eq!(cfg.group_commit_window, None);
        assert!(!cfg.serialized_append);
        assert_eq!(cfg.recovery_threads, 4);
        assert_eq!(cfg.replay_cache_blocks, 64);
        assert!(!cfg.serial_recovery);
        assert_eq!(cfg.log_stripes, 0, "single log is the default");
        assert_eq!(cfg.runtime_shards, 1, "one shard is the default");
        assert_eq!(
            cfg.replacement_policy,
            ReplacementPolicy::Clock,
            "clock is the default replacement policy"
        );
        assert!(cfg.overlapped_recovery, "overlap is the default");
        assert!(cfg.recovery_prefetch, "prefetch is the default");
        assert!(!cfg.adaptive_logging, "value logging is the default diet");
        assert_eq!(
            cfg.logging.checkpoint_interval_bytes,
            8 << 20,
            "byte-driven checkpoint scheduling is on by default"
        );
    }

    #[test]
    fn strategy_debug_names() {
        assert_eq!(format!("{:?}", SessionStrategy::LogBased), "LogBased");
        assert_eq!(format!("{:?}", SessionStrategy::NoLog), "NoLog");
    }
}
