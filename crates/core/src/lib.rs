//! Log-based recovery runtime for middleware server processes.
//!
//! This crate is the reproduction of the paper's contribution: a recovery
//! infrastructure that makes a multi-threaded middleware server's
//! in-memory business state — per-client **session state** and
//! **shared state** — survive crashes with exactly-once request execution,
//! transparently to the service-method code.
//!
//! # The pieces
//!
//! * [`runtime::MspInner`] (via [`MspBuilder`]/[`MspHandle`]) — a
//!   middleware server process: thread pool,
//!   request queue, service-method registry, sessions, shared variables,
//!   one physical log.
//! * [`service::ServiceContext`] — what a service method sees: session
//!   variables, shared variables, outgoing calls. The same context runs in
//!   *normal* and *replay* mode; replay feeds logged nondeterminism back
//!   (§4.1) and switches to live execution at the replay boundary.
//! * **Locally optimistic logging** (§3.1) — messages inside a service
//!   domain carry dependency vectors and require no flush; messages that
//!   leave the domain (or go to an end client) force a *distributed log
//!   flush* ([`flush`]) first.
//! * **Value logging** for shared variables (§3.3) — [`shared`].
//! * **Checkpointing** (§3.2, §3.4) — per-session, per-shared-variable and
//!   fuzzy MSP checkpoints: [`checkpoint`].
//! * **Recovery** (§4) — session orphan recovery with EOS records, shared
//!   state undo via the backward write chain, and full MSP crash recovery
//!   with parallel session replay: [`recovery`].
//! * [`client::MspClient`] — an end client: resend-until-reply, duplicate
//!   reply detection, busy backoff.
//! * **Baselines** (§5.2) — `NoLog`, `Psession` (DB-backed sessions) and
//!   `StateServer` (remote in-memory sessions) as alternative
//!   [`config::SessionStrategy`]s over the same runtime, plus the
//!   [`state_server`] process itself.
//!
//! # A two-MSP quickstart
//!
//! See `examples/quickstart.rs` in the workspace root for a runnable
//! version of the paper's own workload (Figure 13).

pub mod checkpoint;
pub mod client;
pub mod config;
pub mod envelope;
pub mod flush;
pub mod recovery;
pub mod replay;
pub mod runtime;
pub mod service;
pub mod session;
pub mod shared;
pub mod state_server;
pub mod watermark;

pub use checkpoint::fold_reclaim_floor;
pub use client::MspClient;
pub use config::{ClusterConfig, LoggingConfig, MspConfig, SessionStrategy};
pub use envelope::{Envelope, ReplyStatus};
pub use runtime::{MspBuilder, MspHandle};
pub use service::ServiceContext;
pub use state_server::StateServer;
