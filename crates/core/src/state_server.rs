//! The *StateServer* baseline's remote state store (§5.2).
//!
//! "In configuration StateServer, session states are stored in-memory at
//! a state server on a different computer." The store is **not durable**:
//! if the state server crashes, session states are gone — the paper
//! measures it as a fast but unrecoverable alternative.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use msp_net::{EndpointId, Network};
use msp_types::MspError;

use crate::envelope::Envelope;

struct Inner {
    map: Mutex<HashMap<Vec<u8>, Vec<u8>>>,
    stopped: AtomicBool,
}

/// A running state-server process.
pub struct StateServer {
    inner: Arc<Inner>,
    id: EndpointId,
    net: Network<Envelope>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl StateServer {
    /// Start a state server registered as client endpoint `id` (state
    /// servers are not MSPs; they live outside the domains like clients).
    pub fn start(net: &Network<Envelope>, id: EndpointId) -> StateServer {
        let inner = Arc::new(Inner {
            map: Mutex::new(HashMap::new()),
            stopped: AtomicBool::new(false),
        });
        let endpoint = net.register(id);
        let worker = Arc::clone(&inner);
        let wnet = net.clone();
        let thread = std::thread::Builder::new()
            .name("state-server".into())
            .spawn(move || {
                while !worker.stopped.load(Ordering::Acquire) {
                    let env = match endpoint.recv_timeout(Duration::from_millis(20)) {
                        Ok(env) => env,
                        Err(MspError::Timeout) => continue,
                        Err(_) => break,
                    };
                    match env {
                        Envelope::StateGet { from, req_id, key } => {
                            let value = worker.map.lock().get(&key).cloned();
                            wnet.send(id, from, Envelope::StateResp { req_id, value });
                        }
                        Envelope::StatePut {
                            from,
                            req_id,
                            key,
                            value,
                        } => {
                            worker.map.lock().insert(key, value);
                            wnet.send(
                                id,
                                from,
                                Envelope::StateResp {
                                    req_id,
                                    value: Some(Vec::new()),
                                },
                            );
                        }
                        _ => {}
                    }
                }
            })
            .expect("spawn state server");
        StateServer {
            inner,
            id,
            net: net.clone(),
            thread: Mutex::new(Some(thread)),
        }
    }

    /// Number of stored blobs (tests/diagnostics).
    pub fn len(&self) -> usize {
        self.inner.map.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.map.lock().is_empty()
    }

    /// Crash the state server: stored session states are lost — the
    /// failure mode the paper holds against this configuration.
    pub fn crash(&self) {
        self.inner.map.lock().clear();
        self.shutdown();
    }

    /// Stop the server thread.
    pub fn shutdown(&self) {
        self.inner.stopped.store(true, Ordering::Release);
        self.net.unregister(self.id);
        if let Some(t) = self.thread.lock().take() {
            let _ = t.join();
        }
    }
}
