//! Recovery processing (§4): session orphan recovery, shared-state roll
//! forward, and MSP crash recovery.
//!
//! Three flows share the replay engine in [`crate::replay`]:
//!
//! * **Session orphan recovery** (§4.1) — a live session whose DV refers
//!   to a state some peer lost: reset to the last checkpoint and replay
//!   the position stream; replay terminates at the orphan record, writes
//!   an EOS, and the in-progress method continues live.
//! * **Session recovery after the scan** (§4.3) — the same procedure over
//!   a position stream rebuilt by the analysis scan, with the EOS-found
//!   handling for skip ranges recorded by pre-crash recoveries.
//! * **MSP crash recovery** (§4.3, Figure 12) — re-initialize from the
//!   anchored MSP checkpoint, run a pipelined analysis scan (a prefetch
//!   stage streams 64 KB chunks ahead of decode) that rebuilds position
//!   streams / rolls shared variables forward / gathers recovered-state
//!   knowledge, broadcast our own recovered state number, checkpoint,
//!   then replay all sessions **in parallel** on a dedicated recovery
//!   pool — longest window first, through a shared read-only block cache
//!   — while the worker pool is already accepting new work.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use msp_types::{Lsn, MspError, MspResult, RecoveryRecord, SessionId};
use msp_wal::log::DATA_START;
use msp_wal::record::MspCheckpointBody;
use msp_wal::{CrashPoint, LogRecord, PositionStream, WalReplayCache};

use crate::envelope::ReplyStatus;
use crate::replay::{Consume, ReplayCursor};
use crate::runtime::MspInner;
use crate::service::{take_fatal, ServiceContext};
use crate::session::{SessionCell, SessionState};

/// What `crash_recover` hands back to the builder.
pub(crate) struct RecoveryOutcome {
    /// Our recovery record to broadcast in the domain (`None` on a fresh
    /// log — nothing to recover, nothing to announce).
    pub announce: Option<RecoveryRecord>,
    /// Sessions to hand to the recovery pool, paired with their replay
    /// window's byte span and pre-ordered for the pool: longest window
    /// first (LPT makespan scheduling), or by id under `serial_recovery`.
    pub sessions_to_replay: Vec<(SessionId, u64)>,
}

impl MspInner {
    /// Recover one session to its most recent non-orphan state (§4.1).
    /// The caller holds the session's state lock, so new requests bounce
    /// with *Busy* until recovery completes.
    pub(crate) fn recover_session_locked(
        &self,
        cell: &SessionCell,
        st: &mut SessionState,
    ) -> MspResult<()> {
        let r = self.recover_session_inner(cell, st);
        if r.is_err() {
            // Leave a breadcrumb so the next interception retries.
            st.needs_recovery = true;
        }
        r
    }

    fn recover_session_inner(&self, cell: &SessionCell, st: &mut SessionState) -> MspResult<()> {
        self.stats.orphan_recoveries.fetch_add(1, Ordering::Relaxed);
        let log = self.log();
        let me = self.cfg.id;

        // During crash recovery all sessions share one read-only block
        // cache over the immutable crash-time log; outside it (live
        // orphan recovery, serial baseline) reads go to the log directly.
        let cache = self.replay_cache.lock().clone();

        // Snapshot the replay window, then reset the session to its most
        // recent checkpoint (or to a fresh state).
        let positions: Vec<Lsn> = st.positions.iter().collect();
        let ckpt_record = match st.last_ckpt {
            Some(ckpt) => Some((
                ckpt,
                match &cache {
                    Some(c) => c.read_record(ckpt)?,
                    None => log.read_record(ckpt)?,
                },
            )),
            None => None,
        };
        let restored = match ckpt_record {
            Some((ckpt, LogRecord::SessionCheckpoint { body, .. })) => {
                SessionState::restore_from_checkpoint(&body, me, self.epoch(), ckpt)
            }
            Some((ckpt, other)) => {
                return Err(MspError::LogCorrupt {
                    offset: ckpt.0,
                    reason: format!(
                        "session {} checkpoint anchor points at {}",
                        cell.id,
                        other.kind()
                    ),
                })
            }
            None => SessionState::fresh(),
        };
        *st = restored;

        // I/O accounting: with the shared cache, each 64 KB block is
        // charged once, on its cache miss — overlapping replay windows no
        // longer bill the same bytes once per session. Without a cache,
        // charge the whole window sequentially (§5.4: replay reads 64 KB
        // chunks).
        if cache.is_none() {
            if let (Some(&first), Some(&last)) = (positions.first(), positions.last()) {
                log.charge_sequential_read(last.0 - first.0 + 1);
            }
        }

        let mut cursor = ReplayCursor::new(positions).with_cache(cache);
        loop {
            // Crash site: the kill lands mid-replay of this recovery —
            // the crash-during-recovery case of §4.5. The error unwinds
            // the replaying thread (pool or inline) with the session left
            // marked `needs_recovery` for the *next* incarnation.
            if log.fault_point(CrashPoint::ReplayStep) {
                return Err(MspError::Shutdown);
            }
            let step = {
                // Re-read knowledge each iteration: another MSP may crash
                // *during* this recovery, and replay must see it (§4.1,
                // "orphan recovery upon multiple crashes").
                let knowledge = self.knowledge.read();
                cursor.consume(log, &knowledge, me, cell.id)?
            };
            match step {
                Consume::WentLive => break,
                Consume::Record {
                    lsn,
                    record,
                    framed,
                } => match record {
                    LogRecord::RequestReceive {
                        seq,
                        method,
                        payload,
                        sender_dv,
                        ..
                    } => {
                        self.stats.replayed_requests.fetch_add(1, Ordering::Relaxed);
                        if let Some(dv) = &sender_dv {
                            st.dv.merge_from(dv);
                        }
                        st.note_logged(me, self.epoch(), lsn, framed);
                        let Some(svc) = self.services.get(&method).cloned() else {
                            return Err(MspError::LogCorrupt {
                                offset: lsn.0,
                                reason: format!("logged request for unknown method {method}"),
                            });
                        };
                        // Re-execute; the context consumes this request's
                        // records from the cursor and may switch to live
                        // execution at the replay boundary.
                        let (result, fatal) = {
                            let mut ctx = ServiceContext::replaying(self, cell.id, st, &mut cursor);
                            let r = svc(&mut ctx, &payload);
                            let f = ctx.fatal.take();
                            (r, f)
                        };
                        let result = take_fatal(result, fatal)?;
                        let status = match result {
                            Ok(p) => ReplyStatus::Ok(p),
                            Err(e) => ReplyStatus::Err(e),
                        };
                        // Replies are buffered, never pushed: any client
                        // that is still waiting is resending, and the
                        // duplicate path returns the buffered reply.
                        st.buffered_reply = Some((seq, status));
                        st.next_expected = seq.next();
                    }
                    LogRecord::SessionEnd { .. } => {
                        st.ended = true;
                        break;
                    }
                    other => {
                        // SessionCheckpoint cannot appear (streams are
                        // truncated at checkpoints); SharedRead /
                        // ReplyReceive outside a request would be a
                        // determinism violation.
                        return Err(MspError::LogCorrupt {
                            offset: lsn.0,
                            reason: format!(
                                "unexpected {} at request boundary during replay",
                                other.kind()
                            ),
                        });
                    }
                },
            }
        }
        st.needs_recovery = false;
        cell.sync_anchor(st);
        if st.ended {
            self.tombstone_session(cell.id);
        }
        Ok(())
    }

    /// MSP crash recovery (Figure 12). Runs before the runtime goes live;
    /// returns the broadcast record and the sessions the recovery pool
    /// should replay (pre-ordered, with their window spans).
    pub(crate) fn crash_recover(&self) -> MspResult<RecoveryOutcome> {
        let log = self.log();
        if log.durable_lsn().0 <= DATA_START && log.end_lsn().0 <= DATA_START {
            // First boot. Make incarnation 0 durable before serving:
            // without this marker, a crash before our first data flush
            // leaves an empty durable log again, the next boot cannot
            // tell it was a recovery, and the crash is never announced —
            // peers then keep state that depended on the lost tail
            // forever (no epoch bump means no orphan can ever be
            // detected). With the marker, that crash recovers to epoch 1
            // with a recovered LSN just past the marker, orphaning
            // everything the lost incarnation handed out.
            let lsn = log.append(&LogRecord::RecoveryComplete {
                new_epoch: msp_types::Epoch(0),
                recovered_lsn: Lsn(DATA_START),
            });
            log.flush_to(lsn)?;
            return Ok(RecoveryOutcome {
                announce: None,
                sessions_to_replay: Vec::new(),
            });
        }
        self.stats.crash_recoveries.fetch_add(1, Ordering::Relaxed);
        let me = self.cfg.id;
        let t_analysis = Instant::now();

        // 1. Re-initialize from the most recent MSP checkpoint (via the
        //    log anchor); absent one, scan the whole log.
        let anchor_lsn = self.anchor.as_ref().expect("LogBased").read()?;
        let mut epoch_base = msp_types::Epoch(0);
        let mut scan_start = Lsn(DATA_START);
        if let Some(ckpt_lsn) = anchor_lsn {
            match log.read_record(ckpt_lsn)? {
                LogRecord::MspCheckpoint(body) => {
                    self.absorb_msp_checkpoint_body(&body, &mut epoch_base);
                    scan_start = body.min_lsn;
                }
                other => {
                    return Err(MspError::LogCorrupt {
                        offset: ckpt_lsn.0,
                        reason: format!("log anchor points at {}", other.kind()),
                    })
                }
            }
        }
        // Truncation keeps the floor at or below every anchored scan
        // start, so this clamp is normally a no-op — it is defense in
        // depth against ever scanning bytes the device reclaimed.
        scan_start = scan_start.max(log.floor());

        // 2. Analysis scan: rebuild position streams, roll shared
        //    variables forward, gather knowledge. The parallel engine
        //    streams chunks off the disk in a prefetch stage so decode
        //    overlaps I/O; the serial baseline alternates read/decode.
        //
        //    The shared replay pool is built *before* the scan so that
        //    under overlapped recovery the scan's own chunk stream warms
        //    it: every 64 KB block the analysis reads off the disk is
        //    dropped into the pool in passing, and session replay — which
        //    re-reads exactly this window — starts against a hot pool
        //    instead of paying the disk a second time. Records recovery
        //    appends from here on land past the pool's limit (the
        //    crash-time durable end) and fall back to direct log reads.
        if !self.cfg.serial_recovery {
            let pool = Arc::new(msp_wal::BufferPool::new(
                self.cfg.replay_cache_blocks,
                self.cfg.replacement_policy,
            ));
            *self.replay_cache.lock() = Some(Arc::new(WalReplayCache::with_pool(log, &pool)));
        }
        let mut streams: HashMap<SessionId, PositionStream> = HashMap::new();
        let mut anchors: HashMap<SessionId, (Lsn, bool)> = HashMap::new();
        let mut ended: HashSet<SessionId> = HashSet::new();
        let warm_cache = (!self.cfg.serial_recovery && self.cfg.overlapped_recovery)
            .then(|| self.replay_cache.lock().clone())
            .flatten();
        let mut scan = if self.cfg.serial_recovery {
            log.scan_from(scan_start)
        } else if let Some(cache) = &warm_cache {
            log.scan_from_pipelined_fed(scan_start, cache)
        } else {
            log.scan_from_pipelined(scan_start)
        };
        for item in &mut scan {
            let (lsn, record) = item?;
            match &record {
                LogRecord::SessionCheckpoint { session, .. } => {
                    anchors.insert(*session, (lsn, true));
                    streams.insert(*session, PositionStream::new());
                }
                LogRecord::SessionEnd { session } => {
                    ended.insert(*session);
                    anchors.remove(session);
                    streams.remove(session);
                }
                LogRecord::RequestReceive { session, .. }
                | LogRecord::ReplyReceive { session, .. }
                | LogRecord::SharedRead { session, .. }
                | LogRecord::OutgoingBind { session, .. }
                | LogRecord::Eos { session, .. } => {
                    if !ended.contains(session) {
                        anchors.entry(*session).or_insert((lsn, false));
                        streams.entry(*session).or_default().push(lsn);
                    }
                }
                LogRecord::SharedCheckpoint { var, value } => {
                    if let Some(v) = self.shared.get(*var) {
                        let mut vst = v.state.lock();
                        vst.value = value.clone();
                        vst.dv.clear();
                        vst.chain_head = lsn;
                        vst.last_ckpt = Some(lsn);
                        vst.writes_since_ckpt = 0;
                        vst.ops_since_value = 0;
                        v.sync_anchor(&vst);
                    }
                }
                LogRecord::SharedWrite {
                    session,
                    var,
                    value,
                    writer_dv,
                    ..
                } => {
                    // The write belongs to *two* recovery units: the
                    // variable rolls forward from it below, and it joins
                    // the writing session's replay stream — the replay
                    // write-half consumes it, so a write the crash cut
                    // off surfaces as end-of-stream and re-executes live
                    // instead of being silently dropped (on a striped log
                    // the write lives on the variable's stripe and can be
                    // lost while the session's own records survive).
                    if !ended.contains(session) {
                        anchors.entry(*session).or_insert((lsn, false));
                        streams.entry(*session).or_default().push(lsn);
                    }
                    if let Some(v) = self.shared.get(*var) {
                        let mut vst = v.state.lock();
                        vst.value = value.clone();
                        vst.dv = writer_dv.clone();
                        vst.chain_head = lsn;
                        if vst.first_write.is_none() {
                            vst.first_write = Some(lsn);
                        }
                        vst.writes_since_ckpt += 1;
                        vst.ops_since_value = 0;
                        v.sync_anchor(&vst);
                    }
                }
                LogRecord::SharedOp {
                    session,
                    var,
                    op,
                    args,
                    writer_dv,
                    ..
                } => {
                    // Like a write, the op belongs to two recovery units:
                    // the session's stream (the replay op-half consumes
                    // it) and the variable, which rolls forward by
                    // re-applying the registered operation. The scan
                    // starts at or before the variable's anchor, so the
                    // whole chain from the last value bearer is replayed
                    // in order and the forward application is exact.
                    if !ended.contains(session) {
                        anchors.entry(*session).or_insert((lsn, false));
                        streams.entry(*session).or_default().push(lsn);
                    }
                    if let Some(v) = self.shared.get(*var) {
                        let Some(f) = self.shared.op_fn(*op) else {
                            return Err(MspError::LogCorrupt {
                                offset: lsn.0,
                                reason: format!("logged shared op {op} is not registered"),
                            });
                        };
                        let mut vst = v.state.lock();
                        vst.value = f(&vst.value, args);
                        vst.dv = writer_dv.clone();
                        vst.chain_head = lsn;
                        if vst.first_write.is_none() {
                            vst.first_write = Some(lsn);
                        }
                        vst.writes_since_ckpt += 1;
                        vst.ops_since_value += 1;
                        v.sync_anchor(&vst);
                    }
                }
                LogRecord::RecoveryAnnouncement(rec) => {
                    self.knowledge.write().record(*rec);
                }
                LogRecord::RecoveryComplete { new_epoch, .. } => {
                    epoch_base = epoch_base.max(*new_epoch);
                }
                LogRecord::MspCheckpoint(body) => {
                    self.absorb_msp_checkpoint_body(body, &mut epoch_base);
                }
                // The striped scanner unwraps stripe envelopes before
                // yielding; one surviving here means a stripe device was
                // scanned without its merge layer.
                LogRecord::Striped { .. } => {
                    return Err(MspError::LogCorrupt {
                        offset: lsn.0,
                        reason: "stripe envelope leaked into analysis scan".into(),
                    })
                }
            }
        }

        // Sessions whose SessionEnd survived are gone for good: seed the
        // runtime tombstones so no late traffic can resurrect them.
        self.ended_sessions.lock().extend(ended.iter().copied());

        // 3. The largest persistent LSN bounds what survived; everything
        //    at or beyond the scan end is lost.
        let recovered_lsn = Lsn(scan.position().0.saturating_sub(1));
        drop(scan);
        self.stats
            .recovery_analysis_nanos
            .store(t_analysis.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let new_epoch = epoch_base.next();
        self.epoch.store(new_epoch.0, Ordering::Release);
        let own = RecoveryRecord {
            msp: me,
            new_epoch,
            recovered_lsn,
        };
        // Our own history backs flush-request verdicts about old epochs.
        self.knowledge.write().record(own);
        let lsn = log.append(&LogRecord::RecoveryComplete {
            new_epoch,
            recovered_lsn,
        });
        log.flush_to(lsn)?;

        // 4. Materialize the sessions in "awaiting replay" state. Their
        //    requests either bounce Busy or recover inline (through the
        //    shared replay cache built before the scan) until the
        //    recovery pool reaches them.
        let mut to_replay = Vec::new();
        {
            let mut sessions = self.sessions.lock();
            for (sid, (anchor, is_ckpt)) in anchors {
                let stream = streams.remove(&sid).unwrap_or_default();
                let span = stream.span_bytes();
                let mut st = SessionState::fresh();
                st.positions = stream;
                st.first_lsn = Some(anchor);
                st.last_ckpt = is_ckpt.then_some(anchor);
                st.needs_recovery = true;
                sessions.insert(sid, Arc::new(SessionCell::new(sid, st)));
                to_replay.push((sid, span));
            }
        }
        if self.cfg.serial_recovery {
            // The legacy deterministic order: ascending session id.
            to_replay.sort_unstable_by_key(|&(sid, _)| sid);
        } else {
            // Longest window first: LPT scheduling minimizes the replay
            // pool's makespan (ties broken by id for determinism).
            to_replay.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        }
        Ok(RecoveryOutcome {
            announce: Some(own),
            sessions_to_replay: to_replay,
        })
    }

    fn absorb_msp_checkpoint_body(
        &self,
        body: &MspCheckpointBody,
        epoch_base: &mut msp_types::Epoch,
    ) {
        self.knowledge.write().merge_from(&body.knowledge);
        *epoch_base = (*epoch_base).max(body.epoch);
    }
}
