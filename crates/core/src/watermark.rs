//! Durability watermarks: per-peer knowledge of how much of a peer's log
//! is already durable, used to elide redundant distributed-flush RPCs.
//!
//! The pessimistic boundary (§3.1) requires every remote dependency to be
//! durable before a message leaves the service domain. In steady state the
//! same dependencies get re-flushed over and over: a session that called
//! into a peer once will re-request a flush of that same `(epoch, lsn)` on
//! every client-bound reply, even though the peer made it durable long ago.
//!
//! A [`WatermarkTable`] remembers, per peer MSP, the highest durable log
//! prefix we have *proof* of — from flush acknowledgements (which carry the
//! responder's durable LSN) and from durable hints piggybacked on
//! intra-domain request/reply traffic. A flush request for a dependency at
//! or below the watermark is provably redundant and is skipped.
//!
//! # Epoch safety
//!
//! Durability never un-happens — a flushed byte survives any crash — but a
//! dependency is identified by `(epoch, lsn)` and LSN comparisons are only
//! meaningful within one incarnation of the peer. The table is therefore
//! deliberately conservative:
//!
//! * [`WatermarkTable::covers`] requires an **exact epoch match**: an entry
//!   learned in epoch `e` never elides a flush for a dependency in any
//!   other epoch.
//! * All state for a peer is dropped ([`WatermarkTable::invalidate`]) the
//!   moment its recovery broadcast is absorbed; the orphan test, not the
//!   watermark, decides the fate of pre-crash dependencies.
//! * `note` keeps only the newest epoch seen for a peer; a hint from an
//!   older epoch (a stale in-flight message) never rolls an entry back.

use std::collections::HashMap;

use msp_types::{Epoch, Lsn, MspId, StateId};

/// Per-peer durable watermarks. One instance per MSP runtime, rebuilt
/// empty on every (re)start — watermarks are pure optimisation state and
/// are never persisted.
#[derive(Debug, Default)]
pub struct WatermarkTable {
    /// Peer -> (epoch, exclusive end of the peer's durable log prefix as
    /// of the latest evidence from that epoch).
    entries: HashMap<MspId, (Epoch, Lsn)>,
}

impl WatermarkTable {
    pub fn new() -> WatermarkTable {
        WatermarkTable::default()
    }

    /// Absorb evidence that `msp`'s log is durable up to (exclusive)
    /// `durable_end` in `epoch`. Keeps the highest epoch seen; within an
    /// epoch, keeps the highest LSN. Evidence from an older epoch than the
    /// stored one is ignored — it is a stale in-flight message.
    pub fn note(&mut self, msp: MspId, epoch: Epoch, durable_end: Lsn) {
        match self.entries.get_mut(&msp) {
            Some((e, l)) => {
                if epoch > *e {
                    *e = epoch;
                    *l = durable_end;
                } else if epoch == *e && durable_end > *l {
                    *l = durable_end;
                }
            }
            None => {
                self.entries.insert(msp, (epoch, durable_end));
            }
        }
    }

    /// Whether the dependency `(msp, state)` is provably durable already.
    ///
    /// True only when the watermark is from exactly `state.epoch` and the
    /// dependency's LSN lies strictly below the durable end (`durable_end`
    /// is exclusive: the record starting at LSN `l` is durable iff the
    /// durable prefix extends strictly past `l`).
    pub fn covers(&self, msp: MspId, state: StateId) -> bool {
        match self.entries.get(&msp) {
            Some(&(epoch, durable_end)) => epoch == state.epoch && state.lsn < durable_end,
            None => false,
        }
    }

    /// Forget everything about `msp`. Called when its recovery broadcast
    /// is absorbed: nothing learned before the crash may elide a flush
    /// afterwards.
    pub fn invalidate(&mut self, msp: MspId) {
        self.entries.remove(&msp);
    }

    /// Current entry for `msp` (diagnostics / tests).
    pub fn get(&self, msp: MspId) -> Option<(Epoch, Lsn)> {
        self.entries.get(&msp).copied()
    }

    /// Number of peers with a live watermark.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp_types::dv::state;

    const PEER: MspId = MspId(7);

    #[test]
    fn empty_table_covers_nothing() {
        let t = WatermarkTable::new();
        assert!(!t.covers(PEER, state(0, 0)));
        assert!(t.is_empty());
    }

    #[test]
    fn covers_is_exclusive_at_the_watermark() {
        let mut t = WatermarkTable::new();
        t.note(PEER, Epoch(0), Lsn(100));
        // Strictly below the durable end: covered.
        assert!(t.covers(PEER, state(0, 99)));
        assert!(t.covers(PEER, state(0, 0)));
        // At the durable end the record starting there is NOT yet durable.
        assert!(!t.covers(PEER, state(0, 100)));
        assert!(!t.covers(PEER, state(0, 101)));
    }

    #[test]
    fn covers_requires_exact_epoch() {
        let mut t = WatermarkTable::new();
        t.note(PEER, Epoch(1), Lsn(100));
        assert!(t.covers(PEER, state(1, 50)));
        // Same LSN, different epoch — never elided, in either direction.
        assert!(!t.covers(PEER, state(0, 50)));
        assert!(!t.covers(PEER, state(2, 50)));
    }

    #[test]
    fn note_is_monotone_within_an_epoch() {
        let mut t = WatermarkTable::new();
        t.note(PEER, Epoch(0), Lsn(100));
        t.note(PEER, Epoch(0), Lsn(60)); // out-of-order ack
        assert_eq!(t.get(PEER), Some((Epoch(0), Lsn(100))));
        t.note(PEER, Epoch(0), Lsn(150));
        assert_eq!(t.get(PEER), Some((Epoch(0), Lsn(150))));
    }

    #[test]
    fn newer_epoch_replaces_older_entry() {
        let mut t = WatermarkTable::new();
        t.note(PEER, Epoch(0), Lsn(500));
        t.note(PEER, Epoch(1), Lsn(20));
        assert_eq!(t.get(PEER), Some((Epoch(1), Lsn(20))));
        // The old epoch's generous watermark no longer elides anything.
        assert!(!t.covers(PEER, state(0, 100)));
        assert!(t.covers(PEER, state(1, 10)));
    }

    #[test]
    fn stale_older_epoch_hint_is_ignored() {
        let mut t = WatermarkTable::new();
        t.note(PEER, Epoch(2), Lsn(30));
        t.note(PEER, Epoch(1), Lsn(9_999)); // in-flight from before a crash
        assert_eq!(t.get(PEER), Some((Epoch(2), Lsn(30))));
    }

    #[test]
    fn invalidate_drops_all_state_for_the_peer() {
        let mut t = WatermarkTable::new();
        t.note(PEER, Epoch(0), Lsn(100));
        t.note(MspId(8), Epoch(0), Lsn(50));
        t.invalidate(PEER);
        assert!(!t.covers(PEER, state(0, 1)));
        assert_eq!(t.get(PEER), None);
        // Other peers are untouched.
        assert!(t.covers(MspId(8), state(0, 1)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn peers_are_independent() {
        let mut t = WatermarkTable::new();
        t.note(MspId(1), Epoch(0), Lsn(10));
        t.note(MspId(2), Epoch(3), Lsn(99));
        assert!(t.covers(MspId(1), state(0, 5)));
        assert!(!t.covers(MspId(2), state(0, 5)));
        assert!(t.covers(MspId(2), state(3, 5)));
        assert_eq!(t.len(), 2);
    }
}
