//! Bootstrapping the five system configurations of §5.2 over the
//! simulated substrate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use msp_core::client::ClientOptions;
use msp_core::config::LoggingConfig;
use msp_core::{
    ClusterConfig, Envelope, MspBuilder, MspClient, MspConfig, SessionStrategy, StateServer,
};
use msp_kv::{KvOptions, KvStore};
use msp_net::{EndpointId, NetModel, Network};
use msp_types::{DomainId, MspId};
use msp_wal::{DiskModel, FaultPlan, FlushPolicy, MemDisk};

use crate::metrics::{RecoveryPhases, Series};
use crate::workload::{
    self, initial_shared, make_service_method1, make_service_method1_ops, request_payload,
    AfterReplyHook, MSP1, MSP2,
};

/// Log flush scheduling (§5.5 and beyond).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushMode {
    /// One device write per flush request — the paper prototype's
    /// non-batched baseline.
    PerRequest,
    /// The paper's batch flushing: wait this long, then serve every
    /// pending request with one write.
    Batched(Duration),
    /// Classic group commit: every write takes the whole tail
    /// (an engineering extension over the paper's prototype).
    GroupCommit,
}

/// The five system configurations of the evaluation (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemConfig {
    /// Log-based recovery, both MSPs in one service domain: optimistic
    /// logging between them, pessimistic toward the client.
    LoOptimistic,
    /// Log-based recovery, each MSP in its own domain: pessimistic
    /// logging everywhere.
    Pessimistic,
    /// No recovery infrastructure.
    NoLog,
    /// Session state persisted to a local DBMS around every request.
    Psession,
    /// Session state kept at a remote in-memory state server.
    StateServer,
}

impl SystemConfig {
    pub const ALL: [SystemConfig; 5] = [
        SystemConfig::LoOptimistic,
        SystemConfig::Pessimistic,
        SystemConfig::NoLog,
        SystemConfig::Psession,
        SystemConfig::StateServer,
    ];

    pub fn name(self) -> &'static str {
        match self {
            SystemConfig::LoOptimistic => "LoOptimistic",
            SystemConfig::Pessimistic => "Pessimistic",
            SystemConfig::NoLog => "NoLog",
            SystemConfig::Psession => "Psession",
            SystemConfig::StateServer => "StateServer",
        }
    }

    /// Parse a configuration name as printed by [`Self::name`]
    /// (case-insensitive) — used by the `torture` binary's `--config`.
    pub fn parse(name: &str) -> Option<SystemConfig> {
        SystemConfig::ALL
            .into_iter()
            .find(|c| c.name().eq_ignore_ascii_case(name))
    }

    pub fn is_log_based(self) -> bool {
        matches!(self, SystemConfig::LoOptimistic | SystemConfig::Pessimistic)
    }
}

/// Tuning of a [`World`].
#[derive(Debug, Clone)]
pub struct WorldOptions {
    pub config: SystemConfig,
    /// Global time scale (1.0 = the paper's native milliseconds).
    pub time_scale: f64,
    /// Session checkpointing threshold in log bytes (paper default 1 MB);
    /// `u64::MAX` effectively disables session checkpoints.
    pub session_ckpt_threshold: u64,
    pub checkpoints_enabled: bool,
    /// How the physical log schedules device writes (§5.5): the paper's
    /// per-request baseline, the paper's batch flushing, or group commit
    /// (this implementation's extension).
    pub flush_mode: FlushMode,
    pub workers: usize,
    pub seed: u64,
    /// Arm the §5.4 fault injector: crash MSP2 after every `crash_every`
    /// live calls into ServiceMethod2 (0 = never).
    pub crash_every: u64,
    /// Durability-watermark tracking (flush-RPC elision) on the log-based
    /// configurations; ignored by the baselines.
    pub durability_watermarks: bool,
    /// Park the worker thread for the full distributed flush (the
    /// pre-pipeline baseline) instead of handing the reply to the
    /// asynchronous release stage; ignored by the baselines.
    pub blocking_durability: bool,
    /// Park the worker thread on the pessimistic pre-send flush of every
    /// cross-domain outgoing call (the pre-PR-6 baseline) instead of
    /// parking the request envelope in the release stage; ignored by the
    /// baselines. Implied by `blocking_durability`.
    pub blocking_send_durability: bool,
    /// DB transaction overhead for the Psession baseline (unscaled).
    pub db_txn_overhead: Duration,
    /// Stripe each MSP's WAL across this many simulated disks (0 = the
    /// legacy single-log path); ignored by the baselines.
    pub log_stripes: usize,
    /// Shard each MSP's runtime (worker pool + release stage) this many
    /// ways, sessions assigned by consistent hash.
    pub runtime_shards: usize,
    /// Byte-driven checkpoint scheduling: take an MSP checkpoint (and
    /// truncate behind the reclaim floor) once this many log bytes have
    /// accumulated since the last one. `0` leaves the timer in charge.
    pub checkpoint_interval_bytes: u64,
    /// Route every shared-variable RMW of the workload through the
    /// registered `bump` shared op and run the MSPs with
    /// `adaptive_logging` — the per-variable value/operation logging
    /// diet. Off, the workload uses the classic value-logged
    /// `update_shared` path (byte-identical logs to the pre-diet rig).
    pub adaptive_logging: bool,
    /// Replacement policy of the process-wide recovery buffer pool.
    pub replacement_policy: msp_wal::ReplacementPolicy,
    /// Overlap recovery phases: warm the pool from the analysis scan and
    /// start replay before the recovery checkpoint (the default).
    pub overlapped_recovery: bool,
    /// Run the longest-first schedule prefetcher during pool recovery.
    pub recovery_prefetch: bool,
}

impl WorldOptions {
    pub fn new(config: SystemConfig) -> WorldOptions {
        WorldOptions {
            config,
            time_scale: 0.1,
            session_ckpt_threshold: 1 << 20,
            checkpoints_enabled: true,
            flush_mode: FlushMode::PerRequest,
            workers: 8,
            seed: 1,
            crash_every: 0,
            durability_watermarks: true,
            blocking_durability: false,
            blocking_send_durability: false,
            db_txn_overhead: Duration::from_millis(4),
            log_stripes: 0,
            runtime_shards: 1,
            checkpoint_interval_bytes: 0,
            adaptive_logging: false,
            replacement_policy: msp_wal::ReplacementPolicy::default(),
            overlapped_recovery: true,
            recovery_prefetch: true,
        }
    }
}

/// Everything needed to (re)build one MSP, so fault injectors can crash
/// and restart it while the experiment runs. Both MSPs of the §5.1
/// workload live in slots; the slot knows which service methods and
/// shared variables its MSP id carries.
pub struct MspSlot {
    id: MspId,
    handle: Mutex<Option<msp_core::MspHandle>>,
    /// One disk for the single-log path, `log_stripes` disks for the
    /// striped WAL; all survive crashes and rebuilds.
    disks: Vec<Arc<MemDisk>>,
    net: Network<Envelope>,
    cluster: ClusterConfig,
    cfg: MspConfig,
    disk_model: DiskModel,
    flush_policy: FlushPolicy,
    /// The §5.4 after-reply hook, threaded into `ServiceMethod1` on every
    /// (re)build of the MSP1 slot.
    hook: Option<AfterReplyHook>,
    hook_every: u64,
    /// Crash-point plan installed on the log at the *next* (re)build —
    /// this is how the torture rig crashes an MSP during its own
    /// recovery.
    fault: Mutex<Option<Arc<FaultPlan>>>,
    pub crashes: AtomicU64,
    /// Cumulative wall time spent with the MSP down or recovering.
    pub downtime: Mutex<Duration>,
}

/// Backwards-compatible alias: the slot used to exist only for MSP2.
pub type Msp2Slot = MspSlot;

impl MspSlot {
    fn build(&self) -> msp_types::MspResult<msp_core::MspHandle> {
        let mut b = MspBuilder::new(self.cfg.clone(), self.cluster.clone())
            .disk_model(self.disk_model.clone())
            .flush_policy(self.flush_policy);
        if let Some(plan) = self.fault.lock().clone() {
            b = b.fault_plan(plan);
        }
        // The bump op is registered on every incarnation (registration
        // writes nothing to the log); the service methods route through it
        // only on the adaptive-logging worlds.
        b = b.shared_op(workload::BUMP_OP, workload::bump_op);
        let ops = self.cfg.adaptive_logging;
        b = if self.id == MSP1 {
            let b = b
                .shared_var("SV0", initial_shared())
                .shared_var("SV1", initial_shared());
            if ops {
                b.service(
                    "ServiceMethod1",
                    make_service_method1_ops(self.hook.clone(), self.hook_every),
                )
            } else {
                b.service(
                    "ServiceMethod1",
                    make_service_method1(self.hook.clone(), self.hook_every),
                )
            }
        } else {
            let b = b
                .shared_var("SV2", initial_shared())
                .shared_var("SV3", initial_shared());
            if ops {
                b.service("ServiceMethod2", workload::service_method2_ops)
            } else {
                b.service("ServiceMethod2", workload::service_method2)
            }
        };
        b.start_with_disks(
            &self.net,
            self.disks
                .iter()
                .map(|d| Arc::clone(d) as Arc<dyn msp_wal::Disk>)
                .collect(),
        )
    }

    /// Kill the MSP without restarting it (losing its buffered log
    /// records); the torture rig restarts it later via [`Self::restart`].
    pub fn kill(&self) {
        if let Some(h) = self.handle.lock().take() {
            h.crash();
            self.crashes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// (Re)start the MSP over its surviving disk; the start runs MSP
    /// crash recovery and the returned [`RecoveryPhases`] says what that
    /// recovery did. If a crash-point plan armed via
    /// [`Self::set_fault_plan`] fires during the startup recovery itself,
    /// the failed start counts as another crash and the slot starts over
    /// (the plan is spent after firing, so the retry goes through).
    pub fn restart(&self) -> RecoveryPhases {
        let t0 = Instant::now();
        let mut attempts = 0u32;
        let fresh = loop {
            match self.build() {
                Ok(h) => break h,
                Err(e) => {
                    attempts += 1;
                    self.crashes.fetch_add(1, Ordering::Relaxed);
                    assert!(
                        attempts < 8,
                        "MSP{} failed to restart after {attempts} attempts: {e}",
                        self.id.0
                    );
                }
            }
        };
        let phases = RecoveryPhases::from_stats(&fresh.stats());
        *self.handle.lock() = Some(fresh);
        *self.downtime.lock() += t0.elapsed();
        phases
    }

    /// Kill the MSP (losing its buffered log records) and immediately
    /// restart it; the restart runs MSP crash recovery, whose phase
    /// breakdown is returned.
    pub fn crash_and_restart(&self) -> RecoveryPhases {
        self.kill();
        self.restart()
    }

    /// Arm a crash-point plan: installed on the live log immediately (if
    /// the MSP is up) and re-installed on every subsequent rebuild until
    /// cleared with `None`.
    pub fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        if let Some(p) = &plan {
            if let Some(h) = self.handle.lock().as_ref() {
                h.install_fault_plan(Arc::clone(p));
            }
        }
        *self.fault.lock() = plan;
    }

    /// `true` while a handle is installed (the MSP is not killed).
    pub fn is_up(&self) -> bool {
        self.handle.lock().is_some()
    }

    /// `true` once crash-recovery replay has drained (or trivially when
    /// the MSP is down — a down MSP has no pool to wait for).
    pub fn recovery_complete(&self) -> bool {
        self.handle
            .lock()
            .as_ref()
            .is_none_or(|h| h.recovery_complete())
    }

    pub fn stats(&self) -> Option<msp_core::runtime::RuntimeStatsSnapshot> {
        self.handle.lock().as_ref().map(|h| h.stats())
    }

    /// Physical-log counters (log-based configurations with the MSP up).
    pub fn log_stats(&self) -> Option<msp_wal::stats::LogStatsSnapshot> {
        self.handle.lock().as_ref().and_then(|h| h.log_stats())
    }

    /// Live sessions currently held by the MSP (zero while it is down).
    pub fn session_count(&self) -> usize {
        self.handle
            .lock()
            .as_ref()
            .map(|h| h.session_count())
            .unwrap_or(0)
    }

    /// Current shared-variable values in registration order (empty while
    /// the MSP is down).
    pub fn dump_shared(&self) -> Vec<Vec<u8>> {
        self.handle
            .lock()
            .as_ref()
            .map(|h| h.dump_shared())
            .unwrap_or_default()
    }

    /// The MSP's (simulated) disk — shared across restarts, and what the
    /// torture rig's post-mortem pass re-opens after shutdown. The first
    /// stripe when the log is striped (see [`Self::disks`]).
    pub fn disk(&self) -> Arc<MemDisk> {
        Arc::clone(&self.disks[0])
    }

    /// Every disk backing the MSP's log, in stripe order (length 1 on the
    /// single-log path).
    pub fn disks(&self) -> Vec<Arc<MemDisk>> {
        self.disks.clone()
    }

    /// Per-stripe log-counter breakdown (log-based configurations with
    /// the MSP up; one entry on the single-log path).
    pub fn stripe_stats(&self) -> Option<Vec<msp_wal::stats::LogStatsSnapshot>> {
        self.handle.lock().as_ref().and_then(|h| h.stripe_stats())
    }

    /// Process-level recovery buffer-pool counters of the *current*
    /// incarnation (retired pool runs included via the runtime's banked
    /// snapshot); zeroes while the MSP is down. Like
    /// [`Self::log_stats`], the numbers reset at each rebuild.
    pub fn pool_stats(&self) -> msp_wal::PoolStatsSnapshot {
        self.handle
            .lock()
            .as_ref()
            .map(|h| h.pool_stats())
            .unwrap_or_default()
    }

    /// Per-shard runtime-counter breakdown (empty while the MSP is down).
    pub fn shard_stats(&self) -> Vec<msp_core::runtime::ShardStatsSnapshot> {
        self.handle
            .lock()
            .as_ref()
            .map(|h| h.shard_stats())
            .unwrap_or_default()
    }

    /// Current reclaim floor of the MSP's log (log-based and up).
    pub fn reclaim_floor(&self) -> Option<msp_types::Lsn> {
        self.handle.lock().as_ref().and_then(|h| h.reclaim_floor())
    }

    /// Bytes of backing store the MSP's log devices currently occupy,
    /// summed over stripes: `len()` minus what truncation reclaimed. The
    /// long-run torture tier asserts this stays under a cap.
    pub fn footprint(&self) -> u64 {
        use msp_wal::Disk;
        self.disks.iter().map(|d| d.footprint()).sum()
    }

    fn shutdown(&self) {
        // A still-armed plan would fire on the clean shutdown's final
        // flush; the storm is over, so disarm it.
        if let Some(plan) = self.fault.lock().take() {
            plan.disarm_all();
        }
        if let Some(h) = self.handle.lock().take() {
            h.shutdown();
        }
    }
}

/// A fully wired system configuration: network, MSPs, baseline services.
pub struct World {
    pub opts: WorldOptions,
    pub net: Network<Envelope>,
    pub cluster: ClusterConfig,
    pub msp1: Arc<MspSlot>,
    pub msp2: Arc<MspSlot>,
    state_server: Option<StateServer>,
    pub db1: Option<Arc<KvStore>>,
    pub db2: Option<Arc<KvStore>>,
    crash_thread: Option<std::thread::JoinHandle<()>>,
    crash_stop: crossbeam_channel::Sender<()>,
}

const STATE_SERVER_EP: EndpointId = EndpointId::Client(9_999);

impl World {
    pub fn start(opts: WorldOptions) -> World {
        let scale = opts.time_scale;
        let net: Network<Envelope> = Network::new(NetModel::default().with_scale(scale), opts.seed);
        let cluster = match opts.config {
            SystemConfig::Pessimistic => ClusterConfig::new()
                .with_msp(MSP1, DomainId(1))
                .with_msp(MSP2, DomainId(2)),
            _ => ClusterConfig::new()
                .with_msp(MSP1, DomainId(1))
                .with_msp(MSP2, DomainId(1)),
        };
        let disk_model = DiskModel::default().with_scale(scale);
        let flush_policy = match opts.flush_mode {
            FlushMode::PerRequest => FlushPolicy::per_request(),
            FlushMode::Batched(t) => FlushPolicy::batched(t),
            FlushMode::GroupCommit => FlushPolicy::immediate(),
        };
        let logging = LoggingConfig {
            session_ckpt_threshold: opts.session_ckpt_threshold,
            shared_ckpt_writes: 256,
            msp_ckpt_interval: Duration::from_millis(50),
            force_ckpt_after: 16,
            checkpoints_enabled: opts.checkpoints_enabled,
            checkpoint_interval_bytes: opts.checkpoint_interval_bytes,
        };
        let base_cfg = |id, domain| {
            let mut c = MspConfig::new(id, DomainId(domain))
                .with_time_scale(scale)
                .with_workers(opts.workers)
                .with_logging(logging.clone())
                .with_durability_watermarks(opts.durability_watermarks)
                .with_blocking_durability(opts.blocking_durability)
                .with_blocking_send_durability(opts.blocking_send_durability)
                .with_log_stripes(opts.log_stripes)
                .with_runtime_shards(opts.runtime_shards)
                .with_adaptive_logging(opts.adaptive_logging)
                .with_replacement_policy(opts.replacement_policy)
                .with_overlapped_recovery(opts.overlapped_recovery)
                .with_recovery_prefetch(opts.recovery_prefetch);
            c.rpc_timeout = Duration::from_millis(15);
            c.flush_retry_limit = 2_000;
            c
        };

        // Baseline services.
        let mut state_server = None;
        let (mut db1, mut db2) = (None, None);
        let strategy = |db: &mut Option<Arc<KvStore>>| match opts.config {
            SystemConfig::LoOptimistic | SystemConfig::Pessimistic => SessionStrategy::LogBased,
            SystemConfig::NoLog => SessionStrategy::NoLog,
            SystemConfig::Psession => {
                let store = Arc::new(
                    KvStore::open(
                        Arc::new(MemDisk::new()),
                        disk_model.clone(),
                        KvOptions {
                            txn_overhead: opts.db_txn_overhead,
                            time_scale: scale,
                            snapshot_every: 100_000,
                        },
                    )
                    .expect("open kv"),
                );
                *db = Some(Arc::clone(&store));
                SessionStrategy::Psession(store)
            }
            SystemConfig::StateServer => SessionStrategy::StateServer(STATE_SERVER_EP),
        };
        if opts.config == SystemConfig::StateServer {
            state_server = Some(StateServer::start(&net, STATE_SERVER_EP));
        }

        // Fault injector plumbing: the workload hook signals the crash
        // controller thread, which crashes and restarts MSP2. Unbounded so
        // a signal is never dropped while the controller is still handling
        // (or waiting to be scheduled for) a previous crash; the workload
        // stalls while MSP2 is down, so at most one signal can queue up.
        let (crash_tx, crash_rx) = crossbeam_channel::unbounded::<()>();
        let (stop_tx, stop_rx) = crossbeam_channel::bounded::<()>(1);
        let hook: Option<AfterReplyHook> = if opts.crash_every > 0 {
            let tx = crash_tx.clone();
            Some(Arc::new(move || {
                let _ = tx.try_send(());
            }))
        } else {
            None
        };

        let slot = |id: MspId, cfg: MspConfig, hook: Option<AfterReplyHook>| {
            Arc::new(MspSlot {
                id,
                handle: Mutex::new(None),
                disks: (0..opts.log_stripes.max(1))
                    .map(|_| Arc::new(MemDisk::new()))
                    .collect(),
                net: net.clone(),
                cluster: cluster.clone(),
                cfg,
                disk_model: disk_model.clone(),
                flush_policy,
                hook,
                hook_every: opts.crash_every,
                fault: Mutex::new(None),
                crashes: AtomicU64::new(0),
                downtime: Mutex::new(Duration::ZERO),
            })
        };

        // MSP2 first (MSP1's calls need it).
        let dom2 = cluster.domain_of(MSP2).expect("registered").0;
        let msp2 = slot(
            MSP2,
            base_cfg(MSP2, dom2).with_strategy(strategy(&mut db2)),
            None,
        );
        *msp2.handle.lock() = Some(msp2.build().expect("start MSP2"));

        let msp1 = slot(
            MSP1,
            base_cfg(MSP1, 1).with_strategy(strategy(&mut db1)),
            hook,
        );
        *msp1.handle.lock() = Some(msp1.build().expect("start MSP1"));

        // Crash controller thread.
        let crash_thread = if opts.crash_every > 0 {
            let slot = Arc::clone(&msp2);
            Some(
                std::thread::Builder::new()
                    .name("crash-controller".into())
                    .spawn(move || loop {
                        crossbeam_channel::select! {
                            recv(crash_rx) -> r => {
                                if r.is_err() { return; }
                                let _ = slot.crash_and_restart();
                            }
                            recv(stop_rx) -> _ => return,
                        }
                    })
                    .expect("spawn crash controller"),
            )
        } else {
            None
        };

        World {
            opts,
            net,
            cluster,
            msp1,
            msp2,
            state_server,
            db1,
            db2,
            crash_thread,
            crash_stop: stop_tx,
        }
    }

    /// Register an end client with paper-like link latency (3.9 ms RTT to
    /// the MSPs, scaled).
    pub fn client(&self, id: u64) -> MspClient {
        let ep = EndpointId::Client(id);
        for msp in [EndpointId::Msp(MSP1), EndpointId::Msp(MSP2)] {
            let model = NetModel::client_link().with_scale(self.opts.time_scale);
            self.net.set_link(ep, msp, model.clone());
            self.net.set_link(msp, ep, model);
        }
        MspClient::new(
            &self.net,
            id,
            ClientOptions {
                resend_timeout: Duration::from_millis(40),
                busy_backoff: scaled_backoff(self.opts.time_scale),
                max_attempts: 100_000,
            },
        )
    }

    /// Like [`Self::client`], but with lossy links: every message between
    /// this client and the MSPs is dropped with `drop_prob` and
    /// duplicated with `dup_prob` — the torture rig's message-fault
    /// dimension, exercising resend and duplicate-detection paths.
    pub fn faulty_client(&self, id: u64, drop_prob: f64, dup_prob: f64) -> MspClient {
        let c = self.client(id);
        let ep = EndpointId::Client(id);
        for msp in [EndpointId::Msp(MSP1), EndpointId::Msp(MSP2)] {
            let model = NetModel::client_link()
                .with_scale(self.opts.time_scale)
                .with_faults(drop_prob, dup_prob);
            self.net.set_link(ep, msp, model.clone());
            self.net.set_link(msp, ep, model);
        }
        c
    }

    /// Drive `n` end-client requests with `m` intra-request calls each,
    /// recording per-request response times.
    pub fn run_requests(&self, client: &mut MspClient, n: u64, m: u8) -> Series {
        let payload = request_payload(m);
        let mut series = Series::new();
        let t0 = Instant::now();
        for _ in 0..n {
            let r0 = Instant::now();
            client
                .call(MSP1, "ServiceMethod1", &payload)
                .expect("request");
            series.push(r0.elapsed());
        }
        series.set_elapsed(t0.elapsed());
        series
    }

    /// `clients` concurrent end clients, `n` requests each (§5.5).
    pub fn run_concurrent(&self, clients: u64, n: u64, m: u8) -> Series {
        let mut handles = Vec::new();
        let t0 = Instant::now();
        for cid in 0..clients {
            let payload = request_payload(m);
            let mut c = self.client(100 + cid);
            handles.push(std::thread::spawn(move || {
                let mut s = Series::new();
                for _ in 0..n {
                    let r0 = Instant::now();
                    c.call(MSP1, "ServiceMethod1", &payload).expect("request");
                    s.push(r0.elapsed());
                }
                s
            }));
        }
        let mut series = Series::new();
        for h in handles {
            series.merge(&h.join().expect("client thread"));
        }
        series.set_elapsed(t0.elapsed());
        series
    }

    /// Crashes injected so far (both MSPs).
    pub fn crash_count(&self) -> u64 {
        self.msp1.crashes.load(Ordering::Relaxed) + self.msp2.crashes.load(Ordering::Relaxed)
    }

    pub fn shutdown(mut self) {
        let _ = self.crash_stop.send(());
        if let Some(t) = self.crash_thread.take() {
            let _ = t.join();
        }
        self.msp1.shutdown();
        self.msp2.shutdown();
        if let Some(s) = &self.state_server {
            s.shutdown();
        }
        self.net.shutdown();
    }
}

fn scaled_backoff(scale: f64) -> Duration {
    if scale <= 0.0 {
        Duration::from_micros(200)
    } else {
        Duration::from_millis(100).mul_f64(scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::reply_counter;

    fn tiny(config: SystemConfig) -> WorldOptions {
        WorldOptions {
            time_scale: 0.0,
            ..WorldOptions::new(config)
        }
    }

    #[test]
    fn all_configs_serve_the_workload() {
        for config in SystemConfig::ALL {
            let world = World::start(tiny(config));
            let mut c = world.client(1);
            for i in 1..=5u64 {
                let r = c.call(MSP1, "ServiceMethod1", &request_payload(1)).unwrap();
                assert_eq!(reply_counter(&r), i, "config {}", config.name());
            }
            world.shutdown();
        }
    }

    #[test]
    fn m_controls_msp2_request_count() {
        let world = World::start(tiny(SystemConfig::LoOptimistic));
        let mut c = world.client(1);
        c.call(MSP1, "ServiceMethod1", &request_payload(3)).unwrap();
        let s2 = world.msp2.stats().unwrap();
        assert_eq!(s2.requests, 3, "m=3 means three ServiceMethod2 executions");
        world.shutdown();
    }

    #[test]
    fn crash_injection_fires_and_system_recovers() {
        let mut opts = tiny(SystemConfig::LoOptimistic);
        opts.crash_every = 10;
        let world = World::start(opts);
        let mut c = world.client(1);
        for i in 1..=25u64 {
            let r = c.call(MSP1, "ServiceMethod1", &request_payload(1)).unwrap();
            assert_eq!(reply_counter(&r), i, "exactly-once across injected crashes");
        }
        assert!(world.crash_count() >= 2, "crashes were injected");
        world.shutdown();
    }

    #[test]
    fn slot_restart_reports_recovery_phases() {
        let world = World::start(tiny(SystemConfig::LoOptimistic));
        let mut c = world.client(1);
        for i in 1..=6u64 {
            let r = c.call(MSP1, "ServiceMethod1", &request_payload(1)).unwrap();
            assert_eq!(reply_counter(&r), i);
        }
        world.msp2.kill();
        assert!(!world.msp2.is_up());
        let phases = world.msp2.restart();
        assert!(world.msp2.is_up());
        // The restarted MSP ran an analysis scan over real log bytes.
        assert!(world.msp2.stats().unwrap().crash_recoveries >= 1);
        let _ = phases.total();
        for i in 7..=9u64 {
            let r = c.call(MSP1, "ServiceMethod1", &request_payload(1)).unwrap();
            assert_eq!(reply_counter(&r), i, "exactly-once across kill/restart");
        }
        world.shutdown();
    }
}
