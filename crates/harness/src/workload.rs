//! The paper's experimental workload (§5.1, Figure 13).
//!
//! ```text
//! end client --request1--> MSP1.ServiceMethod1 {
//!                              read and write SV0
//!                              m × call MSP2.ServiceMethod2 {
//!                                        read and write SV2
//!                                        read and write SV3
//!                                        modify session state (512 B)
//!                                    }
//!                              read and write SV1
//!                              modify session state (512 B)
//!                          }
//! ```
//!
//! Parameters and returned values are 100 B; each shared variable is
//! 128 B; the total session state per session is 8 KB (16 slots of
//! 512 B), of which each request rewrites one slot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use msp_core::ServiceContext;
use msp_types::MspId;

/// Byte sizes from §5.1.
pub const PAYLOAD_BYTES: usize = 100;
pub const SHARED_VAR_BYTES: usize = 128;
pub const SESSION_SLOT_BYTES: usize = 512;
pub const SESSION_SLOTS: usize = 16; // 16 × 512 B = 8 KB session state

pub const MSP1: MspId = MspId(1);
pub const MSP2: MspId = MspId(2);

/// Shared variables of each MSP.
pub const MSP1_VARS: [&str; 2] = ["SV0", "SV1"];
pub const MSP2_VARS: [&str; 2] = ["SV2", "SV3"];

/// A 100-byte request payload instructing `ServiceMethod1` to call
/// `ServiceMethod2` `m` times (the Figure 14 chart's x-axis).
pub fn request_payload(m: u8) -> Vec<u8> {
    let mut p = vec![0u8; PAYLOAD_BYTES];
    p[0] = m;
    p
}

/// Initial 128-byte value of a shared variable (a u64 counter plus
/// padding).
pub fn initial_shared() -> Vec<u8> {
    vec![0u8; SHARED_VAR_BYTES]
}

fn bump_counter_value(old: &[u8]) -> (u64, Vec<u8>) {
    let mut bytes = [0u8; 8];
    bytes.copy_from_slice(&old[..8]);
    let n = u64::from_le_bytes(bytes) + 1;
    let mut v = vec![0u8; SHARED_VAR_BYTES];
    v[..8].copy_from_slice(&n.to_le_bytes());
    (n, v)
}

/// Read-modify-write of one shared variable: the "read and write SVx"
/// step of both service methods. Uses the atomic update primitive — with
/// the split read + write calls, two sessions can interleave between the
/// two lock holds and both write the same incremented value, losing an
/// update (which the torture oracle's counter model would flag).
fn touch_shared(ctx: &mut ServiceContext<'_>, name: &str) -> Result<u64, String> {
    ctx.update_shared(name, |cur| {
        let (n, next) = bump_counter_value(cur);
        (next, n)
    })
}

/// "Modify session state": advance the per-session request counter and
/// rewrite one 512-byte slot of the 8 KB session state.
fn modify_session_state(ctx: &mut ServiceContext<'_>) -> u64 {
    let k = ctx
        .get_session("k")
        .map(|v| u64::from_le_bytes(v[..8].try_into().expect("8 bytes")))
        .unwrap_or(0)
        + 1;
    ctx.set_session("k", k.to_le_bytes().to_vec());
    let slot = (k as usize) % SESSION_SLOTS;
    let fill = (k % 251) as u8;
    ctx.set_session(&format!("slot{slot}"), vec![fill; SESSION_SLOT_BYTES]);
    k
}

/// 100-byte reply embedding the session's request counter (lets the
/// harness assert exactly-once execution end to end).
fn reply_bytes(k: u64, sv_counter: u64) -> Vec<u8> {
    let mut r = vec![0u8; PAYLOAD_BYTES];
    r[..8].copy_from_slice(&k.to_le_bytes());
    r[8..16].copy_from_slice(&sv_counter.to_le_bytes());
    r
}

/// A hook the fault injector can arm; invoked after `ServiceMethod1`
/// consumes the reply from `ServiceMethod2` during *live* execution —
/// the exact instant §5.4 kills MSP2.
pub type AfterReplyHook = Arc<dyn Fn() + Send + Sync>;

/// Name of the registered shared operation the op-based workload routes
/// every shared-variable RMW through (`MspBuilder::shared_op`).
pub const BUMP_OP: &str = "bump";

/// The operation itself: increment the 128-byte counter variable. Pure
/// function of `(old, args)` — the determinism contract `apply_shared`
/// replays against.
pub fn bump_op(old: &[u8], _args: &[u8]) -> Vec<u8> {
    bump_counter_value(old).1
}

/// Op-based "read and write SVx": the same counter bump as
/// [`touch_shared`], but routed through [`BUMP_OP`] so the runtime can
/// pick the log representation (a compact `SharedOp` under
/// `adaptive_logging`, the value-logged pair otherwise). The caller never
/// sees the value — replies from the op-based methods carry 0 in the
/// shared-counter slot and the oracle checks the variables directly.
fn touch_shared_op(ctx: &mut ServiceContext<'_>, name: &str) -> Result<(), String> {
    ctx.apply_shared(name, BUMP_OP, &[])
}

/// `ServiceMethod2` with every shared-variable RMW routed through the
/// registered [`BUMP_OP`] — the adaptive-logging-diet variant of
/// [`service_method2`].
pub fn service_method2_ops(
    ctx: &mut ServiceContext<'_>,
    _payload: &[u8],
) -> Result<Vec<u8>, String> {
    touch_shared_op(ctx, "SV2")?;
    touch_shared_op(ctx, "SV3")?;
    let k = modify_session_state(ctx);
    Ok(reply_bytes(k, 0))
}

/// Op-based `ServiceMethod1` — see [`make_service_method1`] for the hook
/// plumbing and [`service_method2_ops`] for the shared-variable change.
pub fn make_service_method1_ops(
    hook: Option<AfterReplyHook>,
    hook_every: u64,
) -> impl Fn(&mut ServiceContext<'_>, &[u8]) -> Result<Vec<u8>, String> + Send + Sync + 'static {
    let live_calls = Arc::new(AtomicU64::new(0));
    move |ctx, payload| {
        let m = payload.first().copied().unwrap_or(1).max(1);
        touch_shared_op(ctx, "SV0")?;
        for _ in 0..m {
            ctx.call(MSP2, "ServiceMethod2", payload)?;
            if let Some(hook) = &hook {
                if !ctx.is_replaying() {
                    let n = live_calls.fetch_add(1, Ordering::Relaxed) + 1;
                    if hook_every > 0 && n.is_multiple_of(hook_every) {
                        hook();
                    }
                }
            }
        }
        touch_shared_op(ctx, "SV1")?;
        let k = modify_session_state(ctx);
        Ok(reply_bytes(k, 0))
    }
}

/// `ServiceMethod2` as registered at MSP2.
pub fn service_method2(ctx: &mut ServiceContext<'_>, _payload: &[u8]) -> Result<Vec<u8>, String> {
    let sv = touch_shared(ctx, "SV2")?;
    touch_shared(ctx, "SV3")?;
    let k = modify_session_state(ctx);
    Ok(reply_bytes(k, sv))
}

/// Build `ServiceMethod1` for MSP1, optionally wired to a fault-injection
/// hook (see [`crate::crashes`]).
pub fn make_service_method1(
    hook: Option<AfterReplyHook>,
    hook_every: u64,
) -> impl Fn(&mut ServiceContext<'_>, &[u8]) -> Result<Vec<u8>, String> + Send + Sync + 'static {
    let live_calls = Arc::new(AtomicU64::new(0));
    move |ctx, payload| {
        let m = payload.first().copied().unwrap_or(1).max(1);
        touch_shared(ctx, "SV0")?;
        for _ in 0..m {
            ctx.call(MSP2, "ServiceMethod2", payload)?;
            // Fault injection (§5.4): "when the reply from ServiceMethod2
            // is received by MSP1, MSP2 is instructed to kill itself."
            // Only live executions count — replay must not re-trigger
            // crashes (the hook is external test machinery, not session
            // state, so this does not violate determinism).
            if let Some(hook) = &hook {
                if !ctx.is_replaying() {
                    let n = live_calls.fetch_add(1, Ordering::Relaxed) + 1;
                    if hook_every > 0 && n.is_multiple_of(hook_every) {
                        hook();
                    }
                }
            }
        }
        let sv = touch_shared(ctx, "SV1")?;
        let k = modify_session_state(ctx);
        Ok(reply_bytes(k, sv))
    }
}

/// Decode the session counter from a reply (exactly-once assertions).
pub fn reply_counter(reply: &[u8]) -> u64 {
    u64::from_le_bytes(reply[..8].try_into().expect("8 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_encodes_call_count() {
        let p = request_payload(3);
        assert_eq!(p.len(), PAYLOAD_BYTES);
        assert_eq!(p[0], 3);
    }

    #[test]
    fn counter_value_bumps() {
        let v0 = initial_shared();
        let (n1, v1) = bump_counter_value(&v0);
        assert_eq!(n1, 1);
        assert_eq!(v1.len(), SHARED_VAR_BYTES);
        let (n2, _) = bump_counter_value(&v1);
        assert_eq!(n2, 2);
    }

    #[test]
    fn reply_roundtrip() {
        let r = reply_bytes(42, 7);
        assert_eq!(r.len(), PAYLOAD_BYTES);
        assert_eq!(reply_counter(&r), 42);
    }
}
